"""ISSUE 5 acceptance: faults are deterministic and zero-cost when absent.

* With a fixed seeded plan, the optimized scheduler and ``legacy_tick``
  produce byte-identical event streams and metrics, for both policies.
* ``fig_faults`` is bit-identical serial vs parallel.
* An empty :class:`FaultPlan` is runtime-equivalent to ``faults=None``:
  no controller is built and the event stream does not change.
* Pinning: with no plan, the ``table2`` and ``fig8`` payload digests match
  the values recorded on ``main`` before the fault layer landed — the
  subsystem cannot perturb failure-free experiments by even one byte.
"""

import contextlib
import hashlib
import io
import pickle

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.common import SCALES
from repro.faults import FaultPlan
from repro.metrics import compute_metrics
from repro.obs import recorder
from repro.perf import ParallelRunner
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch_workload

NUM_MACHINES = 4
PLAN = FaultPlan.seeded(
    seed=3, num_workers=NUM_MACHINES, window=(1.0, 6.0),
    crashes=1, blackouts=1, slowdowns=1, timeouts=1,
)


def _stream_digest(events):
    h = hashlib.sha256()
    for e in events:
        h.update(repr(sorted(e.items())).encode())
    return h.hexdigest()


def _run(plan, policy="ejf", legacy=False):
    rec = recorder.enable()
    try:
        cluster = Cluster(
            ClusterSpec(num_machines=NUM_MACHINES,
                        machine=ClusterSpec.paper_cluster().machine)
        )
        system = UrsaSystem(
            cluster, UrsaConfig(policy=policy, legacy_tick=legacy, faults=plan)
        )
        wl = tpch_workload(n_jobs=6, scale=0.02, arrival_interval=0.6,
                           max_parallelism=128, partition_mb=12.0)
        submit_workload(system, wl, seed=0)
        system.run(max_events=50_000_000)
    finally:
        recorder.disable()
    assert system.all_terminal
    return (_stream_digest(rec.events), len(rec.events),
            pickle.dumps(compute_metrics(system)), system)


@pytest.mark.parametrize("policy", ["ejf", "srjf"])
def test_faulted_fast_path_bit_identical_to_legacy(policy):
    opt = _run(PLAN, policy=policy, legacy=False)
    leg = _run(PLAN, policy=policy, legacy=True)
    assert opt[:3] == leg[:3]


def test_faulted_rerun_is_bit_identical():
    assert _run(PLAN)[:3] == _run(PLAN)[:3]


def test_empty_plan_is_runtime_equivalent_to_none():
    empty = _run(FaultPlan())
    none = _run(None)
    assert empty[:3] == none[:3]
    assert empty[3].fault_controller is None
    assert none[3].fault_controller is None


def _quiet(fn, *args, **kwargs):
    with contextlib.redirect_stdout(io.StringIO()):
        return fn(*args, **kwargs)


def test_fig_faults_parallel_bit_identical_to_serial():
    serial = _quiet(ParallelRunner(workers=0).run, "fig_faults", SCALES["tiny"])
    parallel = _quiet(ParallelRunner(workers=2).run, "fig_faults", SCALES["tiny"])
    assert pickle.dumps(parallel) == pickle.dumps(serial)


#: sha256 of the pickled {unit_key: payload} map at tiny scale, seed 0,
#: recorded on main immediately before the fault layer merged.  If one of
#: these moves, the fault subsystem changed failure-free behaviour.
PINNED_DIGESTS = {
    "table2": "c1767d1f653290eccc31690152b1f2056684cf482fc56f649b024e1f746f5b07",
    "fig8": "5e6520358deb2adb4fc40554a70da09553505eb9bee41f94810aed66b41aaae3",
}


@pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
def test_failure_free_experiments_pinned_to_pre_fault_baseline(name):
    from repro.experiments.registry import SPLIT_EXPERIMENTS

    split = SPLIT_EXPERIMENTS[name]
    sc = SCALES["tiny"]
    payloads = {k: split.run_unit(sc, k, seed=0) for k in split.unit_keys(sc)}
    digest = hashlib.sha256(pickle.dumps(payloads, protocol=4)).hexdigest()
    assert digest == PINNED_DIGESTS[name]
