"""FaultPlan / RetryPolicy construction, seeding, and validation."""

import doctest
import pickle

import pytest

import repro.faults.plan as plan_mod
from repro.faults import (
    FaultPlan,
    GrantTimeout,
    ResourceSlowdown,
    RetryPolicy,
    WorkerBlackout,
    WorkerCrash,
)


def test_module_doctests_pass():
    res = doctest.testmod(plan_mod)
    assert res.attempted > 0
    assert res.failed == 0


def test_empty_plan_is_falsy_and_valid():
    plan = FaultPlan()
    assert not plan
    plan.validate(num_workers=1)


def test_seeded_is_deterministic_and_picklable():
    kw = dict(seed=11, num_workers=8, window=(1.0, 20.0), crashes=2,
              blackouts=1, slowdowns=2, timeouts=1)
    a, b = FaultPlan.seeded(**kw), FaultPlan.seeded(**kw)
    assert a == b
    assert pickle.loads(pickle.dumps(a)) == a
    assert len(a.events) == 6
    times = [ev.at for ev in a.events]
    assert times == sorted(times)
    assert all(1.0 <= t <= 20.0 for t in times)


def test_seeded_crash_targets_are_distinct():
    plan = FaultPlan.seeded(seed=5, num_workers=6, window=(1.0, 5.0),
                            crashes=3, blackouts=2)
    down = [ev.worker for ev in plan.events
            if isinstance(ev, (WorkerCrash, WorkerBlackout))]
    assert len(down) == len(set(down)) == 5


def test_seeded_rejects_killing_every_worker():
    with pytest.raises(ValueError):
        FaultPlan.seeded(seed=0, num_workers=2, window=(1.0, 5.0),
                         crashes=1, blackouts=1)


@pytest.mark.parametrize("bad", [
    FaultPlan((WorkerCrash(at=1.0, worker=9),)),                # out of range
    FaultPlan((WorkerCrash(at=0.0, worker=0),)),                # t must be > 0
    FaultPlan((WorkerBlackout(at=1.0, worker=0, duration=0.0),)),
    FaultPlan((ResourceSlowdown(at=1.0, worker=0, resource="gpu",
                                factor=0.5, duration=1.0),)),
    FaultPlan((ResourceSlowdown(at=1.0, worker=0, resource="cpu",
                                factor=0.0, duration=1.0),)),
    FaultPlan((WorkerCrash(at=1.0, worker=0),
               WorkerCrash(at=2.0, worker=1))),                 # kills them all
])
def test_validate_rejects_bad_plans(bad):
    with pytest.raises(ValueError):
        bad.validate(num_workers=2)


def test_validate_accepts_mixed_plan():
    FaultPlan((
        WorkerCrash(at=1.0, worker=0),
        WorkerBlackout(at=2.0, worker=1, duration=3.0),
        ResourceSlowdown(at=3.0, worker=2, resource="disk", factor=0.25, duration=2.0),
        GrantTimeout(at=4.0, worker=3),
    )).validate(num_workers=4)


def test_retry_policy_backoff_sequence():
    r = RetryPolicy(max_attempts=3, backoff_base=0.5, backoff_factor=2.0)
    assert r.delay(0) == 0.0
    assert [r.delay(i) for i in (1, 2, 3)] == [0.5, 1.0, 2.0]
