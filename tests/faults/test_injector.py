"""End-to-end fault injection & recovery behaviour on a real workload."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import ResourceType
from repro.experiments.common import Scale
from repro.faults import (
    FaultPlan,
    GrantTimeout,
    ResourceSlowdown,
    RetryPolicy,
    WorkerBlackout,
    WorkerCrash,
)
from repro.metrics import compute_metrics
from repro.obs import events as ev
from repro.obs import recorder
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch_workload

SCALE = Scale(
    "faults-test", workload_scale=0.02, n_jobs=6, arrival_interval=0.6,
    max_parallelism=128, partition_mb=12.0,
    cluster=ClusterSpec(num_machines=4, machine=ClusterSpec.paper_cluster().machine),
)


def run_system(plan, policy="ejf", retry=None, record=False):
    rec = recorder.enable() if record else None
    try:
        cluster = Cluster(SCALE.cluster)
        system = UrsaSystem(
            cluster, UrsaConfig(policy=policy, faults=plan, retry=retry)
        )
        wl = tpch_workload(
            n_jobs=SCALE.n_jobs, scale=SCALE.workload_scale,
            arrival_interval=SCALE.arrival_interval,
            max_parallelism=SCALE.max_parallelism,
            partition_mb=SCALE.partition_mb,
        )
        submit_workload(system, wl, seed=0)
        system.run(max_events=SCALE.max_events)
    finally:
        if record:
            recorder.disable()
    return system, rec


def test_failure_free_baseline_has_no_controller():
    system, _ = run_system(None)
    assert system.fault_controller is None
    assert system.all_done


def test_crash_recovers_via_lineage_and_all_jobs_complete():
    system, _ = run_system(FaultPlan((WorkerCrash(at=2.0, worker=1),)))
    assert system.all_done and not system.failed_jobs
    assert not system.workers[1].alive
    stats = system.fault_controller.stats
    assert stats.worker_crashes == 1
    assert stats.tasks_restarted > 0
    assert stats.monotasks_lost > 0
    assert stats.wasted_work_mb > 0.0
    assert stats.recovery_times and all(t > 0.0 for t in stats.recovery_times)
    # the dead worker took no placements after the crash
    for job in system.jobs:
        for task in job.plan.tasks:
            assert task.finished_at is None or task.worker is not None
    # nothing may remain placed or queued on the dead machine
    wk = system.workers[1]
    assert wk.queued_monotasks == 0
    assert all(v == 0 for v in wk.running.values())
    # recovery costs time but never correctness
    baseline, _ = run_system(None)
    assert system.makespan() >= baseline.makespan()


def test_crash_releases_dead_workers_admission_share():
    system, _ = run_system(FaultPlan((WorkerCrash(at=2.0, worker=0),)))
    per_machine = SCALE.cluster.machine.memory_mb
    expected = SCALE.cluster.num_machines * per_machine - per_machine
    assert system.admission.total_memory_mb == pytest.approx(expected)


def test_blackout_rejoins_and_restores_admission_pool():
    system, _ = run_system(
        FaultPlan((WorkerBlackout(at=2.0, worker=2, duration=3.0),))
    )
    assert system.all_done and not system.failed_jobs
    assert system.workers[2].alive  # rejoined
    assert system.admission.total_memory_mb == pytest.approx(
        SCALE.cluster.num_machines * SCALE.cluster.machine.memory_mb
    )
    stats = system.fault_controller.stats
    assert stats.blackouts == 1 and stats.worker_crashes == 0


def test_retry_budget_exhaustion_fails_jobs_gracefully():
    system, _ = run_system(
        FaultPlan((WorkerCrash(at=2.5, worker=0),)),
        retry=RetryPolicy(max_attempts=0),
    )
    assert system.all_terminal and not system.all_done
    assert system.failed_jobs
    for job in system.failed_jobs:
        assert job.failed and job.finish_time is not None
    # partial results are retained and admission reservations returned, so
    # untouched jobs still ran to completion
    assert system.completed_jobs
    assert system.admission.reserved_mb == pytest.approx(0.0)
    # FAILED jobs aggregate into metrics instead of wedging them
    m = compute_metrics(system)
    assert m.makespan > 0.0


def test_grant_timeout_requeues_victim_and_completes():
    system, rec = run_system(
        FaultPlan((GrantTimeout(at=2.0, worker=0, delay=0.25),)), record=True
    )
    assert system.all_done and not system.failed_jobs
    stats = system.fault_controller.stats
    assert stats.grant_timeouts == 1
    assert stats.retries_charged == 1
    lost = [e for e in rec.events if e["kind"] == ev.MT_LOST]
    assert len(lost) == 1 and lost[0]["reason"] == "timeout"
    # the victim re-ran on the same worker: one extra mt_start for its id
    victim = (lost[0]["job"], lost[0]["mt"])
    starts = [e for e in rec.events
              if e["kind"] == ev.MT_START and (e["job"], e["mt"]) == victim]
    assert len(starts) == 2
    assert {e["worker"] for e in starts} == {lost[0]["worker"]}


def test_slowdown_applies_and_restores_unit_rate():
    plan = FaultPlan((
        ResourceSlowdown(at=1.0, worker=0, resource="cpu", factor=0.25, duration=4.0),
        ResourceSlowdown(at=1.0, worker=1, resource="network", factor=0.5, duration=4.0),
        ResourceSlowdown(at=1.0, worker=2, resource="disk", factor=0.5, duration=4.0),
    ))
    system, _ = run_system(plan)
    assert system.all_done
    assert system.fault_controller.stats.slowdowns == 3
    cluster = system.cluster
    spec = SCALE.cluster.machine
    assert cluster.machine(0).cpu.unit_rate == pytest.approx(spec.core_rate_mbps)
    assert cluster.machine(2).disk.unit_rate == pytest.approx(spec.disk_mbps)
    assert cluster.network._rx[1].unit_rate == pytest.approx(
        cluster.network.downlink_mbps
    )


def test_faulted_trace_covers_every_event_kind():
    plan = FaultPlan((
        WorkerCrash(at=2.0, worker=1),
        WorkerBlackout(at=3.0, worker=2, duration=2.0),
        GrantTimeout(at=1.5, worker=0),
    ))
    system, rec = run_system(plan, record=True)
    assert system.all_terminal
    kinds = {e["kind"] for e in rec.events}
    assert kinds == ev.ALL_KINDS
    for e in rec.events:
        if e["kind"] == ev.MT_LOST:
            assert e["reason"] in {"crash", "blackout", "lineage", "timeout",
                                   "job_failed"}
        if e["kind"] == ev.WORKER_DOWN:
            assert e["cause"] in {"crash", "blackout"}


def test_crashed_worker_rates_reseed_on_rejoin():
    system, _ = run_system(
        FaultPlan((WorkerBlackout(at=2.0, worker=1, duration=20.0),))
    )
    # the blackout outlives most of the run: after rejoin the monitors were
    # re-seeded from nominal rates, not stale pre-crash samples
    wk = system.workers[1]
    spec = SCALE.cluster.machine
    assert wk.alive
    nominal = spec.core_rate_mbps * spec.cores
    assert wk.processing_rate(ResourceType.CPU) > 0.0
    assert wk.processing_rate(ResourceType.CPU) <= nominal * 1.5
