# test package
