"""Tests for the experiment harness (heavy runs live in benchmarks/)."""

import pytest

from repro.experiments import SCALES, Scale, build_system, run_experiment
from repro.experiments.registry import EXPERIMENTS
from repro.cluster import Cluster, ClusterSpec
from repro.workloads import tpch_workload


def test_registry_covers_every_paper_artifact():
    expected = {
        "table1+fig1", "table2", "table3", "table4", "table5", "table6",
        "fig4+fig5", "fig6", "fig7+sec5.2", "fig8", "fig9", "fig10",
        "fig_faults", "fig_service",
    }
    assert set(EXPERIMENTS) == expected
    for fn in EXPERIMENTS.values():
        assert callable(fn)


def test_scale_with_network_override():
    sc = SCALES["tiny"].with_network(1.0)
    assert sc.cluster.machine.net_gbps == 1.0
    assert SCALES["tiny"].cluster.machine.net_gbps == 10.0  # frozen original


def test_run_experiment_micro():
    """A micro experiment end-to-end through the harness machinery."""
    sc = Scale(
        "micro", workload_scale=0.005, n_jobs=3, arrival_interval=0.5,
        max_parallelism=32, partition_mb=8.0,
        cluster=ClusterSpec(num_machines=2, machine=ClusterSpec.paper_cluster().machine),
    )

    def wl(scale):
        return tpch_workload(
            n_jobs=scale.n_jobs, scale=scale.workload_scale,
            arrival_interval=scale.arrival_interval,
            max_parallelism=scale.max_parallelism,
            partition_mb=scale.partition_mb,
        )

    results = run_experiment(["ursa-ejf", "y+s"], wl, sc)
    assert set(results) == {"ursa-ejf", "y+s"}
    for res in results.values():
        assert res.metrics.makespan > 0
        assert res.cluster is res.system.cluster


def test_paper_reference_tables_present():
    from repro.experiments import table2_tpch, table3_tpcds, table4_mixed

    assert table2_tpch.PAPER_ROWS["ursa-ejf"]["makespan"] == 2803
    assert table3_tpcds.PAPER_ROWS["y+s"]["UE_cpu"] == 48.56
    assert table4_mixed.PAPER_ROWS["tetris"]["SE_cpu"] == 70.02


def test_build_system_oversubscription_passthrough():
    cluster = Cluster(ClusterSpec.small())
    system = build_system("y+s", cluster, subscription_ratio=2.0)
    assert system.yarn_config.cpu_subscription_ratio == 2.0
