"""Tests for Algorithm 1 (UrsaPlacement) scoring and planning rules."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.execution import Job, JobManager
from repro.scheduler import EarliestJobFirst, UrsaPlacement, Worker
from repro.scheduler.placement import ReadyStage, _WorkerView


class _NullBackend:
    def on_tasks_ready(self, jm, tasks):
        pass

    def enqueue_monotask(self, jm, mt):
        pass

    def on_job_complete(self, jm):
        pass


def build_jm(cluster, n_tasks=4, size=10.0, submit=0.0, job_id=0):
    g = OpGraph(f"p{job_id}")
    src = g.create_data(n_tasks)
    sizes = list(size) if isinstance(size, (list, tuple)) else [size] * n_tasks
    g.set_input(src, sizes)
    msg = g.create_data(n_tasks)
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(n_tasks))
    ser.to(sh, DepType.SYNC)
    job = Job(job_id, g, submit, requested_memory_mb=1024.0)
    jm = JobManager(cluster.sim, cluster, job, _NullBackend())
    jm.start()
    return jm


def ready_stages(jm):
    by_stage = {}
    for t in jm.ready_tasks:
        by_stage.setdefault(t.stage.stage_id, []).append(t)
    return [ReadyStage(jm, ts[0].stage, ts) for ts in by_stage.values()]


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.small(num_machines=4, cores=4, core_rate_mbps=10.0))


@pytest.fixture
def workers(cluster):
    return [Worker(cluster, i, EarliestJobFirst()) for i in range(cluster.num_machines)]


def test_idle_cluster_has_full_headroom(cluster, workers):
    view = _WorkerView(workers[0], 0, ept=0.3)
    assert all(d == pytest.approx(1.0) for d in view.d)
    assert view.d_mem == pytest.approx(1.0)


def test_all_ready_tasks_placed_on_idle_cluster(cluster, workers):
    jm = build_jm(cluster, n_tasks=4)
    placement = UrsaPlacement(ept=0.3)
    assignments = placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    assert len(assignments) == 4
    assert {a.task.task_id for a in assignments} == {t.task_id for t in jm.job.plan.tasks[:4]}


def test_placement_balances_load_across_workers(cluster, workers):
    """Equal small tasks on an idle cluster spread over all machines."""
    jm = build_jm(cluster, n_tasks=8, size=4.0)
    placement = UrsaPlacement(ept=0.3)
    assignments = placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    per_worker = {}
    for a in assignments:
        per_worker[a.worker] = per_worker.get(a.worker, 0) + 1
    assert len(per_worker) == 4
    assert set(per_worker.values()) == {2}


def test_placement_round_limits_big_tasks_per_worker(cluster, workers):
    """Tasks whose Inc exceeds a round's headroom land one-per-worker: the
    D_r=0 blocking rule keeps a round from overloading a machine."""
    jm = build_jm(cluster, n_tasks=8, size=100.0)
    placement = UrsaPlacement(ept=0.3)
    assignments = placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    assert len(assignments) == 4  # one per worker; the rest wait a round
    assert {a.worker for a in assignments} == {0, 1, 2, 3}


def test_memory_infeasible_worker_is_skipped(cluster, workers):
    jm = build_jm(cluster, n_tasks=2, size=10.0)
    # exhaust memory on machines 0-2
    for i in range(3):
        cluster.machine(i).reserve_memory(cluster.machine(i).memory.available)
    placement = UrsaPlacement(ept=0.3)
    assignments = placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    assert assignments
    assert all(a.worker == 3 for a in assignments)


def test_no_feasible_worker_returns_empty(cluster, workers):
    jm = build_jm(cluster, n_tasks=2, size=10.0)
    for i in range(4):
        cluster.machine(i).reserve_memory(cluster.machine(i).memory.available)
    placement = UrsaPlacement(ept=0.3)
    assert placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst()) == []


def test_blocking_rule_zero_headroom(cluster, workers):
    """A worker with zero CPU headroom must not receive CPU-using tasks."""
    from repro.scheduler.placement import _task_usage

    jm = build_jm(cluster, n_tasks=1, size=10.0)
    placement = UrsaPlacement(ept=0.3)
    view = _WorkerView(workers[0], 0, ept=0.3)
    view.d[0] = 0.0  # CPU headroom
    task = next(iter(jm.ready_tasks))
    assert task.est_cpu_mb > 0
    assert placement._score(task, _task_usage(task, False), view) is None


def test_inc_capped_by_headroom(cluster, workers):
    """Huge tasks cannot overflow the score beyond D_r^2 per resource."""
    from repro.scheduler.placement import _task_usage

    jm = build_jm(cluster, n_tasks=1, size=1e6)
    placement = UrsaPlacement(ept=0.3)
    view = _WorkerView(workers[0], 0, ept=0.3)
    task = next(iter(jm.ready_tasks))
    f = placement._score(task, _task_usage(task, False), view)
    assert f is not None
    assert f <= 4.0 + 1e-9  # at most sum of D_r * D_r <= 4


def test_locality_constraint_restricts_candidates(cluster, workers):
    jm = build_jm(cluster, n_tasks=2, size=10.0)
    for t in jm.ready_tasks:
        t.locality = 2
    placement = UrsaPlacement(ept=0.3)
    assignments = placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    assert assignments and all(a.worker == 2 for a in assignments)


def test_fully_placeable_stage_beats_partial(cluster, workers):
    """Stage bonus: a stage that fits entirely is placed before a bigger
    stage that can only partially fit."""
    # tiny job (stage fits) vs wide job (stage bigger than free memory slots)
    small = build_jm(cluster, n_tasks=2, size=10.0, job_id=0, submit=5.0)
    wide = build_jm(cluster, n_tasks=64, size=10.0, job_id=1, submit=0.0)
    for t in wide.ready_tasks:
        t.est_mem_mb = cluster.machine(0).memory.capacity / 4  # 16 fit max
    placement = UrsaPlacement(ept=0.3)
    stages = ready_stages(wide) + ready_stages(small)
    assignments = placement.place(stages, workers, 10.0, EarliestJobFirst())
    order = [a.jm.job.job_id for a in assignments]
    # the fully-placeable small stage was scheduled first despite EJF bonus
    assert order[0] == 0 and order[1] == 0


def test_ejf_bonus_orders_equal_stages(cluster, workers):
    early = build_jm(cluster, n_tasks=2, size=10.0, job_id=0, submit=0.0)
    late = build_jm(cluster, n_tasks=2, size=10.0, job_id=1, submit=50.0)
    placement = UrsaPlacement(ept=0.3)
    stages = ready_stages(late) + ready_stages(early)
    assignments = placement.place(stages, workers, 100.0, EarliestJobFirst(weight=0.1))
    order = [a.jm.job.job_id for a in assignments]
    assert order[:2] == [0, 0]


def test_non_stage_aware_places_tasks_individually(cluster, workers):
    jm = build_jm(cluster, n_tasks=4)
    placement = UrsaPlacement(ept=0.3, stage_aware=False)
    assignments = placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    assert len(assignments) == 4


def test_ignore_network_flag_zeroes_network_usage(cluster, workers):
    from repro.scheduler.placement import _task_usage

    jm = build_jm(cluster, n_tasks=1)
    task = next(iter(jm.ready_tasks))
    task.est_net_mb = 50.0
    usage = _task_usage(task, True)
    assert usage[1] == 0.0
    assert _task_usage(task, False)[1] == 50.0


def test_invalid_ept_rejected():
    with pytest.raises(ValueError):
        UrsaPlacement(ept=0.0)


# ----------------------------------------------------------------------
# Regression: the lazy-heap fast path must reproduce the brute-force
# rescore-all-stages reference decision-for-decision.
# ----------------------------------------------------------------------
def _randomized_setup(seed, n_jobs=4, machines=4):
    """Build jobs with random continuous task sizes on randomly pre-loaded
    workers.  Continuous sizes keep scores tie-free, so any divergence in
    heap bookkeeping shows up as a different assignment sequence."""
    import random

    rng = random.Random(seed)
    cluster = Cluster(ClusterSpec.small(num_machines=machines, cores=4, core_rate_mbps=10.0))
    workers = [Worker(cluster, i, EarliestJobFirst()) for i in range(machines)]
    for w in workers:
        for r in (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK):
            w.assigned_work[r] = rng.uniform(0.0, 8.0)
            w.rates[r].record(rng.uniform(5.0, 40.0), rng.uniform(0.5, 3.0))
        w.running[ResourceType.CPU] = rng.randrange(0, w.machine.spec.cores + 1)
        w.machine.reserve_memory(rng.uniform(0.0, 0.5) * w.machine.memory.capacity)
    stages = []
    for j in range(n_jobs):
        n_tasks = rng.randrange(2, 9)
        sizes = [rng.uniform(1.0, 60.0) for _ in range(n_tasks)]
        jm = build_jm(cluster, n_tasks=n_tasks, size=sizes, job_id=j,
                      submit=rng.uniform(0.0, 20.0))
        stages.extend(ready_stages(jm))
    return workers, stages


@pytest.mark.parametrize("stage_aware", [True, False])
@pytest.mark.parametrize("seed", range(8))
def test_lazy_heap_matches_bruteforce_reference(seed, stage_aware):
    from repro.scheduler import ReferenceUrsaPlacement

    def run(cls):
        # rebuild the full state from the seed so each implementation sees
        # an identical, unshared cluster/worker/ready-set snapshot
        workers, stages = _randomized_setup(seed)
        placement = cls(ept=0.3, stage_aware=stage_aware)
        out = placement.place(stages, workers, 25.0, EarliestJobFirst(weight=0.1))
        return [(a.jm.job.job_id, a.task.task_id, a.worker) for a in out]

    assert run(UrsaPlacement) == run(ReferenceUrsaPlacement)
