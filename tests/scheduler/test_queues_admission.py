"""Tests for monotask queues and admission control."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.execution import Job, JobManager
from repro.scheduler import AdmissionController, EarliestJobFirst, MonotaskQueue
from repro.scheduler.queues import QueueEntry


class _NullBackend:
    def on_tasks_ready(self, jm, tasks):
        pass

    def enqueue_monotask(self, jm, mt):
        pass

    def on_job_complete(self, jm):
        pass


def make_jm(cluster, job_id=0, submit=0.0, sizes=(10.0, 20.0, 30.0)):
    g = OpGraph(f"j{job_id}")
    src = g.create_data(len(sizes))
    g.set_input(src, list(sizes))
    msg = g.create_data(len(sizes))
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(len(sizes)))
    ser.to(sh, DepType.SYNC)
    job = Job(job_id, g, submit, requested_memory_mb=1024.0)
    jm = JobManager(cluster.sim, cluster, job, _NullBackend())
    jm.start()
    return jm


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))


def _cpu_monotasks(jm):
    return [m for m in jm.job.plan.monotasks if m.rtype is ResourceType.CPU]


def _net_monotasks(jm):
    return [m for m in jm.job.plan.monotasks if m.rtype is ResourceType.NETWORK]


def test_cpu_queue_orders_larger_first(cluster):
    jm = make_jm(cluster)
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    for mt in _cpu_monotasks(jm):
        q.push(policy, 0.0, jm, mt)
    sizes = [q.pop().mt.input_size_mb for _ in range(len(q))]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes == [30.0, 20.0, 10.0]


def test_network_queue_orders_smaller_first(cluster):
    jm = make_jm(cluster)
    # force-resolve network monotasks by finishing stage 1 sizes manually:
    # network input sizes resolve only when their task is ready, so emulate
    # with the CPU sizes instead via a fresh queue of CPU mts keyed as net.
    q = MonotaskQueue(ResourceType.NETWORK)
    policy = EarliestJobFirst()
    for mt in _cpu_monotasks(jm):
        q.push(policy, 0.0, jm, mt)
    sizes = [q.pop().mt.input_size_mb for _ in range(len(q))]
    assert sizes == sorted(sizes)


def test_queue_orders_across_jobs_by_policy(cluster):
    early = make_jm(cluster, job_id=0, submit=0.0, sizes=(5.0,))
    late = make_jm(cluster, job_id=1, submit=10.0, sizes=(500.0,))
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    q.push(policy, 10.0, late, _cpu_monotasks(late)[0])
    q.push(policy, 10.0, early, _cpu_monotasks(early)[0])
    # the early job's (small!) monotask still pops first
    assert q.pop().jm is early
    assert q.pop().jm is late


def test_queue_resort_updates_keys(cluster):
    jm_a = make_jm(cluster, job_id=0, submit=0.0, sizes=(5.0,))
    jm_b = make_jm(cluster, job_id=1, submit=1.0, sizes=(5.0,))
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    q.push(policy, 1.0, jm_a, _cpu_monotasks(jm_a)[0])
    q.push(policy, 1.0, jm_b, _cpu_monotasks(jm_b)[0])

    # swap priorities by rewriting submit times, then resort
    jm_a.job.submit_time, jm_b.job.submit_time = 5.0, 0.0
    q.resort(policy, 6.0)
    assert q.pop().jm is jm_b


def test_queue_pop_empty_returns_none():
    q = MonotaskQueue(ResourceType.CPU)
    assert q.pop() is None
    assert q.peek() is None
    assert q.queued_work_mb() == 0.0


def test_queue_iter_yields_policy_order_not_heap_order(cluster):
    """__iter__ must yield entries in the order pop() would drain them.

    A binary heap's backing array only guarantees its first element is the
    minimum, so iterating the raw array is *not* policy order — the fixture
    below is chosen so the two orders genuinely differ."""
    jm = make_jm(cluster, sizes=(10.0, 40.0, 20.0, 50.0, 30.0, 60.0, 5.0))
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    for mt in _cpu_monotasks(jm):
        q.push(policy, 0.0, jm, mt)

    iterated = [e.mt.input_size_mb for e in q]
    assert len(q) == 7  # iteration must not consume the queue
    raw_heap = [e.mt.input_size_mb for e in q._heap]
    popped = [q.pop().mt.input_size_mb for _ in range(len(q))]

    assert iterated == popped == [60.0, 50.0, 40.0, 30.0, 20.0, 10.0, 5.0]
    # the guard that this fixture actually exercises the bug: the raw heap
    # array is out of policy order for this push sequence
    assert raw_heap != popped


def test_queue_entry_lt_tie_breaks_by_seq(cluster):
    jm = make_jm(cluster, sizes=(5.0, 5.0, 5.0))
    mts = _cpu_monotasks(jm)
    a = QueueEntry((0.0, -5.0), 0, jm, mts[0])
    b = QueueEntry((0.0, -5.0), 1, jm, mts[1])
    assert a < b and not (b < a)


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
def _job(job_id, submit, mem):
    g = OpGraph(f"a{job_id}")
    src = g.create_data(1)
    g.set_input(src, [1.0])
    g.create_op(ResourceType.CPU).read(src).create(g.create_data(1))
    return Job(job_id, g, submit, requested_memory_mb=mem)


def test_admission_within_capacity():
    ac = AdmissionController(1000.0, EarliestJobFirst())
    ac.submit(_job(0, 0.0, 400.0), 0.0)
    ac.submit(_job(1, 1.0, 400.0), 1.0)
    admitted = ac.admit_ready(1.0)
    assert [j.job_id for j in admitted] == [0, 1]
    assert ac.reserved_mb == 800.0
    assert ac.queue_length == 0


def test_admission_queues_when_memory_insufficient():
    ac = AdmissionController(1000.0, EarliestJobFirst())
    ac.submit(_job(0, 0.0, 800.0), 0.0)
    ac.submit(_job(1, 1.0, 800.0), 1.0)
    admitted = ac.admit_ready(1.0)
    assert [j.job_id for j in admitted] == [0]
    assert ac.queue_length == 1


def test_admission_releases_memory_on_completion():
    ac = AdmissionController(1000.0, EarliestJobFirst())
    j0 = _job(0, 0.0, 800.0)
    ac.submit(j0, 0.0)
    ac.submit(_job(1, 1.0, 800.0), 1.0)
    ac.admit_ready(1.0)
    ac.release(j0)
    admitted = ac.admit_ready(2.0)
    assert [j.job_id for j in admitted] == [1]


def test_admission_small_job_bypasses_blocked_head():
    ac = AdmissionController(1000.0, EarliestJobFirst())
    ac.submit(_job(0, 0.0, 900.0), 0.0)
    ac.admit_ready(0.0)
    ac.submit(_job(1, 1.0, 950.0), 1.0)  # blocked head
    ac.submit(_job(2, 2.0, 50.0), 2.0)   # fits alongside job 0
    admitted = ac.admit_ready(2.0)
    assert [j.job_id for j in admitted] == [2]


def test_admission_starvation_guard_blocks_bypass():
    ac = AdmissionController(1000.0, EarliestJobFirst(), starvation_timeout=10.0)
    ac.submit(_job(0, 0.0, 900.0), 0.0)
    ac.admit_ready(0.0)
    ac.submit(_job(1, 1.0, 950.0), 1.0)
    ac.submit(_job(2, 2.0, 50.0), 2.0)
    # long after the timeout, the small job may no longer jump the queue
    admitted = ac.admit_ready(100.0)
    assert admitted == []


def test_admission_rejects_job_larger_than_cluster():
    ac = AdmissionController(1000.0, EarliestJobFirst())
    with pytest.raises(ValueError):
        ac.submit(_job(0, 0.0, 2000.0), 0.0)


def test_admission_invalid_capacity():
    with pytest.raises(ValueError):
        AdmissionController(0.0, EarliestJobFirst())


def test_queued_work_mb_incremental_tracks_contents(cluster):
    """queued_work_mb is maintained on push/pop and agrees with a scan."""
    jm = make_jm(cluster, sizes=(10.0, 20.0, 30.0))
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    mts = _cpu_monotasks(jm)
    total = 0.0
    for mt in mts:
        q.push(policy, 0.0, jm, mt)
        total += mt.input_size_mb
        assert q.queued_work_mb() == pytest.approx(total)
        assert q.queued_work_mb() == pytest.approx(
            sum(e.mt.input_size_mb for e in q)
        )
    while len(q):
        q.pop()
        assert q.queued_work_mb() == pytest.approx(
            sum(e.mt.input_size_mb for e in q)
        )
    # the total pins back to exactly 0.0 when the queue drains
    assert q.queued_work_mb() == 0.0


def test_repr_shows_policy_order_not_heap_order(cluster):
    """Satellite-5 regression: repr/str must list entries in the order pop()
    would drain them.  The sizes below leave the raw heap array out of policy
    order, so a repr built from ``self._heap`` directly would fail this."""
    jm = make_jm(cluster, sizes=(10.0, 40.0, 20.0, 50.0, 30.0, 60.0, 5.0))
    q = MonotaskQueue(ResourceType.CPU, owner=3)
    policy = EarliestJobFirst()
    for mt in _cpu_monotasks(jm):
        q.push(policy, 0.0, jm, mt)
    assert [e.mt.input_size_mb for e in q._heap] != [
        e.mt.input_size_mb for e in sorted(q._heap)
    ]

    text = repr(q)
    assert text == str(q)
    assert text.startswith("MonotaskQueue(cpu@w3, 7 queued: [")
    shown = [part.split("(")[0] for part in text.split("[")[1].rstrip("])").split(", ")]
    popped = [f"mt{q.pop().mt.mt_id}" for _ in range(len(q))]
    assert shown == popped


def test_repr_of_anonymous_empty_queue():
    q = MonotaskQueue(ResourceType.DISK)
    assert repr(q) == "MonotaskQueue(disk, 0 queued: [])"


def test_evict_returns_policy_order_and_keeps_survivors(cluster):
    jm = make_jm(cluster, sizes=(10.0, 40.0, 20.0, 50.0, 30.0, 60.0, 5.0))
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    for mt in _cpu_monotasks(jm):
        q.push(policy, 0.0, jm, mt)

    evicted = q.evict(lambda e: e.mt.input_size_mb >= 30.0)
    assert [e.mt.input_size_mb for e in evicted] == [60.0, 50.0, 40.0, 30.0]
    assert q.queued_work_mb() == pytest.approx(35.0)
    assert [q.pop().mt.input_size_mb for _ in range(len(q))] == [20.0, 10.0, 5.0]
    # eviction on an empty / non-matching queue is a no-op
    assert q.evict(lambda e: True) == []


def test_dead_worker_drains_its_queued_monotasks(cluster):
    """Satellite-5 regression: crashing a worker must evict every queued
    monotask (so a later rebuilt placement cannot double-run them) and zero
    the load metrics that feed APT_r(w)."""
    from repro.dataflow.monotask import MonotaskState
    from repro.scheduler.worker import Worker

    jm = make_jm(cluster, sizes=(10.0, 20.0, 30.0))
    wk = Worker(cluster, 0, EarliestJobFirst())
    # saturate the grant slots so enqueue() queues instead of running
    wk.running = {r: wk._limit(r) for r in wk.running}
    for mt in _cpu_monotasks(jm):
        wk.enqueue(jm, mt)
        assert mt.state is MonotaskState.QUEUED
    assert wk.queued_monotasks == 3

    wk.fault_crash()
    assert not wk.alive
    assert wk.queued_monotasks == 0
    for q in wk.queues.values():
        assert q.queued_work_mb() == 0.0
    assert all(v == 0 for v in wk.running.values())
    assert all(v == 0.0 for v in wk.assigned_work.values())


def test_queued_work_mb_zero_after_refill_and_drain(cluster):
    jm = make_jm(cluster, sizes=(0.1, 0.2, 0.7))
    q = MonotaskQueue(ResourceType.CPU)
    policy = EarliestJobFirst()
    for _round in range(3):
        for mt in _cpu_monotasks(jm):
            q.push(policy, 0.0, jm, mt)
        while q.pop() is not None:
            pass
        assert q.queued_work_mb() == 0.0
