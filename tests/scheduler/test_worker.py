"""Tests for worker agents: concurrency control, rates, APT."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.execution import Job, JobManager
from repro.scheduler import EarliestJobFirst, Worker, WorkerConfig


class _RecordingBackend:
    def __init__(self):
        self.ready = []

    def on_tasks_ready(self, jm, tasks):
        self.ready.extend(tasks)

    def enqueue_monotask(self, jm, mt):
        # route everything through the single worker under test
        jm._test_worker.enqueue(jm, mt)

    def on_job_complete(self, jm):
        pass


def single_worker_setup(cores=2, n_tasks=4, size=10.0, net_concurrency=2):
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=cores, core_rate_mbps=10.0))
    worker = Worker(cluster, 0, EarliestJobFirst(), WorkerConfig(network_concurrency=net_concurrency))
    g = OpGraph("w")
    src = g.create_data(n_tasks)
    g.set_input(src, [size] * n_tasks)
    msg = g.create_data(n_tasks)
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(n_tasks))
    ser.to(sh, DepType.SYNC)
    backend = _RecordingBackend()
    job = Job(0, g, 0.0, requested_memory_mb=1024.0)
    jm = JobManager(cluster.sim, cluster, job, backend)
    jm._test_worker = worker
    jm.start()
    return cluster, worker, jm, backend


def place_all(jm, worker):
    for task in list(jm.ready_tasks):
        worker.add_assigned_task(task)
        jm.place_task(task, worker.index)


def test_cpu_concurrency_limited_to_cores():
    cluster, worker, jm, backend = single_worker_setup(cores=2, n_tasks=6)
    place_all(jm, worker)
    # only 2 of the 6 CPU monotasks run at once
    assert worker.running[ResourceType.CPU] == 2
    assert len(worker.queues[ResourceType.CPU]) == 4
    cluster.sim.drain()
    assert worker.running[ResourceType.CPU] == 0
    # with 2-at-a-time, 6 tasks of 1 s take 3 s
    cpu_mts = [m for m in jm.job.plan.monotasks if m.rtype is ResourceType.CPU]
    assert max(m.finished_at for m in cpu_mts) == pytest.approx(3.0)


def test_machine_cpu_pool_never_oversubscribed_by_ursa():
    cluster, worker, jm, backend = single_worker_setup(cores=2, n_tasks=8)
    place_all(jm, worker)
    machine = cluster.machine(0)
    max_seen = 0
    sim = cluster.sim
    while sim.step():
        max_seen = max(max_seen, machine.cpu.active_count)
    assert max_seen <= 2


def test_network_concurrency_limit():
    cluster, worker, jm, backend = single_worker_setup(n_tasks=6, net_concurrency=2)
    place_all(jm, worker)
    cluster.sim.drain()
    # second stage tasks became ready; place them on the same worker
    place_all(jm, worker)
    assert worker.running[ResourceType.NETWORK] <= 2
    cluster.sim.drain()
    net_mts = [m for m in jm.job.plan.monotasks if m.rtype is ResourceType.NETWORK]
    assert all(m.finished_at is not None for m in net_mts)


def test_small_network_monotasks_bypass_queue():
    cluster, worker, jm, backend = single_worker_setup(
        n_tasks=6, size=0.00001, net_concurrency=1
    )
    place_all(jm, worker)
    cluster.sim.drain()
    place_all(jm, worker)
    # tiny transfers never enter the queue and never occupy a slot
    assert len(worker.queues[ResourceType.NETWORK]) == 0
    assert worker.running[ResourceType.NETWORK] == 0
    cluster.sim.drain()
    assert jm.job.done


def test_assigned_work_tracks_placement_and_completion():
    cluster, worker, jm, backend = single_worker_setup(n_tasks=4, size=10.0)
    assert worker.assigned_work[ResourceType.CPU] == 0.0
    place_all(jm, worker)
    assert worker.assigned_work[ResourceType.CPU] == pytest.approx(40.0)
    cluster.sim.drain()
    place_all(jm, worker)
    cluster.sim.drain()
    for r in worker.assigned_work.values():
        assert r == pytest.approx(0.0, abs=1e-6)


def test_apt_zero_when_cpu_idle():
    cluster, worker, jm, backend = single_worker_setup(cores=4, n_tasks=2)
    assert worker.apt(ResourceType.CPU) == 0.0
    place_all(jm, worker)
    # 2 running on 4 cores with assigned work backlogged: a CPU slot is
    # immediately available, so APT must still be exactly 0 (paper rule)
    assert worker.assigned_work[ResourceType.CPU] > 0.0
    assert worker.apt(ResourceType.CPU) == 0.0


def test_apt_positive_when_saturated():
    cluster, worker, jm, backend = single_worker_setup(cores=2, n_tasks=6, size=10.0)
    place_all(jm, worker)
    apt = worker.apt(ResourceType.CPU)
    # 60 MB assigned at 2 cores * 10 MB/s -> 3 s
    assert apt == pytest.approx(3.0, rel=0.05)


def test_processing_rate_learns_from_slow_tasks():
    """A worker whose CPU monotasks take 3x longer than their size suggests
    (cpu_work_factor) reports a lower measured rate."""
    cluster = Cluster(ClusterSpec.small(num_machines=1, cores=2, core_rate_mbps=10.0))
    worker = Worker(cluster, 0, EarliestJobFirst())
    g = OpGraph("slow")
    src = g.create_data(4)
    g.set_input(src, [10.0] * 4)
    op = g.create_op(ResourceType.CPU, "c").read(src).create(g.create_data(4))
    op.set_cpu_work_factor(3.0)

    backend = _RecordingBackend()
    job = Job(0, g, 0.0, 1024.0)
    jm = JobManager(cluster.sim, cluster, job, backend)
    jm._test_worker = worker
    jm.start()
    nominal = worker.processing_rate(ResourceType.CPU)
    place_all(jm, worker)
    cluster.sim.drain()
    assert worker.processing_rate(ResourceType.CPU) < nominal * 0.7


def test_rate_monitor_window_eviction_matches_recompute():
    """The incremental _x/_t sums must stay consistent with a from-scratch
    recompute over the nominal pseudo-sample plus the kept window."""
    import random

    from repro.scheduler.worker import _RateMonitor

    rng = random.Random(42)
    window, nominal = 5, 10.0
    mon = _RateMonitor(nominal_rate=nominal, window=window)
    samples = []
    for _ in range(40):
        w, d = rng.uniform(0.5, 20.0), rng.uniform(0.01, 3.0)
        mon.record(w, d)
        samples.append((w, d))
        kept = samples[-window:]
        assert len(mon._samples) == len(kept)
        x = nominal + sum(s[0] for s in kept)
        t = 1.0 + sum(s[1] for s in kept)
        assert mon.rate == pytest.approx(x / t, rel=1e-9)


def test_rate_monitor_ignores_degenerate_samples():
    from repro.scheduler.worker import _RateMonitor

    mon = _RateMonitor(nominal_rate=10.0, window=4)
    before = mon.rate
    mon.record(0.0, 1.0)    # no work
    mon.record(5.0, 0.0)    # no duration
    mon.record(-1.0, 1.0)   # negative work
    assert mon.rate == before
    assert len(mon._samples) == 0


def test_worker_config_validation():
    with pytest.raises(ValueError):
        WorkerConfig(network_concurrency=0)
    with pytest.raises(ValueError):
        WorkerConfig(network_concurrency=17)
