# test package
