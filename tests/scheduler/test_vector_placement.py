"""Property tests pinning the vector placement engine to the scalar one.

The vector engine claims *bit*-identity, not approximate equality: every
F(t, w) it produces — through the profile-row python loop, the numpy
broadcast, and the single-pair ``score_one`` refresh — must equal the
scalar engine's float exactly, across resource mixes, the D_r = 0
blocking rule, Inc-capping, memory infeasibility, dead workers and
locality pins.  These tests enumerate randomized states and compare
engines decision-for-decision and float-for-float.
"""

import random

import pytest

from repro.scheduler import (
    EarliestJobFirst,
    ReferenceUrsaPlacement,
    UrsaPlacement,
    VectorUrsaPlacement,
)
from repro.scheduler.placement import _WorkerView, _task_usage
from repro.scheduler.vector import (
    PLACEMENT_MODES,
    _VectorState,
    get_default_mode,
    resolve_mode,
    set_default_mode,
)

from .test_placement import _randomized_setup, build_jm, ready_stages


def _collect_profiles(stages):
    """Distinct (usage, est_mem) profiles over every ready task."""
    profiles = []
    seen = set()
    for stage in stages:
        for task in stage.tasks:
            usage = _task_usage(task, False)
            key = (usage, task.est_mem_mb)
            if key not in seen:
                seen.add(key)
                profiles.append(key)
    return profiles


def _scalar_row(placement, views, stage, usage, mem):
    """Brute-force reference row: the inlined scalar scorer per worker."""
    task = stage.tasks[0]
    task_mem = task.est_mem_mb
    try:
        task.est_mem_mb = mem
        out = []
        for view in views:
            f = placement._score(task, usage, view)
            out.append(float("-inf") if f is None else f)
        return out
    finally:
        task.est_mem_mb = task_mem


@pytest.mark.parametrize("seed", range(12))
def test_score_row_matches_bruteforce_scalar_scorer(seed):
    """Vector rows == per-worker scalar F(t, w), float-for-float, on
    randomized worker states (mixed loads, blocking, mem pressure)."""
    workers, stages = _randomized_setup(seed, n_jobs=4, machines=6)
    rng = random.Random(seed)
    for w in rng.sample(workers, 2):
        w.alive = rng.random() < 0.5  # dead workers must score -inf
    placement = UrsaPlacement(ept=0.3)
    views = [_WorkerView(w, i, ept=0.3) for i, w in enumerate(workers)]
    state = _VectorState(workers, ept=0.3)
    for usage, mem in _collect_profiles(stages):
        expected = _scalar_row(placement, views, stages[0], usage, mem)
        got_python = state._row_python(usage, mem)
        got_numpy = state._row_broadcast(usage, mem)
        assert got_python == expected  # exact: same floats, same -inf slots
        assert got_numpy == expected
        for i in range(len(workers)):
            assert state.score_one(i, usage, mem) == expected[i]


def test_score_row_covers_blocking_capping_and_memory():
    """Directed edge cases: a zero-headroom resource blocks, a huge task's
    Inc is capped at D_r, and memory infeasibility wins over everything."""
    workers, stages = _randomized_setup(0, n_jobs=1, machines=4)
    state = _VectorState(workers, ept=0.3)
    usage = (10.0, 0.0, 0.0)

    state.d0[1] = 0.0  # blocking rule: needed resource with zero headroom
    if state._cols is not None:
        state._cols[1][1] = 0.0
    row = state._row_python(usage, 0.0)
    assert row[1] == float("-inf")
    assert state._row_broadcast(usage, 0.0) == row

    huge = (1e9, 1e9, 1e9)  # Inc-capping: F bounded by sum of D_r^2 (+ mem)
    for i, f in enumerate(state._row_python(huge, 0.0)):
        if f != float("-inf"):
            cap = state.d0[i] ** 2 + state.d1[i] ** 2 + state.d2[i] ** 2
            assert f <= cap + 1e-12
    assert state._row_broadcast(huge, 0.0) == state._row_python(huge, 0.0)

    too_big = max(state.mem_cap) * 2.0
    assert all(f == float("-inf") for f in state._row_python(usage, too_big))
    assert all(f == float("-inf") for f in state._row_broadcast(usage, too_big))


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("stage_aware", [True, False])
def test_vector_engine_matches_scalar_and_reference(seed, stage_aware):
    """Full placement rounds: scalar, vector (both dispatch paths) and the
    frozen brute-force reference must agree on every (task, worker, score)."""

    def run(make):
        workers, stages = _randomized_setup(seed, n_jobs=4, machines=4)
        rng = random.Random(seed * 31 + 7)
        for stage in stages:  # sprinkle locality pins over the ready set
            for task in stage.tasks:
                if rng.random() < 0.2:
                    task.locality = rng.randrange(len(workers))
        out = make().place(stages, workers, 25.0, EarliestJobFirst(weight=0.1))
        return [(a.jm.job.job_id, a.task.task_id, a.worker, a.score) for a in out]

    expected = run(lambda: UrsaPlacement(ept=0.3, stage_aware=stage_aware))
    assert run(lambda: VectorUrsaPlacement(ept=0.3, stage_aware=stage_aware)) == expected
    assert run(  # broadcast_min_workers=2 forces the numpy path at W=4
        lambda: VectorUrsaPlacement(
            ept=0.3, stage_aware=stage_aware, broadcast_min_workers=2)
    ) == expected
    assert run(lambda: ReferenceUrsaPlacement(ept=0.3, stage_aware=stage_aware)) == expected


def test_commit_restore_roundtrip_patches_numpy_mirror():
    workers, _ = _randomized_setup(3, n_jobs=1, machines=4)
    state = _VectorState(workers, ept=0.3)
    state._columns()  # materialize the numpy mirror so patches must hit it
    before = (list(state.d0), list(state.d1), list(state.d2), list(state.mem_avail))
    before_row = state._row_broadcast((3.0, 2.0, 1.0), 64.0)

    touched = {}
    state.commit(2, (3.0, 2.0, 1.0), 64.0, touched)
    state.commit(2, (1.0, 0.0, 0.5), 32.0, touched)  # second commit, one snapshot
    assert list(touched) == [2]
    changed = state._row_broadcast((3.0, 2.0, 1.0), 64.0)
    assert changed[2] != before_row[2] or changed[2] == float("-inf")

    state.restore(2, touched[2])
    assert (list(state.d0), list(state.d1), list(state.d2),
            list(state.mem_avail)) == before
    assert state._row_broadcast((3.0, 2.0, 1.0), 64.0) == before_row


def test_mode_resolution_and_validation():
    assert set(PLACEMENT_MODES) == {"scalar", "vector"}
    assert resolve_mode("vector") == "vector"
    assert resolve_mode(None) == get_default_mode()
    with pytest.raises(ValueError):
        resolve_mode("simd")
    prev = get_default_mode()
    try:
        set_default_mode("vector")
        assert resolve_mode(None) == "vector"
        with pytest.raises(ValueError):
            set_default_mode("nope")
        assert get_default_mode() == "vector"  # failed set leaves it alone
    finally:
        set_default_mode(prev)
    with pytest.raises(ValueError):
        VectorUrsaPlacement(broadcast_min_workers=1)


def test_ursa_config_selects_vector_engine():
    from repro.cluster import Cluster, ClusterSpec
    from repro.scheduler import UrsaConfig, UrsaSystem

    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    system = UrsaSystem(cluster, UrsaConfig(placement_mode="vector"))
    assert isinstance(system.placement, VectorUrsaPlacement)
    scalar = UrsaSystem(Cluster(ClusterSpec.small(
        num_machines=2, cores=4, core_rate_mbps=10.0)), UrsaConfig())
    assert not isinstance(scalar.placement, VectorUrsaPlacement)
    with pytest.raises(ValueError):
        UrsaSystem(Cluster(ClusterSpec.small(
            num_machines=2, cores=4, core_rate_mbps=10.0)),
            UrsaConfig(placement_mode="simd"))


def test_vector_profiler_counters_populate():
    """A profiled vector run reports its stages/rows/fallback activity."""
    from repro.cluster import Cluster, ClusterSpec
    from repro.perf import profile as tick_profile

    prof = tick_profile.enable()
    try:
        cluster = Cluster(ClusterSpec.small(num_machines=4, cores=4, core_rate_mbps=10.0))
        from repro.scheduler import Worker

        workers = [Worker(cluster, i, EarliestJobFirst()) for i in range(4)]
        jm = build_jm(cluster, n_tasks=6, size=10.0)
        for task in list(jm.ready_tasks)[:2]:
            task.locality = 1
        placement = VectorUrsaPlacement(ept=0.3)
        placement.place(ready_stages(jm), workers, 0.0, EarliestJobFirst())
    finally:
        tick_profile.disable()
    assert prof.vector_stages > 0
    assert prof.vector_rows > 0
    assert prof.vector_fallbacks >= 2  # the two locality-pinned tasks
    d = prof.as_dict()
    assert {"vector_stages", "vector_rows", "vector_fallbacks",
            "vector_rebuilds"} <= set(d)
