"""Tests for EJF / SRJF job-ordering policies."""

import pytest

from repro.dataflow import DepType, OpGraph, ResourceType
from repro.execution import Job
from repro.scheduler import EarliestJobFirst, SmallestRemainingJobFirst


def make_job(job_id, submit_time, input_mb=100.0, partitions=2):
    g = OpGraph(f"job{job_id}")
    src = g.create_data(partitions)
    g.set_input(src, [input_mb / partitions] * partitions)
    msg = g.create_data(partitions)
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(partitions))
    ser.to(sh, DepType.SYNC)
    return Job(job_id, g, submit_time, requested_memory_mb=1024.0)


def test_ejf_ranks_by_submit_time():
    p = EarliestJobFirst()
    a = make_job(0, submit_time=5.0)
    b = make_job(1, submit_time=2.0)
    assert p.job_rank(b, 10.0) < p.job_rank(a, 10.0)


def test_ejf_bonus_grows_linearly_with_age():
    p = EarliestJobFirst(weight=0.1)
    a = make_job(0, submit_time=0.0)
    assert p.placement_bonus(a, 10.0) == pytest.approx(1.0)
    assert p.placement_bonus(a, 20.0) == pytest.approx(2.0)
    assert p.placement_bonus(a, 0.0) == 0.0


def test_srjf_prefers_smaller_remaining_job():
    p = SmallestRemainingJobFirst()
    small = make_job(0, 0.0, input_mb=10.0)
    big = make_job(1, 0.0, input_mb=1000.0)
    p.refresh([small, big], now=0.0)
    assert p.job_rank(small, 0.0) < p.job_rank(big, 0.0)
    assert p.placement_bonus(small, 0.0) > p.placement_bonus(big, 0.0)


def test_srjf_rank_drops_as_work_drains():
    p = SmallestRemainingJobFirst()
    a = make_job(0, 0.0, input_mb=100.0)
    b = make_job(1, 0.0, input_mb=100.0)
    p.refresh([a, b], now=0.0)
    rank_before = p.job_rank(a, 0.0)
    a.decrement_remaining(ResourceType.CPU, 90.0)
    a.decrement_remaining(ResourceType.NETWORK, 90.0)
    assert p.job_rank(a, 0.0) < rank_before
    assert p.job_rank(a, 0.0) < p.job_rank(b, 0.0)


def test_srjf_weights_contended_resource():
    """A job whose remaining work sits on the loaded resource ranks worse."""
    p = SmallestRemainingJobFirst()
    cpu_heavy = make_job(0, 0.0, input_mb=100.0)
    net_heavy = make_job(1, 0.0, input_mb=100.0)
    # distort remaining-work vectors manually
    cpu_heavy.remaining_work = {
        ResourceType.CPU: 100.0,
        ResourceType.NETWORK: 0.0,
        ResourceType.DISK: 0.0,
    }
    net_heavy.remaining_work = {
        ResourceType.CPU: 0.0,
        ResourceType.NETWORK: 10.0,
        ResourceType.DISK: 0.0,
    }
    p.refresh([cpu_heavy, net_heavy], now=0.0)
    assert p.job_rank(net_heavy, 0.0) < p.job_rank(cpu_heavy, 0.0)


def test_srjf_bonus_capped():
    p = SmallestRemainingJobFirst(weight=1.0, bonus_cap=10.0)
    nearly_done = make_job(0, 0.0, input_mb=100.0)
    other = make_job(1, 0.0, input_mb=100.0)
    for r in (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK):
        nearly_done.remaining_work[r] = 1e-12
    p.refresh([nearly_done, other], now=0.0)
    assert p.placement_bonus(nearly_done, 0.0) == pytest.approx(10.0)


def test_srjf_no_load_no_bonus():
    p = SmallestRemainingJobFirst()
    p.refresh([], now=0.0)
    job = make_job(0, 0.0)
    assert p.placement_bonus(job, 0.0) == 0.0
