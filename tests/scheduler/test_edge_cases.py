"""Edge-case tests across the scheduling layer."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.execution import JobState
from repro.scheduler import UrsaConfig, UrsaSystem


def cpu_only_job(name="cpu", p=2, size=10.0):
    g = OpGraph(name)
    src = g.create_data(p)
    g.set_input(src, [size] * p)
    g.create_op(ResourceType.CPU, "c").read(src).create(g.create_data(p))
    return g


def small_cluster(**kw):
    return Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0, **kw))


def test_empty_graph_job_completes_immediately():
    ursa = UrsaSystem(small_cluster())
    g = OpGraph("empty")
    src = g.create_data(2)
    g.set_input(src, [1.0, 1.0])
    job = ursa.submit(g, 64.0)
    ursa.run(max_events=10_000)
    assert job.state is JobState.DONE
    assert job.jct is not None and job.jct < 1.0


def test_single_partition_single_op_job():
    ursa = UrsaSystem(small_cluster())
    job = ursa.submit(cpu_only_job(p=1), 64.0)
    ursa.run(max_events=50_000)
    assert job.done


def test_zero_size_input_job():
    ursa = UrsaSystem(small_cluster())
    g = OpGraph("zero")
    src = g.create_data(2)
    g.set_input(src, [0.0, 0.0])
    g.create_op(ResourceType.CPU, "c").read(src).create(g.create_data(2))
    job = ursa.submit(g, 64.0)
    ursa.run(max_events=50_000)
    assert job.done


def test_disk_only_pipeline():
    ursa = UrsaSystem(small_cluster())
    g = OpGraph("disk")
    src = g.create_data(2)
    g.set_input(src, [30.0, 30.0])
    loaded = g.create_data(2)
    rd = g.create_op(ResourceType.DISK, "rd").read(src).create(loaded)
    cpu = g.create_op(ResourceType.CPU, "c").read(loaded).create(g.create_data(2))
    wr = g.create_op(ResourceType.DISK, "wr").read(cpu.output).create(g.create_data(2))
    rd.to(cpu, DepType.ASYNC)
    cpu.to(wr, DepType.ASYNC)
    job = ursa.submit(g, 64.0)
    ursa.run(max_events=100_000)
    assert job.done
    # disk concurrency of 1 per machine serialized the reads/writes
    assert job.jct > 0


def test_many_tiny_jobs_drain():
    ursa = UrsaSystem(small_cluster())
    jobs = [ursa.submit(cpu_only_job(f"j{i}", p=1, size=0.5), 16.0, at=0.05 * i)
            for i in range(50)]
    ursa.run(max_events=2_000_000)
    assert all(j.done for j in jobs)


def test_wide_stage_wider_than_cluster():
    """A 64-task stage on 8 cores places over multiple rounds but finishes."""
    ursa = UrsaSystem(small_cluster())
    job = ursa.submit(cpu_only_job(p=64, size=5.0), 512.0)
    ursa.run(max_events=1_000_000)
    assert job.done
    workers = {t.worker for t in job.plan.tasks}
    assert workers == {0, 1}  # both machines used


def test_job_requesting_all_cluster_memory():
    cluster = small_cluster()
    ursa = UrsaSystem(cluster)
    job = ursa.submit(cpu_only_job(), cluster.total_memory_mb)
    ursa.run(max_events=100_000)
    assert job.done


def test_job_requesting_more_than_cluster_memory_rejected():
    cluster = small_cluster()
    ursa = UrsaSystem(cluster)
    with pytest.raises(ValueError):
        ursa.submit(cpu_only_job(), cluster.total_memory_mb * 2)


def test_srjf_with_single_job():
    ursa = UrsaSystem(small_cluster(), UrsaConfig(policy="srjf"))
    job = ursa.submit(cpu_only_job(), 64.0)
    ursa.run(max_events=100_000)
    assert job.done


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        UrsaConfig(policy="fifo").build_policy()


def test_resubmission_after_drain():
    """The scheduler tick re-arms for jobs submitted after a quiet period."""
    ursa = UrsaSystem(small_cluster())
    first = ursa.submit(cpu_only_job("a"), 64.0)
    ursa.run(max_events=100_000)
    assert first.done
    second = ursa.submit(cpu_only_job("b"), 64.0)
    ursa.run(max_events=100_000)
    assert second.done


def test_task_level_metrics_consistency():
    ursa = UrsaSystem(small_cluster())
    job = ursa.submit(cpu_only_job(p=4), 64.0)
    ursa.run(max_events=100_000)
    for task in job.plan.tasks:
        for mt in task.monotasks:
            assert mt.finished_at <= task.finished_at + 1e-9
            assert mt.started_at >= task.placed_at - 1e-9
