"""Integration tests for the full UrsaSystem."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.execution import JobState
from repro.scheduler import UrsaConfig, UrsaSystem


def shuffle_job(name, p=8, size=25.0, depth=1):
    g = OpGraph(name)
    src = g.create_data(p)
    g.set_input(src, [size] * p)
    data = src
    prev = None
    for d in range(depth):
        cpu = g.create_op(ResourceType.CPU, f"c{d}").read(data).create(g.create_data(p))
        if prev is not None:
            prev.to(cpu, DepType.ASYNC)
        net = g.create_op(ResourceType.NETWORK, f"n{d}").read(cpu.output).create(g.create_data(p))
        cpu.to(net, DepType.SYNC)
        data, prev = net.output, net
    final = g.create_op(ResourceType.CPU, "final").read(data).create(g.create_data(p))
    prev.to(final, DepType.ASYNC)
    return g


def small_cluster():
    return Cluster(ClusterSpec.small(num_machines=4, cores=8, core_rate_mbps=25.0))


def test_single_job_completes():
    ursa = UrsaSystem(small_cluster())
    job = ursa.submit(shuffle_job("j0"), requested_memory_mb=1024.0)
    ursa.run(max_events=200_000)
    assert job.state is JobState.DONE
    assert ursa.all_done
    assert ursa.makespan() > 0


def test_many_jobs_complete_with_staggered_arrivals():
    ursa = UrsaSystem(small_cluster())
    jobs = [
        ursa.submit(shuffle_job(f"j{i}", depth=2), 1024.0, at=i * 0.5)
        for i in range(8)
    ]
    ursa.run(max_events=2_000_000)
    assert all(j.done for j in jobs)
    assert len(ursa.completed_jobs) == 8


def test_future_submission_waits():
    ursa = UrsaSystem(small_cluster())
    job = ursa.submit(shuffle_job("later"), 1024.0, at=10.0)
    ursa.run(until=5.0)
    assert job.state is JobState.SUBMITTED
    ursa.run(max_events=200_000)
    assert job.done
    assert job.admit_time >= 10.0


def test_scheduling_interval_delays_placement():
    """Tasks wait at most ~one scheduling interval before being placed."""
    config = UrsaConfig(scheduling_interval=0.5)
    ursa = UrsaSystem(small_cluster(), config)
    job = ursa.submit(shuffle_job("j"), 1024.0)
    ursa.run(max_events=200_000)
    first = min(t.placed_at for t in job.plan.tasks if t.placed_at is not None)
    # jm creation delay + <= 1 interval (+eps)
    assert first <= 0.05 + 0.5 + 0.51


def test_memory_admission_serializes_big_jobs():
    cluster = small_cluster()
    total = cluster.total_memory_mb
    ursa = UrsaSystem(cluster)
    a = ursa.submit(shuffle_job("a"), total * 0.7)
    b = ursa.submit(shuffle_job("b"), total * 0.7)
    ursa.run(max_events=400_000)
    assert a.done and b.done
    # b could only be admitted after a finished
    assert b.admit_time >= a.finish_time


def test_ejf_orders_completion_by_submission():
    ursa = UrsaSystem(small_cluster(), UrsaConfig(policy="ejf", policy_weight=0.2))
    jobs = [
        ursa.submit(shuffle_job(f"j{i}", p=16, size=50.0), 1024.0, at=0.5 * i)
        for i in range(4)
    ]
    ursa.run(max_events=2_000_000)
    finish = [j.finish_time for j in jobs]
    assert finish == sorted(finish)


def test_srjf_improves_mean_jct_on_mixed_sizes():
    """Small jobs contending with a deep big job finish earlier under SRJF,
    at a slight cost in makespan — the paper's Table 2 trade-off."""

    def run(policy):
        cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=25.0))
        ursa = UrsaSystem(cluster, UrsaConfig(policy=policy, policy_weight=0.5))
        ursa.submit(shuffle_job("big", p=8, size=50.0, depth=8), 2048.0, at=0.0)
        for i in range(10):
            ursa.submit(shuffle_job(f"s{i}", p=4, size=12.5), 256.0, at=0.5 + 0.05 * i)
        ursa.run(max_events=5_000_000)
        assert ursa.all_done
        return ursa.mean_jct(), ursa.makespan()

    srjf_jct, srjf_makespan = run("srjf")
    ejf_jct, ejf_makespan = run("ejf")
    assert srjf_jct < ejf_jct
    assert srjf_makespan >= ejf_makespan * 0.95  # SRJF trades makespan away


def test_cpu_network_overlap_between_jobs():
    """While one job shuffles, another job's CPU monotasks use the cores:
    cluster CPU usage with two interleaved jobs must exceed a single job's."""

    def cpu_busy_fraction(n_jobs):
        cluster = small_cluster()
        ursa = UrsaSystem(cluster)
        for i in range(n_jobs):
            ursa.submit(shuffle_job(f"j{i}", p=32, size=60.0, depth=3), 1024.0)
        ursa.run(max_events=3_000_000)
        assert ursa.all_done
        return cluster.mean_utilization("cpu_used", 0.0, ursa.makespan())

    one = cpu_busy_fraction(1)
    four = cpu_busy_fraction(4)
    assert four > one * 1.3


def test_ursa_se_equals_ue_for_cpu():
    """In Ursa a core is reserved exactly while a monotask drives it, so the
    allocated-core and used-core integrals coincide."""
    cluster = small_cluster()
    ursa = UrsaSystem(cluster)
    ursa.submit(shuffle_job("j", p=16, size=40.0, depth=2), 1024.0)
    ursa.run(max_events=1_000_000)
    end = ursa.makespan() + 1.0
    alloc = cluster.integrate("cpu_alloc", 0, end)
    used = cluster.integrate("cpu_used", 0, end)
    assert alloc == pytest.approx(used, rel=1e-6)
    assert alloc > 0


def test_no_memory_leak_after_all_jobs():
    cluster = small_cluster()
    ursa = UrsaSystem(cluster)
    for i in range(4):
        ursa.submit(shuffle_job(f"j{i}"), 2048.0, at=i * 0.3)
    ursa.run(max_events=1_000_000)
    for m in cluster.machines:
        assert m.memory.used == pytest.approx(0.0, abs=1e-6)
        assert m.allocated_cores == 0
    assert ursa.admission.reserved_mb == pytest.approx(0.0, abs=1e-6)


def test_monotask_ordering_disabled_still_completes():
    ursa = UrsaSystem(small_cluster(), UrsaConfig(job_ordering=False, monotask_ordering=False))
    jobs = [ursa.submit(shuffle_job(f"j{i}"), 1024.0, at=0.2 * i) for i in range(4)]
    ursa.run(max_events=1_000_000)
    assert all(j.done for j in jobs)


def test_locality_pinned_tasks_run_at_their_machine():
    """Iterative jobs that cache data run dependents where the cache lives."""
    g = OpGraph("iter")
    p = 4
    src = g.create_data(p)
    g.set_input(src, [20.0] * p)
    cache = g.create_data(p, "cache")
    load = g.create_op(ResourceType.CPU, "load").read(src).create(cache)
    msg = g.create_data(p)
    stat = g.create_op(ResourceType.CPU, "stat").read(cache).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(p))
    upd = g.create_op(ResourceType.CPU, "upd").read(sh.output, cache).create(g.create_data(p))
    load.to(stat, DepType.ASYNC)
    stat.to(sh, DepType.SYNC)
    sh.to(upd, DepType.ASYNC)

    ursa = UrsaSystem(small_cluster())
    job = ursa.submit(g, 1024.0)
    ursa.run(max_events=500_000)
    assert job.done
    upd_tasks = [
        t for t in job.plan.tasks
        if any(op.name == "upd" for m in t.monotasks for op in m.ops)
    ]
    assert upd_tasks
    for t in upd_tasks:
        assert t.locality is not None and t.worker == t.locality
