"""Hysteresis core: stability windows, cooldown, and no flapping."""

import pytest

from repro.service import AutoscalerConfig, HysteresisScaler, LoadSample

CFG = AutoscalerConfig(
    interval=1.0, up_queue=2, up_wait=3.0, up_util=0.85, down_util=0.25,
    up_stable=2, down_stable=3, cooldown=5.0,
)


def _feed(scaler, samples):
    return [scaler.decide(s) for s in samples]


def _const(util, queue=0, wait=0.0, n=20, t0=0.0):
    return [
        LoadSample(t=t0 + i, queue_depth=queue, head_wait=wait, utilization=util)
        for i in range(n)
    ]


def test_constant_midband_load_never_acts():
    # 50 % utilization with an empty queue is neither pressured nor idle:
    # a constant load in the dead band must never cause an action
    scaler = HysteresisScaler(CFG)
    assert _feed(scaler, _const(util=0.5)) == [0] * 20


def test_constant_pressure_scales_up_at_cooldown_pace_no_flapping():
    scaler = HysteresisScaler(CFG)
    decisions = _feed(scaler, _const(util=0.95, n=20))
    # first action after up_stable samples, then one per cooldown window
    assert decisions[0] == 0 and decisions[1] == 1
    assert -1 not in decisions  # pressure never triggers a down
    ups = [i for i, d in enumerate(decisions) if d == 1]
    assert all(b - a >= CFG.cooldown for a, b in zip(ups, ups[1:]))


def test_constant_idle_scales_down_slowly():
    scaler = HysteresisScaler(CFG)
    decisions = _feed(scaler, _const(util=0.0, n=20))
    assert decisions[:3] == [0, 0, -1]  # down_stable samples first
    assert 1 not in decisions


def test_oscillating_load_inside_the_band_is_ignored():
    # alternating between the two band edges resets both streaks: the
    # scaler must hold steady (this is the anti-flap guarantee)
    scaler = HysteresisScaler(CFG)
    samples = []
    for i in range(30):
        util = 0.80 if i % 2 == 0 else 0.30  # below up_util, above down_util
        samples.append(LoadSample(t=float(i), queue_depth=1, head_wait=0.0,
                                  utilization=util))
    assert _feed(scaler, samples) == [0] * 30


def test_queue_depth_and_head_wait_also_signal_pressure():
    scaler = HysteresisScaler(CFG)
    assert _feed(scaler, _const(util=0.1, queue=5, n=2)) == [0, 1]
    scaler = HysteresisScaler(CFG)
    assert _feed(scaler, _const(util=0.1, wait=10.0, n=2)) == [0, 1]


def test_pressure_resets_the_idle_streak_and_vice_versa():
    scaler = HysteresisScaler(CFG)
    # two idle samples (one short of down_stable), then pressure
    _feed(scaler, _const(util=0.0, n=2))
    decisions = _feed(scaler, _const(util=0.95, n=2, t0=2.0))
    assert decisions == [0, 1]  # the up streak was not polluted


def test_cooldown_spans_action_types():
    scaler = HysteresisScaler(CFG)
    assert _feed(scaler, _const(util=0.95, n=2)) == [0, 1]
    # immediately idle: down_stable is reached inside the cooldown window
    decisions = _feed(scaler, _const(util=0.0, n=3, t0=2.0))
    assert decisions == [0, 0, 0]
    # after the cooldown expires the pending idle streak may act
    assert -1 in _feed(scaler, _const(util=0.0, n=3, t0=5.0))


def test_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(interval=0.0)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_workers=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(up_stable=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(down_util=0.9, up_util=0.8)
