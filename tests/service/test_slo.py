"""SLO report assembly: warmup exclusion, identities, schema validation."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.service import PoissonArrivals, ServiceConfig, validate_report
from repro.service.arrivals import Arrival
from repro.service.driver import _ArrivalRecord
from repro.service.slo import DISABLED_AUTOSCALER, SCHEMA, assemble_report

CFG = ServiceConfig(horizon=10.0, warmup=2.0, drain_grace=5.0, queue_limit=4)
PROCESS = PoissonArrivals(rate_per_s=1.0, n_tenants=10)


@dataclass
class _FakeJob:
    """The slice of the Job API the report assembler reads."""

    submit_time: float
    finish_time: Optional[float] = None
    admit_time: Optional[float] = None
    failed: bool = False

    @property
    def done(self) -> bool:
        return self.finish_time is not None and not self.failed

    @property
    def jct(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


def _submitted(index, t, job_id, tenant=0):
    return _ArrivalRecord(Arrival(index, t, tenant, 2), job_id=job_id)


def _shed(index, t, reason="queue_full", tenant=0):
    return _ArrivalRecord(Arrival(index, t, tenant, 2), shed=True, reason=reason)


def _report(records, jobs, autoscaler=DISABLED_AUTOSCALER, peak_queue=0):
    return assemble_report(
        records=records, jobs=jobs, cfg=CFG, process=PROCESS,
        autoscaler=autoscaler, peak_queue=peak_queue, seed=0,
    )


def test_warmup_arrivals_are_excluded_from_window_metrics():
    # job 0 arrives during warmup with a pathological 100 s JCT; jobs 1-2
    # arrive inside the window and finish in 1 s
    records = [
        _submitted(0, 1.0, job_id=0),
        _submitted(1, 3.0, job_id=1),
        _submitted(2, 4.0, job_id=2),
    ]
    jobs = {
        0: _FakeJob(1.0, finish_time=101.0, admit_time=1.0),
        1: _FakeJob(3.0, finish_time=4.0, admit_time=3.0),
        2: _FakeJob(4.0, finish_time=5.0, admit_time=4.0),
    }
    rep = _report(records, jobs)
    assert rep["counts"]["generated"] == 3 and rep["counts"]["completed"] == 3
    assert rep["window"]["generated"] == 2
    # the 100 s warmup job must not appear in any window statistic
    assert rep["window"]["jct"]["count"] == 2
    assert rep["window"]["latency_p99_s"] == pytest.approx(1.0)
    assert rep["window"]["jct"]["max"] == pytest.approx(1.0)
    # goodput counts window completions over the window span only
    assert rep["window"]["goodput_jobs_per_s"] == pytest.approx(2 / 8.0)
    assert validate_report(rep) == []


def test_accounting_identity_with_shed_failed_and_in_flight():
    records = [
        _submitted(0, 3.0, job_id=0),            # completes
        _submitted(1, 4.0, job_id=1),            # fails
        _submitted(2, 5.0, job_id=2),            # still in flight at stop
        _shed(3, 6.0),                           # queue_full
        _shed(4, 7.0, reason="too_large"),
    ]
    jobs = {
        0: _FakeJob(3.0, finish_time=4.0, admit_time=3.0),
        1: _FakeJob(4.0, finish_time=6.0, admit_time=4.0, failed=True),
        2: _FakeJob(5.0, admit_time=5.5),
    }
    rep = _report(records, jobs, peak_queue=4)
    c = rep["counts"]
    assert (c["generated"], c["submitted"], c["shed"]) == (5, 3, 2)
    assert (c["completed"], c["failed"], c["in_flight"]) == (1, 1, 1)
    assert c["generated"] == c["shed"] + c["completed"] + c["failed"] + c["in_flight"]
    assert rep["backpressure"]["shed_queue_full"] == 1
    assert rep["backpressure"]["shed_too_large"] == 1
    assert rep["window"]["shed_rate"] == pytest.approx(2 / 5)
    # admission wait counts admitted jobs even if they did not finish
    assert rep["window"]["admission_wait"]["count"] == 3
    assert validate_report(rep) == []


def test_empty_window_yields_zero_distributions():
    rep = _report([_shed(0, 3.0)], {})
    assert rep["window"]["jct"]["count"] == 0
    assert rep["window"]["latency_p99_s"] == 0.0
    assert rep["window"]["goodput_jobs_per_s"] == 0.0
    assert rep["window"]["shed_rate"] == 1.0
    assert validate_report(rep) == []


def test_validate_report_catches_corruption():
    rep = _report([_submitted(0, 3.0, job_id=0)],
                  {0: _FakeJob(3.0, finish_time=4.0, admit_time=3.0)})
    assert validate_report(rep) == []
    assert validate_report({"schema": "nope"})  # wrong schema + missing keys
    bad = {**rep, "counts": {**rep["counts"], "completed": 99}}
    assert any("identity" in e for e in validate_report(bad))
    bad = {**rep, "window": {**rep["window"], "shed_rate": 1.5}}
    assert any("shed_rate" in e for e in validate_report(bad))
    missing = {**rep}
    del missing["autoscaler"]
    assert any("autoscaler" in e for e in validate_report(missing))
    assert rep["schema"] == SCHEMA


def test_service_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(horizon=0.0, warmup=0.0, drain_grace=0.0)
    with pytest.raises(ValueError):
        ServiceConfig(horizon=10.0, warmup=10.0, drain_grace=0.0)
    with pytest.raises(ValueError):
        ServiceConfig(horizon=10.0, warmup=1.0, drain_grace=-1.0)
    with pytest.raises(ValueError):
        ServiceConfig(horizon=10.0, warmup=1.0, drain_grace=0.0, queue_limit=0)
