"""Open-loop driver integration: accounting, elasticity, reproducibility.

Runs use a shrunken tiny-derived scale (3-job horizon ≈ 11 s of simulated
time) so the whole module stays CI-fast while exercising the real
admission/placement stack end to end.
"""

import pickle
from dataclasses import replace

import pytest

from repro.experiments import fig_service
from repro.experiments.common import SCALES
from repro.obs import telemetry
from repro.perf import ParallelRunner
from repro.service import validate_report

SMALL = replace(SCALES["tiny"], name="svc-test", n_jobs=3)


def _run(key, seed=0):
    return fig_service.run_unit(SMALL, key, seed=seed)


def test_overload_sheds_and_the_accounting_identity_holds():
    rep = _run("poisson-x2.0")
    c = rep["counts"]
    assert c["generated"] == c["shed"] + c["completed"] + c["failed"] + c["in_flight"]
    assert c["shed"] > 0, "2× the base rate must trigger backpressure"
    assert rep["backpressure"]["peak_queue"] <= rep["backpressure"]["queue_limit"]
    assert validate_report(rep) == []


def test_stable_load_sheds_nothing_and_stays_low_latency():
    rep = _run("poisson-x0.5")
    assert rep["counts"]["shed"] == 0
    assert rep["counts"]["completed"] > 0
    assert rep["window"]["latency_p50_s"] <= rep["window"]["latency_p99_s"]
    assert validate_report(rep) == []


def test_autoscaler_respects_bounds_and_never_evicts_work():
    tel = telemetry.enable()
    try:
        rep = _run("diurnal-x1.0")
    finally:
        telemetry.disable()
    a = rep["autoscaler"]
    assert a["enabled"]
    cfg = fig_service.service_config(SMALL, elastic=True).autoscaler
    assert cfg.min_workers <= a["min_active"]
    assert a["max_active"] <= cfg.max_workers
    assert cfg.min_workers <= a["final_active"] <= cfg.max_workers
    assert a["min_active"] <= a["mean_active"] <= a["max_active"]
    # scale-in is a graceful drain: no retries, no lost monotasks, no
    # wasted (re-executed) work may ever be charged to elasticity
    totals = tel.summary()["totals"]
    assert totals["retries"] == 0
    assert totals["monotasks_lost"] == 0
    assert totals["wasted_work_mb"] == 0.0
    assert totals["autoscale_up"] == a["scale_ups"]
    assert totals["autoscale_down"] == a["scale_downs"]


def test_noscale_unit_keeps_the_full_fleet():
    rep = _run("poisson-x2.0-noscale")
    a = rep["autoscaler"]
    n = SMALL.cluster.num_machines
    assert not a["enabled"]
    assert a["scale_ups"] == a["scale_downs"] == 0
    assert a["min_active"] == a["max_active"] == a["final_active"] == n
    assert a["mean_active"] == float(n)


def test_reports_are_deterministic_and_seed_sensitive():
    a = _run("bursty-x1.0", seed=0)
    b = _run("bursty-x1.0", seed=0)
    assert pickle.dumps(a) == pickle.dumps(b)
    c = _run("bursty-x1.0", seed=1)
    assert a["counts"]["generated"] != c["counts"]["generated"] or a != c


def test_telemetry_does_not_perturb_the_report():
    off = _run("poisson-x1.0")
    telemetry.enable()
    try:
        on = _run("poisson-x1.0")
    finally:
        telemetry.disable()
    assert pickle.dumps(off) == pickle.dumps(on)


def test_sweep_is_byte_identical_serial_vs_parallel(tmp_path, capsys):
    serial = ParallelRunner(workers=0)
    parallel = ParallelRunner(workers=2)
    try:
        r_serial = serial.run_many(["fig_service"], SMALL, seed=0)
        r_parallel = parallel.run_many(["fig_service"], SMALL, seed=0)
    finally:
        serial.close()
        parallel.close()
    capsys.readouterr()
    assert pickle.dumps(r_serial["fig_service"]) == pickle.dumps(
        r_parallel["fig_service"]
    )
    for key, rep in r_serial["fig_service"].items():
        assert validate_report(rep) == [], key
    assert set(r_serial["fig_service"]) == set(fig_service.UNITS)
