"""Arrival processes: determinism, shaping, and schedule invariants."""

import pytest

from repro.service import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    PROCESS_NAMES,
    make_process,
)

HORIZON = 200.0


@pytest.mark.parametrize("name", PROCESS_NAMES)
def test_schedule_is_pure_function_of_seed(name):
    p = make_process(name, rate_per_s=2.0, n_tenants=50)
    a = p.schedule(HORIZON, seed=7)
    b = make_process(name, rate_per_s=2.0, n_tenants=50).schedule(HORIZON, seed=7)
    assert a == b
    assert a != p.schedule(HORIZON, seed=8)


@pytest.mark.parametrize("name", PROCESS_NAMES)
def test_schedule_invariants(name):
    p = make_process(name, rate_per_s=2.0, n_tenants=50, large_fraction=0.3)
    arrivals = p.schedule(HORIZON, seed=0)
    assert arrivals, "a 2/s process over 200 s cannot be empty"
    # strictly increasing times inside [0, horizon); contiguous indices
    times = [a.t for a in arrivals]
    assert times == sorted(times)
    assert 0.0 < times[0] and times[-1] < HORIZON
    assert [a.index for a in arrivals] == list(range(len(arrivals)))
    assert all(0 <= a.tenant < 50 for a in arrivals)
    assert set(a.job_type for a in arrivals) <= {1, 2}


@pytest.mark.parametrize("name", PROCESS_NAMES)
def test_mean_rate_is_respected(name):
    # long horizon: the empirical rate lands near the configured mean
    p = make_process(name, rate_per_s=2.0, n_tenants=50)
    n = len(p.schedule(2000.0, seed=1))
    assert 0.85 * 2.0 * 2000.0 <= n <= 1.15 * 2.0 * 2000.0


def test_diurnal_swings_around_the_mean():
    p = DiurnalArrivals(rate_per_s=2.0, period=100.0, swing=0.8)
    assert p.rate_at(25.0) == pytest.approx(2.0 * 1.8)   # peak of the sine
    assert p.rate_at(75.0) == pytest.approx(2.0 * 0.2)   # trough
    assert p.peak_rate() == pytest.approx(3.6)
    # arrivals concentrate in the high-rate half-period
    arrivals = p.schedule(1000.0, seed=3)
    first_half = sum(1 for a in arrivals if (a.t % 100.0) < 50.0)
    assert first_half > 0.6 * len(arrivals)


def test_bursty_long_run_average_matches_nominal():
    p = BurstyArrivals(rate_per_s=2.0, period=20.0, burst_factor=4.0, burst_fraction=0.2)
    # quiet rate solved so f·(factor·q) + (1−f)·q == mean
    assert p.quiet_rate * (0.2 * 4.0 + 0.8) == pytest.approx(2.0)
    assert p.peak_rate() == pytest.approx(p.quiet_rate * 4.0)
    burst, quiet = 0, 0
    for a in p.schedule(2000.0, seed=5):
        if (a.t % 20.0) < 4.0:
            burst += 1
        else:
            quiet += 1
    # bursts cover 20 % of the time but a factor-4 rate: ~50 % of arrivals
    assert burst > quiet * 0.7


def test_large_fraction_controls_the_type_mix():
    p = PoissonArrivals(rate_per_s=5.0, n_tenants=10, large_fraction=0.3)
    arrivals = p.schedule(1000.0, seed=2)
    large = sum(1 for a in arrivals if a.job_type == 1)
    assert 0.25 <= large / len(arrivals) <= 0.35
    assert all(a.job_type == 2 for a in
               PoissonArrivals(5.0, large_fraction=0.0).schedule(50.0, seed=2))


def test_invalid_parameters_are_rejected():
    with pytest.raises(ValueError):
        PoissonArrivals(rate_per_s=0.0)
    with pytest.raises(ValueError):
        PoissonArrivals(2.0, n_tenants=0)
    with pytest.raises(ValueError):
        PoissonArrivals(2.0, large_fraction=1.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(2.0, swing=1.0)
    with pytest.raises(ValueError):
        BurstyArrivals(2.0, burst_fraction=0.0)
    with pytest.raises(ValueError):
        make_process("weibull", 2.0)
    with pytest.raises(ValueError):
        PoissonArrivals(2.0).schedule(0.0, seed=0)
