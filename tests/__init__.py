# test package
