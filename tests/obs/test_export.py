"""JSONL round-trip, Chrome Trace structure, and schema validation."""

import json

import numpy as np
import pytest

from repro.obs import events as ev
from repro.obs import (
    TraceRecorder,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace_files,
)


def _e(kind, t, **fields):
    fields.update(t=t, kind=kind, unit=fields.pop("unit", "run"))
    return fields


def _lifecycle_events():
    """A tiny hand-built stream: one queued monotask, one bypass transfer,
    one placement, plus the job bookends."""
    return [
        _e(ev.JOB_SUBMIT, 0.0, job=0, name="tpch", mem_mb=128.0, qlen=1),
        _e(ev.JOB_ADMIT, 0.25, job=0, waited=0.25, reserved_mb=128.0),
        _e(ev.TASK_READY, 0.5, job=0, task=1, stage=0, n_mt=2, input_mb=4.0),
        _e(ev.SCHED_TICK, 0.75, assigned=1),
        _e(ev.TASK_PLACED, 0.75, job=0, task=1, worker=0, score=1.5, n_mt=2),
        _e(ev.QUEUE_PUSH, 0.75, worker=0, rtype="cpu", job=0, mt=10, qlen=1),
        _e(ev.QUEUE_POP, 1.0, worker=0, rtype="cpu", job=0, mt=10, qlen=0),
        _e(ev.MT_START, 1.0, worker=0, rtype="cpu", job=0, mt=10, running=1,
           bypass=False),
        _e(ev.MT_START, 1.0, worker=0, rtype="network", job=0, mt=11,
           running=1, bypass=True),
        _e(ev.RES_RELEASE, 2.0, worker=0, rtype="cpu", mt=10, running=0),
        _e(ev.MT_FINISH, 2.0, job=0, task=1, mt=10, rtype="cpu", worker=0),
        _e(ev.MT_FINISH, 2.5, job=0, task=1, mt=11, rtype="network", worker=0),
        _e(ev.TASK_FINISH, 2.5, job=0, task=1, worker=0),
        _e(ev.JOB_FINISH, 2.5, job=0, jct=2.5),
    ]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    events = _lifecycle_events()
    path = write_jsonl(events, tmp_path / "t.jsonl")
    assert read_jsonl(path) == events


def test_jsonl_coerces_numpy_scalars(tmp_path):
    events = [
        _e(ev.TASK_READY, np.float64(1.5), job=np.int64(0), task=2,
           stage=0, n_mt=1, input_mb=np.float32(8.0)),
    ]
    path = write_jsonl(events, tmp_path / "np.jsonl")
    back = read_jsonl(path)
    assert back[0]["t"] == 1.5
    assert back[0]["job"] == 0
    assert back[0]["input_mb"] == pytest.approx(8.0)
    # plain json types after the round trip
    assert type(back[0]["job"]) is int


def test_jsonl_creates_parent_dirs(tmp_path):
    path = write_jsonl([], tmp_path / "a" / "b" / "t.jsonl")
    assert path.exists()
    assert read_jsonl(path) == []


# ----------------------------------------------------------------------
# Chrome Trace structure
# ----------------------------------------------------------------------
def test_chrome_trace_slices_match_start_finish_pairs():
    doc = chrome_trace(_lifecycle_events())
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 2  # mt 10 (queued cpu) + mt 11 (bypass network)
    by_mt = {s["args"]["mt"]: s for s in slices}
    cpu = by_mt[10]
    assert cpu["cat"] == "cpu"
    assert cpu["ts"] == pytest.approx(1.0e6)  # seconds -> microseconds
    assert cpu["dur"] == pytest.approx(1.0e6)
    assert cpu["args"]["bypass"] is False
    net = by_mt[11]
    assert net["cat"] == "network"
    assert net["args"]["bypass"] is True
    # worker 0: tid = 1 + worker*3 + {cpu:0, network:1}
    assert cpu["tid"] == 1
    assert net["tid"] == 2


def test_chrome_trace_unmatched_finish_is_skipped():
    doc = chrome_trace([
        _e(ev.MT_FINISH, 2.0, job=0, task=1, mt=99, rtype="cpu", worker=0),
    ])
    assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []


def test_chrome_trace_one_pid_per_unit_in_first_seen_order():
    events = [
        _e(ev.SCHED_TICK, 0.0, assigned=0, unit="ursa:a"),
        _e(ev.SCHED_TICK, 0.0, assigned=0, unit="yarn:b"),
        _e(ev.SCHED_TICK, 1.0, assigned=1, unit="ursa:a"),
    ]
    doc = chrome_trace(events)
    procs = [
        e for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    ]
    assert [(p["pid"], p["args"]["name"]) for p in procs] == [
        (1, "ursa:a"), (2, "yarn:b"),
    ]
    ticks = [e for e in doc["traceEvents"] if e.get("name") == "sched_tick"]
    assert [t["pid"] for t in ticks] == [1, 2, 1]


def test_chrome_trace_metadata_and_counters():
    doc = chrome_trace(_lifecycle_events())
    te = doc["traceEvents"]
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in te if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert thread_names[(1, 0)] == "scheduler"
    assert thread_names[(1, 1)] == "w0 cpu"
    assert thread_names[(1, 2)] == "w0 network"
    counters = [e for e in te if e["ph"] == "C"]
    names = {c["name"] for c in counters}
    assert "w0 cpu queued" in names
    assert "w0 cpu running" in names
    instants = [e for e in te if e["ph"] == "i"]
    assert any(e["name"].startswith("place ") for e in instants)
    assert all(e["s"] in ("g", "p", "t") for e in instants)
    assert doc["displayTimeUnit"] == "ms"


def test_chrome_trace_engine_stats_in_other_data():
    doc = chrome_trace([], engine_stats={"run": [42, 3.5]})
    assert doc["otherData"]["engine"]["run"] == {
        "events_fired": 42, "sim_end": 3.5,
    }
    assert "otherData" not in chrome_trace([])


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_validate_accepts_our_own_export():
    assert validate_chrome_trace(chrome_trace(_lifecycle_events())) == []


def test_validate_rejects_corruption():
    good = chrome_trace(_lifecycle_events())

    def corrupt(mutate):
        doc = json.loads(json.dumps(good, default=lambda o: o))
        mutate(doc["traceEvents"])
        return validate_chrome_trace(doc)

    def neg_dur(te):
        next(e for e in te if e["ph"] == "X")["dur"] = -5.0

    def bad_phase(te):
        te[0]["ph"] = "Z"

    def missing_ts(te):
        del next(e for e in te if e["ph"] == "i")["ts"]

    def bad_scope(te):
        next(e for e in te if e["ph"] == "i")["s"] = "x"

    def string_counter(te):
        next(e for e in te if e["ph"] == "C")["args"] = {"depth": "three"}

    def nameless_meta(te):
        next(e for e in te if e["ph"] == "M")["args"] = {}

    for mutate in (neg_dur, bad_phase, missing_ts, bad_scope,
                   string_counter, nameless_meta):
        errs = corrupt(mutate)
        assert errs, f"{mutate.__name__} not caught"


def _flow(ph, fid, ts, **extra):
    e = {"ph": ph, "name": "critical_path", "cat": "critpath",
         "pid": 1, "tid": 1, "id": fid, "ts": ts}
    e.update(extra)
    return e


def test_validate_accepts_matched_flow_pair():
    doc = chrome_trace(_lifecycle_events())
    doc["traceEvents"].extend(
        [_flow("s", 7, 100.0), _flow("f", 7, 200.0, bp="e")]
    )
    assert validate_chrome_trace(doc) == []


def test_validate_rejects_dangling_flow_arrows():
    base = chrome_trace(_lifecycle_events())["traceEvents"]
    # start without finish
    doc = {"traceEvents": base + [_flow("s", 1, 100.0)]}
    assert any("flow id 1" in e for e in validate_chrome_trace(doc))
    # finish without start
    doc = {"traceEvents": base + [_flow("f", 2, 100.0)]}
    assert any("flow id 2" in e for e in validate_chrome_trace(doc))
    # duplicated start
    doc = {"traceEvents": base + [_flow("s", 3, 100.0), _flow("s", 3, 150.0),
                                  _flow("f", 3, 200.0)]}
    assert any("flow id 3" in e for e in validate_chrome_trace(doc))


def test_validate_rejects_backward_flow():
    doc = {"traceEvents": [_flow("s", 9, 200.0), _flow("f", 9, 100.0)]}
    assert any("finish precedes start" in e for e in validate_chrome_trace(doc))


def test_validate_rejects_flow_event_without_id():
    e = _flow("s", 0, 100.0)
    del e["id"]
    errs = validate_chrome_trace({"traceEvents": [e]})
    assert any("needs an id" in err for err in errs)


def test_validate_rejects_stray_bind_id():
    doc = chrome_trace(_lifecycle_events())
    next(e for e in doc["traceEvents"] if e["ph"] == "X")["bind_id"] = 42
    assert any("bind_id" in e for e in validate_chrome_trace(doc))


def test_validate_rejects_non_object_documents():
    assert validate_chrome_trace([1, 2]) != []
    assert validate_chrome_trace({"notTraceEvents": []}) != []
    assert validate_chrome_trace({"traceEvents": [17]}) != []


# ----------------------------------------------------------------------
# write_trace_files
# ----------------------------------------------------------------------
def test_write_trace_files_emits_both_artifacts(tmp_path):
    rec = TraceRecorder()
    for e in _lifecycle_events():
        rec.emit(e.pop("kind"), e.pop("t"), **{
            k: v for k, v in e.items() if k != "unit"
        })
    out = write_trace_files(rec, tmp_path / "traces")
    assert out["jsonl"].name == "trace.jsonl"
    assert out["chrome"].name == "trace.json"
    assert len(read_jsonl(out["jsonl"])) == len(rec.events)
    doc = json.loads(out["chrome"].read_text())
    assert validate_chrome_trace(doc) == []
