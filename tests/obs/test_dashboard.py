"""Dashboard rendering: panel structure, resampling, live attachment."""

import io
import math
import pickle

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.metrics import compute_metrics
from repro.obs import telemetry
from repro.obs.dashboard import (
    PANEL_WIDTH,
    _resample,
    attach_live,
    render_dashboard,
    render_unit,
)
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch_workload


def _run_with_telemetry(unit="dash", live_stream=None):
    telemetry.disable()
    tel = telemetry.enable()
    if live_stream is not None:
        attach_live(tel, stream=live_stream)
    tel.begin_unit(unit)
    cluster = Cluster(
        ClusterSpec(num_machines=3, machine=ClusterSpec.paper_cluster().machine)
    )
    system = UrsaSystem(cluster, UrsaConfig(policy="srjf"))
    submit_workload(
        system,
        tpch_workload(n_jobs=4, scale=0.02, arrival_interval=0.5,
                      max_parallelism=64, partition_mb=12.0, seed=3),
    )
    system.run(max_events=50_000_000)
    pickle.dumps(compute_metrics(system))
    telemetry.disable()
    return tel


@pytest.fixture(scope="module")
def collector():
    return _run_with_telemetry()


def test_render_unit_panel_structure(collector):
    panel = render_unit(collector.units["dash"])
    assert "unit dash" in panel
    assert "utilization (fraction of concurrency limit)" in panel
    assert "queue depth" in panel
    assert "alloc[cpu]" in panel  # the latency table rendered
    assert "jobs: 4/4 done (0 failed)" in panel
    # box borders present and the panel never exceeds its drawn width
    lines = panel.splitlines()
    assert lines[0].startswith("┌") and lines[-1].startswith("└")


def test_render_unit_sparklines_fit_panel_width(collector):
    panel = render_unit(collector.units["dash"])
    for line in panel.splitlines():
        if "|" in line and line.strip().startswith(("cpu", "network", "disk")):
            strip = line.split("|")[1]
            assert len(strip) <= PANEL_WIDTH


def test_render_dashboard_covers_live_units_only(collector):
    out = render_dashboard(collector)
    assert "unit dash" in out
    assert "unit run" not in out  # the empty placeholder stays hidden


def test_render_dashboard_empty_collector():
    telemetry.disable()
    tel = telemetry.enable()
    telemetry.disable()
    assert render_dashboard(tel) == "(no telemetry units recorded)"


def test_attach_live_prints_panel_when_unit_seals():
    buf = io.StringIO()
    _run_with_telemetry(unit="live", live_stream=buf)
    out = buf.getvalue()
    assert "unit live" in out
    assert out.count("┌") == 1  # exactly one panel: the one sealed unit


def test_resample_averages_down_to_width():
    series = list(range(1000))
    out = _resample(series, 10)
    assert len(out) == 10
    assert out == sorted(out)  # monotone input stays monotone
    assert out[0] == pytest.approx(sum(range(100)) / 100)


def test_resample_short_series_passes_through():
    assert _resample([1, 2, 3], 10) == [1.0, 2.0, 3.0]
    assert _resample([], 10) == []


def test_resample_never_drops_mass():
    series = [float(i % 7) for i in range(333)]
    out = _resample(series, 64)
    assert len(out) == 64
    assert all(math.isfinite(v) for v in out)


# ----------------------------------------------------------------------
# idle-blame panel (attribution renderer)
# ----------------------------------------------------------------------
def _unit_attr(per_worker=True):
    causes = {"fault_down": 0.0, "blocked_policy": 30.0,
              "admission_gated": 0.0, "no_work": 10.0}
    zero = {c: 0.0 for c in causes}
    return {
        "jobs": {},
        "ledger_totals": {"compute": 5.0, "sched_delay": 2.0, "transfer": 0.0},
        "idle": {
            "per_worker": {"0": {"cpu": causes, "network": zero, "disk": zero}}
            if per_worker else {},
            "totals": {"cpu": dict(causes), "network": dict(zero),
                       "disk": dict(zero)},
            "capacity_seconds": {"cpu": 100.0, "network": 50.0, "disk": 50.0},
            "end_t": 10.0,
        },
    }


def test_render_blame_ranks_causes_with_capacity_share():
    from repro.obs.dashboard import render_blame

    panel = render_blame("t2:ursa-ejf", _unit_attr())
    assert "idle-time blame — unit t2:ursa-ejf" in panel
    cpu_line = next(ln for ln in panel.splitlines() if "cpu:" in ln)
    # blocked_policy (30s / 100 slot-s) must rank ahead of no_work (10s)
    assert cpu_line.index("blocked_policy") < cpu_line.index("no_work")
    assert "30.0s (30%)" in cpu_line
    assert "jct ledger: compute 5.0s  sched_delay 2.0s" in panel
    assert panel.startswith("┌") and panel.rstrip().endswith("┘")


def test_render_blame_notes_executor_baseline_units():
    from repro.obs.dashboard import render_blame

    panel = render_blame("t2:spark", _unit_attr(per_worker=False))
    assert "executor-model" in panel
