"""Prometheus exposition: real-run rendering, scrape series, validator."""

import pickle

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.metrics import compute_metrics
from repro.obs import telemetry
from repro.obs.promexport import (
    render_prom,
    validate_prom,
    write_prom,
    write_prom_series,
)
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch_workload


@pytest.fixture(scope="module")
def collector():
    """One small deterministic run with telemetry on; yields the sealed
    collector (module-scoped: rendering is read-only)."""
    telemetry.disable()
    tel = telemetry.enable()
    tel.begin_unit("prom_test")
    cluster = Cluster(
        ClusterSpec(num_machines=3, machine=ClusterSpec.paper_cluster().machine)
    )
    system = UrsaSystem(cluster, UrsaConfig(policy="srjf"))
    submit_workload(
        system,
        tpch_workload(n_jobs=4, scale=0.02, arrival_interval=0.5,
                      max_parallelism=64, partition_mb=12.0, seed=3),
    )
    system.run(max_events=50_000_000)
    pickle.dumps(compute_metrics(system))
    telemetry.disable()
    yield tel


# ----------------------------------------------------------------------
# rendering from a real run
# ----------------------------------------------------------------------
def test_render_prom_is_valid_exposition(collector):
    text = render_prom(collector)
    assert validate_prom(text) == []
    assert 'ursa_monotask_grants_total{unit="prom_test"}' in text
    assert "# TYPE ursa_alloc_latency_seconds histogram" in text
    # the empty pre-begin_unit "run" placeholder must not leak into exports
    assert 'unit="run"' not in text


def test_render_prom_histograms_expand_classic_shape(collector):
    text = render_prom(collector)
    assert 'ursa_jct_seconds_bucket{unit="prom_test",le="+Inf"}' in text
    assert 'ursa_jct_seconds_sum{unit="prom_test"}' in text
    assert 'ursa_jct_seconds_count{unit="prom_test"}' in text


def test_write_prom_round_trips(collector, tmp_path):
    path = write_prom(collector, tmp_path / "out" / "metrics.prom")
    assert path.exists()
    assert validate_prom(path.read_text()) == []


def test_write_prom_series_one_file_per_interval(collector, tmp_path):
    paths = write_prom_series(collector, tmp_path / "scrapes")
    assert len(paths) > 1  # the run lasts several resampling intervals
    for path in paths:
        text = path.read_text()
        assert validate_prom(text) == []
        assert 'ursa_utilization{unit="prom_test",resource="cpu"}' in text
    # scrape files are ordered and named by interval index
    assert paths[0].name == "scrape_00000.prom"
    assert [p.name for p in paths] == sorted(p.name for p in paths)


# ----------------------------------------------------------------------
# validator: injected-error cases
# ----------------------------------------------------------------------
_VALID = """\
# HELP ursa_grants_total Grants issued
# TYPE ursa_grants_total counter
ursa_grants_total{unit="a"} 12
"""


def test_validate_prom_accepts_minimal_document():
    assert validate_prom(_VALID) == []


def test_validate_prom_rejects_malformed_sample():
    errs = validate_prom(_VALID + "this is not a sample\n")
    assert any("malformed sample" in e for e in errs)


def test_validate_prom_rejects_sample_before_type():
    errs = validate_prom('untyped_metric{unit="a"} 1\n')
    assert any("before any TYPE" in e for e in errs)


def test_validate_prom_rejects_unknown_type():
    errs = validate_prom("# TYPE ursa_x flavor\n")
    assert any("unknown TYPE" in e for e in errs)


def test_validate_prom_rejects_malformed_label():
    doc = "# TYPE m gauge\nm{bad-label=\"x\"} 1\n"
    assert any("malformed" in e for e in validate_prom(doc))


def test_validate_prom_rejects_non_cumulative_buckets():
    doc = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="2"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_count 5\n"
    )
    errs = validate_prom(doc)
    assert any("not cumulative" in e for e in errs)


def test_validate_prom_rejects_missing_inf_bucket():
    doc = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n'
    errs = validate_prom(doc)
    assert any("+Inf" in e for e in errs)


def test_validate_prom_rejects_count_bucket_mismatch():
    doc = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_count 7\n"
    )
    errs = validate_prom(doc)
    assert any("_count != +Inf" in e for e in errs)


# ----------------------------------------------------------------------
# attribution gauges
# ----------------------------------------------------------------------
def _attr_result():
    from repro.obs.attribution import CATEGORIES, IDLE_CAUSES, RTYPES

    ledger = {c: 0.0 for c in CATEGORIES}
    ledger["compute"] = 12.5
    return {
        "schema": 1,
        "units": {
            "t2:ursa-ejf": {
                "jobs": {},
                "ledger_totals": ledger,
                "idle": {
                    "per_worker": {},
                    "totals": {
                        r: {c: 1.0 for c in IDLE_CAUSES} for r in RTYPES
                    },
                    "capacity_seconds": {r: 10.0 for r in RTYPES},
                    "end_t": 5.0,
                },
            },
        },
    }


def test_render_attr_prom_is_valid_exposition():
    from repro.obs.promexport import render_attr_prom

    text = render_attr_prom(_attr_result())
    assert validate_prom(text) == []
    assert ('ursa_jct_ledger_seconds{unit="t2:ursa-ejf",'
            'category="compute"} 12.5') in text
    assert ('ursa_idle_blame_seconds{unit="t2:ursa-ejf",resource="cpu",'
            'cause="blocked_policy"} 1') in text
    assert ('ursa_idle_capacity_seconds{unit="t2:ursa-ejf",'
            'resource="disk"} 10') in text


def test_write_attr_prom_round_trips(tmp_path):
    from repro.obs.promexport import render_attr_prom, write_attr_prom

    path = write_attr_prom(_attr_result(), tmp_path / "deep" / "attr.prom")
    assert path.read_text() == render_attr_prom(_attr_result())
