"""Unit tests for the telemetry time-series primitives."""

import pytest

from repro.obs.timeseries import (
    LATENCY_BOUNDS,
    StepAccumulator,
    StreamingHistogram,
    TimeBins,
)


class TestTimeBins:
    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            TimeBins(0.0)

    def test_empty_series(self):
        assert TimeBins(1.0).series() == []
        assert TimeBins(1.0).integral == 0.0

    def test_single_bin_segment(self):
        b = TimeBins(1.0)
        b.add(0.25, 0.75, 2.0)
        assert b.integral == pytest.approx(1.0)
        assert b.series() == [pytest.approx(1.0)]

    def test_segment_spanning_bins_prorates_edges(self):
        b = TimeBins(1.0)
        b.add(0.5, 2.5, 1.0)  # half of bin0, all of bin1, half of bin2
        assert b.sums == [pytest.approx(0.5), pytest.approx(1.0), pytest.approx(0.5)]
        assert b.integral == pytest.approx(2.0)

    def test_zero_value_still_extends_coverage(self):
        """A zero-valued segment creates bins so the series covers the gap."""
        b = TimeBins(1.0)
        b.add(0.0, 3.0, 0.0)
        b.add(3.0, 4.0, 2.0)
        assert b.series() == [0.0, 0.0, 0.0, pytest.approx(2.0)]

    def test_last_bin_divides_by_covered_span(self):
        b = TimeBins(1.0)
        b.add(0.0, 1.5, 1.0)  # last bin only covered for 0.5 s
        assert b.series(end=1.5) == [pytest.approx(1.0), pytest.approx(1.0)]
        # without end, the partial last bin under-reports (documented)
        assert b.series() == [pytest.approx(1.0), pytest.approx(0.5)]

    def test_backwards_segment_ignored(self):
        b = TimeBins(1.0)
        b.add(2.0, 1.0, 5.0)
        assert b.series() == []


class TestStepAccumulator:
    def test_integral_and_busy_seconds(self):
        acc = StepAccumulator(1.0)
        acc.delta(1.0, 1.0)   # 0 active during [0,1)
        acc.delta(3.0, 1.0)   # 1 active during [1,3)
        acc.delta(4.0, -2.0)  # 2 active during [3,4)
        acc.advance(5.0)      # 0 active during [4,5)
        assert acc.integral == pytest.approx(1.0 * 2 + 2.0 * 1)
        assert acc.busy_seconds == pytest.approx(3.0)
        assert acc.peak == 2.0
        assert acc.mean(5.0) == pytest.approx(4.0 / 5.0)

    def test_mean_covers_pending_segment(self):
        acc = StepAccumulator(1.0)
        acc.set(0.0, 2.0)
        # value 2.0 held from t=0, never advanced: mean must include it
        assert acc.mean(4.0) == pytest.approx(2.0)

    def test_mean_empty(self):
        assert StepAccumulator(1.0).mean() == 0.0
        assert StepAccumulator(1.0).mean(0.0) == 0.0

    def test_same_instant_updates_replace_value(self):
        acc = StepAccumulator(1.0)
        acc.set(1.0, 5.0)
        acc.set(1.0, 1.0)  # zero-length segment contributes nothing
        acc.advance(2.0)
        assert acc.integral == pytest.approx(1.0)
        assert acc.peak == 5.0

    def test_series_matches_bins(self):
        acc = StepAccumulator(1.0)
        acc.delta(0.5, 1.0)
        acc.delta(2.5, -1.0)
        s = acc.series(end=3.0)
        assert s == [pytest.approx(0.5), pytest.approx(1.0), pytest.approx(0.5)]


class TestStreamingHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            StreamingHistogram(())
        with pytest.raises(ValueError):
            StreamingHistogram((1.0, 1.0))

    def test_empty_snapshot_is_all_zero(self):
        d = StreamingHistogram(LATENCY_BOUNDS).as_dict()
        assert d["count"] == 0
        for k in ("sum", "min", "max", "mean", "p25", "p50", "p75", "p95", "p99"):
            assert d[k] == 0.0

    def test_identical_samples_quantiles_clamp_to_sample(self):
        """Interpolation must not spread N identical samples across their
        bucket — every quantile of {0,0,...,0} is exactly 0."""
        h = StreamingHistogram((0.5, 1.0))
        for _ in range(10):
            h.observe(0.0)
        for q in (0.25, 0.5, 0.75, 0.95, 0.99):
            assert h.quantile(q) == 0.0

    def test_quantile_bounds_checked(self):
        h = StreamingHistogram((1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_bucket_reports_observed_max(self):
        h = StreamingHistogram((1.0,))
        h.observe(50.0)
        assert h.quantile(0.5) == 50.0
        d = h.as_dict()
        assert d["max"] == 50.0
        assert d["buckets"] == [[1.0, 0]]

    def test_quantiles_monotone_and_in_range(self):
        h = StreamingHistogram(LATENCY_BOUNDS)
        for i in range(1, 200):
            h.observe(i * 0.01)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert all(h.vmin <= v <= h.vmax for v in qs)

    def test_as_dict_cumulative_buckets(self):
        h = StreamingHistogram((1.0, 2.0))
        for v in (0.5, 1.5, 1.7, 5.0):
            h.observe(v)
        d = h.as_dict()
        assert d["buckets"] == [[1.0, 1], [2.0, 3]]
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(8.7)
