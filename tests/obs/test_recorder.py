"""Recorder semantics and the tracing-is-pure-observation guarantee."""

import pickle

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.metrics import compute_metrics
from repro.obs import events as ev
from repro.obs import recorder
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.simcore import Simulation
from repro.workloads import submit_workload, tpch_workload


def _small_workload():
    return tpch_workload(
        n_jobs=6, scale=0.02, arrival_interval=0.5, max_parallelism=64,
        partition_mb=12.0, seed=5,
    )


def _run(policy="srjf", legacy=False):
    cluster = Cluster(
        ClusterSpec(num_machines=3, machine=ClusterSpec.paper_cluster().machine)
    )
    system = UrsaSystem(cluster, UrsaConfig(policy=policy, legacy_tick=legacy))
    submit_workload(system, _small_workload())
    system.run(max_events=50_000_000)
    assert system.all_done
    return pickle.dumps(compute_metrics(system))


@pytest.fixture(autouse=True)
def _clean_recorder():
    recorder.disable()
    yield
    recorder.disable()


def test_enable_disable_lifecycle():
    assert recorder.RECORDER is None
    rec = recorder.enable()
    assert recorder.RECORDER is rec
    assert len(rec) == 0
    assert recorder.disable() is rec
    assert recorder.RECORDER is None
    assert recorder.disable() is None  # idempotent


def test_disabled_run_records_nothing():
    _run()
    assert recorder.RECORDER is None


def test_traced_metrics_bit_identical_to_untraced():
    """Tracing is pure observation: enabling it changes no metric byte."""
    base = _run()
    rec = recorder.enable()
    traced = _run()
    recorder.disable()
    assert traced == base
    assert len(rec.events) > 0


def test_optimized_and_legacy_emit_identical_event_streams():
    """The satellite-2 seam: worker grants/releases flow through one hook,
    so the reference scheduler traces identically to the fast path."""
    rec_opt = recorder.enable()
    metrics_opt = _run(legacy=False)
    recorder.disable()
    rec_leg = recorder.enable()
    metrics_leg = _run(legacy=True)
    recorder.disable()
    assert metrics_opt == metrics_leg
    assert rec_opt.events == rec_leg.events


#: kinds only the fault layer emits (covered by tests/faults, which runs a
#: crash/blackout/timeout plan and asserts full ALL_KINDS coverage)
FAULT_KINDS = frozenset({ev.WORKER_DOWN, ev.WORKER_UP, ev.MT_LOST, ev.RETRY})


def test_event_stream_covers_every_failure_free_kind():
    rec = recorder.enable()
    _run()
    recorder.disable()
    kinds = {e["kind"] for e in rec.events}
    assert kinds == ev.ALL_KINDS - FAULT_KINDS


def test_events_are_schema_dicts_with_sim_timestamps():
    rec = recorder.enable()
    _run()
    recorder.disable()
    last_by_unit: dict = {}
    for e in rec.events:
        assert e["kind"] in ev.ALL_KINDS
        assert e["t"] >= 0.0
        assert e["unit"] == "run"  # no begin_unit() called
        # emission order is simulation order within a unit
        assert e["t"] >= last_by_unit.get(e["unit"], 0.0)
        last_by_unit[e["unit"]] = e["t"]
    rtypes = {e["rtype"] for e in rec.events if "rtype" in e}
    assert rtypes <= {"cpu", "network", "disk"}


def test_begin_unit_labels_subsequent_events():
    rec = recorder.enable()
    rec.emit("custom", 0.0)
    rec.begin_unit("exp:key1")
    rec.emit("custom", 1.0)
    assert [e["unit"] for e in rec.events] == ["run", "exp:key1"]


def test_engine_observer_counts_fired_events():
    rec = recorder.enable()
    sim = Simulation()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.5, lambda: None)
    sim.drain()
    recorder.disable()
    assert rec.engine_stats["run"] == [2, 2.5]


def test_engine_binds_observer_only_while_enabled():
    sim_off = Simulation()
    assert sim_off._observer is None
    rec = recorder.enable()
    sim_on = Simulation()
    assert sim_on._observer is not None
    recorder.disable()
    # binding happened at construction: the engine built while enabled keeps
    # feeding the recorder it was bound to, the other never does
    sim_on.schedule(1.0, lambda: None)
    sim_on.drain()
    assert rec.engine_stats["run"][0] == 1


def test_placement_scores_are_recorded():
    """task_placed carries the winning F(t,w); finite and non-negative."""
    rec = recorder.enable()
    _run()
    recorder.disable()
    placed = [e for e in rec.events if e["kind"] == ev.TASK_PLACED]
    assert placed
    for e in placed:
        assert e["score"] >= 0.0
        assert e["worker"] >= 0
        assert e["n_mt"] >= 1


def test_bypass_lane_flagged_in_mt_start():
    rec = recorder.enable()
    _run()
    recorder.disable()
    starts = [e for e in rec.events if e["kind"] == ev.MT_START]
    assert starts
    queued_ids = {
        (e["unit"], e["job"], e["mt"])
        for e in rec.events
        if e["kind"] == ev.QUEUE_PUSH
    }
    for e in starts:
        was_queued = (e["unit"], e["job"], e["mt"]) in queued_ids
        assert e["bypass"] == (not was_queued)
        if e["bypass"]:
            assert e["rtype"] == "network"  # only small transfers bypass
