"""Telemetry collector: bit-identity guarantees, conservation, summaries."""

import json
import pickle

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.faults import FaultPlan, GrantTimeout, RetryPolicy, WorkerBlackout, WorkerCrash
from repro.metrics import compute_metrics
from repro.obs import telemetry
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch_workload


def _small_workload():
    return tpch_workload(
        n_jobs=6, scale=0.02, arrival_interval=0.5, max_parallelism=64,
        partition_mb=12.0, seed=5,
    )


FAULT_PLAN = FaultPlan((
    WorkerBlackout(at=2.0, worker=1, duration=4.0),
    WorkerCrash(at=6.0, worker=2),
    GrantTimeout(at=3.0, worker=0, delay=1.0),
))


def _run(policy="srjf", legacy=False, faults=None, retry=None):
    cluster = Cluster(
        ClusterSpec(num_machines=3, machine=ClusterSpec.paper_cluster().machine)
    )
    system = UrsaSystem(
        cluster, UrsaConfig(policy=policy, legacy_tick=legacy,
                            faults=faults, retry=retry)
    )
    submit_workload(system, _small_workload())
    system.run(max_events=50_000_000)
    return pickle.dumps(compute_metrics(system))


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def test_enable_disable_lifecycle():
    assert telemetry.TELEMETRY is None
    tel = telemetry.enable(interval=0.5)
    assert telemetry.TELEMETRY is tel
    assert tel.interval == 0.5
    assert telemetry.disable() is tel
    assert telemetry.TELEMETRY is None
    assert telemetry.disable() is None  # idempotent


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        telemetry.enable(interval=0.0)


def test_disabled_run_collects_nothing():
    _run()
    assert telemetry.TELEMETRY is None


def test_telemetry_on_metrics_bit_identical_to_off():
    """Telemetry is pure observation: enabling it changes no metric byte."""
    base = _run()
    tel = telemetry.enable()
    on = _run()
    telemetry.disable()
    assert on == base
    s = tel.summary()["units"]["run"]
    assert s["counters"]["grants"] > 0
    assert s["counters"]["jobs_completed"] == 6


def test_optimized_and_legacy_emit_identical_telemetry():
    """The reference scheduler flows through the same hooks as the fast
    path, so the whole summary — series included — matches bit-for-bit."""
    tel_opt = telemetry.enable()
    metrics_opt = _run(legacy=False)
    telemetry.disable()
    tel_leg = telemetry.enable()
    metrics_leg = _run(legacy=True)
    telemetry.disable()
    assert metrics_opt == metrics_leg
    assert json.dumps(tel_opt.summary(), sort_keys=True) == json.dumps(
        tel_leg.summary(), sort_keys=True
    )


def test_failure_free_grant_release_conservation():
    tel = telemetry.enable()
    _run()
    telemetry.disable()
    c = tel.summary()["units"]["run"]["counters"]
    assert c["grants"] == c["releases"] + c["aborts"]
    assert c["aborts"] == 0
    assert c["queue_pushes"] == c["queue_pops"] + c["queue_evicted"]


def test_series_are_nonempty_and_exact():
    tel = telemetry.enable()
    _run()
    telemetry.disable()
    s = tel.summary()["units"]["run"]
    cpu = s["utilization"]["cpu"]
    assert cpu["capacity"] > 0
    assert len(cpu["series"]) > 1
    assert cpu["busy_seconds"] > 0.0
    # the series mean (weighted by bin coverage) matches the exact integral
    assert 0.0 < cpu["mean"] < 1.0
    assert s["sim_end"] > 0.0
    assert s["engine_events"] > 0
    assert s["alloc_latency"]["cpu"]["count"] > 0
    assert s["jct"]["count"] == 6


def test_fault_run_conservation_and_fault_metrics():
    """Aborts account for every grant torn down by the fault layer; the
    push/pop/evict identity holds; fault counters are populated."""
    base = _run(policy="ejf", faults=FAULT_PLAN, retry=RetryPolicy(max_attempts=4))
    tel = telemetry.enable()
    on = _run(policy="ejf", faults=FAULT_PLAN, retry=RetryPolicy(max_attempts=4))
    telemetry.disable()
    assert on == base  # telemetry-off bit-identity holds under faults too
    c = tel.summary()["units"]["run"]["counters"]
    assert c["aborts"] > 0
    assert c["grants"] == c["releases"] + c["aborts"]
    assert c["queue_pushes"] == c["queue_pops"] + c["queue_evicted"]
    assert c["monotasks_lost"] > 0
    assert c["retries"] > 0
    assert c["worker_down"] == 2  # blackout + crash
    f = tel.summary()["units"]["run"]["faults"]
    assert f["repair_count"] >= 1  # the blackout rejoined
    assert f["recovery_count"] >= 1 and f["recovery_mean_s"] > 0.0
    assert f["wasted_work_mb"] > 0.0


def test_unit_labels_partition_metrics():
    tel = telemetry.enable()
    tel.begin_unit("a")
    _run()
    tel.begin_unit("b")
    _run(policy="ejf")
    telemetry.disable()
    summary = tel.summary()
    assert set(summary["units"]) == {"a", "b"}
    ca = summary["units"]["a"]["counters"]
    cb = summary["units"]["b"]["counters"]
    assert ca["jobs_completed"] == cb["jobs_completed"] == 6
    assert summary["totals"]["jobs_completed"] == 12
    # the pre-begin_unit "run" placeholder never saw events: dropped
    assert "run" not in summary["units"]


def test_on_unit_end_fires_per_nonempty_unit():
    seen = []
    tel = telemetry.enable()
    tel.on_unit_end = lambda u: seen.append(u.label)
    tel.begin_unit("a")   # seals empty "run": no callback
    _run()
    tel.begin_unit("b")   # seals "a"
    telemetry.disable()   # seals empty-ish "b"? b saw nothing: no callback
    assert seen == ["a"]


def test_summary_is_json_serializable():
    tel = telemetry.enable()
    _run(policy="ejf", faults=FAULT_PLAN, retry=RetryPolicy(max_attempts=4))
    telemetry.disable()
    text = json.dumps(tel.summary(), sort_keys=True)
    assert json.loads(text)["units"]["run"]["counters"]["grants"] > 0


def test_fold_is_idempotent_and_deferred():
    tel = telemetry.enable()
    _run()
    u = tel.units["run"]
    assert u.log  # aggregation deferred while the unit is hot
    first = json.dumps(telemetry.unit_summary(u), sort_keys=True)
    assert not u.log  # folded by the summary
    again = json.dumps(telemetry.unit_summary(u), sort_keys=True)
    telemetry.disable()
    assert first == again
