"""Critical-path attribution invariants: the sum-to-JCT identity, segment
tiling, cross-engine digest pins, and the idle-time blame ledger."""

import contextlib
import io
import pickle

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.metrics import compute_metrics
from repro.obs import attribution as attr_mod
from repro.obs import recorder
from repro.obs.critpath import critical_path, parse_events
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.scheduler import vector as vector_mod
from repro.workloads import submit_workload, tpch_workload


def _small_workload():
    return tpch_workload(
        n_jobs=6, scale=0.02, arrival_interval=0.5, max_parallelism=64,
        partition_mb=12.0, seed=5,
    )


def _run(policy="srjf", legacy=False):
    cluster = Cluster(
        ClusterSpec(num_machines=3, machine=ClusterSpec.paper_cluster().machine)
    )
    system = UrsaSystem(cluster, UrsaConfig(policy=policy, legacy_tick=legacy))
    submit_workload(system, _small_workload())
    system.run(max_events=50_000_000)
    assert system.all_done
    return pickle.dumps(compute_metrics(system))


def _traced_run(**kw):
    rec = recorder.enable()
    metrics = _run(**kw)
    recorder.disable()
    return rec, metrics


@pytest.fixture(autouse=True)
def _clean_recorder():
    recorder.disable()
    yield
    recorder.disable()


# ----------------------------------------------------------------------
# the sum-to-JCT identity
# ----------------------------------------------------------------------
def test_every_ledger_sums_to_jct():
    rec, _ = _traced_run()
    result = attr_mod.attribute(rec.events)
    assert attr_mod.validate(result) == []
    jobs = [
        entry
        for unit in result["units"].values()
        for entry in unit["jobs"].values()
    ]
    assert len(jobs) == 6
    for entry in jobs:
        # far tighter than the 1e-9 CI gate: the segments tile [submit,
        # finish], so the sum telescopes to JCT up to float associativity
        assert attr_mod.sum_error(entry) < 1e-12
        assert all(v >= 0.0 for v in entry["ledger"].values())


def test_critical_path_segments_tile_the_jct_window():
    rec, _ = _traced_run()
    units = parse_events(rec.events)
    (unit,) = units.values()
    for job in unit.jobs.values():
        segs = critical_path(unit, job)
        assert segs, "completed job must have a non-empty critical path"
        assert segs[0]["t0"] == job.submit_t
        assert segs[-1]["t1"] == job.finish_t
        for a, b in zip(segs, segs[1:]):
            assert a["t1"] == b["t0"]  # contiguous, no gaps or overlap
        for seg in segs:
            assert seg["t0"] < seg["t1"]
            assert seg["label"] in attr_mod.CATEGORIES


def test_validate_flags_broken_ledger():
    rec, _ = _traced_run()
    result = attr_mod.attribute(rec.events)
    (unit,) = result["units"].values()
    jid = next(iter(unit["jobs"]))
    unit["jobs"][jid]["ledger"]["compute"] += 1.0
    errs = attr_mod.validate(result)
    assert len(errs) == 1 and f"job {jid}" in errs[0]


# ----------------------------------------------------------------------
# cross-engine digest pins
# ----------------------------------------------------------------------
def test_attribution_identical_optimized_vs_legacy_tick():
    rec_opt, _ = _traced_run(legacy=False)
    rec_leg, _ = _traced_run(legacy=True)
    d_opt = attr_mod.attribution_digest(attr_mod.attribute(rec_opt.events))
    d_leg = attr_mod.attribution_digest(attr_mod.attribute(rec_leg.events))
    assert d_opt == d_leg


def test_attribution_identical_scalar_vs_vector_placement():
    prev = vector_mod.get_default_mode()
    try:
        vector_mod.set_default_mode("scalar")
        rec_s, _ = _traced_run()
        vector_mod.set_default_mode("vector")
        rec_v, _ = _traced_run()
    finally:
        vector_mod.set_default_mode(prev)
    d_s = attr_mod.attribution_digest(attr_mod.attribute(rec_s.events))
    d_v = attr_mod.attribution_digest(attr_mod.attribute(rec_v.events))
    assert d_s == d_v


def test_render_json_round_trips_and_digest_is_stable():
    rec, _ = _traced_run()
    result = attr_mod.attribute(rec.events)
    import json

    assert json.loads(attr_mod.render_json(result)) == result
    # pickling the events (what the parallel runner ships) must not change
    # a byte of the artifact
    thawed = pickle.loads(pickle.dumps(rec.events))
    assert attr_mod.render_json(attr_mod.attribute(thawed)) == \
        attr_mod.render_json(result)


def test_serial_vs_parallel_attribution_byte_identical():
    """Pool workers record locally and the parent splices the streams in
    submission order, so the attribution artifact must not differ by a
    byte between workers=0 and a real process pool."""
    from repro.experiments.common import SCALES
    from repro.perf import ParallelRunner

    def traced(workers):
        rec = recorder.enable()
        try:
            runner = ParallelRunner(workers=workers)
            with contextlib.redirect_stdout(io.StringIO()):
                runner.run("fig8", SCALES["tiny"])
            runner.close()
        finally:
            recorder.disable()
        return rec

    rec_s, rec_p = traced(0), traced(2)
    assert rec_s.events == rec_p.events
    text_s = attr_mod.render_json(attr_mod.attribute(rec_s.events))
    text_p = attr_mod.render_json(attr_mod.attribute(rec_p.events))
    assert text_s == text_p


# ----------------------------------------------------------------------
# analysis is pure observation
# ----------------------------------------------------------------------
def test_analysis_does_not_perturb_metrics_or_events():
    base = _run()
    rec, traced = _traced_run()
    assert traced == base  # tracing itself is bit-neutral
    frozen = pickle.dumps(rec.events)
    attr_mod.attribute(rec.events)
    assert pickle.dumps(rec.events) == frozen  # attribute() is read-only


# ----------------------------------------------------------------------
# idle-time blame ledger
# ----------------------------------------------------------------------
def test_idle_blame_bounded_by_capacity():
    rec, _ = _traced_run()
    result = attr_mod.attribute(rec.events)
    (unit,) = result["units"].values()
    idle = unit["idle"]
    assert idle["per_worker"], "Ursa unit must expose per-worker ledgers"
    for rtype in attr_mod.RTYPES:
        total_idle = sum(idle["totals"][rtype].values())
        cap = idle["capacity_seconds"][rtype]
        assert cap > 0
        assert 0.0 <= total_idle <= cap + 1e-9
        per_worker_sum = sum(
            sum(w[rtype].values()) for w in idle["per_worker"].values()
        )
        assert per_worker_sum == pytest.approx(total_idle, abs=1e-9)


def test_idle_blame_distinguishes_no_work_from_blocked():
    """With a tiny trickled workload both 'no spare work anywhere' and
    'work existed but policy kept it off this slot' must show up."""
    rec, _ = _traced_run()
    result = attr_mod.attribute(rec.events)
    (unit,) = result["units"].values()
    causes = unit["idle"]["totals"]["cpu"]
    assert causes["no_work"] > 0.0
    assert causes["blocked_policy"] > 0.0
    assert causes["fault_down"] == 0.0  # failure-free run


def test_flow_enriched_chrome_trace_validates():
    """--analyze enriches trace.json with critical-path flow arrows; every
    arrow must be a matched s/f pair anchored to real run slices."""
    from repro.obs import chrome_trace, validate_chrome_trace

    rec, _ = _traced_run()
    attr = attr_mod.attribute(rec.events)
    doc = chrome_trace(rec.events, attribution=attr)
    assert validate_chrome_trace(doc) == []
    flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
    assert flows, "multi-monotask critical paths must emit flow arrows"
    assert {e["ph"] for e in flows} == {"s", "f"}


# ----------------------------------------------------------------------
# reporting helpers
# ----------------------------------------------------------------------
def test_top_jobs_sorted_by_jct_desc():
    rec, _ = _traced_run()
    result = attr_mod.attribute(rec.events)
    rows = attr_mod.top_jobs(result, n=3)
    assert len(rows) == 3
    jcts = [entry["jct"] for _, _, entry in rows]
    assert jcts == sorted(jcts, reverse=True)
