"""Percentile math and trace-derived latency distributions."""

import numpy as np
import pytest

from repro.obs import Dist, derive_latency, dist, percentile
from repro.obs import events as ev


# ----------------------------------------------------------------------
# percentile / dist
# ----------------------------------------------------------------------
def test_percentile_matches_numpy_linear_interpolation():
    values = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 9.7, 9.3])
    for q in (0.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0):
        assert percentile(values, q) == pytest.approx(np.percentile(values, q))


def test_percentile_single_sample():
    assert percentile([7.0], 0.0) == 7.0
    assert percentile([7.0], 50.0) == 7.0
    assert percentile([7.0], 100.0) == 7.0


def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], -1.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def test_dist_summary():
    d = dist([4.0, 1.0, 3.0, 2.0])
    assert isinstance(d, Dist)
    assert d.count == 4
    assert d.mean == pytest.approx(2.5)
    assert d.p50 == pytest.approx(2.5)
    assert d.max == 4.0
    assert d.row()["p95"] == d.p95


def test_dist_empty_is_none():
    assert dist([]) is None


# ----------------------------------------------------------------------
# derive_latency
# ----------------------------------------------------------------------
def _e(kind, t, **fields):
    fields.update(t=t, kind=kind, unit=fields.pop("unit", "run"))
    return fields


def test_queued_monotask_alloc_and_queue_wait():
    events = [
        _e(ev.QUEUE_PUSH, 1.0, worker=0, rtype="disk", job=0, mt=7, qlen=1),
        _e(ev.MT_START, 3.5, worker=0, rtype="disk", job=0, mt=7, running=1,
           bypass=False),
    ]
    stats = derive_latency(events)
    d = stats["alloc_latency"]["disk"]
    assert d.count == 1 and d.p50 == pytest.approx(2.5)
    q = stats["queue_wait"]["disk"]
    assert q.count == 1 and q.max == pytest.approx(2.5)


def test_bypass_monotask_is_zero_alloc_and_excluded_from_queue_wait():
    events = [
        _e(ev.MT_START, 2.0, worker=1, rtype="network", job=0, mt=9, running=0,
           bypass=True),
    ]
    stats = derive_latency(events)
    d = stats["alloc_latency"]["network"]
    assert d.count == 1 and d.max == 0.0
    assert "network" not in stats["queue_wait"]


def test_placement_and_admission_latency():
    events = [
        _e(ev.JOB_ADMIT, 5.0, job=0, waited=4.25, reserved_mb=100.0),
        _e(ev.TASK_READY, 6.0, job=0, task=3, stage=0, n_mt=2, input_mb=1.0),
        _e(ev.TASK_PLACED, 6.75, job=0, task=3, worker=2, score=0.5, n_mt=2),
    ]
    stats = derive_latency(events)
    assert stats["placement_latency"].max == pytest.approx(0.75)
    assert stats["admission_wait"].max == pytest.approx(4.25)


def test_units_do_not_cross_match():
    """Identical (job, mt) ids in different units must stay separate."""
    events = [
        _e(ev.QUEUE_PUSH, 1.0, worker=0, rtype="cpu", job=0, mt=1, qlen=1,
           unit="u1"),
        # same ids in u2, pushed later: matching across units would yield a
        # negative latency for u1's start
        _e(ev.QUEUE_PUSH, 9.0, worker=0, rtype="cpu", job=0, mt=1, qlen=1,
           unit="u2"),
        _e(ev.MT_START, 2.0, worker=0, rtype="cpu", job=0, mt=1, running=1,
           bypass=False, unit="u1"),
        _e(ev.MT_START, 10.0, worker=0, rtype="cpu", job=0, mt=1, running=1,
           bypass=False, unit="u2"),
    ]
    stats = derive_latency(events)
    d = stats["alloc_latency"]["cpu"]
    assert d.count == 2
    assert d.max == pytest.approx(1.0)
    assert stats["units"] == ["u1", "u2"]


def test_empty_stream():
    stats = derive_latency([])
    assert stats["alloc_latency"] == {}
    assert stats["queue_wait"] == {}
    assert stats["placement_latency"] is None
    assert stats["admission_wait"] is None
    assert stats["n_events"] == 0
    assert stats["units"] == []


# ----------------------------------------------------------------------
# Dist zero-value contract / quartiles
# ----------------------------------------------------------------------
def test_dist_zero_contract():
    z = Dist.zero()
    assert z.count == 0
    assert all(
        getattr(z, f) == 0.0
        for f in ("mean", "p25", "p50", "p75", "p95", "p99", "max")
    )
    row = z.row()
    assert row["count"] == 0 and row["p75"] == 0.0


def test_dist_empty_zero_flag():
    assert dist([], empty_zero=True) == Dist.zero()
    assert dist([]) is None  # default stays "absent metric"


def test_dist_single_sample_percentiles_collapse():
    d = dist([3.5])
    assert d.count == 1
    assert d.p25 == d.p50 == d.p75 == d.p95 == d.p99 == d.max == 3.5


def test_dist_quartiles():
    d = dist([1.0, 2.0, 3.0, 4.0, 5.0])
    assert d.p25 == pytest.approx(2.0)
    assert d.p75 == pytest.approx(4.0)
    assert d.row()["p25"] == d.p25
