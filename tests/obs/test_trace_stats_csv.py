"""CSV output mode of scripts/trace_stats.py."""

import csv
import io
import sys
from pathlib import Path

import pytest

from repro.obs import events as ev
from repro.obs import write_jsonl

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
import trace_stats  # noqa: E402


def _e(kind, t, **fields):
    fields.update(t=t, kind=kind, unit=fields.pop("unit", "run"))
    return fields


def _trace(tmp_path, unit="run"):
    events = [
        _e(ev.JOB_ADMIT, 0.5, job=0, waited=0.5, reserved_mb=64.0, unit=unit),
        _e(ev.QUEUE_PUSH, 1.0, worker=0, rtype="cpu", job=0, mt=1, qlen=1,
           unit=unit),
        _e(ev.MT_START, 1.75, worker=0, rtype="cpu", job=0, mt=1, running=1,
           bypass=False, unit=unit),
    ]
    path = tmp_path / f"{unit}.jsonl"
    write_jsonl(events, path)
    return path, events


def _rows(out: str) -> list[list[str]]:
    return list(csv.reader(io.StringIO(out)))


def test_csv_header_and_unit_column(tmp_path, capsys):
    path, _ = _trace(tmp_path)
    assert trace_stats.main([str(path), "--format", "csv"]) == 0
    rows = _rows(capsys.readouterr().out)
    assert rows[0] == ["unit", "metric", "count", "mean_ms", "p25_ms",
                       "p50_ms", "p75_ms", "p95_ms", "p99_ms", "max_ms"]
    body = rows[1:]
    assert all(r[0] == "all" for r in body)
    alloc = next(r for r in body if r[1] == "alloc[cpu]")
    assert alloc[2] == "1"
    assert float(alloc[9]) == pytest.approx(750.0)  # 0.75 s in ms


def test_csv_emits_no_table_preamble(tmp_path, capsys):
    path, _ = _trace(tmp_path)
    trace_stats.main([str(path), "--format", "csv"])
    out = capsys.readouterr().out
    assert "events" not in out.splitlines()[0]  # no "N events" preamble
    assert "latency distributions" not in out


def test_csv_per_unit_rows(tmp_path, capsys):
    p1, e1 = _trace(tmp_path, unit="u1")
    _, e2 = _trace(tmp_path, unit="u2")
    merged = tmp_path / "merged.jsonl"
    write_jsonl(e1 + e2, merged)
    assert trace_stats.main([str(merged), "--per-unit", "--format", "csv"]) == 0
    rows = _rows(capsys.readouterr().out)
    units = {r[0] for r in rows[1:]}
    assert units == {"u1", "u2"}
    # header appears exactly once even across units
    assert sum(1 for r in rows if r[:2] == ["unit", "metric"]) == 1


def test_table_format_unchanged(tmp_path, capsys):
    path, _ = _trace(tmp_path)
    assert trace_stats.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "3 events" in out
    assert "latency distributions" in out


def test_empty_trace_errors(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert trace_stats.main([str(path), "--format", "csv"]) == 1


# ----------------------------------------------------------------------
# --events raw dump (satellite: csv.writer quoting)
# ----------------------------------------------------------------------
def test_events_csv_quotes_hostile_payloads(tmp_path, capsys):
    """Payload cells are JSON (always contain commas) and may embed quotes
    and newlines; the dump must round-trip through csv.reader unchanged."""
    import json

    events = [
        _e(ev.JOB_SUBMIT, 0.0, job=0, name='q1,"smoke", line1\nline2',
           mem_mb=64.0, qlen=1),
        _e(ev.QUEUE_PUSH, 1.0, worker=0, rtype="cpu", job=0, mt=1, qlen=1),
    ]
    path = tmp_path / "hostile.jsonl"
    write_jsonl(events, path)
    assert trace_stats.main([str(path), "--format", "csv", "--events"]) == 0
    rows = _rows(capsys.readouterr().out)
    assert rows[0] == ["unit", "t", "kind", "payload"]
    assert len(rows) == 3
    payload = json.loads(rows[1][3])
    assert payload["name"] == 'q1,"smoke", line1\nline2'
    assert rows[2][2] == ev.QUEUE_PUSH


def test_events_requires_csv_format(tmp_path):
    path, _ = _trace(tmp_path)
    with pytest.raises(SystemExit):
        trace_stats.main([str(path), "--events"])
