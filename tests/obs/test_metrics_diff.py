"""The telemetry regression gate must fail loudly on injected drift."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
import metrics_diff  # noqa: E402


def _baseline(metrics, tolerances=None):
    return {
        "canonical": metrics_diff.CANONICAL,
        "tolerances": tolerances or {"default_rel": 0.0, "overrides": {}},
        "metrics": dict(metrics),
    }


BASE = {
    "run.counters.grants": 128.0,
    "run.sim_end": 42.5,
    "run.utilization.cpu.mean": 0.61,
}


def test_diff_clean_when_identical():
    assert metrics_diff.diff(_baseline(BASE), dict(BASE)) == []


def test_diff_flags_drift_with_zero_default_tolerance():
    candidate = dict(BASE, **{"run.counters.grants": 129.0})
    failures = metrics_diff.diff(_baseline(BASE), candidate)
    assert len(failures) == 1
    assert failures[0].startswith("DRIFT")
    assert "run.counters.grants" in failures[0]


def test_diff_flags_missing_and_new_metrics():
    candidate = dict(BASE)
    del candidate["run.sim_end"]
    candidate["run.counters.surprise"] = 1.0
    failures = metrics_diff.diff(_baseline(BASE), candidate)
    kinds = sorted(line.split()[0] for line in failures)
    assert kinds == ["MISSING", "NEW"]


def test_tolerance_override_allows_bounded_drift():
    tol = {"default_rel": 0.0,
           "overrides": {"run.utilization.*": 0.05}}
    candidate = dict(BASE, **{"run.utilization.cpu.mean": 0.62})  # ~1.6% off
    assert metrics_diff.diff(_baseline(BASE, tol), candidate) == []
    candidate["run.utilization.cpu.mean"] = 0.70  # ~15% off: past override
    failures = metrics_diff.diff(_baseline(BASE, tol), candidate)
    assert len(failures) == 1 and "DRIFT" in failures[0]


def test_tolerance_none_marks_metric_informational():
    tol = {"default_rel": 0.0, "overrides": {"run.sim_end": None}}
    candidate = dict(BASE, **{"run.sim_end": 99.0})
    assert metrics_diff.diff(_baseline(BASE, tol), candidate) == []


def test_flatten_skips_lists_and_bools():
    flat = {}
    metrics_diff._flatten(
        "u", {"a": 1, "b": {"c": 2.5}, "series": [1, 2], "flag": True}, flat
    )
    assert flat == {"u.a": 1, "u.b.c": 2.5}


# ----------------------------------------------------------------------
# CLI: check / validate-prom exit codes
# ----------------------------------------------------------------------
def test_cmd_check_exits_nonzero_on_injected_regression(tmp_path, capsys):
    base_path = tmp_path / "baseline.json"
    cand_path = tmp_path / "candidate.json"
    base_path.write_text(json.dumps(_baseline(BASE)))
    cand_path.write_text(json.dumps(dict(BASE, **{"run.sim_end": 43.0})))
    rc = metrics_diff.main(
        ["check", "--baseline", str(base_path), "--candidate", str(cand_path)]
    )
    assert rc == 1
    assert "DRIFT" in capsys.readouterr().out


def test_cmd_check_ok_on_matching_candidate(tmp_path, capsys):
    base_path = tmp_path / "baseline.json"
    cand_path = tmp_path / "candidate.json"
    base_path.write_text(json.dumps(_baseline(BASE)))
    # a full baseline-shaped candidate file is accepted too
    cand_path.write_text(json.dumps(_baseline(BASE)))
    rc = metrics_diff.main(
        ["check", "--baseline", str(base_path), "--candidate", str(cand_path)]
    )
    assert rc == 0
    assert "OK" in capsys.readouterr().out


def test_cmd_check_missing_baseline_is_usage_error(tmp_path):
    rc = metrics_diff.main(
        ["check", "--baseline", str(tmp_path / "nope.json"),
         "--candidate", str(tmp_path / "nope.json")]
    )
    assert rc == 2


def test_cmd_validate_prom(tmp_path, capsys):
    good = tmp_path / "good.prom"
    good.write_text("# TYPE m gauge\nm 1\n")
    bad = tmp_path / "bad.prom"
    bad.write_text("not a sample line\n")
    assert metrics_diff.main(["validate-prom", str(good)]) == 0
    assert metrics_diff.main(["validate-prom", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "OK" in out and "error" in out


def test_committed_baseline_shape():
    """The repo's committed baseline must stay loadable and gated at zero
    tolerance with the documented canonical spec."""
    doc = json.loads(
        (Path(__file__).resolve().parents[2] / "BENCH_metrics.json").read_text()
    )
    assert doc["canonical"] == metrics_diff.CANONICAL
    assert doc["tolerances"]["default_rel"] == 0.0
    assert len(doc["metrics"]) > 100
    assert doc["wall_clock"]["metrics_bit_identical"] is True
    # self-diff of the committed metrics is clean by construction
    assert metrics_diff.diff(doc, dict(doc["metrics"])) == []
