# test package
