"""Cross-layer integration tests: workloads → systems → metrics."""

import pytest

from repro.baselines import MonoSparkApp, YarnSystem, spark_config
from repro.cluster import Cluster, ClusterSpec
from repro.experiments.common import SCALES, build_system
from repro.metrics import compute_metrics
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import (
    make_lr_job,
    make_pagerank_job,
    submit_workload,
    tpch_workload,
)


def small_spec():
    return ClusterSpec(num_machines=4, machine=ClusterSpec.paper_cluster().machine)


def small_tpch():
    return tpch_workload(
        n_jobs=8, scale=0.02, arrival_interval=0.5, max_parallelism=128,
        partition_mb=12.0, seed=5,
    )


@pytest.mark.parametrize("name", ["ursa-ejf", "ursa-srjf", "y+s", "y+t", "y+u",
                                  "tetris", "tetris2", "capacity"])
def test_every_system_completes_the_same_workload(name):
    cluster = Cluster(small_spec())
    system = build_system(name, cluster)
    jobs = submit_workload(system, small_tpch())
    system.run(max_events=50_000_000)
    assert system.all_done
    m = compute_metrics(system)
    assert m.makespan > 0 and m.mean_jct > 0
    assert 0 < m.se_cpu <= 1.001
    assert 0 < m.ue_cpu <= 1.001


def test_build_system_rejects_unknown_name():
    with pytest.raises(ValueError):
        build_system("nope", Cluster(small_spec()))


def test_ursa_vs_spark_headline_shape():
    """The paper's core claim end-to-end at integration-test scale."""
    ursa = UrsaSystem(Cluster(small_spec()))
    submit_workload(ursa, small_tpch())
    ursa.run(max_events=50_000_000)
    spark = YarnSystem(Cluster(small_spec()), spark_config())
    submit_workload(spark, small_tpch())
    spark.run(max_events=50_000_000)
    mu, ms = compute_metrics(ursa), compute_metrics(spark)
    assert mu.ue_cpu > ms.ue_cpu
    assert mu.makespan <= ms.makespan * 1.1


def test_iterative_jobs_run_on_all_schedulers():
    wl = [
        (make_lr_job(data_mb=400.0, iterations=3, parallelism=32), 0.0),
        (make_pagerank_job(graph_mb=300.0, iterations=3, parallelism=32), 0.5),
    ]
    for name in ("ursa-ejf", "y+s", "y+u"):
        cluster = Cluster(small_spec())
        system = build_system(name, cluster)
        jobs = submit_workload(system, wl)
        system.run(max_events=50_000_000)
        assert system.all_done, name
        # cached datasets pinned the iteration tasks under Ursa
        if name == "ursa-ejf":
            pinned = [
                t for j in jobs for t in j.plan.tasks if t.locality is not None
            ]
            assert pinned
            assert all(t.worker == t.locality for t in pinned)


def test_determinism_same_seed_same_result():
    def run():
        cluster = Cluster(small_spec())
        system = UrsaSystem(cluster, UrsaConfig())
        submit_workload(system, small_tpch(), seed=3)
        system.run(max_events=50_000_000)
        return compute_metrics(system)

    a, b = run(), run()
    assert a.makespan == b.makespan
    assert a.jcts == b.jcts


def test_scales_registry_sane():
    for name, sc in SCALES.items():
        assert sc.name == name
        assert sc.workload_scale > 0
        assert sc.cluster.num_machines > 0
