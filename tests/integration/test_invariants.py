"""Property-based system invariants: whatever random workload runs, the
conservation and safety laws of the simulated cluster must hold."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec
from repro.metrics import compute_metrics
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.simcore import derive_rng
from repro.workloads import JobSpec, StageSpec, submit_workload


@st.composite
def random_jobspecs(draw):
    n_stages = draw(st.integers(min_value=1, max_value=4))
    stages = []
    for i in range(n_stages):
        parallelism = draw(st.integers(min_value=1, max_value=12))
        if i == 0:
            stages.append(
                StageSpec(
                    parallelism=parallelism,
                    source_mb=draw(st.floats(min_value=1.0, max_value=200.0)),
                    from_disk=draw(st.booleans()),
                    expand=draw(st.floats(min_value=0.1, max_value=2.0)),
                    cpu_factor=draw(st.floats(min_value=0.5, max_value=3.0)),
                    skew_sigma=draw(st.floats(min_value=0.0, max_value=1.0)),
                )
            )
        else:
            stages.append(
                StageSpec(
                    parallelism=parallelism,
                    shuffle_parents=(i - 1,),
                    expand=draw(st.floats(min_value=0.1, max_value=2.0)),
                    cpu_factor=draw(st.floats(min_value=0.5, max_value=3.0)),
                    skew_sigma=draw(st.floats(min_value=0.0, max_value=1.0)),
                )
            )
    return JobSpec(
        "prop",
        stages,
        requested_memory_mb=draw(st.floats(min_value=64.0, max_value=4096.0)),
        memory_accuracy=draw(st.floats(min_value=0.5, max_value=1.0)),
    )


@settings(max_examples=15, deadline=None)
@given(st.lists(random_jobspecs(), min_size=1, max_size=3), st.sampled_from(["ejf", "srjf"]))
def test_property_any_workload_obeys_invariants(specs, policy):
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    ursa = UrsaSystem(cluster, UrsaConfig(policy=policy))
    jobs = submit_workload(ursa, [(s, 0.3 * i) for i, s in enumerate(specs)])
    ursa.run(max_events=5_000_000)

    # liveness: everything finishes
    assert all(j.done for j in jobs)

    # resource conservation: all reservations returned
    for m in cluster.machines:
        assert m.allocated_cores == 0
        assert m.memory.used == pytest.approx(0.0, abs=1e-6)
        assert m.memory_in_use == pytest.approx(0.0, abs=1e-6)
    assert ursa.admission.reserved_mb == pytest.approx(0.0, abs=1e-6)

    # Ursa identity: allocated CPU time == used CPU time (per-monotask grain)
    end = ursa.makespan() + 1.0
    assert cluster.integrate("cpu_alloc", 0, end) == pytest.approx(
        cluster.integrate("cpu_used", 0, end), rel=1e-6
    )

    # metrics well-formed
    m = compute_metrics(ursa)
    assert 0 < m.se_cpu <= 1.0 + 1e-9
    assert 0 < m.ue_cpu <= 1.0 + 1e-9
    assert m.makespan >= max(j.jct for j in jobs) - 1e-9

    # every monotask ran within its task's placement window, on one worker
    for j in jobs:
        for t in j.plan.tasks:
            assert t.worker is not None
            for mt in t.monotasks:
                assert mt.finished_at is not None
