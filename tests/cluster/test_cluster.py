"""Tests for machine/cluster wiring and accounting ledgers."""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec
from repro.simcore import MaxMinFabric, ReceiverSideFabric


def test_machine_spec_defaults_match_paper_testbed():
    spec = MachineSpec()
    assert spec.cores == 32
    assert spec.memory_mb == 128 * 1024
    assert spec.net_gbps == 10.0
    assert spec.net_mbps == pytest.approx(1250.0)


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(cores=0)
    with pytest.raises(ValueError):
        MachineSpec(core_rate_mbps=-1)
    with pytest.raises(ValueError):
        MachineSpec(memory_mb=0)
    with pytest.raises(ValueError):
        MachineSpec(net_gbps=0)
    with pytest.raises(ValueError):
        MachineSpec(disks=0)


def test_cluster_spec_totals_and_validation():
    spec = ClusterSpec()
    assert spec.num_machines == 20
    assert spec.total_cores == 640
    assert spec.total_memory_mb == 20 * 128 * 1024
    with pytest.raises(ValueError):
        ClusterSpec(num_machines=0)
    with pytest.raises(ValueError):
        ClusterSpec(fabric="token-ring")


def test_with_network_changes_only_bandwidth():
    spec = ClusterSpec().with_network(1.0)
    assert spec.machine.net_gbps == 1.0
    assert spec.machine.cores == 32
    assert spec.num_machines == 20


def test_small_cluster_factory():
    spec = ClusterSpec.small(num_machines=3, cores=4)
    assert spec.num_machines == 3
    assert spec.machine.cores == 4


def test_cluster_builds_machines_and_fabric():
    cluster = Cluster(ClusterSpec.small(num_machines=3))
    assert len(cluster.machines) == 3
    assert isinstance(cluster.network, ReceiverSideFabric)
    assert cluster.machine(2).index == 2


def test_cluster_maxmin_fabric_option():
    spec = ClusterSpec.small(num_machines=2)
    cluster = Cluster(ClusterSpec(num_machines=2, machine=spec.machine, fabric="maxmin"))
    assert isinstance(cluster.network, MaxMinFabric)


def test_core_reservation_ledger():
    cluster = Cluster(ClusterSpec.small(num_machines=1, cores=8))
    m = cluster.machine(0)
    m.reserve_cores(4)
    assert m.allocated_cores == 4
    assert m.idle_cores == 4
    m.release_cores(3)
    assert m.allocated_cores == 1
    with pytest.raises(ValueError):
        m.release_cores(2)
    with pytest.raises(ValueError):
        m.reserve_cores(-1)


def test_memory_reservation_ledger():
    cluster = Cluster(ClusterSpec.small(num_machines=1))
    m = cluster.machine(0)
    assert m.try_reserve_memory(1024.0)
    assert m.allocated_memory == 1024.0
    assert m.memory.used == 1024.0
    m.release_memory(1024.0)
    assert m.allocated_memory == 0.0
    assert not m.try_reserve_memory(m.spec.memory_mb * 2)


def test_allocation_trace_integrates_to_core_seconds():
    cluster = Cluster(ClusterSpec.small(num_machines=1, cores=8))
    sim = cluster.sim
    m = cluster.machine(0)
    sim.schedule(1.0, m.reserve_cores, 4)
    sim.schedule(3.0, m.release_cores, 4)
    sim.drain()
    assert m.cpu_alloc.integral(0, 5.0) == pytest.approx(8.0)  # 4 cores * 2 s


def test_cpu_usage_flows_into_cluster_utilization():
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    m0 = cluster.machine(0)
    m0.cpu.submit(100.0, lambda: None)  # 1 core for 10 s
    cluster.sim.drain()
    # one core of eight total busy for 10 of 10 seconds -> 1/8
    assert cluster.mean_utilization("cpu_used", 0, 10.0) == pytest.approx(1 / 8)
    per = cluster.per_machine_utilization("cpu_used", 0, 10.0)
    assert per[0] == pytest.approx(0.25)
    assert per[1] == 0.0


def test_network_usage_traced_through_fabric():
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4))
    net_mbps = cluster.spec.machine.net_mbps
    cluster.network.start_transfer(1, [(0, net_mbps * 2.0)], lambda: None)  # 2 s at full rate
    cluster.sim.drain()
    assert cluster.traces["m1.net_used"].integral(0, 5.0) == pytest.approx(2.0)
    assert cluster.mean_utilization("net_used", 0, 2.0) == pytest.approx(0.5)


def test_utilization_timeseries_percent():
    cluster = Cluster(ClusterSpec.small(num_machines=1, cores=4, core_rate_mbps=10.0))
    m = cluster.machine(0)
    for _ in range(4):
        m.cpu.submit(20.0, lambda: None)  # all cores busy 2 s
    cluster.sim.drain()
    grid, vals = cluster.utilization_timeseries("cpu_used", 0.0, 4.0, dt=1.0)
    assert grid == [0.0, 1.0, 2.0, 3.0]
    assert vals[0] == pytest.approx(100.0)
    assert vals[1] == pytest.approx(100.0)
    assert vals[2] == pytest.approx(0.0)


def test_integrate_sums_over_machines():
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    cluster.machine(0).cpu.submit(100.0, lambda: None)
    cluster.machine(1).cpu.submit(50.0, lambda: None)
    cluster.sim.drain()
    assert cluster.integrate("cpu_used", 0, 20.0) == pytest.approx(15.0)  # 10+5 core-s
