# test package
