# test package
