"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Simulation, SimulationError


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulation()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.drain()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_instant_events_fire_in_schedule_order():
    sim = Simulation()
    fired = []
    for tag in range(10):
        sim.schedule(5.0, fired.append, tag)
    sim.drain()
    assert fired == list(range(10))


def test_callbacks_can_schedule_more_events():
    sim = Simulation()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.drain()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 4.0


def test_call_soon_runs_after_queued_same_instant_events():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, "first")

    def at_one():
        sim.call_soon(fired.append, "soon")

    sim.at(1.0, at_one)
    sim.schedule(1.0, fired.append, "second")
    sim.drain()
    assert fired == ["first", "second", "soon"]


def test_cancel_prevents_firing():
    sim = Simulation()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    assert ev.pending
    assert ev.cancel()
    assert ev.cancelled and not ev.pending
    sim.drain()
    assert fired == []


def test_cancel_twice_returns_false():
    sim = Simulation()
    ev = sim.schedule(1.0, lambda: None)
    assert ev.cancel()
    assert not ev.cancel()


def test_cancel_after_fire_returns_false():
    sim = Simulation()
    ev = sim.schedule(1.0, lambda: None)
    sim.drain()
    assert ev.fired
    assert not ev.cancel()


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_past_absolute_time_rejected():
    sim = Simulation()
    sim.schedule(5.0, lambda: None)
    sim.drain()
    with pytest.raises(SimulationError):
        sim.at(4.0, lambda: None)


def test_nonfinite_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.drain()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulation()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_max_events_guard():
    sim = Simulation()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulation()
    assert not sim.step()
    sim.schedule(1.0, lambda: None)
    assert sim.step()
    assert not sim.step()


def test_events_fired_counter():
    sim = Simulation()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.drain()
    assert sim.events_fired == 5


def test_events_pending_excludes_cancelled():
    sim = Simulation()
    evs = [sim.schedule(1.0, lambda: None) for _ in range(4)]
    evs[0].cancel()
    evs[2].cancel()
    assert sim.events_pending == 2


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_fire_order_is_sorted_by_time(delays):
    """Whatever order events are scheduled, they fire sorted by time with
    insertion order breaking ties."""
    sim = Simulation()
    fired = []
    for idx, d in enumerate(delays):
        sim.schedule(d, fired.append, (d, idx))
    sim.drain()
    assert fired == sorted(fired, key=lambda p: (p[0], p[1]))
    assert len(fired) == len(delays)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=40),
    st.data(),
)
def test_property_cancelled_subset_never_fires(delays, data):
    sim = Simulation()
    fired = []
    handles = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(delays) - 1), max_size=len(delays))
    )
    for i in to_cancel:
        handles[i].cancel()
    sim.drain()
    assert set(fired) == set(range(len(delays))) - to_cancel


# ----------------------------------------------------------------------
# live pending counter + heap compaction
# ----------------------------------------------------------------------
def test_pending_counter_tracks_push_pop_cancel():
    sim = Simulation()
    assert sim.events_pending == 0
    handles = [sim.schedule(float(i), lambda: None) for i in range(10)]
    assert sim.events_pending == 10
    handles[3].cancel()
    handles[7].cancel()
    assert sim.events_pending == 8
    # double-cancel must not decrement twice
    handles[3].cancel()
    assert sim.events_pending == 8
    sim.step()
    assert sim.events_pending == 7
    sim.drain()
    assert sim.events_pending == 0


def test_pending_counter_matches_heap_scan():
    """The O(1) counter agrees with a brute-force scan at every step."""
    sim = Simulation()
    handles = [sim.schedule(float(i % 7), lambda: None) for i in range(50)]
    for i in range(0, 50, 3):
        handles[i].cancel()
    scan = sum(1 for ev in sim._heap if ev.pending)
    assert sim.events_pending == scan
    while sim.step():
        scan = sum(1 for ev in sim._heap if ev.pending)
        assert sim.events_pending == scan


def test_heap_compaction_evicts_cancelled_majority():
    sim = Simulation()
    n = 4 * Simulation.COMPACT_MIN_SIZE
    handles = [sim.schedule(float(i), lambda: None) for i in range(n)]
    assert len(sim._heap) == n
    # cancel just over half: the compactor must kick in and drop them
    for h in handles[: n // 2 + 1]:
        h.cancel()
    assert len(sim._heap) == n - (n // 2 + 1)
    assert sim.events_pending == len(sim._heap)
    # the survivors still fire, in order
    fired = []
    for h in handles[n // 2 + 1:]:
        h.callback = fired.append
        h.args = (h.time,)
    sim.drain()
    assert fired == sorted(fired)
    assert len(fired) == n - (n // 2 + 1)


def test_small_heaps_are_not_compacted():
    sim = Simulation()
    handles = [sim.schedule(float(i), lambda: None) for i in range(10)]
    for h in handles[:9]:
        h.cancel()
    # under COMPACT_MIN_SIZE the cancelled entries stay (lazy deletion)
    assert len(sim._heap) == 10
    assert sim.events_pending == 1
