"""Tests for SharedProcessor (fluid processor sharing) and MemoryLedger."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import (
    InsufficientMemoryError,
    MemoryLedger,
    SharedProcessor,
    Simulation,
    StepSeries,
)


def make_cpu(sim, cores=4, rate=10.0):
    """A CPU pool: `cores` cores at `rate` MB/s each."""
    return SharedProcessor(sim, capacity=cores, unit_rate=rate, per_task_cap=1.0)


def test_single_task_runs_at_full_core_rate():
    sim = Simulation()
    cpu = make_cpu(sim, cores=4, rate=10.0)
    done = []
    cpu.submit(100.0, lambda: done.append(sim.now))
    sim.drain()
    assert done == [pytest.approx(10.0)]


def test_tasks_within_capacity_do_not_interfere():
    sim = Simulation()
    cpu = make_cpu(sim, cores=4, rate=10.0)
    done = []
    for _ in range(4):
        cpu.submit(100.0, lambda: done.append(sim.now))
    sim.drain()
    assert all(t == pytest.approx(10.0) for t in done)


def test_oversubscribed_tasks_slow_down_fairly():
    sim = Simulation()
    cpu = make_cpu(sim, cores=2, rate=10.0)
    done = []
    for _ in range(4):  # demand 4 cores on a 2-core machine
        cpu.submit(100.0, lambda: done.append(sim.now))
    sim.drain()
    # each task gets 2/4 of a core: 5 MB/s, so 20 s
    assert all(t == pytest.approx(20.0) for t in done)


def test_late_arrival_shares_remaining_service():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1, rate=10.0)
    done = {}
    cpu.submit(100.0, lambda: done.setdefault("a", sim.now))
    # at t=5, 50 MB of task a remains; b arrives and they share the core
    sim.run(until=5.0)
    cpu.submit(50.0, lambda: done.setdefault("b", sim.now))
    sim.drain()
    # from t=5 both run at 5 MB/s; both have 50 MB left -> finish at t=15
    assert done["a"] == pytest.approx(15.0)
    assert done["b"] == pytest.approx(15.0)


def test_zero_work_completes_immediately_but_asynchronously():
    sim = Simulation()
    cpu = make_cpu(sim)
    done = []
    req = cpu.submit(0.0, lambda: done.append(sim.now))
    assert done == []  # not synchronous
    assert req.done
    sim.drain()
    assert done == [0.0]


def test_cancel_returns_remaining_work():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1, rate=10.0)
    done = []
    req = cpu.submit(100.0, lambda: done.append("a"))
    sim.run(until=4.0)
    remaining = cpu.cancel(req)
    assert remaining == pytest.approx(60.0)
    sim.drain()
    assert done == []
    assert req.cancelled and not req.active


def test_cancel_speeds_up_survivors():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1, rate=10.0)
    done = {}
    req_a = cpu.submit(100.0, lambda: done.setdefault("a", sim.now))
    cpu.submit(100.0, lambda: done.setdefault("b", sim.now))
    sim.run(until=10.0)  # each has received 50 MB
    cpu.cancel(req_a)
    sim.drain()
    # b's remaining 50 MB now runs at full 10 MB/s -> finishes at t=15
    assert done == {"b": pytest.approx(15.0)}


def test_per_request_speed_and_units_in_use():
    sim = Simulation()
    cpu = make_cpu(sim, cores=4, rate=10.0)
    assert cpu.per_request_speed() == 0.0
    assert cpu.units_in_use == 0.0
    reqs = [cpu.submit(1000.0, lambda: None) for _ in range(2)]
    assert cpu.per_request_speed() == pytest.approx(10.0)
    assert cpu.units_in_use == 2.0
    for _ in range(6):
        cpu.submit(1000.0, lambda: None)
    assert cpu.units_in_use == 4.0
    assert cpu.per_request_speed() == pytest.approx(10.0 * 4 / 8)
    for r in reqs:
        cpu.cancel(r)
    assert cpu.active_count == 6


def test_used_trace_records_units():
    sim = Simulation()
    trace = StepSeries(0.0)
    cpu = SharedProcessor(sim, capacity=2, unit_rate=10.0, used_trace=trace)
    cpu.submit(100.0, lambda: None)  # 10 s
    cpu.submit(50.0, lambda: None)   # 5 s (shares? no: 2 cores, both full rate)
    sim.drain()
    # [0,5): 2 cores; [5,10): 1 core; after: 0
    assert trace.integral(0, 10.0) == pytest.approx(2 * 5 + 1 * 5)
    assert trace.current == 0.0


def test_invalid_construction_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        SharedProcessor(sim, capacity=0, unit_rate=1.0)
    with pytest.raises(ValueError):
        SharedProcessor(sim, capacity=1, unit_rate=0.0)
    with pytest.raises(ValueError):
        SharedProcessor(sim, capacity=1, unit_rate=1.0, per_task_cap=0.0)


def test_negative_or_nan_work_rejected():
    sim = Simulation()
    cpu = make_cpu(sim)
    with pytest.raises(ValueError):
        cpu.submit(-1.0, lambda: None)
    with pytest.raises(ValueError):
        cpu.submit(math.nan, lambda: None)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),   # arrival
            st.floats(min_value=0.1, max_value=200.0),  # work
        ),
        min_size=1,
        max_size=25,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_property_work_conservation(jobs, cores):
    """Total delivered service equals total submitted work, and the busy-core
    integral equals total work / core rate."""
    sim = Simulation()
    trace = StepSeries(0.0)
    rate = 10.0
    cpu = SharedProcessor(sim, capacity=cores, unit_rate=rate, used_trace=trace)
    finish_times = []

    for arrival, work in jobs:
        sim.at(arrival, lambda w=work: cpu.submit(w, lambda: finish_times.append(sim.now)))
    sim.drain()

    assert len(finish_times) == len(jobs)
    total_work = sum(w for _a, w in jobs)
    busy_core_seconds = trace.integral(0, sim.now + 1.0)
    assert busy_core_seconds * rate == pytest.approx(total_work, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8))
def test_property_equal_batch_finishes_together(n, cores):
    """n identical tasks submitted together finish at the same analytic time."""
    sim = Simulation()
    cpu = SharedProcessor(sim, capacity=cores, unit_rate=10.0)
    finish = []
    for _ in range(n):
        cpu.submit(100.0, lambda: finish.append(sim.now))
    sim.drain()
    expected = 100.0 / (10.0 * min(1.0, cores / n))
    assert all(t == pytest.approx(expected) for t in finish)


# ----------------------------------------------------------------------
# MemoryLedger
# ----------------------------------------------------------------------
def test_memory_allocate_and_release():
    sim = Simulation()
    mem = MemoryLedger(sim, 1000.0)
    mem.allocate(400.0)
    assert mem.used == 400.0
    assert mem.available == 600.0
    mem.release(150.0)
    assert mem.used == pytest.approx(250.0)


def test_memory_overallocation_raises():
    sim = Simulation()
    mem = MemoryLedger(sim, 100.0)
    mem.allocate(90.0)
    with pytest.raises(InsufficientMemoryError):
        mem.allocate(20.0)
    assert mem.used == 90.0  # failed allocation changed nothing


def test_memory_try_allocate():
    sim = Simulation()
    mem = MemoryLedger(sim, 100.0)
    assert mem.try_allocate(60.0)
    assert not mem.try_allocate(60.0)
    assert mem.used == 60.0


def test_memory_release_more_than_used_raises():
    sim = Simulation()
    mem = MemoryLedger(sim, 100.0)
    mem.allocate(10.0)
    with pytest.raises(ValueError):
        mem.release(20.0)


def test_memory_negative_amounts_rejected():
    sim = Simulation()
    mem = MemoryLedger(sim, 100.0)
    with pytest.raises(ValueError):
        mem.allocate(-5.0)
    with pytest.raises(ValueError):
        mem.release(-5.0)


def test_memory_trace_records_usage():
    sim = Simulation()
    trace = StepSeries(0.0)
    mem = MemoryLedger(sim, 100.0, used_trace=trace)
    sim.schedule(1.0, mem.allocate, 50.0)
    sim.schedule(3.0, mem.release, 50.0)
    sim.drain()
    assert trace.integral(0, 4.0) == pytest.approx(100.0)  # 50 MB for 2 s


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=30))
def test_property_memory_never_negative_or_overcommitted(amounts):
    sim = Simulation()
    mem = MemoryLedger(sim, 100.0)
    held = []
    for amt in amounts:
        if mem.try_allocate(amt):
            held.append(amt)
        assert 0.0 <= mem.used <= mem.capacity + 1e-9
    for amt in held:
        mem.release(amt)
    assert mem.used == pytest.approx(0.0, abs=1e-9)
