"""Tests for StepSeries / TraceSet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import StepSeries, TraceSet


def test_initial_value_and_current():
    s = StepSeries(3.0)
    assert s.current == 3.0
    assert s.value_at(0.0) == 3.0
    assert s.value_at(100.0) == 3.0


def test_record_and_value_at():
    s = StepSeries(0.0)
    s.record(1.0, 2.0)
    s.record(3.0, 5.0)
    assert s.value_at(0.5) == 0.0
    assert s.value_at(1.0) == 2.0  # right-continuous
    assert s.value_at(2.9) == 2.0
    assert s.value_at(3.0) == 5.0
    assert s.value_at(10.0) == 5.0


def test_same_instant_overwrite_keeps_latest():
    s = StepSeries(0.0)
    s.record(1.0, 2.0)
    s.record(1.0, 7.0)
    assert s.value_at(1.0) == 7.0
    assert len(s) == 2  # no duplicate breakpoints


def test_redundant_record_is_ignored():
    s = StepSeries(1.0)
    s.record(5.0, 1.0)
    assert len(s) == 1


def test_time_going_backwards_raises():
    s = StepSeries(0.0)
    s.record(2.0, 1.0)
    with pytest.raises(ValueError):
        s.record(1.0, 3.0)


def test_add_is_counter_style():
    s = StepSeries(0.0)
    s.add(1.0, 2.0)
    s.add(2.0, 3.0)
    s.add(3.0, -1.0)
    assert s.value_at(2.5) == 5.0
    assert s.current == 4.0


def test_integral_simple_rectangle():
    s = StepSeries(0.0)
    s.record(1.0, 4.0)
    s.record(3.0, 0.0)
    assert s.integral(0.0, 5.0) == pytest.approx(8.0)
    assert s.integral(1.0, 3.0) == pytest.approx(8.0)
    assert s.integral(2.0, 2.5) == pytest.approx(2.0)
    assert s.integral(4.0, 5.0) == 0.0


def test_integral_partial_window_before_first_change():
    s = StepSeries(2.0)
    s.record(10.0, 0.0)
    assert s.integral(5.0, 8.0) == pytest.approx(6.0)


def test_integral_empty_or_inverted_window():
    s = StepSeries(1.0)
    assert s.integral(5.0, 5.0) == 0.0
    assert s.integral(5.0, 3.0) == 0.0


def test_mean():
    s = StepSeries(0.0)
    s.record(0.0, 10.0)
    s.record(5.0, 0.0)
    assert s.mean(0.0, 10.0) == pytest.approx(5.0)
    assert s.mean(0.0, 0.0) == 0.0


def test_resample_windows():
    s = StepSeries(0.0)
    s.record(1.0, 10.0)
    s.record(2.0, 0.0)
    grid, avgs = s.resample(0.0, 4.0, 1.0)
    assert grid == [0.0, 1.0, 2.0, 3.0]
    assert avgs == [pytest.approx(0.0), pytest.approx(10.0), pytest.approx(0.0), pytest.approx(0.0)]


def test_resample_rejects_bad_dt():
    with pytest.raises(ValueError):
        StepSeries().resample(0, 1, 0)


def test_value_at_before_t0_returns_initial():
    """Queries before t=0 extend the initial value backwards."""
    s = StepSeries(4.0)
    s.record(2.0, 9.0)
    assert s.value_at(-1.0) == 4.0
    assert s.value_at(-1e9) == 4.0


def test_integral_clamps_window_to_t0():
    """The series is defined from t=0: an integral window reaching before
    t=0 contributes nothing for the negative part."""
    s = StepSeries(4.0)
    s.record(2.0, 0.0)
    assert s.integral(-5.0, 2.0) == pytest.approx(s.integral(0.0, 2.0))
    assert s.integral(-5.0, 0.0) == 0.0


def test_same_instant_overwrite_at_t0():
    """Overwriting the t=0 breakpoint replaces the initial value."""
    s = StepSeries(1.0)
    s.record(0.0, 6.0)
    assert len(s) == 1
    assert s.value_at(0.0) == 6.0
    assert s.value_at(-1.0) == 6.0  # the initial breakpoint itself changed


def test_same_instant_overwrite_back_to_previous_value():
    """A same-instant overwrite may restore the pre-step value; the
    breakpoint stays but the series reads flat."""
    s = StepSeries(0.0)
    s.record(1.0, 2.0)
    s.record(1.0, 0.0)
    assert s.value_at(0.5) == 0.0
    assert s.value_at(1.0) == 0.0
    assert s.integral(0.0, 2.0) == 0.0


def test_resample_truncates_last_partial_window():
    s = StepSeries(0.0)
    s.record(0.0, 10.0)
    grid, avgs = s.resample(0.0, 2.5, 1.0)
    assert grid == [0.0, 1.0, 2.0]
    # the last window is [2.0, 2.5) and still averages correctly
    assert avgs == [pytest.approx(10.0)] * 3


def test_resample_grid_excludes_t1_under_float_accumulation():
    """0.1+0.1+0.1 > 0.3 in floats; the epsilon guard must still stop the
    grid at exactly three windows instead of emitting a zero-width fourth."""
    s = StepSeries(1.0)
    grid, avgs = s.resample(0.0, 0.3, 0.1)
    assert len(grid) == 3
    assert grid[0] == 0.0
    assert avgs == [pytest.approx(1.0)] * 3


def test_resample_empty_and_inverted_range():
    s = StepSeries(1.0)
    assert s.resample(2.0, 2.0, 1.0) == ([], [])
    assert s.resample(5.0, 2.0, 1.0) == ([], [])


def test_traceset_series_identity_and_names():
    ts = TraceSet()
    a = ts.series("m0.cpu")
    assert ts.series("m0.cpu") is a
    ts.series("m1.cpu")
    assert ts.names() == ["m0.cpu", "m1.cpu"]
    assert "m0.cpu" in ts
    assert ts["m1.cpu"] is ts.series("m1.cpu")


def test_traceset_aggregate_sums_series():
    ts = TraceSet()
    a = ts.series("a")
    b = ts.series("b")
    a.record(1.0, 2.0)
    b.record(2.0, 3.0)
    a.record(3.0, 0.0)
    agg = ts.aggregate(["a", "b"])
    assert agg.value_at(0.5) == 0.0
    assert agg.value_at(1.5) == 2.0
    assert agg.value_at(2.5) == 5.0
    assert agg.value_at(3.5) == 3.0
    assert agg.integral(0, 4.0) == pytest.approx(a.integral(0, 4.0) + b.integral(0, 4.0))


def test_traceset_aggregate_empty_selection():
    ts = TraceSet()
    agg = ts.aggregate([])
    assert agg.value_at(0.0) == 0.0
    assert agg.integral(0.0, 10.0) == 0.0


def test_traceset_aggregate_same_instant_changes():
    """Two series stepping at the same instant fold into one breakpoint."""
    ts = TraceSet()
    a = ts.series("a")
    b = ts.series("b")
    a.record(1.0, 2.0)
    b.record(1.0, 3.0)
    agg = ts.aggregate(["a", "b"])
    assert agg.value_at(0.5) == 0.0
    assert agg.value_at(1.0) == 5.0
    assert len(agg) == 2


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=-50.0, max_value=50.0),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_integral_equals_riemann_sum(points):
    """The exact integral matches a fine Riemann sum of value_at()."""
    s = StepSeries(0.0)
    for t, v in sorted(points, key=lambda p: p[0]):
        s.record(t, v)
    t1 = 101.0
    dt = 0.25
    riemann = sum(s.value_at(k * dt) * dt for k in range(int(t1 / dt)))
    # value_at is right-continuous and breakpoints are floats that rarely hit
    # the grid, so allow a coarse tolerance proportional to dt.
    assert s.integral(0.0, t1) == pytest.approx(riemann, abs=dt * 50.0 * len(points) + 1e-6)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=20),
    st.floats(min_value=0.5, max_value=3.0),
)
def test_property_integral_is_additive_over_subintervals(values, split):
    s = StepSeries(0.0)
    for i, v in enumerate(values):
        s.record(float(i), v)
    t1 = float(len(values))
    mid = min(max(split, 0.0), t1)
    assert s.integral(0, t1) == pytest.approx(s.integral(0, mid) + s.integral(mid, t1))
