"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro.simcore import derive_rng, lognormal_multipliers, spawn_rng


def test_same_path_same_stream():
    a = derive_rng(7, "tpch", 3).integers(0, 1_000_000, size=10)
    b = derive_rng(7, "tpch", 3).integers(0, 1_000_000, size=10)
    assert np.array_equal(a, b)


def test_different_paths_differ():
    a = derive_rng(7, "tpch", 3).integers(0, 1_000_000, size=10)
    b = derive_rng(7, "tpch", 4).integers(0, 1_000_000, size=10)
    c = derive_rng(8, "tpch", 3).integers(0, 1_000_000, size=10)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_string_and_int_path_components():
    # should not raise, and be stable
    a = derive_rng(1, "x", 2, "y").random()
    b = derive_rng(1, "x", 2, "y").random()
    assert a == b


def test_spawn_rng_children_are_independent():
    parent = derive_rng(42)
    kids = spawn_rng(parent, 3)
    draws = [k.integers(0, 10**9) for k in kids]
    assert len(set(draws)) == 3


def test_lognormal_multipliers_mean_near_one():
    rng = derive_rng(0)
    vals = lognormal_multipliers(rng, 200_00, sigma=0.5)
    assert vals.mean() == pytest.approx(1.0, rel=0.05)
    assert (vals > 0).all()


def test_lognormal_multipliers_clip():
    rng = derive_rng(0)
    vals = lognormal_multipliers(rng, 10_000, sigma=2.5, clip=4.0)
    assert vals.max() <= 4.0
    assert vals.min() >= 0.25


def test_lognormal_multipliers_zero_sigma_is_ones():
    rng = derive_rng(0)
    vals = lognormal_multipliers(rng, 5, sigma=0.0)
    assert np.array_equal(vals, np.ones(5))


def test_lognormal_multipliers_empty():
    rng = derive_rng(0)
    assert lognormal_multipliers(rng, 0, sigma=1.0).size == 0
