"""Tests for the network fabrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import MaxMinFabric, ReceiverSideFabric, Simulation, StepSeries


def test_single_transfer_uses_full_downlink():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=2, downlink_mbps=100.0)
    done = []
    net.start_transfer(1, [(0, 500.0)], lambda: done.append(sim.now))
    sim.drain()
    assert done == [pytest.approx(5.0)]


def test_receiver_sharing_halves_rate():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=3, downlink_mbps=100.0)
    done = []
    net.start_transfer(2, [(0, 500.0)], lambda: done.append(("a", sim.now)))
    net.start_transfer(2, [(1, 500.0)], lambda: done.append(("b", sim.now)))
    sim.drain()
    assert dict(done) == {"a": pytest.approx(10.0), "b": pytest.approx(10.0)}


def test_transfers_to_different_receivers_are_independent():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=3, downlink_mbps=100.0)
    done = []
    net.start_transfer(1, [(0, 500.0)], lambda: done.append(sim.now))
    net.start_transfer(2, [(0, 500.0)], lambda: done.append(sim.now))
    sim.drain()
    assert [pytest.approx(5.0)] * 2 == done


def test_multi_source_pull_counts_total_bytes():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=4, downlink_mbps=100.0)
    done = []
    net.start_transfer(3, [(0, 100.0), (1, 200.0), (2, 200.0)], lambda: done.append(sim.now))
    sim.drain()
    assert done == [pytest.approx(5.0)]


def test_local_bytes_skip_the_network():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=2, downlink_mbps=100.0)
    done = []
    net.start_transfer(1, [(1, 1000.0), (0, 100.0)], lambda: done.append(sim.now))
    sim.drain()
    # only the 100 MB remote part costs time
    assert done == [pytest.approx(1.0)]


def test_fully_local_transfer_completes_immediately():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=2, downlink_mbps=100.0)
    done = []
    tr = net.start_transfer(0, [(0, 1000.0)], lambda: done.append(sim.now))
    assert tr.done
    sim.drain()
    assert done == [0.0]


def test_cancel_stops_callback_and_frees_bandwidth():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=3, downlink_mbps=100.0)
    done = []
    tr_a = net.start_transfer(2, [(0, 500.0)], lambda: done.append("a"))
    net.start_transfer(2, [(1, 250.0)], lambda: done.append((sim.now, "b")))
    sim.run(until=1.0)
    net.cancel(tr_a)
    sim.drain()
    # b received 50 MB in [0,1) at half rate, then 200 MB at full rate -> t=3
    assert done == [(pytest.approx(3.0), "b")]


def test_active_transfers_count():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=2, downlink_mbps=100.0)
    assert net.active_transfers(1) == 0
    net.start_transfer(1, [(0, 500.0)], lambda: None)
    net.start_transfer(1, [(0, 500.0)], lambda: None)
    assert net.active_transfers(1) == 2
    sim.drain()
    assert net.active_transfers(1) == 0


def test_receive_rate_reflects_sharing():
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=2, downlink_mbps=100.0)
    net.start_transfer(1, [(0, 500.0)], lambda: None)
    net.start_transfer(1, [(0, 500.0)], lambda: None)
    assert net.receive_rate(1) == pytest.approx(100.0)
    sim.drain()
    assert net.receive_rate(1) == 0.0


def test_invalid_construction():
    sim = Simulation()
    with pytest.raises(ValueError):
        ReceiverSideFabric(sim, num_machines=0, downlink_mbps=10.0)
    with pytest.raises(ValueError):
        ReceiverSideFabric(sim, num_machines=2, downlink_mbps=0.0)


def test_used_trace_integral_equals_bytes_moved():
    sim = Simulation()
    traces = [StepSeries(0.0) for _ in range(2)]
    net = ReceiverSideFabric(sim, num_machines=2, downlink_mbps=100.0, used_traces=traces)
    net.start_transfer(1, [(0, 300.0)], lambda: None)
    sim.drain()
    # trace records downlink units (0..1); 3 s at full utilization
    assert traces[1].integral(0, 10.0) * 100.0 == pytest.approx(300.0)


# ----------------------------------------------------------------------
# MaxMinFabric
# ----------------------------------------------------------------------
def test_maxmin_single_flow_full_rate():
    sim = Simulation()
    net = MaxMinFabric(sim, num_machines=2, downlink_mbps=100.0)
    done = []
    net.start_transfer(1, [(0, 500.0)], lambda: done.append(sim.now))
    sim.drain()
    assert done == [pytest.approx(5.0)]


def test_maxmin_uplink_bottleneck():
    """Two receivers pulling from the same sender are limited by its uplink."""
    sim = Simulation()
    net = MaxMinFabric(sim, num_machines=3, downlink_mbps=100.0, uplink_mbps=100.0)
    done = []
    net.start_transfer(1, [(0, 500.0)], lambda: done.append(sim.now))
    net.start_transfer(2, [(0, 500.0)], lambda: done.append(sim.now))
    sim.drain()
    # uplink of machine 0 is shared: 50 MB/s each -> 10 s
    assert done == [pytest.approx(10.0)] * 2
    # receiver-side model would (wrongly for this topology) say 5 s:
    sim2 = Simulation()
    rx = ReceiverSideFabric(sim2, num_machines=3, downlink_mbps=100.0)
    done2 = []
    rx.start_transfer(1, [(0, 500.0)], lambda: done2.append(sim2.now))
    rx.start_transfer(2, [(0, 500.0)], lambda: done2.append(sim2.now))
    sim2.drain()
    assert done2 == [pytest.approx(5.0)] * 2


def test_maxmin_water_filling_gives_leftover_to_unconstrained():
    """Flows: A->C and B->C plus A->D.  C's downlink splits between the two
    inbound flows; A's uplink splits between its two outbound flows; the
    A->D flow then picks up A's leftover? (With equal caps it stays fair.)"""
    sim = Simulation()
    net = MaxMinFabric(sim, num_machines=4, downlink_mbps=90.0, uplink_mbps=90.0)
    rates = {}

    net.start_transfer(2, [(0, 900.0)], lambda: rates.setdefault("ac", sim.now))
    net.start_transfer(2, [(1, 900.0)], lambda: rates.setdefault("bc", sim.now))
    net.start_transfer(3, [(0, 900.0)], lambda: rates.setdefault("ad", sim.now))
    # C downlink = 90 shared by 2 -> 45 each; A uplink = 90 shared by 2 -> 45
    # each; all three flows run at 45 MB/s -> 20 s.
    sim.drain()
    assert rates["ac"] == pytest.approx(20.0)
    assert rates["bc"] == pytest.approx(20.0)
    assert rates["ad"] == pytest.approx(20.0)


def test_maxmin_local_transfer_is_free():
    sim = Simulation()
    net = MaxMinFabric(sim, num_machines=2, downlink_mbps=100.0)
    done = []
    tr = net.start_transfer(0, [(0, 500.0)], lambda: done.append(sim.now))
    assert tr.done
    sim.drain()
    assert done == [0.0]


def test_maxmin_cancel():
    sim = Simulation()
    net = MaxMinFabric(sim, num_machines=3, downlink_mbps=100.0)
    done = []
    tr = net.start_transfer(2, [(0, 500.0)], lambda: done.append("a"))
    net.start_transfer(2, [(1, 250.0)], lambda: done.append((sim.now, "b")))
    sim.run(until=1.0)
    net.cancel(tr)
    sim.drain()
    assert done == [(pytest.approx(3.0), "b")]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # src
            st.integers(min_value=0, max_value=3),  # dst
            st.floats(min_value=1.0, max_value=300.0),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_maxmin_conserves_bytes(flows):
    """All transfers complete, and the finish time is consistent with total
    bytes vs aggregate capacity bounds."""
    sim = Simulation()
    net = MaxMinFabric(sim, num_machines=4, downlink_mbps=50.0, uplink_mbps=50.0)
    done = []
    remote = [(s, d, b) for s, d, b in flows if s != d]
    for s, d, b in flows:
        net.start_transfer(d, [(s, b)], lambda: done.append(sim.now))
    sim.drain()
    assert len(done) == len(flows)
    if remote:
        total = sum(b for _s, _d, b in remote)
        # finish no earlier than the per-port lower bound
        per_dst: dict[int, float] = {}
        per_src: dict[int, float] = {}
        for s, d, b in remote:
            per_dst[d] = per_dst.get(d, 0.0) + b
            per_src[s] = per_src.get(s, 0.0) + b
        lower = max(
            max(v for v in per_dst.values()) / 50.0,
            max(v for v in per_src.values()) / 50.0,
        )
        assert max(done) >= lower - 1e-6
        # and no later than fully-serialized service on one port
        assert max(done) <= total / 50.0 + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=10))
def test_property_receiver_share_n_equal_pulls(n):
    """n equal pulls into one receiver all finish at n * single-pull time."""
    sim = Simulation()
    net = ReceiverSideFabric(sim, num_machines=3, downlink_mbps=100.0)
    done = []
    for _ in range(n):
        net.start_transfer(2, [(0, 100.0)], lambda: done.append(sim.now))
    sim.drain()
    assert all(t == pytest.approx(n * 1.0) for t in done)
