"""TickProfiler unit tests: enable/disable contract and bookkeeping."""

from repro.perf import profile
from repro.perf.profile import TickProfiler


def test_enable_disable_roundtrip():
    assert profile.PROFILER is None
    prof = profile.enable()
    assert profile.PROFILER is prof
    assert profile.disable() is prof
    assert profile.PROFILER is None
    # disabling when already off is a harmless no-op
    assert profile.disable() is None


def test_enable_replaces_previous_profiler():
    first = profile.enable()
    second = profile.enable()
    try:
        assert second is not first
        assert profile.PROFILER is second
    finally:
        profile.disable()


def test_record_tick_accumulates():
    prof = TickProfiler()
    prof.record_tick(1, 2, 3, 4, 5, assignments=7)
    prof.record_tick(10, 20, 30, 40, 50, assignments=0)
    assert prof.ticks == 2
    assert prof.assignments == 7
    assert prof.phase_ns == {
        "refresh": 11, "resort": 22, "ready": 33, "place": 44, "dispatch": 55,
    }
    assert prof.total_ns == 165


def test_merge_folds_every_counter():
    a, b = TickProfiler(), TickProfiler()
    a.record_tick(1, 1, 1, 1, 1, assignments=2)
    a.stages_scored, a.heap_repushes = 3, 1
    b.record_tick(2, 2, 2, 2, 2, assignments=4)
    b.tasks_scored, b.resort_ticks, b.workers_scanned = 5, 1, 9
    a.merge(b)
    assert a.ticks == 2
    assert a.assignments == 6
    assert a.stages_scored == 3
    assert a.tasks_scored == 5
    assert a.resort_ticks == 1
    assert a.workers_scanned == 9
    assert a.heap_repushes == 1
    assert a.total_ns == 15


def test_as_dict_exposes_counters_and_phases():
    prof = TickProfiler()
    prof.record_tick(1000, 2000, 3000, 4000, 5000, assignments=3)
    d = prof.as_dict()
    assert d["ticks"] == 1
    assert d["assignments"] == 3
    assert d["place_ns"] == 4000
    assert d["dispatch_ns"] == 5000
    assert set(d) >= {"resort_ticks", "stages_scored", "tasks_scored",
                      "workers_scanned", "heap_repushes"}


def test_report_lists_every_phase():
    prof = TickProfiler()
    prof.record_tick(1000, 2000, 3000, 4000, 5000, assignments=3)
    rep = prof.report()
    assert "1 ticks" in rep and "3 assignments" in rep
    for phase in ("refresh", "resort", "ready", "place", "dispatch"):
        assert phase in rep
    assert "resort_ticks=0" in rep


def test_report_on_empty_profiler_does_not_divide_by_zero():
    assert "0 ticks" in TickProfiler().report()
