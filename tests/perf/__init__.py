# test package
