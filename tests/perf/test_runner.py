"""Runner/registry plumbing tests (no heavy simulation)."""

import io
import contextlib

import pytest

from repro.experiments.common import SCALES
from repro.experiments.registry import EXPERIMENTS, SPLIT_EXPERIMENTS, run_all
from repro.perf import ParallelRunner
from repro.perf.units import SplitExperiment


def test_every_experiment_has_a_split():
    assert set(SPLIT_EXPERIMENTS) == set(EXPERIMENTS)
    for split in SPLIT_EXPERIMENTS.values():
        assert isinstance(split, SplitExperiment)


def test_every_split_enumerates_units():
    sc = SCALES["tiny"]
    expected_counts = {
        "table1+fig1": 12,   # 3 engines × 4 jobs
        "table2": 4,
        "table3": 3,
        "table4": 7,
        "table5": 6,         # 3 ratios × 2 systems
        "table6": 6,         # 3 settings × 2 policies
        "fig4+fig5": 7,      # 4 TPC-H systems + 3 TPC-DS systems
        "fig6": 3,           # bandwidths
        "fig7+sec5.2": 3,    # variants
        "fig8": 2,           # job types
        "fig9": 1,
        "fig10": 2,          # policies
        "fig_faults": 6,     # 2 policies × 3 crash counts
        "fig_service": 7,    # 3 processes + rate sweep + noscale control
    }
    for name, split in SPLIT_EXPERIMENTS.items():
        keys = split.unit_keys(sc)
        assert len(keys) == expected_counts[name], name
        assert len(set(map(repr, keys))) == len(keys), f"{name}: duplicate unit keys"


def test_split_kwargs_partitions_display_args():
    split = SPLIT_EXPERIMENTS["fig8"]
    sim, display = split.split_kwargs({"show_charts": False, "seed_offset": 3})
    assert display == {"show_charts": False}
    assert sim == {"seed_offset": 3}


def test_runner_rejects_negative_workers():
    with pytest.raises(ValueError):
        ParallelRunner(workers=-1)


def test_default_workers_serial_when_pool_cannot_help(monkeypatch):
    import repro.perf.runner as runner_mod

    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 1)
    assert runner_mod.default_workers() == 0
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: None)
    assert runner_mod.default_workers() == 0
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 8)
    assert runner_mod.default_workers() == 8


def test_single_worker_runs_in_process(monkeypatch):
    """workers=1 must take the serial path — a one-worker pool pays spawn
    plus pickling for zero overlap."""
    import repro.perf.runner as runner_mod

    def _no_pool(*args, **kwargs):
        pytest.fail("workers=1 must not create a ProcessPoolExecutor")

    monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", _no_pool)
    runner = ParallelRunner(workers=1)
    with contextlib.redirect_stdout(io.StringIO()):
        runner.run("fig9", SCALES["tiny"])
    assert runner.executed_units == 1


def test_runner_rejects_unknown_experiment():
    with pytest.raises(KeyError):
        ParallelRunner().run("table99", SCALES["tiny"])


def test_runner_rejects_unknown_placement_mode():
    with pytest.raises(ValueError):
        ParallelRunner(placement_mode="simd")


def test_serial_runner_reports_compute_split():
    runner = ParallelRunner(workers=0)
    with contextlib.redirect_stdout(io.StringIO()):
        runner.run("fig9", SCALES["tiny"])
    assert runner.executed_units == 1
    assert runner.compute_s > 0
    # harness overhead (pickle round-trip, bookkeeping) rides on top of
    # the pure simulation span, never below it
    assert runner.exec_wall_s >= runner.compute_s


def test_serial_placement_mode_is_scoped_to_the_run():
    import pickle

    from repro.scheduler import vector

    with contextlib.redirect_stdout(io.StringIO()):
        base = ParallelRunner(workers=0)
        expected = base.run("fig9", SCALES["tiny"])
        runner = ParallelRunner(workers=0, placement_mode="vector")
        got = runner.run("fig9", SCALES["tiny"])
    # bit-identical result through the vector engine, and the process-wide
    # default must be restored afterwards
    assert pickle.dumps(got) == pickle.dumps(expected)
    assert vector.get_default_mode() == "scalar"


def test_warm_pool_persists_across_runs_and_closes():
    with ParallelRunner(workers=2) as runner:
        with contextlib.redirect_stdout(io.StringIO()):
            runner.run("fig9", SCALES["tiny"])
            pool = runner._pool
            assert pool is not None
            runner.run("fig9", SCALES["tiny"])
        assert runner._pool is pool  # same interpreters, no respawn
        assert runner.compute_s > 0
    assert runner._pool is None  # context exit tears the pool down


def test_run_all_only_subset():
    with contextlib.redirect_stdout(io.StringIO()) as out:
        results = run_all("tiny", only=["fig8"])
    assert set(results) == {"fig8"}
    assert set(results["fig8"]) == {1, 2}
    assert "=== fig8 ===" in out.getvalue()


def test_run_all_rejects_unknown_only():
    with pytest.raises(KeyError):
        run_all("tiny", only=["nope"])


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert set(out) == set(EXPERIMENTS)


def test_cli_rejects_unknown_only(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["--only", "nope"])


def test_cli_runs_single_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["--only", "fig8", "--scale", "tiny"]) == 0
    captured = capsys.readouterr()
    assert "Figure 8" in captured.out
    assert "suite completed" in captured.err
