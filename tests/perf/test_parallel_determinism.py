"""The perf harness's core guarantees, from ISSUE 2's acceptance criteria:

* parallel execution is bit-identical to serial (deterministic seeds), and
* a second run against the same cache is served entirely from disk while an
  edited config (scale / seed / source fingerprint) misses.

``table2`` and ``fig8`` at ``tiny`` scale are the reference experiments: one
metric table fanned across four systems, one figure fanned across two job
types.
"""

import io
import contextlib
import pickle

import pytest

from repro.experiments.common import SCALES
from repro.perf import ParallelRunner, ResultCache


def _quiet(fn, *args, **kwargs):
    with contextlib.redirect_stdout(io.StringIO()):
        return fn(*args, **kwargs)


@pytest.fixture(scope="module")
def serial_results():
    runner = ParallelRunner(workers=0)
    return _quiet(runner.run_many, ["table2", "fig8"], SCALES["tiny"])


def test_parallel_is_bit_identical_to_serial(serial_results):
    parallel = ParallelRunner(workers=4)
    results = _quiet(parallel.run_many, ["table2", "fig8"], SCALES["tiny"])
    assert pickle.dumps(results) == pickle.dumps(serial_results)


def test_single_worker_pool_is_bit_identical_to_serial(serial_results):
    """workers=1 routes through the serial in-process path (no pool); the
    pickle round-trip there must keep the bytes identical to workers=0."""
    runner = ParallelRunner(workers=1)
    results = _quiet(runner.run, "fig8", SCALES["tiny"])
    assert pickle.dumps(results) == pickle.dumps(serial_results["fig8"])


def test_second_run_hits_cache_and_matches(tmp_path, serial_results):
    cache = ResultCache(tmp_path / "cache")
    runner = ParallelRunner(workers=0, cache=cache)

    first = _quiet(runner.run, "fig8", SCALES["tiny"])
    assert runner.executed_units == 2
    assert runner.cached_units == 0

    second = _quiet(runner.run, "fig8", SCALES["tiny"])
    assert runner.executed_units == 0
    assert runner.cached_units == 2
    assert pickle.dumps(second) == pickle.dumps(first)
    # the cached path must also match the no-cache serial reference
    assert pickle.dumps(second) == pickle.dumps(serial_results["fig8"])


def test_edited_config_misses_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    runner = ParallelRunner(workers=0, cache=cache)
    _quiet(runner.run, "fig8", SCALES["tiny"])
    assert runner.executed_units == 2

    # an edited config — a different seed — must re-run, not hit
    _quiet(runner.run, "fig8", SCALES["tiny"], seed=7)
    assert runner.executed_units == 2
    assert runner.cached_units == 0


def test_source_edit_invalidates_cache(tmp_path):
    before = ParallelRunner(workers=0, cache=ResultCache(tmp_path / "cache", fingerprint="rev-a"))
    _quiet(before.run, "fig8", SCALES["tiny"])
    assert before.executed_units == 2

    # same config, same cache dir, but the simulator source changed
    after = ParallelRunner(workers=0, cache=ResultCache(tmp_path / "cache", fingerprint="rev-b"))
    _quiet(after.run, "fig8", SCALES["tiny"])
    assert after.executed_units == 2
    assert after.cached_units == 0


def test_display_kwargs_do_not_touch_cache_keys(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    runner = ParallelRunner(workers=0, cache=cache)
    _quiet(runner.run, "fig8", SCALES["tiny"], show_charts=False)
    assert runner.executed_units == 2
    # toggling chart output must not invalidate the simulation payloads
    _quiet(runner.run, "fig8", SCALES["tiny"], show_charts=True)
    assert runner.executed_units == 0
    assert runner.cached_units == 2
