"""PR-3 acceptance: the scheduling-tick fast path changes *nothing* but time.

``UrsaConfig(legacy_tick=True)`` runs the frozen pre-change scheduler (the
brute-force placement in :mod:`repro.scheduler.reference`, a forced queue
resort every tick, and unmemoized SRJF ranks).  Every optimization in the
fast path — lazy-heap stage selection with generation reuse, dirty-set
undo, cached usage tuples, resort elision, SRJF memoization — must leave
the simulation metrics pickle-byte-identical to that reference, for both
job-ordering policies.  Profiling must be a pure observer: enabling it
cannot perturb results either.
"""

import pickle

import pytest

from repro.experiments.common import SCALES, run_one_system
from repro.perf import profile as tick_profile
from repro.scheduler import UrsaConfig
from repro.workloads import tpch2_workload

_cache: dict = {}


def _workload(sc):
    return tpch2_workload(
        n_jobs=sc.n_jobs,
        scale=sc.workload_scale,
        arrival_interval=sc.arrival_interval,
        max_parallelism=sc.max_parallelism,
        partition_mb=sc.partition_mb,
    )


def _metrics(policy: str, legacy: bool = False, cached: bool = True, **flags) -> bytes:
    key = (policy, legacy, tuple(sorted(flags.items())))
    if cached and key in _cache:
        return _cache[key]
    cfg = UrsaConfig(policy=policy, legacy_tick=legacy, **flags)
    name = "ursa-ejf" if policy == "ejf" else "ursa-srjf"
    res = run_one_system(name, _workload, SCALES["tiny"], seed=0,
                         overrides={"ursa_config": cfg})
    blob = pickle.dumps(res.metrics)
    if cached:
        _cache[key] = blob
    return blob


@pytest.mark.parametrize("policy", ["ejf", "srjf"])
def test_fast_path_bit_identical_to_legacy(policy):
    assert _metrics(policy) == _metrics(policy, legacy=True)


def test_fast_path_bit_identical_in_task_mode():
    """The fig-7 ablation path (non-stage-aware lazy task heap)."""
    assert _metrics("ejf", stage_aware=False) == _metrics(
        "ejf", legacy=True, stage_aware=False
    )


@pytest.mark.parametrize("policy", ["ejf", "srjf"])
def test_vector_engine_bit_identical(policy):
    """The vectorized F(t, w) engine reproduces the scalar metrics exactly
    (which the tests above pin to the frozen legacy reference in turn)."""
    assert _metrics(policy, placement_mode="vector") == _metrics(policy)


def test_vector_engine_bit_identical_in_task_mode():
    assert _metrics("ejf", stage_aware=False, placement_mode="vector") == _metrics(
        "ejf", stage_aware=False
    )


def test_profiled_run_is_identical_and_populates_counters():
    base = _metrics("ejf")
    prof = tick_profile.enable()
    try:
        profiled = _metrics("ejf", cached=False)
    finally:
        assert tick_profile.disable() is prof
    assert profiled == base
    assert prof.ticks > 0
    assert prof.assignments > 0
    assert prof.stages_scored > 0
    assert prof.tasks_scored >= prof.assignments
    assert prof.phase_ns["place"] > 0
    # EJF ranks are static: the per-tick queue resort must be elided
    assert prof.resort_ticks == 0
