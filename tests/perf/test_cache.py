"""Tests for the content-addressed result cache and source fingerprint."""

import pickle

import pytest

from repro.experiments.common import SCALES
from repro.perf import ResultCache, clear_fingerprint_cache, source_fingerprint


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", fingerprint="test-fp")


def test_put_get_roundtrip(cache):
    key = cache.key_for("table2", SCALES["tiny"], "ursa-ejf", seed=0)
    payload = {"makespan": 12.5, "series": [1.0, 2.0, 3.0]}
    cache.put(key, payload)
    assert cache.get(key) == payload
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1


def test_miss_raises_keyerror(cache):
    key = cache.key_for("table2", SCALES["tiny"], "ursa-ejf", seed=0)
    with pytest.raises(KeyError):
        cache.get(key)
    assert cache.stats.misses == 1


def test_key_depends_on_every_config_axis(cache):
    sc_tiny, sc_bench = SCALES["tiny"], SCALES["bench"]
    base = cache.key_for("table2", sc_tiny, "ursa-ejf", seed=0)
    assert cache.key_for("table3", sc_tiny, "ursa-ejf", seed=0) != base
    assert cache.key_for("table2", sc_bench, "ursa-ejf", seed=0) != base
    assert cache.key_for("table2", sc_tiny, "y+s", seed=0) != base
    assert cache.key_for("table2", sc_tiny, "ursa-ejf", seed=1) != base
    assert cache.key_for("table2", sc_tiny, "ursa-ejf", seed=0, kwargs={"policy": "srjf"}) != base
    # identical inputs → identical key (content addressing is stable)
    assert cache.key_for("table2", sc_tiny, "ursa-ejf", seed=0) == base


def test_key_depends_on_source_fingerprint(tmp_path):
    a = ResultCache(tmp_path / "a", fingerprint="fp-1")
    b = ResultCache(tmp_path / "b", fingerprint="fp-2")
    sc = SCALES["tiny"]
    assert a.key_for("table2", sc, "ursa-ejf") != b.key_for("table2", sc, "ursa-ejf")


@pytest.mark.parametrize(
    "garbage",
    [
        b"not a pickle",           # UnpicklingError
        b"garbage\n",              # pickle parses a frame, then ValueError
        b"",                       # EOFError
        pickle.dumps([1, 2, 3]),   # valid pickle, wrong shape (no "payload")
    ],
)
def test_corrupt_object_is_a_miss(cache, garbage):
    key = cache.key_for("fig8", SCALES["tiny"], 1)
    cache.put(key, {"jct": 1.0})
    path = cache._path(key)
    path.write_bytes(garbage)
    with pytest.raises(KeyError):
        cache.get(key)
    # and a fresh put over the corrupt entry heals it
    cache.put(key, {"jct": 2.0})
    assert cache.get(key) == {"jct": 2.0}


def test_len_and_clear(cache):
    for unit in ("a", "b", "c"):
        cache.put(cache.key_for("fig8", SCALES["tiny"], unit), {"unit": unit})
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_source_fingerprint_tracks_content(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    (tree / "b.py").write_text("y = 2\n")
    clear_fingerprint_cache()
    fp1 = source_fingerprint(tree)
    assert fp1 == source_fingerprint(tree)  # stable (and memoized)

    clear_fingerprint_cache()
    (tree / "a.py").write_text("x = 42\n")
    assert source_fingerprint(tree) != fp1

    clear_fingerprint_cache()
    (tree / "a.py").write_text("x = 1\n")
    assert source_fingerprint(tree) == fp1  # content-based, not mtime-based


def test_default_fingerprint_is_repro_source_tree(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.fingerprint == source_fingerprint()
    assert len(cache.fingerprint) == 64


def test_payloads_stored_with_meta(cache):
    sc = SCALES["tiny"]
    key = cache.key_for("table5", sc, (2.0, "y+u"), seed=3)
    meta = cache.key_material("table5", sc, (2.0, "y+u"), 3, {})
    cache.put(key, {"metrics": None}, meta=meta)
    with cache._path(key).open("rb") as fh:
        obj = pickle.load(fh)
    assert obj["meta"]["experiment"] == "table5"
    assert obj["meta"]["seed"] == 3
    assert obj["meta"]["source"] == "test-fp"
