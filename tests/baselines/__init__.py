# test package
