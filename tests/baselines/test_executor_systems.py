"""Tests for executor-model systems (Y+S, Y+T, Y+U) and placement variants."""

import pytest

from repro.baselines import (
    CapacityPlacement,
    ExecutorConfig,
    MonoSparkApp,
    TetrisPlacement,
    YarnConfig,
    YarnSystem,
    spark_config,
    tez_config,
)
from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.scheduler import UrsaConfig, UrsaSystem


def shuffle_job(name, p=16, size=25.0, depth=2, expand=4.0):
    """Shuffle-heavy job: the pre-shuffle op expands data so network phases
    are a meaningful fraction of CPU time (like real OLAP intermediates)."""
    g = OpGraph(name)
    src = g.create_data(p)
    g.set_input(src, [size] * p)
    data, prev = src, None
    for d in range(depth):
        cpu = g.create_op(ResourceType.CPU, f"c{d}").read(data).create(g.create_data(p))
        cpu.set_output_size(lambda i, s, e=expand: s * e)
        if prev is not None:
            prev.to(cpu, DepType.ASYNC)
        net = g.create_op(ResourceType.NETWORK, f"n{d}").read(cpu.output).create(g.create_data(p))
        cpu.to(net, DepType.SYNC)
        data, prev = net.output, net
    fin = g.create_op(ResourceType.CPU, "fin").read(data).create(g.create_data(p))
    prev.to(fin, DepType.ASYNC)
    return g


def fresh_cluster():
    # modest downlink so fetch phases are visible
    return Cluster(
        ClusterSpec.small(num_machines=4, cores=8, core_rate_mbps=25.0, net_gbps=2.0)
    )


def run_workload(system, n_jobs=6, mem=4096.0):
    jobs = [
        system.submit(shuffle_job(f"j{i}"), mem, at=i * 1.0) for i in range(n_jobs)
    ]
    system.run(max_events=8_000_000)
    assert system.all_done
    return jobs


def cpu_ue(system):
    cl = system.cluster
    end = system.makespan() + 1.0
    alloc = cl.integrate("cpu_alloc", 0, end)
    used = cl.integrate("cpu_used", 0, end)
    return used / max(alloc, 1e-9)


def test_spark_system_completes_all_jobs():
    system = YarnSystem(fresh_cluster(), spark_config(container_memory_mb=2048))
    jobs = run_workload(system)
    assert all(j.done for j in jobs)
    assert len(system.completed_jobs) == len(jobs)


def test_tez_system_completes_all_jobs():
    system = YarnSystem(fresh_cluster(), tez_config(container_memory_mb=2048))
    jobs = run_workload(system)
    assert all(j.done for j in jobs)


def test_monospark_system_completes_all_jobs():
    system = YarnSystem(
        fresh_cluster(), spark_config(container_memory_mb=2048), app_class=MonoSparkApp
    )
    jobs = run_workload(system)
    assert all(j.done for j in jobs)


def test_executor_config_validation():
    with pytest.raises(ValueError):
        ExecutorConfig(container_cores=0)
    with pytest.raises(ValueError):
        ExecutorConfig(container_memory_mb=0)
    with pytest.raises(ValueError):
        ExecutorConfig(idle_timeout=-1.0)


def test_spark_and_tez_presets_match_paper():
    s = spark_config()
    assert s.container_cores == 4 and s.container_memory_mb == 8192 and s.idle_timeout == 2.0
    t = tez_config()
    assert t.container_cores == 2 and t.container_memory_mb == 6144
    assert t.hold_until_job_end


def test_ursa_beats_spark_on_cpu_ue():
    """The headline claim: Ursa's UE_cpu is far higher than Y+S's because
    containers hold cores through fetch phases."""
    ursa = UrsaSystem(fresh_cluster())
    run_workload(ursa)
    spark = YarnSystem(fresh_cluster(), spark_config(container_memory_mb=2048))
    run_workload(spark)
    assert cpu_ue(ursa) > 0.95
    assert cpu_ue(spark) < 0.9
    assert ursa.makespan() <= spark.makespan() * 1.05


def test_containers_released_after_all_jobs():
    system = YarnSystem(fresh_cluster(), spark_config(container_memory_mb=2048))
    run_workload(system, n_jobs=3)
    for m in system.cluster.machines:
        assert m.allocated_cores == 0
        assert m.memory.used == pytest.approx(0.0, abs=1e-6)
        assert m.memory_in_use == pytest.approx(0.0, abs=1e-6)


def test_tez_holds_containers_until_job_end():
    """With hold_until_job_end the app's containers never shrink mid-job, so
    allocation stays at its peak until completion."""
    cluster = fresh_cluster()
    system = YarnSystem(cluster, tez_config(container_memory_mb=2048))
    job = system.submit(shuffle_job("t", depth=3), 4096.0)
    system.run(max_events=2_000_000)
    assert job.done
    alloc = cluster.traces["m0.cpu_alloc"]
    # allocation on machine 0 is monotonically non-decreasing until release
    peak_reached = False
    for t, v in zip(alloc.times, alloc.values):
        if v == max(alloc.values):
            peak_reached = True
        if peak_reached and t < job.finish_time - 1e-6:
            assert v >= max(alloc.values) - 1e-9 or t < job.finish_time


def test_spark_releases_idle_containers():
    """Dynamic allocation: after a burst, allocation drops within ~idle_timeout."""
    cluster = fresh_cluster()
    system = YarnSystem(cluster, spark_config(container_memory_mb=2048, idle_timeout=1.0))
    job = system.submit(shuffle_job("s", depth=1), 4096.0)
    system.run(max_events=2_000_000)
    total_alloc = sum(m.allocated_cores for m in cluster.machines)
    assert total_alloc == 0
    # and the drop happened shortly after the job finished, not long after
    last_change = max(cluster.traces[f"m{i}.cpu_alloc"].times[-1] for i in range(4))
    assert last_change <= job.finish_time + 1.5 + 1e-6


def test_oversubscription_contends_cpu():
    """Ratio 2 admits twice the compute phases; the fluid CPU slows down, so
    per-monotask durations stretch but makespan can improve (more overlap)."""

    def run(ratio):
        cluster = fresh_cluster()
        system = YarnSystem(
            cluster,
            spark_config(container_memory_mb=2048),
            YarnConfig(cpu_subscription_ratio=ratio),
        )
        run_workload(system)
        return system

    base = run(1.0)
    over = run(2.0)
    # allocation can exceed physical capacity only when oversubscribed
    end_b = base.makespan()
    end_o = over.makespan()
    peak_alloc_base = max(
        max(base.cluster.traces[f"m{i}.cpu_alloc"].values) for i in range(4)
    )
    peak_alloc_over = max(
        max(over.cluster.traces[f"m{i}.cpu_alloc"].values) for i in range(4)
    )
    assert peak_alloc_base <= 8 + 1e-9
    assert peak_alloc_over > 8
    assert end_o <= end_b * 1.1  # oversubscription helps (or is ~neutral)


# ----------------------------------------------------------------------
# Tetris / Capacity placement variants inside Ursa
# ----------------------------------------------------------------------
def test_tetris_placement_completes_workload():
    cluster = fresh_cluster()
    ursa = UrsaSystem(cluster, UrsaConfig(placement=TetrisPlacement()))
    jobs = run_workload(ursa)
    assert all(j.done for j in jobs)


def test_tetris2_placement_completes_workload():
    cluster = fresh_cluster()
    ursa = UrsaSystem(cluster, UrsaConfig(placement=TetrisPlacement(include_network=False)))
    jobs = run_workload(ursa)
    assert all(j.done for j in jobs)


def test_capacity_placement_completes_workload():
    cluster = fresh_cluster()
    ursa = UrsaSystem(cluster, UrsaConfig(placement=CapacityPlacement()))
    jobs = run_workload(ursa)
    assert all(j.done for j in jobs)


def test_tetris_blocks_on_network_demand():
    """Tetris refuses to collocate two network-bearing tasks in one round;
    Tetris2 does not (the §5.1.2 pathology)."""
    from repro.scheduler.placement import ReadyStage
    from repro.scheduler import EarliestJobFirst, Worker
    from repro.execution import Job, JobManager

    class _B:
        def on_tasks_ready(self, jm, tasks):
            pass

        def enqueue_monotask(self, jm, mt):
            pass

        def on_job_complete(self, jm):
            pass

    cluster = fresh_cluster()
    g = shuffle_job("x", p=2, depth=1)
    job = Job(0, g, 0.0, 1024.0)
    jm = JobManager(cluster.sim, cluster, job, _B())
    jm.start()
    # move to the stage with network monotasks: finish stage 1 virtually by
    # marking its tasks' estimates; instead simply use ready tasks that have
    # network usage by picking a single worker
    workers = [Worker(cluster, i, EarliestJobFirst()) for i in range(1)]
    ready = [ReadyStage(jm, t.stage, [t]) for t in jm.ready_tasks]
    # ready tasks here are CPU-only (stage 1), so give them fake net demand
    for rs in ready:
        for t in rs.tasks:
            t.est_net_mb = 10.0
    tetris = TetrisPlacement()
    placed = tetris.place(ready, workers, 0.0, EarliestJobFirst())
    assert len(placed) == 1  # second task blocked by network peak demand
    tetris2 = TetrisPlacement(include_network=False)
    for rs in ready:
        for t in rs.tasks:
            t.state = t.state  # unchanged; fresh placement run
    placed2 = tetris2.place(ready, workers, 0.0, EarliestJobFirst())
    assert len(placed2) == 2
