"""Focused tests for the MonoSpark (Y+U) app's per-resource queues."""

import pytest

from repro.baselines import MonoSparkApp, YarnSystem, spark_config
from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType


def shuffle_job(name="m", p=8, size=20.0):
    g = OpGraph(name)
    src = g.create_data(p)
    g.set_input(src, [size] * p)
    msg = g.create_data(p)
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(p))
    de = g.create_op(ResourceType.CPU, "de").read(sh.output).create(g.create_data(p))
    ser.to(sh, DepType.SYNC)
    sh.to(de, DepType.ASYNC)
    return g


def make_system():
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    return YarnSystem(cluster, spark_config(container_memory_mb=1024.0), app_class=MonoSparkApp)


def test_monospark_completes_and_spreads():
    system = make_system()
    job = system.submit(shuffle_job(), 2048.0)
    system.run(max_events=500_000)
    assert job.done
    workers = {t.worker for t in job.plan.tasks}
    assert len(workers) == 2


def test_monospark_cpu_concurrency_capped_by_held_cores():
    system = make_system()
    job = system.submit(shuffle_job(p=16), 2048.0)
    sim = system.cluster.sim
    max_cpu = 0
    while sim.step():
        for m in system.cluster.machines:
            max_cpu = max(max_cpu, m.cpu.active_count)
    assert job.done
    # never more CPU monotasks running than a machine's held container cores
    assert max_cpu <= 4


def test_monospark_network_concurrency_limit():
    system = make_system()
    app_holder = {}
    orig_launch = system._launch_app

    def launch(job):
        orig_launch(job)
        app_holder["app"] = system.apps[-1]

    system._launch_app = launch
    job = system.submit(shuffle_job(p=16), 2048.0)
    sim = system.cluster.sim
    max_net = 0
    while sim.step():
        app = app_holder.get("app")
        if app is not None:
            for mq in app._mq.values():
                max_net = max(max_net, mq.running[ResourceType.NETWORK])
    assert job.done
    assert max_net <= MonoSparkApp.NETWORK_CONCURRENCY


def test_monospark_slot_multiplier_overlaps_phases():
    """Y+U admits 2x tasks per container so fetch overlaps compute; its JCT
    on a shuffle job is never worse than plain Spark's by more than a hair."""
    mono = make_system()
    jm = mono.submit(shuffle_job("a"), 2048.0)
    mono.run(max_events=500_000)

    spark_cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    spark = YarnSystem(spark_cluster, spark_config(container_memory_mb=1024.0))
    js = spark.submit(shuffle_job("b"), 2048.0)
    spark.run(max_events=500_000)

    assert jm.done and js.done
    assert jm.jct <= js.jct * 1.2


def test_monospark_releases_containers_after_job():
    system = make_system()
    system.submit(shuffle_job(), 2048.0)
    system.run(max_events=500_000)
    for m in system.cluster.machines:
        assert m.allocated_cores == 0
        assert m.memory.used == pytest.approx(0.0, abs=1e-6)
