"""Tests for the YARN-like RM and containers."""

import pytest

from repro.baselines import Container, YarnConfig, YarnRM
from repro.cluster import Cluster, ClusterSpec


class FakeApp:
    def __init__(self, app_id, cores=4, mem=1024.0, target=2):
        self.app_id = app_id
        self.container_cores = cores
        self.container_memory_mb = mem
        self._target = target
        self.granted = []
        self.finished = False

    def container_target(self):
        return self._target

    def num_containers(self):
        return len(self.granted)

    def grant_container(self, c):
        self.granted.append(c)


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.small(num_machines=2, cores=8))


def test_container_slots_lifecycle():
    c = Container(0, 0, 1, cores=4, memory_mb=1024.0, now=0.0)
    assert c.slots == 4 and c.free_slots == 4 and c.idle
    c.take_slot(1.0)
    assert c.used_slots == 1 and not c.idle and c.idle_since is None
    c.free_slot(2.0)
    assert c.idle and c.idle_since == 2.0
    with pytest.raises(RuntimeError):
        c.free_slot(3.0)


def test_yarn_config_validation():
    with pytest.raises(ValueError):
        YarnConfig(heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        YarnConfig(cpu_subscription_ratio=0.5)


def test_heartbeat_grants_after_interval(cluster):
    rm = YarnRM(cluster, YarnConfig(heartbeat_interval=1.0))
    app = FakeApp(0, target=2)
    rm.register_app(app)
    cluster.sim.run(until=0.5)
    assert app.granted == []  # nothing before the first heartbeat
    cluster.sim.run(until=1.5)
    assert len(app.granted) == 2


def test_grants_reserve_machine_resources(cluster):
    rm = YarnRM(cluster)
    app = FakeApp(0, cores=4, mem=1024.0, target=2)
    rm.register_app(app)
    cluster.sim.run(until=1.5)
    total_alloc = sum(m.allocated_cores for m in cluster.machines)
    assert total_alloc == 8
    total_mem = sum(m.allocated_memory for m in cluster.machines)
    assert total_mem == 2048.0


def test_grants_spread_round_robin(cluster):
    rm = YarnRM(cluster)
    app = FakeApp(0, cores=4, target=4)
    rm.register_app(app)
    cluster.sim.run(until=1.5)
    machines = sorted(c.machine_index for c in app.granted)
    assert machines == [0, 0, 1, 1]


def test_advertised_capacity_limits_grants(cluster):
    rm = YarnRM(cluster)  # 2 machines x 8 cores
    app = FakeApp(0, cores=8, target=5)
    rm.register_app(app)
    cluster.sim.run(until=2.5)
    assert len(app.granted) == 2  # one 8-core container per machine


def test_oversubscription_raises_advertised_capacity(cluster):
    rm = YarnRM(cluster, YarnConfig(cpu_subscription_ratio=2.0))
    app = FakeApp(0, cores=8, target=5)
    rm.register_app(app)
    cluster.sim.run(until=2.5)
    assert len(app.granted) == 4  # two 8-core containers per machine


def test_release_returns_resources(cluster):
    rm = YarnRM(cluster)
    app = FakeApp(0, cores=8, target=2)
    rm.register_app(app)
    cluster.sim.run(until=1.5)
    assert rm.advertised_free_cores(0) == 0
    rm.release_container(app.granted[0])
    idx = app.granted[0].machine_index
    assert rm.advertised_free_cores(idx) == 8
    # double release is a no-op
    rm.release_container(app.granted[0])
    assert rm.advertised_free_cores(idx) == 8


def test_fifo_ordering_prefers_earlier_app(cluster):
    rm = YarnRM(cluster)
    first = FakeApp(0, cores=8, target=2)
    second = FakeApp(1, cores=8, target=2)
    rm.register_app(first)
    rm.register_app(second)
    cluster.sim.run(until=1.5)
    assert len(first.granted) == 2
    assert len(second.granted) == 0


def test_memory_limits_grants(cluster):
    rm = YarnRM(cluster)
    mem = cluster.spec.machine.memory_mb
    app = FakeApp(0, cores=1, mem=mem, target=4)
    rm.register_app(app)
    cluster.sim.run(until=1.5)
    assert len(app.granted) == 2  # one memory-sized container per machine
