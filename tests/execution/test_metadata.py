"""Tests for the metadata/data store."""

import pytest

from repro.dataflow import OpGraph, ResourceType
from repro.execution import MetadataStore, estimate_payload_mb


def test_estimate_payload_mb():
    assert estimate_payload_mb(None) == 0.0
    assert estimate_payload_mb([1, 2, 3], mb_per_element=0.5) == 1.5
    assert estimate_payload_mb({0: [1, 2], 1: [3]}, mb_per_element=1.0) == 3.0
    assert estimate_payload_mb((1, 2), mb_per_element=2.0) == 4.0
    assert estimate_payload_mb(42, mb_per_element=0.1) == 0.1


def test_load_inputs_and_queries():
    g = OpGraph()
    d = g.create_data(3, "in")
    g.set_input(d, [10.0, 20.0, 30.0])
    meta = MetadataStore()
    meta.load_inputs(d)
    assert meta.size(d, 0) == 10.0
    assert meta.total_size(d) == 60.0
    assert meta.location(d, 1) is None
    assert meta.has(d, 2)


def test_get_missing_partition_raises():
    g = OpGraph()
    d = g.create_data(2, "x")
    meta = MetadataStore()
    with pytest.raises(KeyError):
        meta.get(d, 0)


def test_record_size_only():
    g = OpGraph()
    d = g.create_data(2)
    meta = MetadataStore()
    meta.record(d, 0, 12.5, location=3)
    rec = meta.get(d, 0)
    assert rec.size_mb == 12.5
    assert rec.location == 3
    assert rec.payload is None


def test_record_list_payload_sets_size():
    g = OpGraph()
    d = g.create_data(1)
    meta = MetadataStore(mb_per_element=0.5)
    meta.record(d, 0, 0.0, location=1, payload=[1, 2, 3, 4])
    assert meta.size(d, 0) == 2.0
    assert meta.get(d, 0).payload == [1, 2, 3, 4]


def test_record_sharded_payload_sets_shard_sizes():
    g = OpGraph()
    d = g.create_data(1)
    meta = MetadataStore(mb_per_element=1.0)
    meta.record(d, 0, 0.0, location=0, payload={0: [1, 2], 2: [3]})
    rec = meta.get(d, 0)
    assert rec.size_mb == 3.0
    assert rec.shard_size(0, 4, None) == 2.0
    assert rec.shard_size(1, 4, None) == 0.0
    assert rec.shard_size(2, 4, None) == 1.0
    assert rec.shard_payload(2) == [3]
    assert rec.shard_payload(1) == []


def test_shard_size_uniform_and_weighted():
    g = OpGraph()
    d = g.create_data(1)
    meta = MetadataStore()
    meta.record(d, 0, 100.0, location=0)
    rec = meta.get(d, 0)
    assert rec.shard_size(0, 4, None) == 25.0
    assert rec.shard_size(1, 4, [1.0, 3.0, 0.0, 0.0]) == 75.0


def test_pull_sources_locations_and_shards():
    g = OpGraph()
    src = g.create_data(2, "msg")
    net = g.create_op(ResourceType.NETWORK, "sh").read(src).create(g.create_data(2))
    meta = MetadataStore()
    meta.record(src, 0, 40.0, location=0)
    meta.record(src, 1, 60.0, location=1)
    sources = meta.pull_sources(net, 0, num_machines=4)
    assert sources == [(0, 20.0), (1, 30.0)]


def test_pull_sources_external_input_round_robin():
    g = OpGraph()
    src = g.create_data(3, "in")
    g.set_input(src, [30.0, 30.0, 30.0])
    net = g.create_op(ResourceType.NETWORK, "sh").read(src).create(g.create_data(1))
    meta = MetadataStore()
    meta.load_inputs(src)
    sources = meta.pull_sources(net, 0, num_machines=2)
    # locations alternate 0,1,0 for the 'HDFS' partitions
    assert [loc for loc, _s in sources] == [0, 1, 0]
    assert all(s == 30.0 for _l, s in sources)
