"""End-to-end tests of the execution layer (JM + JP) with a greedy backend."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType, TaskState
from repro.execution import Job, JobState

from .helpers import GreedyBackend, run_job


def shuffle_graph(p_in=3, p_out=2, size=10.0):
    g = OpGraph("shuffle")
    src = g.create_data(p_in, "src")
    g.set_input(src, [size] * p_in)
    msg = g.create_data(p_in, "msg")
    out = g.create_data(p_out, "out")
    res = g.create_data(p_out, "res")
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(out)
    de = g.create_op(ResourceType.CPU, "de").read(out).create(res)
    ser.to(sh, DepType.SYNC)
    sh.to(de, DepType.ASYNC)
    return g


def test_job_runs_to_completion():
    job, jm, cluster, backend = run_job(shuffle_graph())
    assert job.state is JobState.DONE
    assert job.finish_time is not None and job.finish_time > 0
    assert backend.completed_jobs == [job]
    assert all(t.state is TaskState.DONE for t in job.plan.tasks)


def test_every_monotask_ran_exactly_once():
    job, jm, cluster, backend = run_job(shuffle_graph())
    for mt in job.plan.monotasks:
        assert mt.started_at is not None
        assert mt.finished_at is not None
        assert mt.finished_at >= mt.started_at


def test_execution_time_matches_analytic_model():
    """One CPU monotask of 10 MB at 10 MB/s must take exactly 1 s."""
    g = OpGraph("single")
    src = g.create_data(1)
    g.set_input(src, [10.0])
    g.create_op(ResourceType.CPU, "c").read(src).create(g.create_data(1))
    job, jm, cluster, _ = run_job(g)
    mt = job.plan.monotasks[0]
    assert mt.finished_at - mt.started_at == pytest.approx(1.0)


def test_shuffle_moves_expected_bytes():
    """Each deser task pulls 1/p_out of each msg partition."""
    job, jm, cluster, _ = run_job(shuffle_graph(p_in=3, p_out=2, size=10.0))
    net_mts = [m for m in job.plan.monotasks if m.rtype is ResourceType.NETWORK]
    for m in net_mts:
        assert m.input_size_mb == pytest.approx(15.0)  # 3 partitions * 10/2
        assert len(m.sources) == 3


def test_metadata_records_partition_locations():
    job, jm, cluster, _ = run_job(shuffle_graph())
    res = job.graph.datasets[-1]
    for i in range(res.num_partitions):
        rec = jm.metadata.get(res, i)
        assert rec.location is not None
        assert 0 <= rec.location < cluster.num_machines


def test_real_udf_execution_wordcount_style():
    """A real map + shuffle + reduce on payloads computes correct results."""
    g = OpGraph("wc")
    p_out = 2
    src = g.create_data(2, "src")
    g.set_input(
        src,
        [0.001, 0.001],
        payloads=[["a", "b", "a"], ["b", "b", "c"]],
    )
    msg = g.create_data(2, "msg")
    out = g.create_data(p_out, "shuffled")
    res = g.create_data(p_out, "res")

    def shard_words(ins, pidx):
        shards = {}
        for word in ins[0]:
            shards.setdefault(hash(word) % p_out, []).append((word, 1))
        return shards

    def count(ins, pidx):
        acc = {}
        for word, n in ins[0]:
            acc[word] = acc.get(word, 0) + n
        return sorted(acc.items())

    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg).set_udf(shard_words)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(out)
    de = g.create_op(ResourceType.CPU, "de").read(out).create(res).set_udf(count)
    ser.to(sh, DepType.SYNC)
    sh.to(de, DepType.ASYNC)

    job, jm, cluster, _ = run_job(g)
    counted = {}
    for i in range(p_out):
        for word, n in jm.metadata.get(res, i).payload:
            counted[word] = counted.get(word, 0) + n
    assert counted == {"a": 2, "b": 3, "c": 1}


def test_cpu_work_factor_scales_duration_not_estimate():
    g = OpGraph()
    src = g.create_data(1)
    g.set_input(src, [10.0])
    op = g.create_op(ResourceType.CPU, "heavy").read(src).create(g.create_data(1))
    op.set_cpu_work_factor(3.0)
    job, jm, cluster, _ = run_job(g)
    mt = job.plan.monotasks[0]
    assert mt.input_size_mb == pytest.approx(10.0)   # estimate = input size
    assert mt.work_mb == pytest.approx(30.0)         # actual work scaled
    assert mt.finished_at - mt.started_at == pytest.approx(3.0)


def test_size_fn_shrinks_downstream_sizes():
    g = OpGraph()
    src = g.create_data(2)
    g.set_input(src, [10.0, 10.0])
    a = g.create_op(ResourceType.CPU, "filter").read(src).create(g.create_data(2))
    a.set_output_size(lambda i, s: s * 0.1)
    net = g.create_op(ResourceType.NETWORK, "sh").read(a.output).create(g.create_data(2))
    b = g.create_op(ResourceType.CPU, "agg").read(net.output).create(g.create_data(2))
    a.to(net, DepType.SYNC)
    net.to(b, DepType.ASYNC)
    job, jm, cluster, _ = run_job(g)
    net_mts = [m for m in job.plan.monotasks if m.rtype is ResourceType.NETWORK]
    for m in net_mts:
        assert m.input_size_mb == pytest.approx(1.0)  # (10*0.1)/2 per src * 2


def test_disk_read_and_write_pipeline():
    g = OpGraph("diskio")
    src = g.create_data(2)
    g.set_input(src, [15.0, 15.0])
    loaded = g.create_data(2)
    rd = g.create_op(ResourceType.DISK, "read").read(src).create(loaded)
    comp = g.create_op(ResourceType.CPU, "comp").read(loaded).create(g.create_data(2))
    wr = g.create_op(ResourceType.DISK, "write").read(comp.output).create(g.create_data(2))
    rd.to(comp, DepType.ASYNC)
    comp.to(wr, DepType.ASYNC)
    job, jm, cluster, _ = run_job(g)
    assert job.done
    disk_mts = [m for m in job.plan.monotasks if m.rtype is ResourceType.DISK]
    assert len(disk_mts) == 4
    assert all(m.input_size_mb == pytest.approx(15.0) for m in disk_mts)
    # read+compute+write collocate into one task per partition
    assert len(job.plan.tasks) == 2


def test_memory_reserved_during_task_and_released_after():
    cluster = Cluster(ClusterSpec.small(num_machines=1, cores=4, core_rate_mbps=10.0))
    g = OpGraph()
    src = g.create_data(1)
    g.set_input(src, [10.0])
    g.create_op(ResourceType.CPU, "c").read(src).create(g.create_data(1))
    job, jm, cluster, _ = run_job(g, cluster=cluster)
    m = cluster.machine(0)
    assert m.memory.used == 0.0
    # memory was held exactly while the task ran (1 s)
    task = job.plan.tasks[0]
    expected = task.est_mem_mb * 1.0
    assert m.mem_used.integral(0, 10.0) == pytest.approx(expected)


def test_memory_estimate_uses_m2i_cap():
    g = OpGraph()
    src = g.create_data(1)
    g.set_input(src, [10.0])
    op = g.create_op(ResourceType.CPU, "c").read(src).create(g.create_data(1))
    op.set_m2i(2.0)
    job, jm, cluster, _ = run_job(g, requested_memory_mb=100000.0)
    task = job.plan.tasks[0]
    assert task.est_mem_mb == pytest.approx(20.0)  # m2i * I(t), not r*M(j)


def test_remaining_work_drains_to_zero():
    job, jm, cluster, _ = run_job(shuffle_graph())
    for rtype, rem in job.remaining_work.items():
        assert rem == pytest.approx(0.0, abs=1e-6)


def test_locality_constraint_from_cached_dataset():
    """A second stage reading partitions produced earlier must be pinned to
    the machine that holds them (in-memory reuse, e.g. iterative ML)."""
    g = OpGraph("iter")
    src = g.create_data(2)
    g.set_input(src, [10.0, 10.0])
    cache = g.create_data(2, "cache")
    load = g.create_op(ResourceType.CPU, "load").read(src).create(cache)
    # a shuffle barrier so the second reader is in a separate task
    msg = g.create_data(2)
    stat = g.create_op(ResourceType.CPU, "stat").read(cache).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(2))
    it2 = g.create_op(ResourceType.CPU, "it2").read(sh.output, cache).create(g.create_data(2))
    load.to(stat, DepType.ASYNC)
    stat.to(sh, DepType.SYNC)
    sh.to(it2, DepType.ASYNC)

    job, jm, cluster, backend = run_job(g)
    assert job.done
    # the it2 tasks read `cache`; their locality had to match where load ran
    it2_tasks = [
        t
        for t in job.plan.tasks
        if any(op.name == "it2" for m in t.monotasks for op in m.ops)
    ]
    assert it2_tasks
    for t in it2_tasks:
        assert t.locality is not None
        assert t.worker == t.locality


def test_task_timestamps_monotone():
    job, jm, cluster, _ = run_job(shuffle_graph())
    for t in job.plan.tasks:
        assert t.ready_at is not None
        assert t.placed_at is not None and t.placed_at >= t.ready_at
        assert t.finished_at is not None and t.finished_at >= t.placed_at


def test_job_jct_accounting():
    job, jm, cluster, _ = run_job(shuffle_graph())
    assert job.jct == pytest.approx(job.finish_time - job.submit_time)
    assert job.cpu_seconds_used > 0
