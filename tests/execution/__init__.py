# test package
