"""Shared helpers for execution-layer tests: a trivial greedy backend that
places every ready task immediately (round-robin) and runs every monotask as
soon as it is enqueued — no queueing discipline, no admission control.

It exercises the full JM/JP machinery while keeping scheduling out of the
picture; Ursa's real scheduler is tested separately in tests/scheduler.
"""

from __future__ import annotations

import itertools

from repro.cluster import Cluster
from repro.dataflow.monotask import MonotaskState
from repro.execution import Job, JobManager


class GreedyBackend:
    """Minimal SchedulerBackend: immediate round-robin placement."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._rr = itertools.cycle(range(cluster.num_machines))
        self.completed_jobs: list[Job] = []
        self.enqueued = 0

    def on_tasks_ready(self, jm: JobManager, tasks) -> None:
        for task in tasks:
            worker = task.locality if task.locality is not None else next(self._rr)
            jm.place_task(task, worker)

    def enqueue_monotask(self, jm: JobManager, mt) -> None:
        self.enqueued += 1
        mt.state = MonotaskState.QUEUED
        jm.run_monotask(mt, lambda _mt: None)

    def on_job_complete(self, jm: JobManager) -> None:
        self.completed_jobs.append(jm.job)


def run_job(graph, cluster: Cluster | None = None, requested_memory_mb: float = 1024.0):
    """Plan, run to completion, and return (job, jm, cluster, backend)."""
    if cluster is None:
        from repro.cluster import ClusterSpec

        cluster = Cluster(ClusterSpec.small(num_machines=4, cores=4, core_rate_mbps=10.0))
    backend = GreedyBackend(cluster)
    job = Job(0, graph, submit_time=cluster.sim.now, requested_memory_mb=requested_memory_mb)
    jm = JobManager(cluster.sim, cluster, job, backend)
    jm.start()
    cluster.sim.drain()
    return job, jm, cluster, backend
