"""Tests for SE/UE accounting, stragglers, charts and tables."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import DepType, OpGraph, ResourceType
from repro.metrics import (
    SystemMetrics,
    ascii_chart,
    compute_metrics,
    format_metric_rows,
    format_table,
    mean_straggler_ratio,
    multi_series_chart,
    sparkline,
    stage_straggler_time,
)
from repro.scheduler import UrsaSystem


def run_small_system():
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4, core_rate_mbps=10.0))
    ursa = UrsaSystem(cluster)
    g = OpGraph("m")
    src = g.create_data(4)
    g.set_input(src, [10.0] * 4)
    msg = g.create_data(4)
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(g.create_data(4))
    ser.to(sh, DepType.SYNC)
    ursa.submit(g, 512.0)
    ursa.run(max_events=200_000)
    return ursa


def test_compute_metrics_basic():
    ursa = run_small_system()
    m = compute_metrics(ursa)
    assert m.makespan > 0
    assert m.mean_jct == pytest.approx(m.makespan)  # single job
    assert 0 < m.se_cpu <= 1.0
    assert m.ue_cpu == pytest.approx(1.0)  # Ursa: allocated == used
    assert 0 < m.se_mem < 1.0
    assert m.cpu_utilization == pytest.approx(m.se_cpu * m.ue_cpu)
    assert len(m.jcts) == 1


def test_compute_metrics_row_is_percent():
    ursa = run_small_system()
    row = compute_metrics(ursa).row()
    assert row["UE_cpu"] == pytest.approx(100.0)
    assert set(row) == {"makespan", "avg_jct", "UE_cpu", "SE_cpu", "UE_mem", "SE_mem"}


def test_compute_metrics_requires_finished_jobs():
    cluster = Cluster(ClusterSpec.small())
    ursa = UrsaSystem(cluster)
    with pytest.raises(ValueError):
        compute_metrics(ursa)  # no jobs
    g = OpGraph("x")
    src = g.create_data(1)
    g.set_input(src, [1000.0])
    g.create_op(ResourceType.CPU).read(src).create(g.create_data(1))
    ursa.submit(g, 512.0)
    with pytest.raises(ValueError):
        compute_metrics(ursa)  # unfinished


# ----------------------------------------------------------------------
# stragglers
# ----------------------------------------------------------------------
def test_stage_straggler_time_no_outliers():
    assert stage_straggler_time([1.0, 1.1, 0.9, 1.0]) == pytest.approx(0.0, abs=1e-9)
    assert stage_straggler_time([2.0, 2.0, 2.0, 2.0, 2.0]) == 0.0


def test_stage_straggler_time_with_outlier():
    times = [1.0] * 8 + [5.0]
    s = stage_straggler_time(times)
    assert s > 3.0  # well above the IQR threshold


def test_stage_straggler_small_stages_ignored():
    assert stage_straggler_time([1.0, 9.0]) == 0.0


def test_mean_straggler_ratio_over_jobs():
    ursa = run_small_system()
    r = mean_straggler_ratio(ursa.jobs)
    assert 0.0 <= r < 1.0


# ----------------------------------------------------------------------
# charts / tables
# ----------------------------------------------------------------------
def test_sparkline_shapes():
    line = sparkline([0, 50, 100], 0, 100)
    assert len(line) == 3
    assert line[0] == " " and line[-1] == "█"
    assert sparkline([]) == ""


def test_ascii_chart_contains_axis():
    chart = ascii_chart([1, 2, 3], height=4, label="demo")
    assert "demo" in chart
    assert "█" in chart
    assert ascii_chart([], label="x") == "x (empty)"


def test_multi_series_chart_labels():
    text = multi_series_chart({"cpu": [10, 90], "net": [5, 5]})
    assert "cpu" in text and "net" in text


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [10, 33.123]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "33.12" in text
    assert "--" in lines[2]


def test_format_metric_rows():
    ursa = run_small_system()
    m = compute_metrics(ursa)
    text = format_metric_rows({"ursa": m}, title="demo")
    assert "ursa" in text and "UE_cpu" in text
