"""Non-finite-sample hardening of the ASCII chart renderers."""

import math

from repro.metrics.asciichart import _finite_max, ascii_chart, sparkline

NAN = float("nan")
INF = float("inf")


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------
def test_sparkline_nan_renders_midline_dot():
    line = sparkline([0.0, NAN, 1.0], 0.0, 1.0)
    assert line[1] == "·"
    assert len(line) == 3


def test_sparkline_infinities_clamp_to_band_edges():
    line = sparkline([-INF, INF], 0.0, 1.0)
    assert line == " █"


def test_sparkline_all_nan_does_not_crash():
    assert sparkline([NAN, NAN]) == "··"


def test_sparkline_autoscale_ignores_nonfinite_samples():
    # without the finite-max guard, the inf sample would flatten the scale
    line = sparkline([0.0, 2.0, INF, NAN])
    assert line[1] != line[0]  # 2.0 still resolves above 0.0
    assert line[2] == "█" and line[3] == "·"


def test_sparkline_finite_series_unchanged():
    assert sparkline([0, 50, 100], 0, 100) == " ▄█"


# ----------------------------------------------------------------------
# ascii_chart
# ----------------------------------------------------------------------
def test_ascii_chart_nan_leaves_blank_column():
    chart = ascii_chart([1.0, NAN, 1.0], height=3, hi=1.0)
    for line in chart.splitlines():
        if "█" in line:
            body = line.split("|", 1)[1]
            assert body == "█ █"


def test_ascii_chart_inf_clamps_to_top_band():
    chart = ascii_chart([0.0, INF], height=4, hi=1.0)
    top_row = chart.splitlines()[0]
    assert top_row.split("|", 1)[1] == " █"


def test_ascii_chart_all_nonfinite_does_not_crash():
    chart = ascii_chart([NAN, INF, -INF], height=2, label="x")
    assert "x" in chart


# ----------------------------------------------------------------------
# _finite_max
# ----------------------------------------------------------------------
def test_finite_max_filters_and_floors():
    assert _finite_max([1.0, NAN, INF, 3.0], 0.0) == 3.0
    assert _finite_max([NAN, INF], 5.0) == 5.0
    assert _finite_max([], 2.0) == 2.0
    assert math.isfinite(_finite_max([INF], 0.0))
