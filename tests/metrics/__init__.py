# test package
