# test package
