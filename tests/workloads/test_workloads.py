"""Tests for the workload generators and the JobSpec compiler."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dataflow import ResourceType, plan_job
from repro.scheduler import UrsaSystem
from repro.simcore import derive_rng
from repro.workloads import (
    JobSpec,
    StageSpec,
    SyntheticParams,
    expected_jcts,
    make_cc_job,
    make_kmeans_job,
    make_lr_job,
    make_pagerank_job,
    make_synthetic_job,
    make_tpch_job,
    mixed_workload,
    submit_workload,
    synthetic_setting1,
    synthetic_setting2,
    tpch2_workload,
    tpch_workload,
    tpcds_workload,
)


def rng():
    return derive_rng(0, "test")


# ----------------------------------------------------------------------
# StageSpec / JobSpec validation and compilation
# ----------------------------------------------------------------------
def test_stage_spec_validation():
    with pytest.raises(ValueError):
        StageSpec(parallelism=0)
    with pytest.raises(ValueError):
        StageSpec(parallelism=1, expand=0.0)
    with pytest.raises(ValueError):
        StageSpec(parallelism=1, source_mb=-1.0)


def test_job_spec_validation_catches_bad_links():
    with pytest.raises(ValueError):  # forward shuffle parent
        JobSpec("x", [StageSpec(2, source_mb=1.0), StageSpec(2, shuffle_parents=(5,))], 100.0).validate()
    with pytest.raises(ValueError):  # no inputs
        JobSpec("x", [StageSpec(2)], 100.0).validate()
    with pytest.raises(ValueError):  # narrow parallelism mismatch
        JobSpec(
            "x",
            [StageSpec(2, source_mb=1.0), StageSpec(3, narrow_parent=0)],
            100.0,
        ).validate()


def test_build_graph_compiles_and_plans():
    spec = JobSpec(
        "j",
        [
            StageSpec(4, source_mb=100.0),
            StageSpec(2, shuffle_parents=(0,), expand=0.5),
            StageSpec(2, shuffle_parents=(1,), expand=0.05, write_output_mb=1.0),
        ],
        requested_memory_mb=512.0,
    )
    g = spec.build_graph(rng())
    plan = plan_job(g)
    rtypes = {m.rtype for m in plan.monotasks}
    assert rtypes == {ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK}
    assert len(plan.stages) >= 3
    assert spec.depth == 3


def test_build_graph_runs_on_ursa():
    spec = JobSpec(
        "j",
        [StageSpec(4, source_mb=200.0), StageSpec(4, shuffle_parents=(0,))],
        requested_memory_mb=512.0,
    )
    cluster = Cluster(ClusterSpec.small(num_machines=2, cores=4))
    ursa = UrsaSystem(cluster)
    jobs = submit_workload(ursa, [(spec, 0.0)])
    ursa.run(max_events=500_000)
    assert jobs[0].done
    assert jobs[0].memory_accuracy == spec.memory_accuracy


def test_skew_produces_heterogeneous_partitions():
    spec = JobSpec(
        "skewed", [StageSpec(16, source_mb=1600.0, skew_sigma=0.8)], 512.0
    )
    g = spec.build_graph(rng())
    sizes = [s for s, _p in g.datasets[0].initial]
    assert max(sizes) > 1.5 * min(sizes)
    assert sum(sizes) == pytest.approx(1600.0, rel=0.5)


def test_generator_determinism():
    a = tpch_workload(n_jobs=5, seed=3, scale=0.01)
    b = tpch_workload(n_jobs=5, seed=3, scale=0.01)
    assert [j.name for j, _t in a] == [j.name for j, _t in b]
    assert [j.requested_memory_mb for j, _t in a] == [j.requested_memory_mb for j, _t in b]
    c = tpch_workload(n_jobs=5, seed=4, scale=0.01)
    assert [j.name for j, _t in a] != [j.name for j, _t in c]


def test_tpch_workload_statistics():
    wl = tpch_workload(n_jobs=100, seed=1, scale=0.01)
    assert len(wl) == 100
    times = [t for _j, t in wl]
    assert times == [i * 5.0 for i in range(100)]  # 5 s arrivals (§5.1.1)
    depths = [j.depth for j, _t in wl]
    assert min(depths) >= 2 and max(depths) <= 11


def test_tpch_job_scales_with_dataset_size():
    small = make_tpch_job(1, 200.0, scale=0.01, seed=5)
    big = make_tpch_job(1, 1000.0, scale=0.01, seed=5)
    assert big.total_source_mb() == pytest.approx(5 * small.total_source_mb())


def test_tpcds_deeper_dags():
    wl = tpcds_workload(n_jobs=60, seed=2, scale=0.01)
    depths = [j.depth for j, _t in wl]
    assert min(depths) >= 5
    assert max(depths) > 12
    mean_depth = sum(depths) / len(depths)
    assert 7 <= mean_depth <= 14  # paper: mean 9


def test_ml_job_shapes():
    lr = make_lr_job(data_mb=100.0, iterations=3, parallelism=4)
    assert lr.category == "ml"
    assert len(lr.stages) == 1 + 2 * 3
    # iterations after the first read the cache
    assert any(s.reads_cache_of == 0 for s in lr.stages)
    km = make_kmeans_job(data_mb=100.0, iterations=2, parallelism=4)
    g = km.build_graph(rng())
    plan = plan_job(g)
    assert plan  # compiles


def test_graph_job_message_decay_for_cc():
    cc = make_cc_job(graph_mb=100.0, iterations=4, parallelism=4)
    gens = [s for s in cc.stages if s.reads_cache_of == 0 or s.narrow_parent == 0]
    expands = [s.expand for s in cc.stages[1::2]]
    assert expands == sorted(expands, reverse=True)  # geometric decay
    pr = make_pagerank_job(graph_mb=100.0, iterations=3, parallelism=4)
    pr_expands = {s.expand for s in pr.stages[1::2]}
    assert len(pr_expands) == 1  # flat


def test_mixed_workload_composition():
    wl = mixed_workload(scale=0.01, parallelism=40)
    cats = [j.category for j, _t in wl]
    assert cats.count("graph") == 2
    assert cats.count("ml") == 4
    assert cats.count("tpch") == 32
    assert len(wl) == 38


def test_tpch2_depth():
    wl = tpch2_workload(n_jobs=25, scale=0.01)
    assert len(wl) == 25
    mean_depth = sum(j.depth for j, _t in wl) / 25
    assert mean_depth >= 5.0  # deeper selection


def test_synthetic_params_and_jobs():
    params = SyntheticParams(
        total_cores=16, core_rate_mbps=25.0, net_mbps_per_machine=1250.0,
        machines=2, stage_seconds=8.0,
    )
    t1 = make_synthetic_job(params, 1, 0, "t1")
    t2 = make_synthetic_job(params, 2, 0, "t2")
    assert len(t1.stages) == 5
    assert t2.stages[0].source_mb < t1.stages[0].source_mb
    with pytest.raises(ValueError):
        make_synthetic_job(params, 3, 0, "bad")
    s1 = synthetic_setting1(params, n_jobs=4)
    assert len(s1) == 4
    times1 = [t for _j, t in s1]
    assert times1 == sorted(times1)
    s2 = synthetic_setting2(params, n_pairs=3)
    assert len(s2) == 6
    assert [j.name[:5] for j, _t in s2] == ["type1", "type2"] * 3


def test_expected_jcts_srjf_orders_small_first():
    params = SyntheticParams(
        total_cores=16, core_rate_mbps=25.0, net_mbps_per_machine=1250.0,
        machines=2, stage_seconds=8.0,
    )
    types = [1, 2, 1, 2]
    srjf = expected_jcts(params, types, policy="srjf")
    # type-2 jobs (indices 1, 3) are expected to finish first under SRJF
    assert max(srjf[1], srjf[3]) < min(srjf[0], srjf[2])
    with pytest.raises(ValueError):
        expected_jcts(params, types, policy="fifo")


def test_expected_jcts_pairwise_math():
    params = SyntheticParams(
        total_cores=16, core_rate_mbps=25.0, net_mbps_per_machine=1250.0,
        machines=2, stage_seconds=8.0,
    )
    jcts = expected_jcts(params, [1, 1, 1, 1])
    # paper §5.3: 40, 48, 80, 88
    assert jcts == pytest.approx([40.0, 48.0, 80.0, 88.0])
