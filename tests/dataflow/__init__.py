# test package
