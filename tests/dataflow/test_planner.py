"""Tests for monotask generation, task formation and stage formation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    DepType,
    GraphError,
    OpGraph,
    ResourceType,
    plan_job,
)


def reduce_by_key_graph(p_in=3, p_out=2):
    """The paper's §4.1.2 reduceByKey example: ser -> shuffle -> deser."""
    g = OpGraph("rbk")
    src = g.create_data(p_in, "src")
    g.set_input(src, [10.0] * p_in)
    msg = g.create_data(p_in, "msg")
    shuffled = g.create_data(p_out, "shuffled")
    result = g.create_data(p_out, "result")
    ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
    shuffle = g.create_op(ResourceType.NETWORK, "shuffle").read(msg).create(shuffled)
    deser = g.create_op(ResourceType.CPU, "deser").read(shuffled).create(result)
    ser.to(shuffle, DepType.SYNC)
    shuffle.to(deser, DepType.ASYNC)
    return g


def test_reduce_by_key_monotask_counts():
    plan = plan_job(reduce_by_key_graph(3, 2))
    # 3 ser + 2 shuffle + 2 deser
    assert len(plan.monotasks) == 7


def test_sync_dependency_is_bipartite():
    plan = plan_job(reduce_by_key_graph(3, 2))
    shuffles = [m for m in plan.monotasks if m.rtype is ResourceType.NETWORK]
    assert len(shuffles) == 2
    for sh in shuffles:
        assert len(sh.parents) == 3  # every ser feeds every shuffle


def test_async_dependency_is_one_to_one():
    plan = plan_job(reduce_by_key_graph(3, 2))
    desers = [m for m in plan.monotasks if m.rtype is ResourceType.CPU and m.head_op.name == "deser"]
    assert len(desers) == 2
    for d in desers:
        assert len(d.parents) == 1
        assert d.parents[0].rtype is ResourceType.NETWORK
        assert d.parents[0].partition_index == d.partition_index


def test_task_formation_cuts_network_in_edges():
    plan = plan_job(reduce_by_key_graph(3, 2))
    # tasks: 3 ser tasks + 2 (shuffle+deser) tasks
    assert len(plan.tasks) == 5
    sizes = sorted(len(t.monotasks) for t in plan.tasks)
    assert sizes == [1, 1, 1, 2, 2]


def test_shuffle_and_deser_collocate_in_one_task():
    plan = plan_job(reduce_by_key_graph(3, 2))
    two = [t for t in plan.tasks if len(t.monotasks) == 2]
    for t in two:
        rtypes = sorted(m.rtype.value for m in t.monotasks)
        assert rtypes == ["cpu", "network"]
        net = next(m for m in t.monotasks if m.is_network)
        cpu = next(m for m in t.monotasks if not m.is_network)
        assert net.children == [cpu]
        assert net.is_task_source
        assert not cpu.is_task_source


def test_stage_formation_groups_same_ops():
    plan = plan_job(reduce_by_key_graph(3, 2))
    assert len(plan.stages) == 2
    by_size = {s.num_tasks for s in plan.stages}
    assert by_size == {3, 2}


def test_task_dependencies_follow_severed_edges():
    plan = plan_job(reduce_by_key_graph(3, 2))
    ser_tasks = [t for t in plan.tasks if len(t.monotasks) == 1]
    down_tasks = [t for t in plan.tasks if len(t.monotasks) == 2]
    for dt in down_tasks:
        assert dt.parents == set(ser_tasks)
        assert dt.remaining_parents == 3
    for s in ser_tasks:
        assert s.children == set(down_tasks)
        assert not s.parents
    assert set(plan.root_tasks) == set(ser_tasks)


def test_cpu_chain_collapse():
    """map -> filter -> map connected by async edges fuse into one group."""
    g = OpGraph("chain")
    src = g.create_data(4)
    g.set_input(src, [1.0] * 4)
    a = g.create_op(ResourceType.CPU, "a").read(src).create(g.create_data(4))
    b = g.create_op(ResourceType.CPU, "b").read(a.output).create(g.create_data(4))
    c = g.create_op(ResourceType.CPU, "c").read(b.output).create(g.create_data(4))
    a.to(b, DepType.ASYNC)
    b.to(c, DepType.ASYNC)
    plan = plan_job(g)
    assert len(plan.monotasks) == 4  # one fused monotask per partition
    for m in plan.monotasks:
        assert [op.name for op in m.ops] == ["a", "b", "c"]
    assert len(plan.tasks) == 4
    assert len(plan.stages) == 1


def test_sync_cpu_edges_are_not_collapsed():
    g = OpGraph()
    src = g.create_data(2)
    g.set_input(src, [1.0, 1.0])
    a = g.create_op(ResourceType.CPU, "a").read(src).create(g.create_data(2))
    b = g.create_op(ResourceType.CPU, "b").read(a.output).create(g.create_data(2))
    a.to(b, DepType.SYNC)
    plan = plan_job(g)
    assert len(plan.monotasks) == 4  # two groups of two


def test_at_most_one_cpu_monotask_per_task_after_collapse():
    """Paper §4.2.1: 'there is at most one CPU monotask in each task'."""
    plan = plan_job(reduce_by_key_graph(5, 3))
    for t in plan.tasks:
        assert len(t.cpu_monotasks) <= 1


def test_collapse_rejects_mismatched_parallelism():
    g = OpGraph()
    src = g.create_data(4)
    g.set_input(src, [1.0] * 4)
    a = g.create_op(ResourceType.CPU, "a").read(src).create(g.create_data(4))
    b = g.create_op(ResourceType.CPU, "b").read(a.output).create(g.create_data(3))
    a.to(b, DepType.ASYNC)
    with pytest.raises(GraphError):
        plan_job(g)


def test_diamond_dag():
    """src -> (left, right) -> join via shuffles."""
    g = OpGraph("diamond")
    src = g.create_data(2)
    g.set_input(src, [5.0, 5.0])
    m_l = g.create_data(2)
    m_r = g.create_data(2)
    left = g.create_op(ResourceType.CPU, "left").read(src).create(m_l)
    right = g.create_op(ResourceType.CPU, "right").read(src).create(m_r)
    sh_l = g.create_op(ResourceType.NETWORK, "shl").read(m_l).create(g.create_data(2))
    sh_r = g.create_op(ResourceType.NETWORK, "shr").read(m_r).create(g.create_data(2))
    join = g.create_op(ResourceType.CPU, "join").read(sh_l.output, sh_r.output).create(g.create_data(2))
    left.to(sh_l, DepType.SYNC)
    right.to(sh_r, DepType.SYNC)
    sh_l.to(join, DepType.ASYNC)
    sh_r.to(join, DepType.ASYNC)
    plan = plan_job(g)
    # join task contains shl, shr, join monotasks for the same partition
    join_tasks = [t for t in plan.tasks if len(t.monotasks) == 3]
    assert len(join_tasks) == 2
    for t in join_tasks:
        assert len(t.cpu_monotasks) == 1
    # left and right are separate single-monotask tasks feeding both joins
    singles = [t for t in plan.tasks if len(t.monotasks) == 1]
    assert len(singles) == 4


def test_disk_write_stays_in_cpu_task():
    g = OpGraph()
    src = g.create_data(2)
    g.set_input(src, [1.0, 1.0])
    a = g.create_op(ResourceType.CPU, "a").read(src).create(g.create_data(2))
    w = g.create_op(ResourceType.DISK, "w").read(a.output).create(g.create_data(2))
    a.to(w, DepType.ASYNC)
    plan = plan_job(g)
    assert len(plan.tasks) == 2
    for t in plan.tasks:
        assert sorted(m.rtype.value for m in t.monotasks) == ["cpu", "disk"]


def test_multi_stage_chain_depth():
    """A depth-k chain of shuffles yields k+1 stages."""
    g = OpGraph()
    prev = g.create_data(3)
    g.set_input(prev, [1.0] * 3)
    prev_op = None
    k = 4
    for i in range(k):
        cpu = g.create_op(ResourceType.CPU, f"c{i}").read(prev).create(g.create_data(3))
        if prev_op is not None:
            prev_op.to(cpu, DepType.ASYNC)
        net = g.create_op(ResourceType.NETWORK, f"n{i}").read(cpu.output).create(g.create_data(3))
        cpu.to(net, DepType.SYNC)
        prev = net.output
        prev_op = net
    final = g.create_op(ResourceType.CPU, "final").read(prev).create(g.create_data(3))
    prev_op.to(final, DepType.ASYNC)
    plan = plan_job(g)
    assert len(plan.stages) == k + 1


@st.composite
def random_shuffle_dags(draw):
    """Random layered shuffle DAGs: each layer = CPU op (maybe a fused chain)
    followed by a shuffle to the next layer."""
    layers = draw(st.integers(min_value=1, max_value=4))
    chain_lens = [draw(st.integers(min_value=1, max_value=3)) for _ in range(layers)]
    pars = [draw(st.integers(min_value=1, max_value=5)) for _ in range(layers + 1)]
    return layers, chain_lens, pars


@settings(max_examples=40, deadline=None)
@given(random_shuffle_dags())
def test_property_every_monotask_in_exactly_one_task(params):
    layers, chain_lens, pars = params
    g = OpGraph()
    data = g.create_data(pars[0])
    g.set_input(data, [1.0] * pars[0])
    prev_op = None
    for layer in range(layers):
        for j in range(chain_lens[layer]):
            cpu = g.create_op(ResourceType.CPU, f"c{layer}_{j}").read(data).create(
                g.create_data(pars[layer])
            )
            if prev_op is not None:
                dep = DepType.ASYNC if prev_op.rtype is ResourceType.CPU else DepType.ASYNC
                prev_op.to(cpu, dep)
            data = cpu.output
            prev_op = cpu
        net = g.create_op(ResourceType.NETWORK, f"n{layer}").read(data).create(
            g.create_data(pars[layer + 1])
        )
        prev_op.to(net, DepType.SYNC)
        data = net.output
        prev_op = net
    plan = plan_job(g)

    # partition of monotasks into tasks
    seen = set()
    for t in plan.tasks:
        for m in t.monotasks:
            assert id(m) not in seen
            seen.add(id(m))
            assert m.task is t
    assert len(seen) == len(plan.monotasks)

    # at most one CPU monotask per task (chains are fused)
    for t in plan.tasks:
        assert len(t.cpu_monotasks) <= 1

    # every task in exactly one stage
    staged = [t for s in plan.stages for t in s.tasks]
    assert sorted(t.task_id for t in staged) == sorted(t.task_id for t in plan.tasks)

    # task dep graph is acyclic and consistent with monotask edges
    for t in plan.tasks:
        assert t not in t.parents
        for p in t.parents:
            assert t in p.children
