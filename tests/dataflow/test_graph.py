"""Tests for the OpGraph primitives."""

import pytest

from repro.dataflow import DepType, GraphError, OpGraph, ResourceType


def test_create_data_and_op():
    g = OpGraph("j")
    d = g.create_data(4, "in")
    op = g.create_op(ResourceType.CPU, "map")
    op.read(d).create(g.create_data(4, "out"))
    assert d.num_partitions == 4
    assert op.parallelism == 4
    assert op.output.name == "out"


def test_zero_partition_dataset_rejected():
    g = OpGraph()
    with pytest.raises(GraphError):
        g.create_data(0)


def test_dataset_single_producer():
    g = OpGraph()
    d = g.create_data(2)
    g.create_op(ResourceType.CPU).create(d)
    with pytest.raises(GraphError):
        g.create_op(ResourceType.CPU).create(d)


def test_udf_only_on_cpu_ops():
    g = OpGraph()
    with pytest.raises(GraphError):
        g.create_op(ResourceType.NETWORK).set_udf(lambda ins, i: ins)
    g.create_op(ResourceType.CPU).set_udf(lambda ins, i: ins)  # fine


def test_cpu_work_factor_validation():
    g = OpGraph()
    op = g.create_op(ResourceType.CPU)
    op.set_cpu_work_factor(2.5)
    assert op.cpu_work_factor == 2.5
    with pytest.raises(GraphError):
        op.set_cpu_work_factor(0.0)
    with pytest.raises(GraphError):
        g.create_op(ResourceType.DISK).set_cpu_work_factor(2.0)


def test_self_edge_rejected():
    g = OpGraph()
    op = g.create_op(ResourceType.CPU)
    with pytest.raises(GraphError):
        op.to(op)


def test_cross_graph_edge_rejected():
    g1, g2 = OpGraph(), OpGraph()
    a = g1.create_op(ResourceType.CPU)
    b = g2.create_op(ResourceType.CPU)
    with pytest.raises(GraphError):
        a.to(b)
    with pytest.raises(GraphError):
        a.read(g2.create_data(1))


def test_cycle_detection():
    g = OpGraph()
    d = g.create_data(2)
    a = g.create_op(ResourceType.CPU).read(d).create(g.create_data(2))
    b = g.create_op(ResourceType.CPU).read(a.output).create(g.create_data(2))
    a.to(b, DepType.ASYNC)
    b.to(a, DepType.ASYNC)
    g.set_input(d, [1.0, 1.0])
    with pytest.raises(GraphError):
        g.validate()


def test_validate_unproduced_read():
    g = OpGraph()
    orphan = g.create_data(2)
    g.create_op(ResourceType.CPU).read(orphan).create(g.create_data(2))
    with pytest.raises(GraphError):
        g.validate()


def test_validate_async_parallelism_mismatch():
    g = OpGraph()
    d = g.create_data(4)
    g.set_input(d, [1.0] * 4)
    a = g.create_op(ResourceType.CPU).read(d).create(g.create_data(4))
    b = g.create_op(ResourceType.CPU).read(a.output).create(g.create_data(2))
    a.to(b, DepType.ASYNC)
    with pytest.raises(GraphError):
        g.validate()


def test_set_input_validation():
    g = OpGraph()
    d = g.create_data(2)
    with pytest.raises(GraphError):
        g.set_input(d, [1.0])  # wrong length
    with pytest.raises(GraphError):
        g.set_input(d, [1.0, 2.0], payloads=[[1]])  # payload length mismatch
    g.set_input(d, [1.0, 2.0])
    assert d.is_input
    produced = g.create_data(2)
    g.create_op(ResourceType.CPU).create(produced)
    with pytest.raises(GraphError):
        g.set_input(produced, [1.0, 2.0])
    with pytest.raises(GraphError):
        g.create_op(ResourceType.CPU).create(d)  # cannot create an input


def test_topological_order():
    g = OpGraph()
    d = g.create_data(2)
    g.set_input(d, [1.0, 1.0])
    a = g.create_op(ResourceType.CPU, "a").read(d).create(g.create_data(2))
    b = g.create_op(ResourceType.NETWORK, "b").read(a.output).create(g.create_data(2))
    c = g.create_op(ResourceType.CPU, "c").read(b.output).create(g.create_data(2))
    a.to(b, DepType.SYNC)
    b.to(c, DepType.ASYNC)
    order = [op.name for op in g.topological_order()]
    assert order.index("a") < order.index("b") < order.index("c")


def test_roots():
    g = OpGraph()
    d = g.create_data(2)
    g.set_input(d, [1.0, 1.0])
    a = g.create_op(ResourceType.CPU, "a").read(d).create(g.create_data(2))
    b = g.create_op(ResourceType.CPU, "b").read(a.output).create(g.create_data(2))
    a.to(b, DepType.ASYNC)
    assert g.roots() == [a]


def test_op_without_reads_or_creates_has_no_parallelism():
    g = OpGraph()
    op = g.create_op(ResourceType.CPU)
    with pytest.raises(GraphError):
        _ = op.parallelism
