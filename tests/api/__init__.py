# test package
