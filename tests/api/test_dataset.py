"""Tests for the Spark-like Dataset API (real data on the simulated cluster)."""

import pytest

from repro.api import UrsaContext
from repro.cluster import ClusterSpec


@pytest.fixture
def ctx():
    return UrsaContext(ClusterSpec.small(num_machines=2, cores=4))


def test_parallelize_and_collect_roundtrip(ctx):
    data = list(range(20))
    assert sorted(ctx.parallelize(data, 4).collect()) == data


def test_parallelize_rejects_bad_partitions(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([1, 2], partitions=0)


def test_map(ctx):
    out = ctx.parallelize(range(10), 3).map(lambda x: x * x).collect()
    assert sorted(out) == [x * x for x in range(10)]


def test_flat_map(ctx):
    out = ctx.parallelize(["ab", "c"], 2).flat_map(list).collect()
    assert sorted(out) == ["a", "b", "c"]


def test_filter(ctx):
    out = ctx.parallelize(range(20), 4).filter(lambda x: x % 2 == 0).collect()
    assert sorted(out) == list(range(0, 20, 2))


def test_map_partitions(ctx):
    parts = ctx.parallelize(range(12), 3).map_partitions(lambda p: [sum(p)]).collect()
    assert sum(parts) == sum(range(12))
    assert len(parts) == 3


def test_chained_narrow_ops_fuse_into_one_stage(ctx):
    ds = (
        ctx.parallelize(range(10), 2)
        .map(lambda x: x + 1)
        .filter(lambda x: x > 3)
        .map(lambda x: x * 2)
    )
    from repro.dataflow import plan_job

    plan = plan_job(ds.graph)
    assert len(plan.stages) == 1  # everything fused
    assert sorted(ds.collect()) == [2 * x for x in range(4, 11)]


def test_reduce_by_key_wordcount(ctx):
    words = "a b a c b a".split()
    out = (
        ctx.parallelize(words, 3)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda x, y: x + y, partitions=2)
        .collect()
    )
    assert dict(out) == {"a": 3, "b": 2, "c": 1}


def test_group_by_key(ctx):
    pairs = [(1, "x"), (2, "y"), (1, "z")]
    out = ctx.parallelize(pairs, 2).group_by_key(partitions=2).collect()
    grouped = {k: sorted(v) for k, v in out}
    assert grouped == {1: ["x", "z"], 2: ["y"]}


def test_key_by(ctx):
    out = ctx.parallelize([3, 4], 1).key_by(lambda x: x % 2).collect()
    assert sorted(out) == [(0, 4), (1, 3)]


def test_join(ctx):
    left = ctx.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
    right = ctx.parallelize([(1, 10), (3, 30), (4, 40)], 2, graph=left.graph)
    out = left.join(right, partitions=2).collect()
    assert sorted(out) == [(1, ("a", 10)), (3, ("c", 30))]


def test_join_requires_same_graph(ctx):
    left = ctx.parallelize([(1, "a")], 1)
    right = ctx.parallelize([(1, 2)], 1)  # separate graph
    with pytest.raises(ValueError):
        left.join(right)


def test_count_and_sum_and_reduce(ctx):
    ds = ctx.parallelize(range(10), 2)
    assert ds.count() == 10
    ds2 = ctx.parallelize(range(10), 2)
    assert ds2.sum() == 45
    ds3 = ctx.parallelize([1, 2, 3], 2)
    assert ds3.reduce(lambda a, b: a * b) == 6


def test_reduce_empty_raises(ctx):
    ds = ctx.parallelize([], 2)
    with pytest.raises(ValueError):
        ds.reduce(lambda a, b: a + b)


def test_collect_partitions_structure(ctx):
    parts = ctx.parallelize(range(8), 4).map(lambda x: x).collect_partitions()
    assert len(parts) == 4
    assert sorted(x for p in parts for x in p) == list(range(8))


def test_broadcast_wrapper(ctx):
    factor = ctx.broadcast(10)
    out = ctx.parallelize([1, 2], 1).map(lambda x: x * factor.value).collect()
    assert sorted(out) == [10, 20]


def test_multiple_jobs_on_one_context(ctx):
    a = ctx.parallelize(range(5), 2).map(lambda x: x + 1).collect()
    b = ctx.parallelize(range(5), 2).map(lambda x: x - 1).collect()
    assert sorted(a) == list(range(1, 6))
    assert sorted(b) == list(range(-1, 4))
    assert len(ctx.system.completed_jobs) == 2


def test_simulated_time_advances_with_work(ctx):
    before = ctx.cluster.sim.now
    ctx.parallelize(range(100), 4).map(lambda x: x).collect()
    assert ctx.cluster.sim.now > before
