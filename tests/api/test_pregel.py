"""Tests for the vertex-centric API, checked against networkx oracles."""

import networkx as nx
import pytest

from repro.api import (
    UrsaContext,
    connected_components_program,
    pagerank_program,
    run_pregel,
    sssp_program,
)
from repro.cluster import ClusterSpec
from repro.simcore import derive_rng


def make_ctx():
    return UrsaContext(ClusterSpec.small(num_machines=2, cores=4))


def random_graph(n=24, p=0.15, seed=5, directed=False):
    rng = derive_rng(seed, "graph")
    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v)
    return g


def test_connected_components_matches_networkx():
    g = random_graph(n=24, p=0.08)
    adj = {v: sorted(g.neighbors(v)) for v in g.nodes}
    verts = {v: v for v in g.nodes}
    out = run_pregel(make_ctx(), verts, adj, connected_components_program(), supersteps=24, partitions=3)
    for comp in nx.connected_components(g):
        labels = {out[v] for v in comp}
        assert len(labels) == 1
        assert labels == {min(comp)}


def test_pagerank_close_to_networkx():
    g = random_graph(n=20, p=0.2, seed=9, directed=True)
    # ensure every node has an out-edge so mass is conserved similarly
    for v in g.nodes:
        if g.out_degree(v) == 0:
            g.add_edge(v, (v + 1) % 20)
    adj = {v: sorted(g.successors(v)) for v in g.nodes}
    verts = {v: 1.0 for v in g.nodes}
    ours = run_pregel(make_ctx(), verts, adj, pagerank_program(), supersteps=30, partitions=4)
    ref = nx.pagerank(g, alpha=0.85, max_iter=200)
    total = sum(ours.values())
    ours_norm = {v: r / total for v, r in ours.items()}
    for v in g.nodes:
        assert ours_norm[v] == pytest.approx(ref[v], abs=0.02)
    # ranking of the top nodes agrees
    top_ours = max(ours, key=ours.get)
    top_ref = max(ref, key=ref.get)
    assert top_ours == top_ref


def test_sssp_matches_networkx():
    g = random_graph(n=20, p=0.15, seed=11)
    adj = {v: sorted(g.neighbors(v)) for v in g.nodes}
    verts = {v: (0.0 if v == 0 else float("inf")) for v in g.nodes}
    out = run_pregel(make_ctx(), verts, adj, sssp_program(), supersteps=20, partitions=3)
    ref = nx.single_source_shortest_path_length(g, 0)
    for v in g.nodes:
        if v in ref:
            assert out[v] == pytest.approx(float(ref[v]))
        else:
            assert out[v] == float("inf")


def test_pregel_requires_positive_supersteps():
    from repro.api.pregel import build_pregel_graph

    with pytest.raises(ValueError):
        build_pregel_graph({0: 0}, {0: []}, connected_components_program(), 0, 1)


def test_pregel_single_vertex_no_edges():
    out = run_pregel(make_ctx(), {7: 7}, {7: []}, connected_components_program(), supersteps=2, partitions=1)
    assert out == {7: 7}


def test_pregel_tasks_are_locality_pinned():
    """Iteration tasks must run where the vertex partitions live."""
    ctx = make_ctx()
    g = random_graph(n=16, p=0.2, seed=3)
    adj = {v: sorted(g.neighbors(v)) for v in g.nodes}
    verts = {v: v for v in g.nodes}
    from repro.api.pregel import build_pregel_graph

    graph, final = build_pregel_graph(verts, adj, connected_components_program(), 4, 2)
    jm = ctx.run_graph(graph)
    pinned = [t for t in jm.job.plan.tasks if t.locality is not None]
    assert pinned
    for t in pinned:
        assert t.worker == t.locality
