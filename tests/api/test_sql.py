"""Tests for the mini SQL engine, checked against plain-Python references."""

import pytest

from repro.api import UrsaContext
from repro.api.sql import (
    AVG,
    COUNT,
    SUM,
    Catalog,
    SqlEngine,
    SqlError,
    generate_tpch_tables,
    q1_pricing_summary,
    q1_reference,
    q3_reference,
    q3_shipping_priority,
    q6_forecast_revenue,
    q6_reference,
    q14_promo_effect,
    q14_reference,
)
from repro.cluster import ClusterSpec


@pytest.fixture(scope="module")
def tables():
    return generate_tpch_tables(scale_rows=60)


@pytest.fixture
def catalog(tables):
    ctx = UrsaContext(ClusterSpec.small(num_machines=2, cores=4))
    cat = Catalog(ctx)
    for name, rows in tables.items():
        cat.register(name, rows)
    return cat


@pytest.fixture
def engine(catalog):
    return SqlEngine(catalog)


def test_schema_generation_shape(tables):
    assert len(tables["region"]) == 5
    assert len(tables["nation"]) == 25
    assert len(tables["orders"]) == 60
    assert all(li["l_orderkey"] < 60 for li in tables["lineitem"])
    # deterministic
    again = generate_tpch_tables(scale_rows=60)
    assert again["lineitem"] == tables["lineitem"]


def test_catalog_register_and_lookup(catalog):
    assert "lineitem" in catalog.tables()
    assert "l_orderkey" in catalog.columns("lineitem")
    with pytest.raises(KeyError):
        catalog.relation("nope")
    with pytest.raises(ValueError):
        catalog.register("empty", [])


def test_select_where(engine, tables):
    rows = engine.sql("SELECT o_orderkey FROM orders WHERE o_orderstatus = 'F'")
    ref = [o["o_orderkey"] for o in tables["orders"] if o["o_orderstatus"] == "F"]
    assert sorted(r["o_orderkey"] for r in rows) == sorted(ref)


def test_group_by_count(engine, tables):
    rows = engine.sql(
        "SELECT l_returnflag, count(*) AS n FROM lineitem GROUP BY l_returnflag"
    )
    ref: dict = {}
    for r in tables["lineitem"]:
        ref[r["l_returnflag"]] = ref.get(r["l_returnflag"], 0) + 1
    assert {r["l_returnflag"]: r["n"] for r in rows} == ref


def test_aggregate_without_group_by(engine, tables):
    rows = engine.sql("SELECT sum(l_quantity) AS q, count(*) AS n FROM lineitem")
    assert rows[0]["q"] == sum(r["l_quantity"] for r in tables["lineitem"])
    assert rows[0]["n"] == len(tables["lineitem"])


def test_join_via_sql(engine, tables):
    rows = engine.sql(
        "SELECT n_name, count(*) AS n FROM customer JOIN nation ON c_nationkey = n_nationkey "
        "GROUP BY n_name"
    )
    ref: dict = {}
    nation = {n["n_nationkey"]: n["n_name"] for n in tables["nation"]}
    for c in tables["customer"]:
        ref[nation[c["c_nationkey"]]] = ref.get(nation[c["c_nationkey"]], 0) + 1
    assert {r["n_name"]: r["n"] for r in rows} == ref


def test_order_by_and_limit(engine, tables):
    rows = engine.sql("SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 3")
    ref = sorted(tables["orders"], key=lambda o: -o["o_totalprice"])[:3]
    assert [r["o_orderkey"] for r in rows] == [o["o_orderkey"] for o in ref]


def test_parser_errors():
    ctx = UrsaContext(ClusterSpec.small(num_machines=1, cores=2))
    cat = Catalog(ctx)
    cat.register("t", [{"a": 1}])
    eng = SqlEngine(cat)
    with pytest.raises(SqlError):
        eng.sql("DELETE FROM t")
    with pytest.raises(SqlError):
        eng.sql("SELECT a")  # no FROM
    with pytest.raises(SqlError):
        eng.sql("SELECT a, b FROM t GROUP BY a")  # b not aggregated
    with pytest.raises(SqlError):
        eng.sql("SELECT a FROM t WHERE a ~ 3")
    with pytest.raises(SqlError):
        eng.sql("SELECT a FROM t LIMIT many")


def test_explain(engine):
    text = engine.explain(
        "SELECT l_returnflag, sum(l_quantity) FROM lineitem WHERE l_quantity > 5 "
        "GROUP BY l_returnflag ORDER BY l_returnflag LIMIT 2"
    )
    assert "FROM lineitem" in text and "GROUP BY" in text and "LIMIT 2" in text


# ----------------------------------------------------------------------
# TPC-H query implementations vs references
# ----------------------------------------------------------------------
def test_q1_matches_reference(catalog, tables):
    rows = q1_pricing_summary(catalog)
    ref = q1_reference(tables)
    assert len(rows) == len(ref)
    for r in rows:
        a = ref[(r["l_returnflag"], r["l_linestatus"])]
        assert r["sum_qty"] == a["qty"]
        assert r["sum_base_price"] == pytest.approx(a["base"])
        assert r["sum_disc_price"] == pytest.approx(a["disc"])
        assert r["count_order"] == a["n"]
        assert r["avg_qty"] == pytest.approx(a["qty"] / a["n"])


def test_q3_matches_reference(catalog, tables):
    rows = q3_shipping_priority(catalog)
    ref = q3_reference(tables)
    expected = sorted(ref.items(), key=lambda kv: -kv[1])[: len(rows)]
    assert [(r["o_orderkey"], pytest.approx(r["revenue"])) for r in rows] == [
        (k, pytest.approx(v)) for k, v in expected
    ]


def test_q6_matches_reference(catalog, tables):
    assert q6_forecast_revenue(catalog) == pytest.approx(q6_reference(tables))


def test_q14_matches_reference(catalog, tables):
    assert q14_promo_effect(catalog) == pytest.approx(q14_reference(tables))


def test_relation_api_direct(catalog, tables):
    rel = (
        catalog.relation("lineitem")
        .where(lambda r: r["l_quantity"] >= 25)
        .group_by("l_linestatus")
        .agg(COUNT(None, "n"), SUM("l_quantity", "q"), AVG("l_extendedprice", "p"))
    )
    rows = rel.rows()
    ref: dict = {}
    for r in tables["lineitem"]:
        if r["l_quantity"] >= 25:
            a = ref.setdefault(r["l_linestatus"], [0, 0, 0.0])
            a[0] += 1
            a[1] += r["l_quantity"]
            a[2] += r["l_extendedprice"]
    for row in rows:
        n, q, p = ref[row["l_linestatus"]]
        assert row["n"] == n and row["q"] == q
        assert row["p"] == pytest.approx(p / n)
