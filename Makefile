PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-baseline

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

# Smoke-test the perf harness itself: run one experiment through the CLI
# twice against the same cache — the second invocation must be served from
# disk (watch the "[cached]" unit counts in the summary line).
bench-smoke:
	rm -rf .repro-cache-smoke
	$(PY) -m repro.experiments --only fig8 --scale tiny --parallel 2 --cache-dir .repro-cache-smoke
	$(PY) -m repro.experiments --only fig8 --scale tiny --parallel 2 --cache-dir .repro-cache-smoke
	rm -rf .repro-cache-smoke

# Regenerate BENCH_harness.json (serial vs parallel vs cached suite time).
bench-baseline:
	$(PY) scripts/bench_harness.py --scale bench --out BENCH_harness.json
