PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-baseline bench-sim bench-place place-identity profile trace analyze-smoke faults-smoke check-docs telemetry-smoke metrics-baseline service-smoke

test:
	$(PY) -m pytest -x -q

# Smoke-test the fault layer: run the crash-count × policy sweep at tiny
# scale (zero-crash rows must match the failure-free system byte-for-byte)
# and the faults test suite (lineage recovery, retry exhaustion,
# determinism pins).
faults-smoke:
	$(PY) -m repro.experiments --only fig_faults --scale tiny
	$(PY) -m pytest tests/faults -q

# Smoke-test the open-loop service mode: run the fig_service arrival-rate
# sweep at tiny scale through the parallel harness, write + schema-validate
# the SLO report (the CLI exits non-zero on any violation), and run the
# service test suite (arrival determinism, warmup exclusion, autoscaler
# hysteresis, shed accounting, serial≡parallel identity).
service-smoke:
	$(PY) -m repro.experiments --only fig_service --scale tiny --parallel 2 --service-out service-out
	$(PY) -m pytest tests/service -q

# Markdown link check (README/DESIGN/EXPERIMENTS/docs/) + embedded doctests
# (src/repro modules and the markdown docs themselves) + doc/implementation
# drift: every experiments-CLI flag and Makefile target must be documented.
check-docs:
	$(PY) scripts/check_docs.py

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

# Smoke-test the perf harness itself: run one experiment through the CLI
# twice against the same cache — the second invocation must be served from
# disk (watch the "[cached]" unit counts in the summary line).
bench-smoke:
	rm -rf .repro-cache-smoke
	$(PY) -m repro.experiments --only fig8 --scale tiny --parallel 2 --cache-dir .repro-cache-smoke
	$(PY) -m repro.experiments --only fig8 --scale tiny --parallel 2 --cache-dir .repro-cache-smoke
	rm -rf .repro-cache-smoke

# Smoke-test the telemetry subsystem: run table2 @ tiny with the live
# dashboard + telemetry export, validate every emitted exposition file,
# and diff the canonical run against the committed BENCH_metrics.json
# baseline at zero tolerance.
telemetry-smoke:
	$(PY) -m repro.experiments --only table2 --scale tiny --dashboard --telemetry-out telemetry-out
	$(PY) scripts/metrics_diff.py validate-prom telemetry-out/metrics.prom telemetry-out/scrapes/*.prom
	$(PY) scripts/metrics_diff.py check

# Regenerate BENCH_metrics.json (the telemetry regression-gate baseline;
# --measure-overhead also re-times telemetry-off vs telemetry-on).
metrics-baseline:
	$(PY) scripts/metrics_diff.py write --measure-overhead --repeats 5

# Regenerate BENCH_harness.json (serial vs parallel vs cached suite time
# plus the 1/2/4-worker scaling curve; tiny scale — five cold passes over
# the full suite already take ~10 min on one core).
bench-baseline:
	$(PY) scripts/bench_harness.py --scale tiny --out BENCH_harness.json

# Regenerate BENCH_sim.json (single-simulation wall time, optimized tick vs
# legacy tick, plus the scalar-vs-vector placement comparison; fails if any
# mode's metrics are not bit-identical).
bench-sim:
	$(PY) scripts/bench_sim.py --out BENCH_sim.json

# Placement-only microbenchmark: scalar vs vector F(t,w) scoring across
# cluster widths (8 → 512 workers); fails on any decision divergence.
bench-place:
	$(PY) scripts/bench_place.py --out BENCH_place.json

# Placement-identity gate: the vector engine must reproduce the scalar
# engine bit-for-bit — randomized property tests, end-to-end digest pins,
# the telemetry metrics baseline through the vector path, and a quick
# decision-identity sweep of the microbenchmark.
place-identity:
	$(PY) -m pytest tests/scheduler/test_vector_placement.py tests/perf/test_tick_determinism.py -q
	$(PY) scripts/metrics_diff.py check --placement vector
	$(PY) scripts/bench_place.py --widths 8,64 --repeats 1 --out /dev/null

# Profile the scheduling-tick hot path on a small experiment and print the
# per-phase tick counter report.
profile:
	$(PY) -m repro.experiments --profile --only fig7 --scale tiny

# Trace monotask lifecycles through a small experiment: writes
# traces/trace.jsonl + traces/trace.json (open the latter at
# https://ui.perfetto.dev), prints the allocation-latency tables, and
# validates the Chrome Trace export.
trace:
	$(PY) -m repro.experiments --trace --trace-out traces --only table2 --scale tiny
	$(PY) scripts/trace_stats.py --validate-chrome traces/trace.json
	$(PY) scripts/trace_stats.py traces/trace.jsonl

# Smoke-test the why-slow attribution engine on a canonical fig8 run:
# --analyze derives the critical-path JCT ledgers + idle blame ledger and
# fails on any sum-to-JCT identity violation; trace_analyze re-derives the
# same attribution from the JSONL artifact (--check re-validates); the
# flow-enriched Chrome trace and the idle-blame Prometheus gauges are both
# schema-validated.
analyze-smoke:
	$(PY) -m repro.experiments --analyze --trace-out analyze-out --only fig8 --scale tiny
	$(PY) scripts/trace_analyze.py analyze-out/trace.jsonl --check
	$(PY) scripts/trace_analyze.py analyze-out/trace.jsonl --top 5
	$(PY) scripts/trace_stats.py --validate-chrome analyze-out/trace.json
	$(PY) scripts/metrics_diff.py validate-prom analyze-out/attribution.prom
