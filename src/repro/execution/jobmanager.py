"""Job Managers (§4.1.3) — one per job.

The JM owns the job's monotask DAG and drives the execution flow:

* it maintains the list of **ready tasks** (all parent tasks complete);
* when a task becomes ready, it resolves every monotask's input sizes from
  the metadata store (sizes are known at ready time, §4.2.1), computes the
  task's estimated per-resource usage and memory, and reports the task to
  the scheduling layer for placement;
* when the scheduler places a task on a worker, the JM sends the task's
  source monotasks to that worker's queues, and as each monotask completes
  it releases newly-ready intra-task monotasks *to the same worker*;
* it updates the metadata store as partitions are produced, tracks task and
  job completion, and maintains the SRJF remaining-work vector.

The scheduling layer talks to the JM through the small
:class:`SchedulerBackend` protocol, so Ursa's scheduler and the
executor-model baselines can host the same execution layer (that is exactly
how the paper simulates MonoSpark, §5.1.2).
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..cluster.cluster import Cluster
from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Monotask, MonotaskState, Task, TaskState
from ..obs import recorder as _obs
from .estimator import estimate_task_memory, estimate_task_usage
from .job import Job, JobState
from .jobprocess import JobProcess
from .metadata import MetadataStore

__all__ = ["JobManager", "SchedulerBackend"]


class SchedulerBackend(Protocol):
    """What a JM needs from the scheduling layer."""

    def on_tasks_ready(self, jm: "JobManager", tasks: list[Task]) -> None:
        """New ready tasks with estimates filled; schedule their placement."""

    def enqueue_monotask(self, jm: "JobManager", mt: Monotask) -> None:
        """Queue a ready monotask at its task's assigned worker."""

    def on_job_complete(self, jm: "JobManager") -> None:
        """All tasks of the job finished."""


class JobManager:
    """Coordinates the execution flow of one job."""

    def __init__(
        self,
        sim,
        cluster: Cluster,
        job: Job,
        backend: SchedulerBackend,
        reserve_task_memory: bool = True,
        reserve_cpu_cores: bool = True,
    ):
        self.sim = sim
        self.cluster = cluster
        self.job = job
        self.backend = backend
        self.metadata = MetadataStore()
        # Ursa reserves memory per task and a core per CPU monotask; the
        # executor-model baselines host the same execution layer but their
        # *containers* hold the reservations instead (§5.1.2, Y+U).
        self.reserve_task_memory = reserve_task_memory
        self.reserve_cpu_cores = reserve_cpu_cores
        self._jps: dict[int, JobProcess] = {}
        # insertion-ordered so readiness-order float sums keep their exact
        # reduction order; dict-keyed so place_task's removal is O(1)
        self.ready_tasks: dict[Task, None] = {}

        for handle in job.graph.datasets:
            if handle.is_input:
                self.metadata.load_inputs(handle)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called at admission: surface the root tasks for placement."""
        self.job.state = JobState.ADMITTED
        self.job.admit_time = self.sim.now
        rec = _obs.RECORDER
        if rec is not None:
            rec.jm_start(self.sim.now, self.job.job_id)
        if self.job.num_tasks == 0:
            # a no-op graph (e.g. collect() on raw input data) is complete
            # the moment it is admitted
            self.job.state = JobState.DONE
            self.job.finish_time = self.sim.now
            if rec is not None:
                rec.job_finish(self.sim.now, self.job.job_id, self.job.jct or 0.0)
            self.backend.on_job_complete(self)
            return
        newly = []
        for task in self.job.plan.tasks:
            if task.remaining_parents == 0:
                newly.append(task)
        self._mark_ready(newly)

    def _mark_ready(self, tasks: list[Task]) -> None:
        if not tasks:
            return
        for task in tasks:
            task.state = TaskState.READY
            task.ready_at = self.sim.now
            self._resolve_task_inputs(task)
            self.ready_tasks[task] = None
        # memory estimates depend on the full ready set (the ratio r)
        ready_input_total = sum(t.input_size_mb() for t in self.ready_tasks)
        for task in tasks:
            estimate_task_usage(task)
            task.est_mem_mb = estimate_task_memory(
                task, self.job.requested_memory_mb, ready_input_total
            )
        rec = _obs.RECORDER
        if rec is not None:
            now = self.sim.now
            for task in tasks:
                rec.task_ready(
                    now, self.job.job_id, task.task_id,
                    task.stage.stage_id if task.stage is not None else -1,
                    len(task.monotasks), task.input_size_mb(),
                )
                rec.task_deps(
                    now, self.job.job_id, task.task_id,
                    [
                        [
                            mt.mt_id, mt.rtype.value, mt.input_size_mb,
                            mt.work_mb, [p.mt_id for p in mt.parents],
                        ]
                        for mt in task.monotasks
                    ],
                )
        self.backend.on_tasks_ready(self, tasks)

    # ------------------------------------------------------------------
    # input-size resolution (§4.2.1: sizes known when the task is ready)
    # ------------------------------------------------------------------
    def _resolve_task_inputs(self, task: Task) -> None:
        order = self._intra_task_topo(task)
        for mt in order:
            if mt.rtype is ResourceType.NETWORK:
                self._resolve_network(mt)
            elif mt.rtype is ResourceType.DISK:
                self._resolve_disk(mt)
            else:
                self._resolve_cpu(mt, task)

    @staticmethod
    def _intra_task_topo(task: Task) -> list[Monotask]:
        indeg = {id(m): len(m.intra_task_parents) for m in task.monotasks}
        frontier = [m for m in task.monotasks if indeg[id(m)] == 0]
        order: list[Monotask] = []
        while frontier:
            m = frontier.pop()
            order.append(m)
            for c in m.children:
                if c.task is task:
                    indeg[id(c)] -= 1
                    if indeg[id(c)] == 0:
                        frontier.append(c)
        assert len(order) == len(task.monotasks), "intra-task cycle"
        return order

    def _resolve_network(self, mt: Monotask) -> None:
        op = mt.head_op
        mt.sources = self.metadata.pull_sources(
            op, mt.partition_index, self.cluster.num_machines
        )
        mt.input_size_mb = sum(size for _m, size in mt.sources)
        mt.work_mb = mt.input_size_mb
        mt.expected_out_mb = mt.input_size_mb

    def _resolve_disk(self, mt: Monotask) -> None:
        parents = mt.intra_task_parents
        if parents:
            # disk write: consumes the output of its (CPU) parent(s)
            mt.input_size_mb = sum(p.expected_out_mb for p in parents)
        else:
            # disk read of job input partitions
            mt.input_size_mb = sum(
                self.metadata.size(h, mt.partition_index)
                for h in mt.head_op.reads
                if self.metadata.has(h, mt.partition_index)
            )
        mt.work_mb = mt.input_size_mb
        mt.expected_out_mb = mt.input_size_mb

    def _resolve_cpu(self, mt: Monotask, task: Task) -> None:
        chain_created = {op.output.data_id for op in mt.ops if op.output is not None}
        parent_outputs = {
            op.output.data_id
            for p in mt.intra_task_parents
            for op in p.ops
            if op.output is not None
        }
        external = sum(p.expected_out_mb for p in mt.intra_task_parents)
        cached_locs: dict[int, float] = {}
        for op in mt.ops:
            for h in op.reads:
                if h.data_id in chain_created or h.data_id in parent_outputs:
                    continue
                if self.metadata.has(h, mt.partition_index):
                    rec = self.metadata.get(h, mt.partition_index)
                    external += rec.size_mb
                    if rec.location is not None:
                        cached_locs[rec.location] = (
                            cached_locs.get(rec.location, 0.0) + rec.size_mb
                        )
        mt.input_size_mb = external
        # walk the fused chain to accumulate actual CPU work and expected
        # output sizes (the usage *estimate* stays the input size)
        size = external
        work = 0.0
        outputs: list = []
        for op in mt.ops:
            work += size * op.cpu_work_factor
            if op.size_fn is not None:
                size = op.size_fn(mt.partition_index, size)
            if op.output is not None:
                outputs.append((op.output, size))
        mt.work_mb = work
        mt.expected_out_mb = size
        mt.chain_outputs = outputs
        # reading resident partitions pins the task to their machine (§3
        # Obj-3: "observing locality constraints")
        if cached_locs and task.locality is None:
            task.locality = max(cached_locs.items(), key=lambda kv: kv[1])[0]

    # ------------------------------------------------------------------
    # placement and execution
    # ------------------------------------------------------------------
    def place_task(self, task: Task, worker: int) -> None:
        """The scheduler assigned ``task`` to ``worker``; reserve its memory
        and send its source monotasks to the worker's queues."""
        if task.state is not TaskState.READY:
            raise RuntimeError(f"{task!r} is not ready for placement")
        machine = self.cluster.machine(worker)
        if self.reserve_task_memory:
            machine.reserve_memory(task.est_mem_mb)
        machine.use_memory(self._actual_memory(task))
        task.state = TaskState.PLACED
        task.worker = worker
        task.placed_at = self.sim.now
        del self.ready_tasks[task]
        for mt in task.source_monotasks:
            mt.state = MonotaskState.READY
            self.backend.enqueue_monotask(self, mt)

    def run_monotask(self, mt: Monotask, on_done) -> None:
        """Called by the worker when resources are granted to ``mt``."""
        task = mt.task
        assert task is not None and task.worker is not None
        jp = self._jps.get(task.worker)
        if jp is None:
            jp = JobProcess(self, self.cluster.machine(task.worker))
            self._jps[task.worker] = jp
        jp.run(mt, on_done)

    # ------------------------------------------------------------------
    # completion flow
    # ------------------------------------------------------------------
    def monotask_finished(self, mt: Monotask) -> None:
        task = mt.task
        assert task is not None
        rec = _obs.RECORDER
        if rec is not None:
            rec.mt_finish(
                self.sim.now, self.job.job_id, task.task_id, mt.mt_id,
                mt.rtype.value, task.worker if task.worker is not None else -1,
            )
        task.remaining_monotasks -= 1
        self.job.decrement_remaining(mt.rtype, mt.input_size_mb)
        if mt.rtype is ResourceType.CPU and mt.started_at is not None:
            self.job.cpu_seconds_used += (mt.finished_at or self.sim.now) - mt.started_at

        if task.remaining_monotasks > 0:
            # release newly-ready intra-task monotasks to the same worker
            for child in mt.children:
                if child.task is task and child.state is MonotaskState.PENDING:
                    if all(
                        p.state is MonotaskState.DONE for p in child.intra_task_parents
                    ):
                        child.state = MonotaskState.READY
                        self.backend.enqueue_monotask(self, child)
            return

        self._task_finished(task)

    def _actual_memory(self, task: Task) -> float:
        """True memory footprint: the estimate scaled by the job's accuracy
        factor (users/estimators over-provision; UE_mem measures the gap)."""
        return task.est_mem_mb * self.job.memory_accuracy

    # ------------------------------------------------------------------
    # fault recovery (driven by repro.faults; unused in failure-free runs)
    # ------------------------------------------------------------------
    def fault_rewind_task(self, task: Task) -> float:
        """Rewind a READY / PLACED / DONE task to BLOCKED so the normal
        ready→place→enqueue path re-executes it from scratch.

        The caller (:class:`repro.faults.injector.FaultController`) has
        already aborted the task's running monotasks and evicted its queued
        ones; this method unwinds the JM-side state: placement memory,
        completion counters, the SRJF remaining-work vector (lost completed
        work must be redone), and every monotask's resolution state — sizes,
        shuffle sources and localities are recomputed from fresh metadata at
        the next ``_mark_ready``.  Returns the input MB of completed +
        running monotasks whose work is wasted.
        """
        job = self.job
        wasted = 0.0
        if task.state is TaskState.PLACED and task.worker is not None:
            machine = self.cluster.machine(task.worker)
            if self.reserve_task_memory:
                machine.release_memory(task.est_mem_mb)
            machine.unuse_memory(self._actual_memory(task))
        elif task.state is TaskState.DONE:
            # its placement memory was released at completion
            job.tasks_done -= 1
        elif task.state is TaskState.READY:
            self.ready_tasks.pop(task, None)
        for mt in task.monotasks:
            if mt.state is MonotaskState.DONE:
                wasted += mt.input_size_mb
                job.restore_remaining(mt.rtype, mt.input_size_mb)
            elif mt.state is MonotaskState.RUNNING:
                wasted += mt.input_size_mb
            mt.state = MonotaskState.PENDING
            mt.started_at = None
            mt.finished_at = None
            mt.sources = None
            mt.chain_outputs = None
            mt.input_size_mb = 0.0
            mt.work_mb = 0.0
            mt.expected_out_mb = 0.0
        task.state = TaskState.BLOCKED
        task.worker = None
        task.locality = None
        task.sched_usage = None
        task._input_mb = None
        task.remaining_monotasks = len(task.monotasks)
        task.ready_at = None
        task.placed_at = None
        task.finished_at = None
        return wasted

    def fault_recount_dependencies(self) -> None:
        """Re-derive ``remaining_parents`` for every non-terminal task after
        rewinds invalidated the incremental counters.

        A READY task with a rewound parent is pulled back to BLOCKED: the
        parent's outputs are gone, so it must wait for the re-execution and
        re-resolve its inputs then.  (Its own resolved inputs, if damaged,
        already placed it in the restart set — this handles the purely
        counter-level fallout.)  PLACED and DONE tasks are left alone: any
        placed task with a rewound parent reads that parent's now-dead data
        and was therefore itself rewound before this runs.
        """
        for task in self.job.plan.tasks:
            if task.state in (TaskState.DONE, TaskState.PLACED):
                continue
            count = sum(1 for p in task.parents if p.state is not TaskState.DONE)
            task.remaining_parents = count
            if task.state is TaskState.READY and count > 0:
                self.ready_tasks.pop(task, None)
                task.state = TaskState.BLOCKED
                task.locality = None
                task.sched_usage = None
                task._input_mb = None
                task.ready_at = None

    def fault_recover_ready(self, task: Task) -> None:
        """Deferred re-ready callback (scheduled with the retry backoff).
        Guarded: the task may have been re-readied through a parent's
        completion, rewound again, or its job failed in the meantime."""
        if self.job.state is not JobState.ADMITTED:
            return
        if task.state is TaskState.BLOCKED and task.remaining_parents == 0:
            self._mark_ready([task])

    def fault_requeue_monotask(self, mt: Monotask) -> None:
        """Deferred re-enqueue of a grant-timeout victim: the monotask keeps
        its resolved sizes/sources (its inputs are intact — only the grant
        was lost) and rejoins its worker's queue through the normal path."""
        task = mt.task
        if self.job.state is not JobState.ADMITTED or task is None:
            return
        if mt.state is MonotaskState.READY and task.state is TaskState.PLACED:
            self.backend.enqueue_monotask(self, mt)

    def fault_mark_failed(self, now: float) -> None:
        """Retry budget exhausted (or the job can never fit the shrunken
        cluster): stamp a terminal FAILED state.  ``finish_time`` is set so
        metrics still aggregate, and ``tasks_done`` keeps the partial-result
        count.  The fault controller tears down placed tasks and notifies
        the scheduler backend."""
        self.job.state = JobState.FAILED
        self.job.finish_time = now
        self.ready_tasks.clear()
        rec = _obs.RECORDER
        if rec is not None:
            rec.job_finish(now, self.job.job_id, self.job.jct or 0.0, failed=True)

    def _task_finished(self, task: Task) -> None:
        task.state = TaskState.DONE
        task.finished_at = self.sim.now
        self.job.tasks_done += 1
        assert task.worker is not None
        rec = _obs.RECORDER
        if rec is not None:
            rec.task_finish(self.sim.now, self.job.job_id, task.task_id, task.worker)
        machine = self.cluster.machine(task.worker)
        if self.reserve_task_memory:
            machine.release_memory(task.est_mem_mb)
        machine.unuse_memory(self._actual_memory(task))

        newly_ready: list[Task] = []
        for child in task.children:
            child.remaining_parents -= 1
            if child.remaining_parents == 0:
                newly_ready.append(child)
        # task.children is a set (id-ordered): sort so ready order — and
        # hence placement tie-breaking — is reproducible across runs
        newly_ready.sort(key=lambda t: t.task_id)
        self._mark_ready(newly_ready)

        # optional backend hook (executor-model baselines free task slots)
        notify = getattr(self.backend, "on_task_complete", None)
        if notify is not None:
            notify(self, task)

        if self.job.tasks_done == self.job.num_tasks:
            self.job.state = JobState.DONE
            self.job.finish_time = self.sim.now
            if rec is not None:
                rec.job_finish(self.sim.now, self.job.job_id, self.job.jct or 0.0)
            self.backend.on_job_complete(self)
