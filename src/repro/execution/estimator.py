"""Resource-usage estimation — a duty of the JM (§4.2.1).

* Network / disk monotask usage = size of its input data.
* CPU monotask usage = its input data size as well (footnote 3: complexity
  differences are absorbed by the scheduler's processing-rate monitoring).
* Task usage = sum over its monotasks.
* Memory: ``mem(t) = min(r · M(j), m2i(t) · I(t))`` where ``M(j)`` is the
  user-requested job memory, ``r`` is the share of this task's input among
  the job's currently-ready tasks, and ``m2i`` is the (per-operation)
  memory-to-input ratio.

The module also propagates sizes statically through an OpGraph (used to
initialize SRJF's remaining-work vector, the stand-in for "historical
information" on recurring jobs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..dataflow.graph import OpGraph, ResourceType
from ..dataflow.monotask import Monotask, Task

if TYPE_CHECKING:  # pragma: no cover
    from .jobmanager import JobManager

__all__ = ["estimate_task_usage", "estimate_task_memory", "static_size_totals", "task_m2i"]


def estimate_task_usage(task: Task) -> None:
    """Fill est_cpu/net/disk from the already-resolved monotask input sizes."""
    cpu = net = disk = 0.0
    for m in task.monotasks:
        if m.rtype is ResourceType.CPU:
            cpu += m.input_size_mb
        elif m.rtype is ResourceType.NETWORK:
            net += m.input_size_mb
        else:
            disk += m.input_size_mb
    task.est_cpu_mb = cpu
    task.est_net_mb = net
    task.est_disk_mb = disk


def task_m2i(task: Task) -> float:
    """Memory-to-input ratio of a task: that of its CPU op chain (the op that
    actually holds data in memory), falling back to the max over all ops."""
    cpu_mts = task.cpu_monotasks
    if cpu_mts:
        return max(op.m2i for op in cpu_mts[0].ops)
    return max((op.m2i for m in task.monotasks for op in m.ops), default=1.0)


def estimate_task_memory(
    task: Task, job_requested_mb: float, ready_input_total_mb: float
) -> float:
    """§4.2.1: ``min(r × M(j), m2i(t) × I(t))``, never below a small floor so
    zero-input barrier tasks still get working memory."""
    input_mb = task.input_size_mb()
    if ready_input_total_mb > 0:
        ratio = input_mb / ready_input_total_mb
    else:
        ratio = 1.0
    estimate = min(ratio * job_requested_mb, task_m2i(task) * input_mb)
    return max(estimate, 1.0)


def static_size_totals(graph: OpGraph) -> dict[ResourceType, float]:
    """Propagate input sizes through the graph to estimate per-resource total
    work (MB) for a whole job, before anything runs."""
    sizes: dict[int, float] = {}  # data_id -> total MB
    for d in graph.datasets:
        if d.initial is not None:
            sizes[d.data_id] = sum(s for s, _p in d.initial)
    totals = {r: 0.0 for r in (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)}
    for op in graph.topological_order():
        in_total = sum(sizes.get(h.data_id, 0.0) for h in op.reads)
        totals[op.rtype] += in_total
        out = op.output
        if out is None:
            continue
        if op.size_fn is not None:
            out_total = sum(
                op.size_fn(i, in_total / max(1, op.parallelism))
                for i in range(op.parallelism)
            )
        else:
            out_total = in_total
        sizes[out.data_id] = out_total
    return totals
