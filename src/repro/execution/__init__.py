"""Ursa's execution layer: jobs, JMs, JPs, metadata."""

from .estimator import (
    estimate_task_memory,
    estimate_task_usage,
    static_size_totals,
    task_m2i,
)
from .job import Job, JobState
from .jobmanager import JobManager, SchedulerBackend
from .jobprocess import JobProcess
from .metadata import (
    DEFAULT_MB_PER_ELEMENT,
    MetadataStore,
    PartitionRecord,
    estimate_payload_mb,
)

__all__ = [
    "estimate_task_memory",
    "estimate_task_usage",
    "static_size_totals",
    "task_m2i",
    "Job",
    "JobState",
    "JobManager",
    "SchedulerBackend",
    "JobProcess",
    "DEFAULT_MB_PER_ELEMENT",
    "MetadataStore",
    "PartitionRecord",
    "estimate_payload_mb",
]
