"""Job processes (JPs) — per-(job, worker) execution agents (§4.1.4).

A JP runs monotasks on its worker's machine:

* **CPU** — occupies one core (reserving it in the allocation ledger, which
  is what makes Ursa's SE≈UE: the core is held exactly while it is driven),
  runs the fused UDF chain on completion, and records outputs.
* **Network** — opens a pull-based transfer from all sender machines at once
  through the cluster fabric (§4.2.3).
* **Disk** — submits the read/write to the machine's disk.

The JP reports completion back to the JM, which "releases the resource to
the worker when it completes a monotask".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..cluster.machine import Machine
from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Monotask, MonotaskState

if TYPE_CHECKING:  # pragma: no cover
    from .jobmanager import JobManager

__all__ = ["JobProcess"]

DoneCallback = Callable[[Monotask], None]


class JobProcess:
    """Executes the monotasks of one job placed on one worker."""

    def __init__(self, jm: "JobManager", machine: Machine):
        self.jm = jm
        self.machine = machine
        self.running = 0
        # mt_id -> the service request / transfer driving it.  Every _finish_*
        # callback checks membership first: zero-work submissions and
        # local-only transfers complete through an un-cancellable call_soon,
        # so after a fault-layer abort the stale completion must fall through
        # silently instead of re-finishing a rewound monotask.
        self._inflight: dict[int, Any] = {}

    # ------------------------------------------------------------------
    def run(self, mt: Monotask, on_done: DoneCallback) -> None:
        if mt.state is not MonotaskState.QUEUED:
            raise RuntimeError(f"{mt!r} must be queued before running (is {mt.state})")
        mt.state = MonotaskState.RUNNING
        mt.started_at = self.jm.sim.now
        self.running += 1
        if mt.rtype is ResourceType.CPU:
            self._run_cpu(mt, on_done)
        elif mt.rtype is ResourceType.NETWORK:
            self._run_network(mt, on_done)
        else:
            self._run_disk(mt, on_done)

    def abort_monotask(self, mt: Monotask) -> float:
        """Fault layer: cancel a RUNNING monotask's in-flight service and
        release what it held.  Returns the work (MB) it had *completed* when
        aborted — wasted effort that re-execution will repeat.  The caller
        owns the monotask-state rewind and the worker-slot accounting."""
        handle = self._inflight.pop(mt.mt_id, None)
        if handle is None:
            return 0.0
        self.running -= 1
        if mt.rtype is ResourceType.CPU:
            if self.jm.reserve_cpu_cores:
                self.machine.release_cores(1)
            remaining = self.machine.cpu.cancel(handle)
            return max(0.0, mt.work_mb - remaining)
        if mt.rtype is ResourceType.NETWORK:
            self.jm.cluster.network.cancel(handle)
            return 0.0
        remaining = self.machine.disk.cancel(handle)
        return max(0.0, mt.work_mb - remaining)

    # ------------------------------------------------------------------
    def _run_cpu(self, mt: Monotask, on_done: DoneCallback) -> None:
        # Each CPU monotask uses exactly one core at full utilization until
        # it completes (§4.2.1) — reserve it for the SE ledger.  Under the
        # executor-model baselines the container already holds the cores.
        if self.jm.reserve_cpu_cores:
            self.machine.reserve_cores(1)
        self._inflight[mt.mt_id] = self.machine.cpu.submit(
            mt.work_mb, self._finish_cpu, mt, on_done
        )

    def _finish_cpu(self, mt: Monotask, on_done: DoneCallback) -> None:
        if mt.mt_id not in self._inflight:
            return  # aborted by the fault layer after a zero-work call_soon
        if self.jm.reserve_cpu_cores:
            self.machine.release_cores(1)
        real_outputs = self._execute_udf_chain(mt)
        self._record_outputs(mt, real_outputs)
        self._complete(mt, on_done)

    def _execute_udf_chain(self, mt: Monotask) -> dict[int, Any]:
        """Run the fused chain's UDFs on real payloads, if any input has one.

        Returns data_id -> payload for every chain output that was actually
        materialized; empty in size-only mode.
        """
        meta = self.jm.metadata
        internal: dict[int, Any] = {}
        produced: dict[int, Any] = {}
        for op in mt.ops:
            ins = []
            for h in op.reads:
                if h.data_id in internal:
                    ins.append(internal[h.data_id])
                elif meta.has(h, mt.partition_index):
                    ins.append(meta.get(h, mt.partition_index).payload)
                else:
                    ins.append(None)
            if op.udf is not None and any(x is not None for x in ins):
                out = op.udf(ins, mt.partition_index)
            else:
                out = ins[0] if ins else None
            if op.output is not None:
                internal[op.output.data_id] = out
                if out is not None:
                    produced[op.output.data_id] = out
        return produced

    def _run_network(self, mt: Monotask, on_done: DoneCallback) -> None:
        sources = mt.sources or []
        self._inflight[mt.mt_id] = self.jm.cluster.network.start_transfer(
            self.machine.index, sources, self._finish_network, mt, on_done
        )

    def _finish_network(self, mt: Monotask, on_done: DoneCallback) -> None:
        if mt.mt_id not in self._inflight:
            return  # aborted after a local-only call_soon completion
        # Assemble the pulled partition (real payloads when present).
        op = mt.head_op
        out = op.output
        if out is not None:
            payload = self._gather_shards(mt)
            size = mt.input_size_mb if payload is None else None
            if payload is not None:
                self.jm.metadata.record(out, mt.partition_index, 0.0, self.machine.index, payload)
            else:
                self.jm.metadata.record(out, mt.partition_index, size, self.machine.index)
        self._complete(mt, on_done)

    def _gather_shards(self, mt: Monotask) -> Any:
        op = mt.head_op
        idx = mt.partition_index
        # same-package fast path over metadata.get()/shard_payload(): this
        # scans every source partition for every network monotask, and most
        # workloads carry no real payloads at all
        records = self.jm.metadata._records
        items: list = []
        real = False
        for h in op.reads:
            did = h.data_id
            for i in range(h.num_partitions):
                payload = records[(did, i)].payload
                if isinstance(payload, dict):
                    real = True
                    items.extend(payload.get(idx, ()))
        return items if real else None

    def _run_disk(self, mt: Monotask, on_done: DoneCallback) -> None:
        self._inflight[mt.mt_id] = self.machine.disk.submit(
            mt.work_mb, self._finish_disk, mt, on_done
        )

    def _finish_disk(self, mt: Monotask, on_done: DoneCallback) -> None:
        if mt.mt_id not in self._inflight:
            return  # aborted by the fault layer after a zero-work call_soon
        op = mt.head_op
        out = op.output
        if out is not None:
            # disk read surfaces the input payload into memory; disk write
            # records the final dataset at this worker
            payload = None
            for h in op.reads:
                if self.jm.metadata.has(h, mt.partition_index):
                    rec = self.jm.metadata.get(h, mt.partition_index)
                    payload = rec.payload
                    break
            self.jm.metadata.record(
                out, mt.partition_index, mt.expected_out_mb, self.machine.index, payload
            )
        self._complete(mt, on_done)

    # ------------------------------------------------------------------
    def _record_outputs(self, mt: Monotask, real_outputs: dict[int, Any]) -> None:
        """Record chain outputs: real payloads where materialized, otherwise
        the expected sizes computed when the task became ready."""
        meta = self.jm.metadata
        expected = dict(mt.chain_outputs or [])
        for op in mt.ops:
            handle = op.output
            if handle is None:
                continue
            payload = real_outputs.get(handle.data_id)
            if payload is not None:
                meta.record(handle, mt.partition_index, 0.0, self.machine.index, payload)
            else:
                size = expected.get(handle, mt.expected_out_mb)
                meta.record(handle, mt.partition_index, size, self.machine.index)

    def _complete(self, mt: Monotask, on_done: DoneCallback) -> None:
        self._inflight.pop(mt.mt_id, None)
        self.running -= 1
        mt.state = MonotaskState.DONE
        mt.finished_at = self.jm.sim.now
        self.jm.monotask_finished(mt)
        on_done(mt)
