"""Per-job metadata store and data store (§4.1.3 "Metadata", §4.1.4).

The JM "maintains a metadata store that records the size and locality of each
dataset partition"; JPs keep the actual data.  In the simulation both live in
one :class:`MetadataStore` per job: every partition has a size and a
location, and optionally a real payload when the job runs actual UDFs.

Shuffle payloads: a CPU op feeding a shuffle produces *sharded* partitions —
a dict mapping the consumer's output-partition index to the items bound for
it.  ``shard_size`` returns the exact shard size for real payloads and a
weighted split of the partition size otherwise.
"""

from __future__ import annotations

from typing import Any, Optional

from ..dataflow.graph import DataHandle, Op

__all__ = ["PartitionRecord", "MetadataStore", "estimate_payload_mb", "DEFAULT_MB_PER_ELEMENT"]

# Rough in-memory footprint of one deserialized record; only used to convert
# real payload sizes into simulated MB (tests pin behaviour, not realism).
DEFAULT_MB_PER_ELEMENT = 1e-4


def estimate_payload_mb(payload: Any, mb_per_element: float = DEFAULT_MB_PER_ELEMENT) -> float:
    """Estimate the MB footprint of a real partition payload."""
    if payload is None:
        return 0.0
    if isinstance(payload, dict):
        return sum(estimate_payload_mb(v, mb_per_element) for v in payload.values())
    if isinstance(payload, (list, tuple, set)):
        return max(len(payload) * mb_per_element, 0.0)
    return mb_per_element


class PartitionRecord:
    """Size, location and (optional) payload of one dataset partition."""

    __slots__ = ("size_mb", "location", "payload", "shard_sizes")

    def __init__(
        self,
        size_mb: float,
        location: Optional[int],
        payload: Any = None,
        shard_sizes: Optional[dict[int, float]] = None,
    ):
        self.size_mb = float(size_mb)
        self.location = location   # machine index; None = external input (HDFS)
        self.payload = payload
        self.shard_sizes = shard_sizes

    def shard_size(self, shard: int, num_shards: int, weights: Optional[list[float]]) -> float:
        """Size of the ``shard``-th slice of this partition."""
        if self.shard_sizes is not None:
            return self.shard_sizes.get(shard, 0.0)
        if weights is not None:
            total_w = sum(weights)
            return self.size_mb * weights[shard] / total_w
        return self.size_mb / num_shards

    def shard_payload(self, shard: int) -> Any:
        if isinstance(self.payload, dict):
            return self.payload.get(shard, [])
        return None


class MetadataStore:
    """All partition records of one job, keyed by (data_id, partition)."""

    def __init__(self, mb_per_element: float = DEFAULT_MB_PER_ELEMENT):
        self._records: dict[tuple[int, int], PartitionRecord] = {}
        self.mb_per_element = mb_per_element

    # -- loading job inputs ---------------------------------------------
    def load_inputs(self, handle: DataHandle) -> None:
        assert handle.initial is not None
        for i, (size_mb, payload) in enumerate(handle.initial):
            shard_sizes = None
            if isinstance(payload, dict):
                shard_sizes = {
                    k: estimate_payload_mb(v, self.mb_per_element)
                    for k, v in payload.items()
                }
            self._records[(handle.data_id, i)] = PartitionRecord(
                size_mb, None, payload, shard_sizes
            )

    # -- recording produced partitions ------------------------------------
    def record(
        self,
        handle: DataHandle,
        partition: int,
        size_mb: float,
        location: int,
        payload: Any = None,
    ) -> None:
        shard_sizes = None
        if payload is not None:
            if isinstance(payload, dict):
                shard_sizes = {
                    k: estimate_payload_mb(v, self.mb_per_element)
                    for k, v in payload.items()
                }
                size_mb = sum(shard_sizes.values())
            else:
                size_mb = estimate_payload_mb(payload, self.mb_per_element)
        self._records[(handle.data_id, partition)] = PartitionRecord(
            size_mb, location, payload, shard_sizes
        )

    # -- fault layer -------------------------------------------------------
    def invalidate_machine(self, machine: int) -> list[tuple[int, int]]:
        """Drop every partition record located on ``machine`` (its data died
        with the worker) and return the dropped ``(data_id, partition)``
        keys, sorted, so lineage recovery can decide which producer tasks
        must re-execute.  External inputs (location ``None``) survive — they
        model durable HDFS storage, not worker-local shards."""
        dropped = sorted(
            key for key, rec in self._records.items() if rec.location == machine
        )
        for key in dropped:
            del self._records[key]
        return dropped

    # -- queries -----------------------------------------------------------
    def has(self, handle: DataHandle, partition: int) -> bool:
        return (handle.data_id, partition) in self._records

    def get(self, handle: DataHandle, partition: int) -> PartitionRecord:
        try:
            return self._records[(handle.data_id, partition)]
        except KeyError:
            raise KeyError(
                f"partition {partition} of dataset {handle.name!r} not recorded yet"
            ) from None

    def size(self, handle: DataHandle, partition: int) -> float:
        return self.get(handle, partition).size_mb

    def total_size(self, handle: DataHandle) -> float:
        return sum(
            self.size(handle, i) for i in range(handle.num_partitions) if self.has(handle, i)
        )

    def location(self, handle: DataHandle, partition: int) -> Optional[int]:
        return self.get(handle, partition).location

    def pull_sources(
        self, net_op: Op, out_partition: int, num_machines: int
    ) -> list[tuple[int, float]]:
        """(machine, size) pairs a network monotask pulls for one output
        partition: the matching shard of every partition of every read
        dataset.  External-input partitions count as remote reads from a
        round-robin 'HDFS' node."""
        num_shards = net_op.parallelism
        weights = net_op.shard_weights
        # hoisted out of the per-partition loop (this runs once per source
        # partition per output partition — quadratic in stage width); the
        # arithmetic below matches PartitionRecord.shard_size exactly
        total_w = sum(weights) if weights is not None else None
        records = self._records
        sources: list[tuple[int, float]] = []
        append = sources.append
        for handle in net_op.reads:
            did = handle.data_id
            for i in range(handle.num_partitions):
                rec = records[(did, i)]
                ss = rec.shard_sizes
                if ss is not None:
                    size = ss.get(out_partition, 0.0)
                elif weights is not None:
                    size = rec.size_mb * weights[out_partition] / total_w
                else:
                    size = rec.size_mb / num_shards
                loc = rec.location
                append((i % num_machines if loc is None else loc, size))
        return sources
