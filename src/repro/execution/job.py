"""Job records: lifecycle state, timings, and remaining-work accounting."""

from __future__ import annotations

import enum
from typing import Optional

from ..dataflow.graph import OpGraph, ResourceType
from ..dataflow.planner import PlannedJob, plan_job
from .estimator import static_size_totals

__all__ = ["JobState", "Job"]


class JobState(enum.Enum):
    SUBMITTED = "submitted"   # waiting for admission (memory gate, §4.2.2)
    ADMITTED = "admitted"     # JM created; tasks being scheduled
    DONE = "done"
    FAILED = "failed"         # killed by the fault layer (retry budget spent
                              # or the shrunken cluster can never admit it);
                              # finish_time is still stamped so metrics
                              # aggregate, and tasks_done records the partial
                              # result


class Job:
    """One submitted job: its graph, plan, and lifecycle bookkeeping."""

    _RES_KEYS = (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)

    def __init__(
        self,
        job_id: int,
        graph: OpGraph,
        submit_time: float,
        requested_memory_mb: float,
        category: str = "generic",
    ):
        self.job_id = job_id
        self.graph = graph
        self.plan: PlannedJob = plan_job(graph)
        self.submit_time = submit_time
        self.requested_memory_mb = float(requested_memory_mb)
        self.category = category

        self.state = JobState.SUBMITTED
        self.admit_time: Optional[float] = None
        self.finish_time: Optional[float] = None

        # Remaining per-resource work R (MB), used by SRJF (§4.2.2 "Job
        # ordering").  Initialized from the static size propagation ("based
        # on historical information") and decremented as monotasks finish.
        self.remaining_work: dict[ResourceType, float] = static_size_totals(graph)
        # Bumped on every remaining-work decrement; SRJF keys its memoized
        # per-job dot product on this, so a cache hit is always exact.
        self.work_version = 0
        self.tasks_done = 0
        self.cpu_seconds_used = 0.0
        # Ratio of a task's true memory footprint to its estimate; < 1 models
        # the conservative over-estimation UE_mem exposes (§2 "inaccurate
        # container sizing").  Workload generators set realistic values.
        self.memory_accuracy = 1.0

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def num_tasks(self) -> int:
        return len(self.plan.tasks)

    @property
    def done(self) -> bool:
        return self.state is JobState.DONE

    @property
    def failed(self) -> bool:
        return self.state is JobState.FAILED

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def jct(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    def decrement_remaining(self, rtype: ResourceType, amount: float) -> None:
        self.remaining_work[rtype] = max(0.0, self.remaining_work[rtype] - amount)
        self.work_version += 1

    def restore_remaining(self, rtype: ResourceType, amount: float) -> None:
        """Fault layer: completed work lost with a worker must be redone, so
        it re-enters the SRJF remaining-work estimate (and bumps
        ``work_version`` so memoized ranks refresh)."""
        self.remaining_work[rtype] += amount
        self.work_version += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"Job({self.job_id}:{self.name}, {self.state.value})"
