"""Y+U: Ursa's execution layer as an executor-based YARN app (≈ MonoSpark).

This is the paper's §5.1.2 "Is monotask sufficient?" simulation: the job
keeps local per-resource monotask queues (so I/O and compute *within the
job* overlap, like MonoSpark), but its resources come from YARN containers
that are requested like Spark executors and held regardless of instantaneous
use.  Fine-grained sharing happens only inside the job — not across jobs —
which is exactly why its UE stays executor-grade.

Implementation: task→container dispatch is inherited from
:class:`ExecutorApp` (slot-based, with a 2× slot multiplier so fetches of
one batch overlap the computation of another), while monotask execution goes
through per-machine per-resource queues with Ursa-style ordering and
concurrency limits instead of running phases back-to-back in the slot.
"""

from __future__ import annotations

from collections import deque

from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Monotask, MonotaskState
from ..execution.jobmanager import JobManager
from .containers import Container
from .executor import ExecutorApp

__all__ = ["MonoSparkApp"]

_RES = (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)


class _MachineQueues:
    """Per-machine, per-resource local queues of one MonoSpark job."""

    __slots__ = ("queues", "running")

    def __init__(self) -> None:
        self.queues: dict[ResourceType, deque[Monotask]] = {r: deque() for r in _RES}
        self.running: dict[ResourceType, int] = {r: 0 for r in _RES}


class MonoSparkApp(ExecutorApp):
    """ExecutorApp variant with intra-job per-resource queues (Y+U)."""

    NETWORK_CONCURRENCY = 2
    DISK_CONCURRENCY = 1
    slot_multiplier = 2  # overlap: one batch fetching, one computing

    def __init__(self, rm, cluster, job, config, on_done=None):
        super().__init__(rm, cluster, job, config, on_done)
        self._mq: dict[int, _MachineQueues] = {}

    def _machine_queues(self, machine_index: int) -> _MachineQueues:
        mq = self._mq.get(machine_index)
        if mq is None:
            mq = _MachineQueues()
            self._mq[machine_index] = mq
        return mq

    def _cores_held(self, machine_index: int) -> int:
        return sum(
            c.cores
            for c in self.containers.values()
            if not c.released and c.machine_index == machine_index
        )

    # ------------------------------------------------------------------
    # local per-resource queues (MonoSpark's mechanism)
    # ------------------------------------------------------------------
    def enqueue_monotask(self, jm: JobManager, mt: Monotask) -> None:
        assert mt.task is not None and mt.task.worker is not None
        mt.state = MonotaskState.QUEUED
        mq = self._machine_queues(mt.task.worker)
        q = mq.queues[mt.rtype]
        q.append(mt)
        # monotask ordering as in Ursa: big CPU first, small net/disk first
        if mt.rtype is ResourceType.CPU:
            ordered = sorted(q, key=lambda m: -m.input_size_mb)
        else:
            ordered = sorted(q, key=lambda m: m.input_size_mb)
        q.clear()
        q.extend(ordered)
        self._drain(mt.task.worker, mt.rtype)

    def _limit(self, machine_index: int, rtype: ResourceType) -> int:
        if rtype is ResourceType.CPU:
            return self._cores_held(machine_index)
        if rtype is ResourceType.NETWORK:
            return self.NETWORK_CONCURRENCY
        return self.DISK_CONCURRENCY

    def _drain(self, machine_index: int, rtype: ResourceType) -> None:
        mq = self._machine_queues(machine_index)
        q = mq.queues[rtype]
        while q and mq.running[rtype] < self._limit(machine_index, rtype):
            mt = q.popleft()
            mq.running[rtype] += 1
            self.jm.run_monotask(mt, self._mono_done)

    def _mono_done(self, mt: Monotask) -> None:
        assert mt.task is not None and mt.task.worker is not None
        mq = self._machine_queues(mt.task.worker)
        mq.running[mt.rtype] -= 1
        self._drain(mt.task.worker, mt.rtype)

    def _idle_check(self, container: Container) -> None:
        # a released container shrinks this machine's CPU concurrency; any
        # queued work keeps draining under the smaller limit
        super()._idle_check(container)
