"""Executor-model baselines: YARN RM, Spark/Tez apps, MonoSpark (Y+U),
and the Tetris / Capacity placement comparators."""

from .containers import Container
from .executor import ExecutorApp, ExecutorConfig, spark_config, tez_config
from .monospark import MonoSparkApp
from .system import YarnSystem
from .tetris import CapacityPlacement, TetrisPlacement
from .yarn import YarnConfig, YarnRM

__all__ = [
    "Container",
    "ExecutorApp",
    "ExecutorConfig",
    "spark_config",
    "tez_config",
    "MonoSparkApp",
    "YarnSystem",
    "CapacityPlacement",
    "TetrisPlacement",
    "YarnConfig",
    "YarnRM",
]
