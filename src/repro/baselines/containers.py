"""Containers — the coarse-grained allocation unit of the executor model.

A container reserves a fixed number of cores and a fixed memory footprint on
one machine for as long as it lives, regardless of what the tasks inside it
are momentarily doing.  That gap — reserved-but-idle resources during fetch
phases, small stages, or ramp-downs — is precisely the UE loss the paper's
§2/§5.1.1 analysis attributes to executor-based systems.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Container"]


class Container:
    """A granted YARN container hosting task slots for one application."""

    __slots__ = (
        "cid", "app_id", "machine_index", "cores", "memory_mb",
        "used_slots", "granted_at", "released_at", "idle_since",
    )

    def __init__(self, cid: int, app_id: int, machine_index: int, cores: int, memory_mb: float, now: float):
        self.cid = cid
        self.app_id = app_id
        self.machine_index = machine_index
        self.cores = cores
        self.memory_mb = memory_mb
        self.used_slots = 0
        self.granted_at = now
        self.released_at: Optional[float] = None
        self.idle_since: Optional[float] = now

    @property
    def slots(self) -> int:
        """One task slot per core, as in Spark/Tez executor sizing."""
        return self.cores

    @property
    def free_slots(self) -> int:
        return self.slots - self.used_slots

    @property
    def idle(self) -> bool:
        return self.used_slots == 0

    @property
    def released(self) -> bool:
        return self.released_at is not None

    def take_slot(self, now: float) -> None:
        # the app enforces its slot cap (MonoSpark admits slots × multiplier)
        self.used_slots += 1
        self.idle_since = None

    def free_slot(self, now: float) -> None:
        if self.used_slots <= 0:
            raise RuntimeError(f"container {self.cid} has no used slots")
        self.used_slots -= 1
        if self.used_slots == 0:
            self.idle_since = now

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Container({self.cid}@m{self.machine_index}, app={self.app_id}, "
            f"{self.used_slots}/{self.slots} slots)"
        )
