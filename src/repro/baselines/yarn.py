"""A YARN-like centralized resource manager (the baselines' scheduler).

Faithful to the properties the paper's comparison relies on:

* **heartbeat-driven**: container requests are satisfied only at heartbeat
  boundaries (default 1 s, as configured in §5.1.1), which is the scheduling
  latency that executor frameworks amortize via container reuse;
* **FIFO app ordering** (the job-scheduling policy the paper enabled);
* **advertised capacity**: each machine advertises ``cores ×
  cpu_subscription_ratio`` cores — ratios above 1 reproduce the §5.1.2
  over-subscription experiments (more concurrent compute phases than
  physical cores ⇒ the fluid CPU slows everyone down);
* container grants reserve cores and memory in the machine ledgers for the
  container's lifetime (driving SE up and UE down when under-used).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol

from ..cluster.cluster import Cluster
from .containers import Container

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["YarnConfig", "YarnApp", "YarnRM"]


@dataclass
class YarnConfig:
    heartbeat_interval: float = 1.0
    cpu_subscription_ratio: float = 1.0
    app_startup_delay: float = 0.5  # AM/driver launch before first request

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.cpu_subscription_ratio < 1.0:
            raise ValueError("cpu_subscription_ratio must be >= 1")


class YarnApp(Protocol):
    """What the RM needs from an application (Spark/Tez/MonoSpark drivers)."""

    app_id: int
    container_cores: int
    container_memory_mb: float

    def container_target(self) -> int:
        """Desired number of containers right now."""

    def num_containers(self) -> int: ...

    def grant_container(self, container: Container) -> None: ...

    @property
    def finished(self) -> bool: ...


class YarnRM:
    """Centralized allocator: FIFO over apps, first-fit over machines."""

    def __init__(self, cluster: Cluster, config: YarnConfig | None = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config or YarnConfig()
        self.apps: list[YarnApp] = []
        self._advertised = [
            m.spec.cores * self.config.cpu_subscription_ratio for m in cluster.machines
        ]
        self._allocated_cores = [0.0] * cluster.num_machines
        self._next_cid = 0
        self._hb_scheduled = False
        self._rr = 0

    # ------------------------------------------------------------------
    def register_app(self, app: YarnApp) -> None:
        self.apps.append(app)
        self._ensure_heartbeat()

    def unregister_app(self, app: YarnApp) -> None:
        if app in self.apps:
            self.apps.remove(app)

    def advertised_free_cores(self, machine_index: int) -> float:
        return self._advertised[machine_index] - self._allocated_cores[machine_index]

    # ------------------------------------------------------------------
    def release_container(self, container: Container) -> None:
        if container.released:
            return
        container.released_at = self.sim.now
        machine = self.cluster.machine(container.machine_index)
        machine.release_cores(container.cores)
        machine.release_memory(container.memory_mb)
        self._allocated_cores[container.machine_index] -= container.cores

    # ------------------------------------------------------------------
    def _ensure_heartbeat(self) -> None:
        if not self._hb_scheduled:
            self._hb_scheduled = True
            self.sim.schedule(self.config.heartbeat_interval, self._heartbeat)

    def _heartbeat(self) -> None:
        self._hb_scheduled = False
        for app in list(self.apps):  # FIFO: registration (submission) order
            if app.finished:
                continue
            want = app.container_target() - app.num_containers()
            for _ in range(max(0, want)):
                granted = self._grant_one(app)
                if granted is None:
                    break
                app.grant_container(granted)
        if any(not a.finished for a in self.apps):
            self._ensure_heartbeat()

    def _grant_one(self, app: YarnApp) -> Optional[Container]:
        n = self.cluster.num_machines
        # round-robin first-fit keeps container spread balanced, like YARN's
        # node-local scan
        for probe in range(n):
            idx = (self._rr + probe) % n
            machine = self.cluster.machine(idx)
            if self.advertised_free_cores(idx) < app.container_cores:
                continue
            if not machine.try_reserve_memory(app.container_memory_mb):
                continue
            machine.reserve_cores(app.container_cores)
            self._allocated_cores[idx] += app.container_cores
            self._rr = (idx + 1) % n
            container = Container(
                self._next_cid, app.app_id, idx, app.container_cores,
                app.container_memory_mb, self.sim.now,
            )
            self._next_cid += 1
            return container
        return None
