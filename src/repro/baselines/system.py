"""YarnSystem — drives a multi-job workload through YARN + executor apps.

The counterpart of :class:`~repro.scheduler.ursa.UrsaSystem` for the
baseline comparisons (Y+S, Y+T, Y+U): same submission API, same metrics
surface, different scheduling machinery underneath.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster.cluster import Cluster
from ..dataflow.graph import OpGraph
from ..execution.job import Job, JobState
from .executor import ExecutorApp, ExecutorConfig
from .yarn import YarnConfig, YarnRM

__all__ = ["YarnSystem"]

AppFactory = Callable[[YarnRM, Cluster, Job, Callable], object]


class YarnSystem:
    """Submit jobs; each becomes an executor app on a shared YARN RM."""

    def __init__(
        self,
        cluster: Cluster,
        app_config: ExecutorConfig,
        yarn_config: YarnConfig | None = None,
        app_class: type = ExecutorApp,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.app_config = app_config
        self.yarn_config = yarn_config or YarnConfig()
        self.app_class = app_class
        self.rm = YarnRM(cluster, self.yarn_config)
        self.jobs: list[Job] = []
        self.apps: list = []
        self.completed_jobs: list[Job] = []
        self._next_job_id = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        graph: OpGraph,
        requested_memory_mb: float = 0.0,
        at: Optional[float] = None,
        category: str = "generic",
    ) -> Job:
        job = Job(
            self._next_job_id,
            graph,
            submit_time=at if at is not None else self.sim.now,
            requested_memory_mb=requested_memory_mb,
            category=category,
        )
        self._next_job_id += 1
        self.jobs.append(job)
        delay = self.yarn_config.app_startup_delay
        if at is None or at <= self.sim.now:
            self.sim.schedule(delay, self._launch_app, job)
        else:
            self.sim.at(at + delay, self._launch_app, job)
        return job

    def _launch_app(self, job: Job) -> None:
        job.state = JobState.ADMITTED
        job.admit_time = self.sim.now
        app = self.app_class(self.rm, self.cluster, job, self.app_config, self._app_done)
        self.apps.append(app)
        app.start()

    def _app_done(self, app) -> None:
        self.completed_jobs.append(app.job)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if until is not None:
            return self.sim.run(until=until, max_events=max_events)
        return self.sim.drain() if max_events is None else self.sim.run(max_events=max_events)

    @property
    def all_done(self) -> bool:
        return all(j.state is JobState.DONE for j in self.jobs)

    def makespan(self) -> float:
        if not self.jobs:
            return 0.0
        start = min(j.submit_time for j in self.jobs)
        end = max(j.finish_time or self.sim.now for j in self.jobs)
        return end - start

    def mean_jct(self) -> float:
        jcts = [j.jct for j in self.jobs if j.jct is not None]
        return sum(jcts) / len(jcts) if jcts else 0.0
