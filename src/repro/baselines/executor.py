"""Executor-model applications (Spark-like and Tez-like) on the YARN RM.

An app hosts the *same* execution layer as Ursa (a JobManager over the
monotask plan) but schedules it the executor way:

* tasks occupy a whole **slot** (one container core) from their first phase
  to their last — the core stays reserved while the task fetches over the
  network, which is the §2 under-utilization pattern;
* container **memory** is reserved wholesale for the container's lifetime;
  actual task memory usage (UE_mem's Z) is typically far smaller;
* container counts follow **dynamic allocation** (Spark: target = backlog /
  slots, release after an idle timeout) or **hold-until-done** reuse (Tez);
* everything waits on RM **heartbeats** for new containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import Cluster
from ..dataflow.monotask import Monotask, MonotaskState, Task
from ..execution.job import Job
from ..execution.jobmanager import JobManager
from .containers import Container
from .yarn import YarnRM

__all__ = ["ExecutorConfig", "ExecutorApp", "spark_config", "tez_config"]


@dataclass
class ExecutorConfig:
    """Sizing and lifecycle policy of one app's containers."""

    container_cores: int = 4
    container_memory_mb: float = 8 * 1024.0
    dynamic_allocation: bool = True
    idle_timeout: float = 2.0          # release idle containers after this
    hold_until_job_end: bool = False   # Tez-style reuse: never shrink
    max_containers: Optional[int] = None
    # Tez fetches shuffle input with lower parallelism (no pipelined
    # fetch-ahead); modelled as a single sequential phase either way.

    def __post_init__(self) -> None:
        if self.container_cores <= 0:
            raise ValueError("container_cores must be positive")
        if self.container_memory_mb <= 0:
            raise ValueError("container_memory_mb must be positive")
        if self.idle_timeout < 0:
            raise ValueError("idle_timeout must be non-negative")


def spark_config(**overrides) -> ExecutorConfig:
    """§5.1.1's best Spark setting: 4-core / 8 GB executors, dynamic
    allocation with a 2 s idle timeout."""
    defaults = dict(
        container_cores=4,
        container_memory_mb=8 * 1024.0,
        dynamic_allocation=True,
        idle_timeout=2.0,
    )
    defaults.update(overrides)
    return ExecutorConfig(**defaults)


def tez_config(**overrides) -> ExecutorConfig:
    """§5.1.1's Tez setting: 2-core / 6 GB containers with reuse enabled
    (containers are held for the whole job)."""
    defaults = dict(
        container_cores=2,
        container_memory_mb=6 * 1024.0,
        dynamic_allocation=True,
        idle_timeout=0.0,
        hold_until_job_end=True,
    )
    defaults.update(overrides)
    return ExecutorConfig(**defaults)


class ExecutorApp:
    """One job's driver + executors (implements both the RM's YarnApp
    protocol and the execution layer's SchedulerBackend)."""

    def __init__(self, rm: YarnRM, cluster: Cluster, job: Job, config: ExecutorConfig, on_done=None):
        self.rm = rm
        self.cluster = cluster
        self.sim = cluster.sim
        self.job = job
        self.config = config
        self.on_done = on_done
        self.app_id = job.job_id
        self.container_cores = config.container_cores
        self.container_memory_mb = config.container_memory_mb

        self.jm = JobManager(
            self.sim, cluster, job, self,
            reserve_task_memory=False, reserve_cpu_cores=False,
        )
        self.containers: dict[int, Container] = {}
        self.pending: list[Task] = []
        self.running_tasks = 0
        self._task_container: dict[int, Container] = {}
        self._finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Driver is up: surface the job's root stages and start asking."""
        self.jm.start()
        self.rm.register_app(self)

    # -- YarnApp protocol -------------------------------------------------
    def container_target(self) -> int:
        backlog = len(self.pending) + self.running_tasks
        want = -(-backlog // self.config.container_cores)  # ceil
        if self.config.hold_until_job_end:
            want = max(want, len(self.containers))
        if self.config.max_containers is not None:
            want = min(want, self.config.max_containers)
        return want

    def num_containers(self) -> int:
        return len(self.containers)

    @property
    def finished(self) -> bool:
        return self._finished

    def grant_container(self, container: Container) -> None:
        self.containers[container.cid] = container
        # dispatch via the event loop so that all containers granted at the
        # same heartbeat are visible before tasks are spread over them
        self.sim.call_soon(self._dispatch)
        self.sim.call_soon(self._arm_idle_check, container)

    # -- SchedulerBackend protocol -----------------------------------------
    def on_tasks_ready(self, jm: JobManager, tasks: list[Task]) -> None:
        self.pending.extend(tasks)
        self._dispatch()

    def enqueue_monotask(self, jm: JobManager, mt: Monotask) -> None:
        # phases run back-to-back inside the slot; no per-resource queueing
        mt.state = MonotaskState.QUEUED
        jm.run_monotask(mt, self._phase_done)

    def on_task_complete(self, jm: JobManager, task: Task) -> None:
        container = self._task_container.pop(task.task_id, None)
        self.running_tasks -= 1
        if container is not None and not container.released:
            container.free_slot(self.sim.now)
            self._arm_idle_check(container)
        self._dispatch()

    def on_job_complete(self, jm: JobManager) -> None:
        self._finished = True
        for container in list(self.containers.values()):
            self.rm.release_container(container)
        self.containers.clear()
        self.rm.unregister_app(self)
        if self.on_done is not None:
            self.on_done(self)

    # ------------------------------------------------------------------
    def _phase_done(self, mt: Monotask) -> None:
        """Individual phase completions need no slot bookkeeping."""

    # MonoSpark (Y+U) admits more tasks per container than cores so fetch
    # and compute can overlap inside its per-resource queues
    slot_multiplier = 1

    def _dispatch(self) -> None:
        # round-robin one task per container per pass so a freshly-granted
        # container does not absorb the whole backlog
        while self.pending:
            progressed = False
            for container in list(self.containers.values()):
                if not self.pending:
                    break
                if container.released:
                    continue
                if container.used_slots >= container.slots * self.slot_multiplier:
                    continue
                task = self._next_task_for(container)
                if task is None:
                    continue
                self.pending.remove(task)
                container.take_slot(self.sim.now)
                self._task_container[task.task_id] = container
                self.running_tasks += 1
                self.jm.place_task(task, container.machine_index)
                progressed = True
            if not progressed:
                break

    def _next_task_for(self, container: Container) -> Optional[Task]:
        # honor hard locality (cached partitions); otherwise FIFO
        for task in self.pending:
            if task.locality is None or task.locality == container.machine_index:
                return task
        # locality-constrained tasks fall back to any slot after waiting:
        # Spark's locality wait is not modelled beyond one dispatch pass
        return self.pending[0] if self.pending else None

    # -- dynamic-allocation idle release ------------------------------------
    def _arm_idle_check(self, container: Container) -> None:
        if not self.config.dynamic_allocation or self.config.hold_until_job_end:
            return
        if not container.idle or container.released:
            return
        self.sim.schedule(self.config.idle_timeout, self._idle_check, container)

    def _idle_check(self, container: Container) -> None:
        if container.released or not container.idle or self._finished:
            return
        idle_for = self.sim.now - (container.idle_since or self.sim.now)
        if idle_for + 1e-9 >= self.config.idle_timeout:
            self.containers.pop(container.cid, None)
            self.rm.release_container(container)
