"""Alternative placement policies plugged into Ursa (§5.1.2, Table 4).

* :class:`TetrisPlacement` — the multi-resource packing of Tetris [17]:
  each task carries a *peak* demand vector; a worker is feasible only if
  every peak demand fits within its instantaneous availability, and the
  chosen worker maximizes the alignment score ``Σ_r demand_r · avail_r``.
  Because a fetching task's peak network demand is the full downlink, a
  worker with any in-flight transfer rejects further network-bearing tasks —
  the blocking pathology the paper reports ("task assignment is blocked when
  a task's peak network demand exceeds the available network bandwidth, even
  though the network is not being used most of the time").
* ``TetrisPlacement(include_network=False)`` — the paper's **Tetris2**,
  which ignores the network dimension and therefore packs better.
* :class:`CapacityPlacement` — YARN's Capacity-style greedy: give each task
  to the worker with the most available resources (free cores, then free
  memory).

Both use peak demands and task-granular decisions — no estimated *total*
usage, no stage-awareness — which is what Table 4's SE_cpu gap ablates.
"""

from __future__ import annotations

from typing import Optional

from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Task
from ..scheduler.placement import Assignment, PlacementPolicy

__all__ = ["TetrisPlacement", "CapacityPlacement"]


class _Avail:
    """Tentative per-round availability of one worker (peak-demand units)."""

    __slots__ = ("worker", "cores", "net", "disk", "mem")

    def __init__(self, worker):
        m = worker.machine
        queued_cpu = len(worker.queues[ResourceType.CPU])
        self.worker = worker
        self.cores = max(0.0, m.spec.cores - worker.running[ResourceType.CPU] - queued_cpu)
        net_busy = worker.running[ResourceType.NETWORK] + len(worker.queues[ResourceType.NETWORK])
        self.net = 1.0 if net_busy == 0 else 0.0
        disk_busy = worker.running[ResourceType.DISK] + len(worker.queues[ResourceType.DISK])
        self.disk = 1.0 if disk_busy == 0 else 0.0
        self.mem = worker.available_memory_mb


def _peak_demand(task: Task) -> tuple[float, float, float, float]:
    """(cores, net_frac, disk_frac, mem_mb) peak demands of a task."""
    cores = float(len(task.cpu_monotasks))
    net = 1.0 if task.est_net_mb > 0 else 0.0
    disk = 1.0 if task.est_disk_mb > 0 else 0.0
    return cores, net, disk, task.est_mem_mb


class TetrisPlacement(PlacementPolicy):
    """Tetris packing score over peak demands (Tetris2 when
    ``include_network=False``)."""

    def __init__(self, include_network: bool = True):
        self.include_network = include_network

    def place(self, ready, workers, now, job_policy) -> list[Assignment]:
        avails = [_Avail(w) for w in workers]
        pool = [(rs.jm, t) for rs in ready for t in rs.tasks]
        # process in job-priority order (the RM side still honors FIFO/EJF)
        pool.sort(key=lambda jt: (job_policy.job_rank(jt[0].job, now), jt[1].task_id))
        assignments: list[Assignment] = []
        for jm, task in pool:
            widx = self._best_worker(task, avails)
            if widx is None:
                continue
            self._commit(task, avails[widx])
            assignments.append(Assignment(jm, task, widx))
        return assignments

    def _best_worker(self, task: Task, avails) -> Optional[int]:
        cores, net, disk, mem = _peak_demand(task)
        if not self.include_network:
            net = 0.0
        best, best_score = None, float("-inf")
        candidates = range(len(avails))
        if task.locality is not None:
            candidates = [task.locality]
        for i in candidates:
            a = avails[i]
            if cores > a.cores or mem > a.mem:
                continue
            if net > a.net or disk > a.disk:
                continue
            cap_cores = a.worker.machine.spec.cores
            cap_mem = a.worker.memory_capacity_mb
            score = (
                (cores / cap_cores) * (a.cores / cap_cores)
                + (mem / cap_mem) * (a.mem / cap_mem)
                + net * a.net
                + disk * a.disk
            )
            if score > best_score:
                best_score, best = score, i
        return best

    def _commit(self, task: Task, a: _Avail) -> None:
        cores, net, disk, mem = _peak_demand(task)
        a.cores -= cores
        a.mem -= mem
        if self.include_network and net > 0:
            a.net = 0.0
        if disk > 0:
            a.disk = 0.0


class CapacityPlacement(PlacementPolicy):
    """Greedy most-available-resources placement (YARN Capacity style)."""

    def place(self, ready, workers, now, job_policy) -> list[Assignment]:
        avails = [_Avail(w) for w in workers]
        pool = [(rs.jm, t) for rs in ready for t in rs.tasks]
        pool.sort(key=lambda jt: (job_policy.job_rank(jt[0].job, now), jt[1].task_id))
        assignments: list[Assignment] = []
        for jm, task in pool:
            cores_needed = max(1.0, float(len(task.cpu_monotasks)))
            best, best_key = None, None
            candidates = range(len(avails))
            if task.locality is not None:
                candidates = [task.locality]
            for i in candidates:
                a = avails[i]
                if a.cores < cores_needed or a.mem < task.est_mem_mb:
                    continue
                key = (a.cores, a.mem)
                if best_key is None or key > best_key:
                    best_key, best = key, i
            if best is None:
                continue
            avails[best].cores -= cores_needed
            avails[best].mem -= task.est_mem_mb
            assignments.append(Assignment(jm, task, best))
        return assignments
