"""Ursa's dataflow layer: OpGraph primitives and monotask planning."""

from .graph import DataHandle, DepType, GraphError, Op, OpGraph, ResourceType
from .monotask import Monotask, MonotaskState, Stage, Task, TaskState
from .planner import PlannedJob, plan_job

__all__ = [
    "DataHandle",
    "DepType",
    "GraphError",
    "Op",
    "OpGraph",
    "ResourceType",
    "Monotask",
    "MonotaskState",
    "Stage",
    "Task",
    "TaskState",
    "PlannedJob",
    "plan_job",
]
