"""Ursa's dataflow primitives (§4.1.1).

A job is an :class:`OpGraph` of operations over distributed datasets:

* ``OpGraph.create_data(partitions)`` — declare a :class:`DataHandle`, a
  distributed dataset with a fixed number of partitions;
* ``OpGraph.create_op(rtype)`` — declare an :class:`Op` that uses a *single*
  resource type (CPU, NETWORK or DISK);
* ``op1.to(op2, dep)`` — add a dependency edge, either ``SYNC`` (barrier:
  op2 starts only after op1 finished on *all* partitions — a shuffle) or
  ``ASYNC`` (pipelined: partition-wise one-to-one).

CPU ops may carry a UDF so the graph can execute real data (the high-level
Dataset/SQL/Pregel APIs build on this); workload generators instead set
explicit output sizes and CPU-work factors so large synthetic jobs run
without materializing data.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Sequence

__all__ = ["ResourceType", "DepType", "DataHandle", "Op", "OpGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid OpGraphs."""


class ResourceType(enum.Enum):
    """The single resource an Op (and its monotasks) uses (§1: monotask)."""

    CPU = "cpu"
    NETWORK = "network"
    DISK = "disk"


class DepType(enum.Enum):
    SYNC = "sync"    # barrier; monotask dependency is fully bipartite
    ASYNC = "async"  # pipelined; monotask dependency is one-to-one


# A UDF receives the list of input-partition payloads (one entry per dataset
# read, in Read() order) and the output partition index, and returns the
# output partition payload.
Udf = Callable[[list, int], Any]

# Maps (output partition index, input sizes in MB) to the produced size in MB.
SizeFn = Callable[[int, float], float]


class DataHandle:
    """A distributed dataset with ``partitions`` partitions."""

    __slots__ = ("graph", "data_id", "num_partitions", "name", "producer", "initial")

    def __init__(self, graph: "OpGraph", data_id: int, num_partitions: int, name: str):
        if num_partitions <= 0:
            raise GraphError(f"dataset {name!r} needs at least one partition")
        self.graph = graph
        self.data_id = data_id
        self.num_partitions = num_partitions
        self.name = name
        self.producer: Optional["Op"] = None
        # Input datasets pre-loaded before the job runs: list of per-partition
        # (size_mb, payload|None).  Set via OpGraph.set_input().
        self.initial: Optional[list[tuple[float, Any]]] = None

    @property
    def is_input(self) -> bool:
        return self.initial is not None

    def __repr__(self) -> str:  # pragma: no cover
        return f"DataHandle({self.name}, p={self.num_partitions})"


class Op:
    """A single-resource operation.  Fluent builder API mirrors the paper:

    ``dag.create_op(CPU).read(msg).create(out).set_udf(f)``
    """

    __slots__ = (
        "graph", "op_id", "rtype", "name", "reads", "creates",
        "udf", "size_fn", "cpu_work_factor", "out_edges", "in_edges",
        "collapsed_into", "m2i", "shard_weights",
    )

    def __init__(self, graph: "OpGraph", op_id: int, rtype: ResourceType, name: str):
        self.graph = graph
        self.op_id = op_id
        self.rtype = rtype
        self.name = name
        self.reads: list[DataHandle] = []
        self.creates: list[DataHandle] = []
        self.udf: Optional[Udf] = None
        self.size_fn: Optional[SizeFn] = None
        # Actual CPU work per MB of input (the *estimate* stays input-size,
        # per §4.2.1 footnote 3: "we only use the input data size ... and rely
        # on processing rate monitoring ... to adjust for the difference").
        self.cpu_work_factor: float = 1.0
        self.out_edges: list[tuple["Op", DepType]] = []
        self.in_edges: list[tuple["Op", DepType]] = []
        self.collapsed_into: Optional["Op"] = None
        # Memory-to-input ratio for the §4.2.1 memory estimate; high-level
        # APIs set operation-specific values (e.g. 2 for filter, 1+s for
        # join with selectivity s).
        self.m2i: float = 1.5
        # For NETWORK ops in size-only mode: relative weight of each output
        # partition's shard when splitting a producer partition (receiver-side
        # skew).  None means uniform 1/parallelism shards.
        self.shard_weights: Optional[list[float]] = None

    # -- builder -------------------------------------------------------
    def read(self, *handles: DataHandle) -> "Op":
        for h in handles:
            self._check_same_graph(h)
            self.reads.append(h)
        return self

    def create(self, *handles: DataHandle) -> "Op":
        for h in handles:
            self._check_same_graph(h)
            if h.producer is not None:
                raise GraphError(
                    f"dataset {h.name!r} already produced by op {h.producer.name!r}"
                )
            if h.is_input:
                raise GraphError(f"dataset {h.name!r} is a job input; ops cannot create it")
            h.producer = self
            self.creates.append(h)
        return self

    def set_udf(self, udf: Udf) -> "Op":
        if self.rtype is not ResourceType.CPU:
            raise GraphError(f"only CPU ops carry UDFs ({self.name} is {self.rtype.value})")
        self.udf = udf
        return self

    def set_output_size(self, size_fn: SizeFn) -> "Op":
        self.size_fn = size_fn
        return self

    def set_cpu_work_factor(self, factor: float) -> "Op":
        if self.rtype is not ResourceType.CPU:
            raise GraphError("cpu_work_factor applies only to CPU ops")
        if factor <= 0:
            raise GraphError("cpu_work_factor must be positive")
        self.cpu_work_factor = factor
        return self

    def set_m2i(self, m2i: float) -> "Op":
        if m2i <= 0:
            raise GraphError("m2i must be positive")
        self.m2i = m2i
        return self

    def set_shard_weights(self, weights: Sequence[float]) -> "Op":
        if self.rtype is not ResourceType.NETWORK:
            raise GraphError("shard_weights apply only to network ops")
        if len(weights) != self.parallelism:
            raise GraphError(
                f"{len(weights)} shard weights for parallelism {self.parallelism}"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise GraphError("shard weights must be non-negative with positive sum")
        self.shard_weights = [float(w) for w in weights]
        return self

    def to(self, other: "Op", dep: DepType = DepType.ASYNC) -> "Op":
        """Create a dependency edge ``self -> other``."""
        if other.graph is not self.graph:
            raise GraphError("cannot connect ops from different graphs")
        if other is self:
            raise GraphError(f"op {self.name!r} cannot depend on itself")
        self.out_edges.append((other, dep))
        other.in_edges.append((self, dep))
        return self

    # -- derived properties --------------------------------------------
    @property
    def parallelism(self) -> int:
        """Number of monotasks this op expands to = partitions of its output
        (or of its first read if the op creates nothing, e.g. a final sink)."""
        if self.creates:
            return self.creates[0].num_partitions
        if self.reads:
            return self.reads[0].num_partitions
        raise GraphError(f"op {self.name!r} reads and creates nothing")

    @property
    def output(self) -> Optional[DataHandle]:
        return self.creates[0] if self.creates else None

    def _check_same_graph(self, h: DataHandle) -> None:
        if h.graph is not self.graph:
            raise GraphError("dataset belongs to a different OpGraph")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Op({self.name}, {self.rtype.value})"


class OpGraph:
    """A job's operation graph (the paper's ``OpGraph``)."""

    def __init__(self, name: str = "job"):
        self.name = name
        self.ops: list[Op] = []
        self.datasets: list[DataHandle] = []

    # -- construction ---------------------------------------------------
    def create_data(self, num_partitions: int, name: str = "") -> DataHandle:
        h = DataHandle(self, len(self.datasets), num_partitions, name or f"d{len(self.datasets)}")
        self.datasets.append(h)
        return h

    def create_op(self, rtype: ResourceType, name: str = "") -> Op:
        op = Op(self, len(self.ops), rtype, name or f"op{len(self.ops)}")
        self.ops.append(op)
        return op

    def set_input(
        self,
        handle: DataHandle,
        sizes_mb: Sequence[float],
        payloads: Optional[Sequence[Any]] = None,
    ) -> None:
        """Mark ``handle`` as a pre-existing job input (e.g. an HDFS file).

        ``sizes_mb`` gives per-partition sizes; ``payloads`` optionally the
        real data for UDF execution.
        """
        if handle.producer is not None:
            raise GraphError(f"dataset {handle.name!r} is produced by an op")
        if len(sizes_mb) != handle.num_partitions:
            raise GraphError(
                f"dataset {handle.name!r}: {len(sizes_mb)} sizes for "
                f"{handle.num_partitions} partitions"
            )
        if payloads is not None and len(payloads) != handle.num_partitions:
            raise GraphError("payloads length must match partition count")
        handle.initial = [
            (float(sizes_mb[i]), payloads[i] if payloads is not None else None)
            for i in range(handle.num_partitions)
        ]

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants before planning.

        * the op DAG is acyclic;
        * every read dataset is either a job input or produced by some op
          that precedes the reader;
        * async edges connect ops of equal parallelism (one-to-one);
        * network/disk ops carry no UDFs (enforced at build time) and create
          at most one dataset.
        """
        self._check_acyclic()
        for op in self.ops:
            for h in op.reads:
                if not h.is_input and h.producer is None:
                    raise GraphError(
                        f"op {op.name!r} reads dataset {h.name!r} which is "
                        f"neither a job input nor produced by any op"
                    )
            for parent, dep in op.in_edges:
                if dep is DepType.ASYNC and parent.parallelism != op.parallelism:
                    raise GraphError(
                        f"async edge {parent.name!r}->{op.name!r} requires equal "
                        f"parallelism ({parent.parallelism} != {op.parallelism})"
                    )
            if op.rtype is not ResourceType.CPU and len(op.creates) > 1:
                raise GraphError(f"{op.rtype.value} op {op.name!r} creates multiple datasets")

    def _check_acyclic(self) -> None:
        state: dict[int, int] = {}  # 0 visiting, 1 done

        for root in self.ops:
            if root.op_id in state:
                continue
            stack: list[tuple[Op, int]] = [(root, 0)]
            while stack:
                op, idx = stack.pop()
                if idx == 0:
                    if state.get(op.op_id) == 1:
                        continue
                    state[op.op_id] = 0
                if idx < len(op.out_edges):
                    stack.append((op, idx + 1))
                    child = op.out_edges[idx][0]
                    cstate = state.get(child.op_id)
                    if cstate == 0:
                        raise GraphError(f"OpGraph {self.name!r} has a cycle through {child.name!r}")
                    if cstate is None:
                        stack.append((child, 0))
                else:
                    state[op.op_id] = 1

    # -- convenience -----------------------------------------------------
    def roots(self) -> list[Op]:
        return [op for op in self.ops if not op.in_edges]

    def topological_order(self) -> list[Op]:
        self._check_acyclic()
        indeg = {op.op_id: len(op.in_edges) for op in self.ops}
        frontier = [op for op in self.ops if indeg[op.op_id] == 0]
        order: list[Op] = []
        while frontier:
            op = frontier.pop()
            order.append(op)
            for child, _dep in op.out_edges:
                indeg[child.op_id] -= 1
                if indeg[child.op_id] == 0:
                    frontier.append(child)
        if len(order) != len(self.ops):  # pragma: no cover - caught by _check_acyclic
            raise GraphError("cycle detected")
        return order

    def __repr__(self) -> str:  # pragma: no cover
        return f"OpGraph({self.name}, ops={len(self.ops)}, datasets={len(self.datasets)})"
