"""Compiling an OpGraph into monotasks, tasks and stages (§4.1.3).

Steps, exactly as the paper describes:

1. **Collapse** connected subgraphs of CPU ops linked by async dependencies
   into one (fused) CPU op group, "for scalability in scheduling monotasks".
   After this, each task contains at most one CPU monotask.
2. **Generate monotasks** — one per output partition of each op group.  A
   sync dependency between two ops becomes a fully-connected bipartite
   dependency between their monotasks; an async dependency becomes
   one-to-one.
3. **Form tasks** — remove the in-edges of all network monotasks; each
   remaining connected component is a task (its monotasks are collocated
   because transfers are pull-based).
4. **Form stages** — tasks whose monotasks come from the same ops form a
   stage; task-level dependencies are derived from the severed edges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from .graph import DepType, GraphError, Op, OpGraph, ResourceType
from .monotask import Monotask, Stage, Task

__all__ = ["PlannedJob", "plan_job"]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class _OpGroup:
    """A fused group of CPU ops (or a singleton non-CPU op)."""

    __slots__ = ("group_id", "ops", "rtype", "in_edges", "out_edges")

    def __init__(self, group_id: int, ops: list[Op]):
        self.group_id = group_id
        self.ops = ops
        self.rtype = ops[0].rtype
        self.in_edges: list[tuple["_OpGroup", DepType]] = []
        self.out_edges: list[tuple["_OpGroup", DepType]] = []

    @property
    def parallelism(self) -> int:
        return self.ops[-1].parallelism

    @property
    def name(self) -> str:
        return "+".join(op.name for op in self.ops)


class PlannedJob:
    """The output of :func:`plan_job`: the monotask DAG, tasks and stages."""

    def __init__(
        self,
        graph: OpGraph,
        monotasks: list[Monotask],
        tasks: list[Task],
        stages: list[Stage],
    ):
        self.graph = graph
        self.monotasks = monotasks
        self.tasks = tasks
        self.stages = stages

    @property
    def root_tasks(self) -> list[Task]:
        return [t for t in self.tasks if not t.parents]

    def stage_of(self, task: Task) -> Stage:
        assert task.stage is not None
        return task.stage

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PlannedJob({self.graph.name}: {len(self.monotasks)} monotasks, "
            f"{len(self.tasks)} tasks, {len(self.stages)} stages)"
        )


def plan_job(graph: OpGraph) -> PlannedJob:
    """Compile ``graph`` into its monotask DAG, tasks, and stages."""
    graph.validate()
    groups = _collapse_cpu_chains(graph)
    monotasks = _generate_monotasks(groups)
    tasks = _form_tasks(monotasks)
    stages = _form_stages(tasks)
    _wire_task_dependencies(tasks)
    return PlannedJob(graph, monotasks, tasks, stages)


# ----------------------------------------------------------------------
# step 1: collapse async-connected CPU subgraphs
# ----------------------------------------------------------------------
def _collapse_cpu_chains(graph: OpGraph) -> list[_OpGroup]:
    uf = _UnionFind(len(graph.ops))
    for op in graph.ops:
        if op.rtype is not ResourceType.CPU:
            continue
        for child, dep in op.out_edges:
            if child.rtype is ResourceType.CPU and dep is DepType.ASYNC:
                uf.union(op.op_id, child.op_id)

    members: dict[int, list[Op]] = defaultdict(list)
    for op in graph.ops:
        members[uf.find(op.op_id)].append(op)

    # Fused ops execute in an order consistent with intra-group edges; the
    # global topological order restricted to the group provides it.
    topo_pos = {op.op_id: i for i, op in enumerate(graph.topological_order())}
    groups: list[_OpGroup] = []
    group_of: dict[int, _OpGroup] = {}
    for root in sorted(members, key=lambda r: min(topo_pos[o.op_id] for o in members[r])):
        ops = sorted(members[root], key=lambda o: topo_pos[o.op_id])
        parallelism = {op.parallelism for op in ops}
        if len(parallelism) != 1:
            raise GraphError(
                f"cannot fuse CPU ops {[o.name for o in ops]}: differing parallelism"
            )
        g = _OpGroup(len(groups), ops)
        groups.append(g)
        for op in ops:
            group_of[op.op_id] = g

    for op in graph.ops:
        g1 = group_of[op.op_id]
        for child, dep in op.out_edges:
            g2 = group_of[child.op_id]
            if g1 is g2:
                continue
            g1.out_edges.append((g2, dep))
            g2.in_edges.append((g1, dep))
    return groups


# ----------------------------------------------------------------------
# step 2: monotask generation + dependency wiring
# ----------------------------------------------------------------------
def _generate_monotasks(groups: list[_OpGroup]) -> list[Monotask]:
    monotasks: list[Monotask] = []
    per_group: dict[int, list[Monotask]] = {}
    for g in groups:
        mts = [Monotask(len(monotasks) + i, g.ops, i) for i in range(g.parallelism)]
        monotasks.extend(mts)
        per_group[g.group_id] = mts

    for g in groups:
        for child_group, dep in g.out_edges:
            srcs = per_group[g.group_id]
            dsts = per_group[child_group.group_id]
            if dep is DepType.SYNC:
                for s in srcs:
                    for d in dsts:
                        s.children.append(d)
                        d.parents.append(s)
            else:
                if len(srcs) != len(dsts):  # pragma: no cover - validated earlier
                    raise GraphError(
                        f"async edge {g.name!r}->{child_group.name!r} parallelism mismatch"
                    )
                for s, d in zip(srcs, dsts):
                    s.children.append(d)
                    d.parents.append(s)
    return monotasks


# ----------------------------------------------------------------------
# step 3: connected components after cutting network in-edges
# ----------------------------------------------------------------------
def _form_tasks(monotasks: list[Monotask]) -> list[Task]:
    n = len(monotasks)
    index = {id(m): i for i, m in enumerate(monotasks)}
    uf = _UnionFind(n)
    for m in monotasks:
        for child in m.children:
            if child.is_network:
                continue  # severed: in-edge of a network monotask
            uf.union(index[id(m)], index[id(child)])

    members: dict[int, list[Monotask]] = defaultdict(list)
    for i, m in enumerate(monotasks):
        members[uf.find(i)].append(m)

    tasks: list[Task] = []
    for root in sorted(members, key=lambda r: min(mm.mt_id for mm in members[r])):
        mts = sorted(members[root], key=lambda mm: mm.mt_id)
        tasks.append(Task(len(tasks), mts))
    return tasks


# ----------------------------------------------------------------------
# step 4: stages + task-level dependencies
# ----------------------------------------------------------------------
def _form_stages(tasks: list[Task]) -> list[Stage]:
    by_signature: dict[frozenset, list[Task]] = defaultdict(list)
    for t in tasks:
        sig = frozenset(op.op_id for m in t.monotasks for op in m.ops)
        by_signature[sig].append(t)

    stages: list[Stage] = []
    for sig in sorted(by_signature, key=lambda s: min(t.task_id for t in by_signature[s])):
        group = by_signature[sig]
        name = "+".join(
            sorted({op.name for m in group[0].monotasks for op in m.ops})
        )
        stages.append(Stage(len(stages), sig, group, name))
    return stages


def _wire_task_dependencies(tasks: list[Task]) -> None:
    for t in tasks:
        for m in t.monotasks:
            for parent in m.parents:
                pt = parent.task
                assert pt is not None
                if pt is not t:
                    t.parents.add(pt)
                    pt.children.add(t)
    for t in tasks:
        t.remaining_parents = len(t.parents)
