"""Monotask / Task / Stage structures (§4.1.3).

* A **monotask** performs one op (or a fused chain of async-connected CPU
  ops) on one output partition, using exactly one resource type.
* A **task** is a connected component of the monotask DAG after removing the
  in-edges of all network monotasks; its monotasks are collocated because
  network transfer is pull-based (the data lands where the task runs).
* A **stage** is the set of tasks generated from the same ops.

Planner output is immutable structure; runtime state (readiness, placement,
measured sizes) lives in small mutable fields the execution layer owns.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from .graph import DepType, Op, ResourceType

if TYPE_CHECKING:  # pragma: no cover
    from .planner import PlannedJob

__all__ = ["Monotask", "Task", "Stage", "MonotaskState", "TaskState"]


class MonotaskState(enum.Enum):
    PENDING = "pending"    # intra-task parents not finished
    READY = "ready"        # sent (or sendable) to a worker queue
    QUEUED = "queued"      # waiting in a worker's per-resource queue
    RUNNING = "running"
    DONE = "done"


class TaskState(enum.Enum):
    BLOCKED = "blocked"    # some parent task unfinished
    READY = "ready"        # all parents done; awaiting placement
    PLACED = "placed"      # assigned to a worker
    DONE = "done"


class Monotask:
    """One unit of single-resource work."""

    __slots__ = (
        "mt_id", "ops", "rtype", "partition_index", "parents", "children",
        "task", "state", "input_size_mb", "work_mb", "started_at",
        "finished_at", "sources", "expected_out_mb", "chain_outputs",
    )

    def __init__(self, mt_id: int, ops: list[Op], partition_index: int):
        if not ops:
            raise ValueError("a monotask needs at least one op")
        rtypes = {op.rtype for op in ops}
        if len(rtypes) != 1:
            raise ValueError("fused ops must share one resource type")
        self.mt_id = mt_id
        self.ops = ops
        self.rtype: ResourceType = ops[0].rtype
        self.partition_index = partition_index
        self.parents: list["Monotask"] = []
        self.children: list["Monotask"] = []
        self.task: Optional["Task"] = None
        self.state = MonotaskState.PENDING
        # Resolved by the JM when the task becomes ready / the monotask runs.
        self.input_size_mb: float = 0.0
        self.work_mb: float = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # network: (machine, size) pull list resolved from metadata
        self.sources: Optional[list[tuple[int, float]]] = None
        # expected size of this monotask's final output partition
        self.expected_out_mb: float = 0.0
        # per-op expected output sizes along a fused CPU chain:
        # list of (DataHandle, size_mb) for every dataset the chain creates
        self.chain_outputs: Optional[list] = None

    @property
    def head_op(self) -> Op:
        return self.ops[0]

    @property
    def is_network(self) -> bool:
        return self.rtype is ResourceType.NETWORK

    @property
    def intra_task_parents(self) -> list["Monotask"]:
        return [p for p in self.parents if p.task is self.task]

    @property
    def is_task_source(self) -> bool:
        """True if runnable as soon as the task is placed (no intra-task deps)."""
        return not self.intra_task_parents

    def __repr__(self) -> str:  # pragma: no cover
        names = "+".join(op.name for op in self.ops)
        return f"Monotask({self.mt_id}:{names}[{self.partition_index}], {self.rtype.value})"


class Task:
    """A connected component of collocated monotasks."""

    __slots__ = (
        "task_id", "monotasks", "stage", "parents", "children",
        "state", "worker", "locality", "est_cpu_mb", "est_net_mb",
        "est_disk_mb", "est_mem_mb", "sched_usage", "_input_mb",
        "remaining_parents", "remaining_monotasks", "ready_at", "placed_at",
        "finished_at",
    )

    def __init__(self, task_id: int, monotasks: list[Monotask]):
        self.task_id = task_id
        self.monotasks = monotasks
        for m in monotasks:
            m.task = self
        self.stage: Optional["Stage"] = None
        self.parents: set["Task"] = set()
        self.children: set["Task"] = set()
        self.state = TaskState.BLOCKED
        self.worker: Optional[int] = None
        self.locality: Optional[int] = None  # hard placement constraint
        self.est_cpu_mb = 0.0
        self.est_net_mb = 0.0
        self.est_disk_mb = 0.0
        self.est_mem_mb = 0.0
        # (cpu, net, disk) usage tuple the placement loop scores with; the
        # estimates above are frozen when the task becomes ready, so the
        # scheduler resolves this once per task instead of once per round
        self.sched_usage: Optional[tuple] = None
        self._input_mb: Optional[float] = None
        self.remaining_parents = 0
        self.remaining_monotasks = len(monotasks)
        self.ready_at: Optional[float] = None
        self.placed_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def cpu_monotasks(self) -> list[Monotask]:
        return [m for m in self.monotasks if m.rtype is ResourceType.CPU]

    @property
    def source_monotasks(self) -> list[Monotask]:
        return [m for m in self.monotasks if m.is_task_source]

    def input_size_mb(self) -> float:
        """Total bytes entering the task (drives size-ordered queueing and
        the memory estimate's `I(t)` in §4.2.1).

        Memoized: callers only ask once the JM has resolved the source
        monotasks' input sizes (at readiness), after which they are fixed —
        and the JM re-sums the whole ready set at every readiness wave.
        """
        v = self._input_mb
        if v is None:
            v = sum(m.input_size_mb for m in self.monotasks if m.is_task_source)
            self._input_mb = v
        return v

    def __repr__(self) -> str:  # pragma: no cover
        return f"Task({self.task_id}, |m|={len(self.monotasks)}, {self.state.value})"


class Stage:
    """Tasks generated from the same set of ops."""

    __slots__ = ("stage_id", "signature", "tasks", "name")

    def __init__(self, stage_id: int, signature: frozenset, tasks: list[Task], name: str):
        self.stage_id = stage_id
        self.signature = signature
        self.tasks = tasks
        self.name = name
        for t in tasks:
            t.stage = self

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def ready_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.state is TaskState.READY]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stage({self.stage_id}:{self.name}, tasks={len(self.tasks)})"
