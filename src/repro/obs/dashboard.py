"""Live ASCII dashboard over the telemetry collector.

Headless environment, so "live" means: every time a simulation unit ends
(the collector's ``on_unit_end`` seam), a panel for that unit is printed —
utilization sparklines per resource, queue-depth and gauge strips, the
latency table, and a counters line.  ``python -m repro.experiments
--dashboard`` wires this up; the same renderer produces the end-of-run
``dashboard.txt`` artifact from a finished collector.

The dashboard is a pure *observer*: it renders from
:func:`~repro.obs.telemetry.unit_summary` snapshots and never touches the
simulation, so enabling it cannot perturb experiment results (the
bit-identity tests in ``tests/obs`` cover telemetry as a whole).
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from ..metrics.asciichart import sparkline
from ..metrics.report import format_latency_rows
from .latency import Dist
from .telemetry import RTYPES, TelemetryCollector, UnitTelemetry, unit_summary

__all__ = [
    "render_unit", "render_dashboard", "render_blame", "attach_live",
    "PANEL_WIDTH",
]

#: sparkline strips are resampled down to this many columns
PANEL_WIDTH = 64


def _resample(series: list, width: int = PANEL_WIDTH) -> list[float]:
    """Average consecutive chunks so long series fit a terminal row."""
    n = len(series)
    if n <= width:
        return [float(v) for v in series]
    out = []
    for k in range(width):
        lo = k * n // width
        hi = max((k + 1) * n // width, lo + 1)
        chunk = series[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def _dist_from_hist(d: dict) -> Optional[Dist]:
    """Histogram snapshot (``StreamingHistogram.as_dict``) → ``Dist`` row.

    Percentiles are the histogram's interpolated estimates, which is what a
    dashboard wants (exact samples are the trace recorder's job).
    """
    if not d["count"]:
        return None
    return Dist(count=d["count"], mean=d["mean"], p25=d["p25"], p50=d["p50"],
                p75=d["p75"], p95=d["p95"], p99=d["p99"], max=d["max"])


def _strip(label: str, series: list, peak: float, mean: float,
           hi: Optional[float], fmt: str = "{:.2f}") -> str:
    spark = sparkline(_resample(series), 0.0, hi)
    return (f"  {label:>12s} |{spark}| "
            f"mean {fmt.format(mean)}  peak {fmt.format(peak)}")


def render_unit(u: UnitTelemetry) -> str:
    """One dashboard panel for a finished (or sealed-in-progress) unit."""
    s = unit_summary(u)
    c = s["counters"]
    lines = []
    head = (f"unit {u.label}  t={s['sim_end']:.1f}s  "
            f"events={s['engine_events']}")
    lines.append("┌" + "─" * (PANEL_WIDTH + 14) + "┐")
    lines.append("  " + head)
    lines.append("")
    lines.append("  utilization (fraction of concurrency limit)")
    for rtype in RTYPES:
        util = s["utilization"][rtype]
        # network bypass runs outside the slot limit, so cap the scale at
        # the observed max rather than clamping >1.0 samples away
        peak = max(util["series"], default=0.0)
        lines.append(_strip(rtype, util["series"], peak=peak,
                            mean=util["mean"], hi=max(1.0, peak)))
    lines.append("")
    lines.append("  queue depth (monotasks, summed over workers)")
    for rtype in RTYPES:
        q = s["queues"][rtype]
        lines.append(_strip(rtype, q["depth_series"],
                            peak=q["depth_worker_peak"],
                            mean=q["depth_mean"], hi=None, fmt="{:.1f}"))
    lines.append("")
    adm = s["admission_queue"]
    run = s["running_jobs"]
    lines.append(_strip("admission q", adm["series"], peak=adm["peak"],
                        mean=adm["mean"], hi=None, fmt="{:.1f}"))
    lines.append(_strip("running jobs", run["series"], peak=run["peak"],
                        mean=run["mean"], hi=None, fmt="{:.1f}"))
    lines.append("")
    stats = {
        "alloc_latency": {
            r: d for r in RTYPES
            if (d := _dist_from_hist(s["alloc_latency"][r])) is not None
        },
        "admission_wait": _dist_from_hist(s["admission_wait"]),
    }
    table = format_latency_rows(stats, title="  latency (histogram estimates)")
    lines.extend("  " + ln for ln in table.splitlines())
    lines.append("")
    jct = s["jct"]
    lines.append(
        f"  jobs: {c['jobs_completed']}/{c['jobs_submitted']} done"
        f" ({c['jobs_failed']} failed)  jct p50 {jct['p50']:.1f}s"
        f" p95 {jct['p95']:.1f}s"
    )
    lines.append(
        f"  grants {c['grants']} (bypass {c['bypass_grants']})"
        f"  releases {c['releases']}  aborts {c['aborts']}"
        f"  evicted {c['queue_evicted']}"
    )
    if c["worker_down"] or c["retries"] or c["monotasks_lost"]:
        f = s["faults"]
        lines.append(
            f"  faults: down {c['worker_down']}  retries {c['retries']}"
            f"  mt lost {c['monotasks_lost']}"
            f"  wasted {c['wasted_work_mb']:.0f} MB"
            f"  recovery mean {f['recovery_mean_s']:.1f}s"
        )
    if c["jobs_shed"] or c["autoscale_up"] or c["autoscale_down"]:
        lines.append(
            f"  service: shed {c['jobs_shed']}"
            f"  scale-ups {c['autoscale_up']}"
            f"  scale-downs {c['autoscale_down']}"
        )
    lines.append("└" + "─" * (PANEL_WIDTH + 14) + "┘")
    return "\n".join(lines)


def render_dashboard(tel: TelemetryCollector) -> str:
    """Panels for every non-empty unit of a (finished) collector."""
    panels = [render_unit(u) for u in tel.live_units().values()]
    if not panels:
        return "(no telemetry units recorded)"
    return "\n".join(panels)


def render_blame(unit_label: str, unit_attr: dict, top: int = 3) -> str:
    """Idle-time blame panel for one unit of an attribution result.

    ``unit_attr`` is one value of ``attribute(events)["units"]``.  Shows,
    per resource, the top-``top`` causes idle slot-seconds were charged to
    (with their share of total capacity), plus the cluster-level JCT ledger
    headline — which phase dominated completion time across the unit's
    jobs.  Pure renderer over the attribution dict; no simulation state.
    """
    idle = unit_attr["idle"]
    lines = []
    lines.append("┌" + "─" * (PANEL_WIDTH + 14) + "┐")
    lines.append(f"  idle-time blame — unit {unit_label}")
    if not idle["per_worker"]:
        lines.append("  (no Ursa workers in this unit: executor-model "
                     "baseline — see JCT ledger)")
    for rtype in ("cpu", "network", "disk"):
        causes = idle["totals"].get(rtype, {})
        cap = idle["capacity_seconds"].get(rtype, 0.0)
        ranked = sorted(causes.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        parts = []
        for cause, secs in ranked:
            share = secs / cap if cap > 0 else 0.0
            parts.append(f"{cause} {secs:.1f}s ({share:.0%})")
        if parts:
            lines.append(f"  {rtype:>8s}: " + "  ".join(parts))
    totals = unit_attr.get("ledger_totals", {})
    ranked = sorted(
        ((k, v) for k, v in totals.items() if v > 0),
        key=lambda kv: (-kv[1], kv[0]),
    )[:top]
    if ranked:
        lines.append(
            "  jct ledger: "
            + "  ".join(f"{k} {v:.1f}s" for k, v in ranked)
        )
    lines.append("└" + "─" * (PANEL_WIDTH + 14) + "┘")
    return "\n".join(lines)


def attach_live(tel: TelemetryCollector, stream: Optional[TextIO] = None) -> None:
    """Print each unit's panel as soon as the unit ends."""
    out = stream if stream is not None else sys.stdout

    def _on_unit_end(u: UnitTelemetry) -> None:
        print(render_unit(u), file=out, flush=True)

    tel.on_unit_end = _on_unit_end
