"""Opt-in lifecycle-event recorder (same pattern as ``repro.perf.profile``).

The scheduling/execution hot paths read one module global
(:data:`RECORDER`) per hook site and skip every instrumentation branch
while it is ``None``, so tracing costs near zero when disabled.  Events are
pure observations — recording never schedules, mutates, or consults the
wall clock — so an instrumented run produces metrics bit-identical to an
uninstrumented one, and the trace itself is as deterministic as the
simulation.

Usage::

    from repro.obs import recorder

    rec = recorder.enable()
    ...run simulations...
    events = recorder.disable().events

or via the CLI: ``python -m repro.experiments --trace --only table2
--scale tiny`` (tracing forces serial in-process execution — worker
processes would not share the parent's recorder).

Hook sites call the typed ``job_submit`` / ``queue_push`` / ``mt_start`` /
... helpers; each appends one schema dict (see :mod:`repro.obs.events`).
Enable the recorder *before* building the :class:`~repro.simcore.engine.\
Simulation`: the engine binds its observer hook at construction.
"""

from __future__ import annotations

from typing import Optional

from . import events as _ev

__all__ = ["TraceRecorder", "RECORDER", "enable", "disable"]


class TraceRecorder:
    """Accumulates lifecycle events (plain dicts) across simulation units."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        #: label of the simulation unit currently being traced; the parallel
        #: runner's serial path rebinds this per unit, direct users may too
        self.unit: str = "run"
        #: per-unit engine counters fed by the Simulation observer hook:
        #: unit -> [events_fired, last_sim_time]
        self.engine_stats: dict[str, list] = {}

    def begin_unit(self, label: str) -> None:
        """All subsequent events belong to simulation unit ``label``."""
        self.unit = str(label)

    def emit(self, kind: str, t: float, **fields) -> None:
        ev = {"t": t, "kind": kind, "unit": self.unit}
        ev.update(fields)
        self.events.append(ev)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # engine observer (bound by Simulation.__init__ while enabled)
    # ------------------------------------------------------------------
    def engine_observer(self, handle) -> None:
        """Counts fired simulation events per unit (trace metadata, not an
        event stream — a per-event dict would dwarf the lifecycle trace)."""
        stats = self.engine_stats.get(self.unit)
        if stats is None:
            stats = self.engine_stats[self.unit] = [0, 0.0]
        stats[0] += 1
        stats[1] = handle.time

    # ------------------------------------------------------------------
    # typed hook helpers (one per schema kind)
    # ------------------------------------------------------------------
    def worker_spec(
        self, t: float, worker: int, cores: int, disks: int, net: int,
        core_rate_mbps: float, net_mbps: float, disk_mbps: float,
    ) -> None:
        self.emit(
            _ev.WORKER_SPEC, t, worker=worker, cores=cores, disks=disks,
            net=net, core_rate_mbps=core_rate_mbps, net_mbps=net_mbps,
            disk_mbps=disk_mbps,
        )

    def job_submit(self, t: float, job: int, name: str, mem_mb: float, qlen: int) -> None:
        self.emit(_ev.JOB_SUBMIT, t, job=job, name=name, mem_mb=mem_mb, qlen=qlen)

    def job_admit(self, t: float, job: int, waited: float, reserved_mb: float) -> None:
        self.emit(_ev.JOB_ADMIT, t, job=job, waited=waited, reserved_mb=reserved_mb)

    def jm_start(self, t: float, job: int) -> None:
        self.emit(_ev.JM_START, t, job=job)

    def task_ready(
        self, t: float, job: int, task: int, stage: int, n_mt: int, input_mb: float
    ) -> None:
        self.emit(
            _ev.TASK_READY, t, job=job, task=task, stage=stage, n_mt=n_mt,
            input_mb=input_mb,
        )

    def task_deps(self, t: float, job: int, task: int, mts: list) -> None:
        # ``mts`` rows are [mt, rtype, input_mb, work_mb, [parent_mt, ...]]
        self.emit(_ev.TASK_DEPS, t, job=job, task=task, mts=mts)

    def sched_tick(self, t: float, assigned: int) -> None:
        self.emit(_ev.SCHED_TICK, t, assigned=assigned)

    def task_placed(
        self, t: float, job: int, task: int, worker: int, score: float, n_mt: int
    ) -> None:
        self.emit(
            _ev.TASK_PLACED, t, job=job, task=task, worker=worker, score=score,
            n_mt=n_mt,
        )

    def queue_push(
        self, t: float, worker: int, rtype: str, job: int, mt: int, qlen: int
    ) -> None:
        self.emit(_ev.QUEUE_PUSH, t, worker=worker, rtype=rtype, job=job, mt=mt, qlen=qlen)

    def queue_pop(
        self, t: float, worker: int, rtype: str, job: int, mt: int, qlen: int
    ) -> None:
        self.emit(_ev.QUEUE_POP, t, worker=worker, rtype=rtype, job=job, mt=mt, qlen=qlen)

    def mt_start(
        self, t: float, worker: int, rtype: str, job: int, mt: int,
        running: int, bypass: bool,
    ) -> None:
        self.emit(
            _ev.MT_START, t, worker=worker, rtype=rtype, job=job, mt=mt,
            running=running, bypass=bypass,
        )

    def res_release(self, t: float, worker: int, rtype: str, mt: int, running: int) -> None:
        self.emit(_ev.RES_RELEASE, t, worker=worker, rtype=rtype, mt=mt, running=running)

    def mt_finish(
        self, t: float, job: int, task: int, mt: int, rtype: str, worker: int
    ) -> None:
        self.emit(_ev.MT_FINISH, t, job=job, task=task, mt=mt, rtype=rtype, worker=worker)

    def task_finish(self, t: float, job: int, task: int, worker: int) -> None:
        self.emit(_ev.TASK_FINISH, t, job=job, task=task, worker=worker)

    def job_finish(self, t: float, job: int, jct: float, failed: bool = False) -> None:
        # `failed` is only serialized when set so failure-free traces keep
        # the exact pre-fault-layer schema
        if failed:
            self.emit(_ev.JOB_FINISH, t, job=job, jct=jct, failed=True)
        else:
            self.emit(_ev.JOB_FINISH, t, job=job, jct=jct)

    def worker_down(self, t: float, worker: int, cause: str) -> None:
        self.emit(_ev.WORKER_DOWN, t, worker=worker, cause=cause)

    def worker_up(self, t: float, worker: int) -> None:
        self.emit(_ev.WORKER_UP, t, worker=worker)

    def mt_lost(
        self, t: float, worker: int, rtype: str, job: int, task: int, mt: int,
        reason: str,
    ) -> None:
        self.emit(
            _ev.MT_LOST, t, worker=worker, rtype=rtype, job=job, task=task,
            mt=mt, reason=reason,
        )

    def retry(self, t: float, job: int, task: int, attempt: int, reason: str) -> None:
        self.emit(_ev.RETRY, t, job=job, task=task, attempt=attempt, reason=reason)


#: The active recorder, or ``None`` when tracing is off.  Hook sites read
#: this exactly once per call and branch away while it is ``None``.
RECORDER: Optional[TraceRecorder] = None


def enable() -> TraceRecorder:
    """Install (and return) a fresh global recorder."""
    global RECORDER
    RECORDER = TraceRecorder()
    return RECORDER


def disable() -> Optional[TraceRecorder]:
    """Uninstall the global recorder and return it (None if not enabled)."""
    global RECORDER
    rec, RECORDER = RECORDER, None
    return rec
