"""Prometheus text exposition of a :class:`~repro.obs.telemetry.TelemetryCollector`.

Two products, both plain text in the Prometheus exposition format (the
``# HELP`` / ``# TYPE`` dialect every scraper and ``promtool`` accepts):

* :func:`render_prom` / :func:`write_prom` — one **snapshot-at-end**
  document: counters, utilization/queue gauges, and the classic-histogram
  expansion (cumulative ``le`` buckets + ``_sum`` + ``_count``) of the
  allocation-latency / admission-wait / JCT histograms, labelled by
  ``{unit, resource, worker}``.
* :func:`write_prom_series` — **per-interval scrape files**
  (``scrape_00000.prom`` …), one per resampling interval, each holding the
  cluster gauges as they stood during that interval.  Replaying them in
  order through a scraper reproduces the run as a live time series.

:func:`validate_prom` is the line-format checker the CI smoke job and
``tests/obs`` run over every emitted file: metric-name and label syntax,
sample-line shape, HELP/TYPE presence, and histogram bucket monotonicity.

Everything here is derived from simulation state — no wall-clock time, so
the emitted text is deterministic and diffable across runs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional

from .telemetry import RTYPES, TelemetryCollector, UnitTelemetry

__all__ = [
    "render_prom", "write_prom", "write_prom_series",
    "render_attr_prom", "write_attr_prom", "validate_prom",
]

_PREFIX = "ursa"


def _esc(value: str) -> str:
    return (
        str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _labels(**kv) -> str:
    inner = ",".join(f'{k}="{_esc(v)}"' for k, v in kv.items() if v is not None)
    return "{" + inner + "}" if inner else ""


def _num(v) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class _Doc:
    """Accumulates families so HELP/TYPE appear once per metric name."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._seen: set[str] = set()

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if name in self._seen:
            return
        self._seen.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {mtype}")

    def sample(self, name: str, value, **labels) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_num(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


#: counter-key -> (metric suffix, help) for the plain event counters
_COUNTER_METRICS = {
    "grants": ("monotask_grants_total", "Resource grants issued (bypass lane included)"),
    "bypass_grants": ("monotask_bypass_grants_total", "Grants through the small-network bypass lane"),
    "releases": ("monotask_releases_total", "Grants released by normal completion"),
    "aborts": ("monotask_aborts_total", "Grants torn down by the fault layer"),
    "queue_pushes": ("queue_pushes_total", "Monotasks pushed into worker queues"),
    "queue_pops": ("queue_pops_total", "Monotasks popped from worker queues"),
    "queue_evicted": ("queue_evictions_total", "Monotasks evicted from worker queues by faults"),
    "jobs_submitted": ("jobs_submitted_total", "Jobs submitted to admission"),
    "jobs_admitted": ("jobs_admitted_total", "Jobs admitted (memory reserved)"),
    "jobs_started": ("jobs_started_total", "Job managers started"),
    "jobs_completed": ("jobs_completed_total", "Jobs completed successfully"),
    "jobs_failed": ("jobs_failed_total", "Jobs failed (retry budget or doomed while waiting)"),
    "sched_ticks": ("sched_ticks_total", "Batched scheduling rounds executed"),
    "tasks_assigned": ("tasks_assigned_total", "Tasks placed by Algorithm 1"),
    "retries": ("task_retries_total", "Task retry attempts charged"),
    "monotasks_lost": ("monotasks_lost_total", "Monotasks lost to faults"),
    "worker_down": ("worker_down_total", "Worker crash/blackout events"),
    "worker_up": ("worker_up_total", "Worker rejoin events"),
    "wasted_work_mb": ("wasted_work_mb_total", "Input MB of lost work that must be re-executed"),
}

_HIST_HELP = {
    "alloc_latency_seconds": "Queue-push to resource-grant latency per monotask",
    "admission_wait_seconds": "Job submit to admission wait",
    "jct_seconds": "Job completion time",
}


def _emit_hist(doc: _Doc, name: str, hist, **labels) -> None:
    full = f"{_PREFIX}_{name}"
    doc.family(full, "histogram", _HIST_HELP.get(name, name))
    running = 0
    for bound, count in zip(hist.bounds, hist.counts):
        running += count
        doc.sample(f"{full}_bucket", running, **labels, le=_num(bound))
    doc.sample(f"{full}_bucket", hist.count, **labels, le="+Inf")
    doc.sample(f"{full}_sum", hist.total, **labels)
    doc.sample(f"{full}_count", hist.count, **labels)


def render_prom(tel: TelemetryCollector) -> str:
    """Render the whole collector as one exposition-format document."""
    doc = _Doc()
    live = tel.live_units()
    for label in sorted(live):
        _render_unit(doc, live[label])
    return doc.text()


def _render_unit(doc: _Doc, u: UnitTelemetry) -> None:
    unit = u.label
    end = u.end_time()

    doc.family(f"{_PREFIX}_sim_end_seconds", "gauge", "Final simulation clock of the unit")
    doc.sample(f"{_PREFIX}_sim_end_seconds", end, unit=unit)
    doc.family(f"{_PREFIX}_engine_events_total", "counter", "Simulation events fired")
    doc.sample(f"{_PREFIX}_engine_events_total", u.engine_events, unit=unit)

    for key, (suffix, help_text) in _COUNTER_METRICS.items():
        full = f"{_PREFIX}_{suffix}"
        doc.family(full, "counter", help_text)
        doc.sample(full, u.counters[key], unit=unit)

    doc.family(f"{_PREFIX}_resource_capacity", "gauge",
               "Total concurrency slots per resource across live workers")
    doc.family(f"{_PREFIX}_utilization_mean", "gauge",
               "Time-weighted mean utilization (active / capacity) over the run")
    doc.family(f"{_PREFIX}_busy_seconds_total", "counter",
               "Exact busy time integrated from grant/release edges")
    for rtype in RTYPES:
        workers = sorted(w for (w, r) in u.busy if r == rtype)
        cap = sum(u.capacity.get((w, rtype), 0) for w in workers)
        integral = sum(u.busy[(w, rtype)].integral for w in workers)
        busy_s = sum(u.busy[(w, rtype)].busy_seconds for w in workers)
        doc.sample(f"{_PREFIX}_resource_capacity", cap, unit=unit, resource=rtype)
        doc.sample(
            f"{_PREFIX}_utilization_mean",
            integral / (cap * end) if cap and end > 0 else 0.0,
            unit=unit, resource=rtype,
        )
        doc.sample(f"{_PREFIX}_busy_seconds_total", busy_s, unit=unit, resource=rtype)

    doc.family(f"{_PREFIX}_worker_busy_seconds_total", "counter",
               "Per-worker exact busy time per resource")
    for (w, rtype) in sorted(u.busy):
        doc.sample(
            f"{_PREFIX}_worker_busy_seconds_total", u.busy[(w, rtype)].busy_seconds,
            unit=unit, worker=w, resource=rtype,
        )

    doc.family(f"{_PREFIX}_queue_depth_mean", "gauge",
               "Time-weighted mean queued monotasks across workers")
    doc.family(f"{_PREFIX}_queued_mb_mean", "gauge",
               "Time-weighted mean queued input MB across workers")
    for rtype in RTYPES:
        accs = [u.queue[k] for k in sorted(u.queue) if k[1] == rtype]
        for acc in accs:
            acc.advance(end)
        depth = sum(a.int_a for a in accs) / end if end > 0 else 0.0
        mb = sum(a.int_b for a in accs) / end if end > 0 else 0.0
        doc.sample(f"{_PREFIX}_queue_depth_mean", depth, unit=unit, resource=rtype)
        doc.sample(f"{_PREFIX}_queued_mb_mean", mb, unit=unit, resource=rtype)

    doc.family(f"{_PREFIX}_admission_queue_mean", "gauge",
               "Time-weighted mean admission-queue length")
    doc.sample(
        f"{_PREFIX}_admission_queue_mean",
        u.admission_q.integral / end if end > 0 else 0.0, unit=unit,
    )
    doc.family(f"{_PREFIX}_running_jobs_mean", "gauge",
               "Time-weighted mean concurrently-running jobs")
    doc.sample(
        f"{_PREFIX}_running_jobs_mean",
        u.running_jobs.integral / end if end > 0 else 0.0, unit=unit,
    )
    doc.family(f"{_PREFIX}_running_jobs_peak", "gauge", "Peak concurrently-running jobs")
    doc.sample(f"{_PREFIX}_running_jobs_peak", u.running_jobs.peak, unit=unit)

    for rtype in RTYPES:
        _emit_hist(doc, "alloc_latency_seconds", u.alloc_hist[rtype],
                   unit=unit, resource=rtype)
    _emit_hist(doc, "admission_wait_seconds", u.admission_wait_hist, unit=unit)
    _emit_hist(doc, "jct_seconds", u.jct_hist, unit=unit)

    rep, rec = u.repair_times, u.recovery_times
    doc.family(f"{_PREFIX}_fault_repair_seconds_mean", "gauge",
               "Mean worker downtime (blackout to rejoin)")
    doc.sample(f"{_PREFIX}_fault_repair_seconds_mean",
               sum(rep) / len(rep) if rep else 0.0, unit=unit)
    doc.family(f"{_PREFIX}_fault_recovery_seconds_mean", "gauge",
               "Mean time from a fault to its last restarted task re-completing")
    doc.sample(f"{_PREFIX}_fault_recovery_seconds_mean",
               sum(rec) / len(rec) if rec else 0.0, unit=unit)


def render_attr_prom(attr: dict) -> str:
    """Exposition-format gauges for a critical-path attribution result.

    ``attr`` is the document returned by
    :func:`repro.obs.attribution.attribute`.  Three gauge families, all
    derived from the deterministic event stream (so diffable across runs):

    * ``ursa_jct_ledger_seconds{unit, category}`` — the per-unit JCT ledger
      totals; summed over categories they equal the unit's total JCT.
    * ``ursa_idle_blame_seconds{unit, resource, cause}`` — idle
      slot-seconds charged to each cause by the blame sweep.
    * ``ursa_idle_capacity_seconds{unit, resource}`` — total slot-seconds
      the blame sweep partitioned (busy + all idle causes).
    """
    from .attribution import CATEGORIES, IDLE_CAUSES
    from .attribution import RTYPES as ATTR_RTYPES

    doc = _Doc()
    doc.family(f"{_PREFIX}_jct_ledger_seconds", "gauge",
               "Critical-path JCT ledger total per category (sums to the "
               "unit's total JCT)")
    doc.family(f"{_PREFIX}_idle_blame_seconds", "gauge",
               "Idle slot-seconds charged to each cause per resource")
    doc.family(f"{_PREFIX}_idle_capacity_seconds", "gauge",
               "Total slot-seconds partitioned by the idle blame sweep")
    for unit in sorted(attr["units"]):
        u = attr["units"][unit]
        for cat in CATEGORIES:
            doc.sample(f"{_PREFIX}_jct_ledger_seconds",
                       u["ledger_totals"][cat], unit=unit, category=cat)
        idle = u["idle"]
        for rtype in ATTR_RTYPES:
            for cause in IDLE_CAUSES:
                doc.sample(f"{_PREFIX}_idle_blame_seconds",
                           idle["totals"][rtype][cause],
                           unit=unit, resource=rtype, cause=cause)
            doc.sample(f"{_PREFIX}_idle_capacity_seconds",
                       idle["capacity_seconds"][rtype],
                       unit=unit, resource=rtype)
    return doc.text()


def write_attr_prom(attr: dict, path) -> Path:
    """Write :func:`render_attr_prom` output; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_attr_prom(attr))
    return path


def write_prom(tel: TelemetryCollector, path) -> Path:
    """Write the snapshot-at-end exposition document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prom(tel))
    return path


def write_prom_series(tel: TelemetryCollector, out_dir,
                      unit: Optional[str] = None) -> list[Path]:
    """Write one scrape file per resampling interval into ``out_dir``.

    Each ``scrape_NNNNN.prom`` holds the cluster gauges (utilization,
    queue depth, queued MB, admission queue, running jobs) as they stood
    during interval ``N``.  ``unit`` restricts to one unit; default is all.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    labels = sorted(tel.live_units()) if unit is None else [unit]
    # per unit: {metric-line-prefix: series}
    per_unit: dict[str, dict[str, list[float]]] = {}
    n_files = 0
    for label in labels:
        u = tel.units[label]
        end = u.end_time()
        series: dict[str, list[float]] = {}
        for rtype in RTYPES:
            workers = sorted(w for (w, r) in u.busy if r == rtype)
            cap = sum(u.capacity.get((w, rtype), 0) for w in workers)
            summed = _sum([u.busy[(w, rtype)].series(end) for w in workers])
            series[f"{_PREFIX}_utilization{_labels(unit=label, resource=rtype)}"] = (
                [x / cap for x in summed] if cap else summed
            )
            qaccs = [u.queue[k] for k in sorted(u.queue) if k[1] == rtype]
            for acc in qaccs:
                acc.advance(end)
            series[f"{_PREFIX}_queue_depth{_labels(unit=label, resource=rtype)}"] = _sum(
                [a.bins_a.series(end) for a in qaccs]
            )
            series[f"{_PREFIX}_queued_mb{_labels(unit=label, resource=rtype)}"] = _sum(
                [a.bins_b.series(end) for a in qaccs]
            )
        series[f"{_PREFIX}_admission_queue{_labels(unit=label)}"] = u.admission_q.series(end)
        series[f"{_PREFIX}_running_jobs{_labels(unit=label)}"] = u.running_jobs.series(end)
        per_unit[label] = series
        n_files = max(n_files, max((len(s) for s in series.values()), default=0))

    header = [
        f"# HELP {_PREFIX}_utilization Mean utilization during this interval",
        f"# TYPE {_PREFIX}_utilization gauge",
        f"# HELP {_PREFIX}_queue_depth Mean queued monotasks during this interval",
        f"# TYPE {_PREFIX}_queue_depth gauge",
        f"# HELP {_PREFIX}_queued_mb Mean queued input MB during this interval",
        f"# TYPE {_PREFIX}_queued_mb gauge",
        f"# HELP {_PREFIX}_admission_queue Mean admission-queue length during this interval",
        f"# TYPE {_PREFIX}_admission_queue gauge",
        f"# HELP {_PREFIX}_running_jobs Mean running jobs during this interval",
        f"# TYPE {_PREFIX}_running_jobs gauge",
    ]
    paths: list[Path] = []
    for k in range(n_files):
        lines = list(header)
        lines.append(f"# interval {k} [{k * tel.interval:g}s, {(k + 1) * tel.interval:g}s)")
        for label in labels:
            for prefix, s in per_unit[label].items():
                if k < len(s):
                    lines.append(f"{prefix} {_num(s[k])}")
        path = out_dir / f"scrape_{k:05d}.prom"
        path.write_text("\n".join(lines) + "\n")
        paths.append(path)
    return paths


def _sum(series_list: list[list[float]]) -> list[float]:
    if not series_list:
        return []
    n = max(len(s) for s in series_list)
    out = [0.0] * n
    for s in series_list:
        for i, v in enumerate(s):
            out[i] += v
    return out


# ----------------------------------------------------------------------
# validation (used by the CI smoke job and tests)
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_prom(text: str) -> list[str]:
    """Check exposition-format text line by line.  Returns error strings —
    empty means valid.  Checks: HELP/TYPE syntax, sample-line shape, label
    syntax, TYPE declared before a family's samples, and cumulative-bucket
    monotonicity / ``+Inf``-equals-``_count`` for histograms."""
    errs: list[str] = []
    typed: dict[str, str] = {}
    # (base_name, label-set-minus-le) -> [(le, value), ...] and counts
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}

    for i, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.fullmatch(parts[2]):
                    errs.append(f"line {i}: malformed {parts[1]} comment")
                elif parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        errs.append(f"line {i}: unknown TYPE {line!r}")
                    else:
                        typed[parts[2]] = parts[3]
            continue  # other comments are allowed
        m = _SAMPLE_RE.match(line)
        if m is None:
            errs.append(f"line {i}: malformed sample {line!r}")
            continue
        name, labels = m.group("name"), m.group("labels")
        pairs: dict[str, str] = {}
        if labels:
            for pair in _split_labels(labels):
                if not _LABEL_RE.match(pair):
                    errs.append(f"line {i}: malformed label {pair!r}")
                else:
                    k, v = pair.split("=", 1)
                    pairs[k] = v[1:-1]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            errs.append(f"line {i}: sample {name!r} before any TYPE declaration")
            continue
        if typed.get(base) == "histogram":
            key_labels = tuple(sorted((k, v) for k, v in pairs.items() if k != "le"))
            value = float(m.group("value"))
            if name.endswith("_bucket"):
                le = pairs.get("le")
                if le is None:
                    errs.append(f"line {i}: histogram bucket without le label")
                else:
                    buckets.setdefault((base, key_labels), []).append(
                        (float("inf") if le == "+Inf" else float(le), value)
                    )
            elif name.endswith("_count"):
                counts[(base, key_labels)] = value

    for key, bs in buckets.items():
        les = [le for le, _ in bs]
        vals = [v for _, v in bs]
        if les != sorted(les):
            errs.append(f"{key[0]}: bucket le bounds not sorted for {dict(key[1])}")
        if vals != sorted(vals):
            errs.append(f"{key[0]}: bucket counts not cumulative for {dict(key[1])}")
        if not les or les[-1] != float("inf"):
            errs.append(f"{key[0]}: missing +Inf bucket for {dict(key[1])}")
        elif key in counts and counts[key] != vals[-1]:
            errs.append(f"{key[0]}: _count != +Inf bucket for {dict(key[1])}")
    return errs


def _split_labels(labels: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    out, cur, in_q, esc = [], [], False, False
    for ch in labels:
        if esc:
            cur.append(ch)
            esc = False
            continue
        if ch == "\\":
            cur.append(ch)
            esc = True
            continue
        if ch == '"':
            in_q = not in_q
            cur.append(ch)
            continue
        if ch == "," and not in_q:
            out.append("".join(cur))
            cur = []
            continue
        cur.append(ch)
    if cur:
        out.append("".join(cur))
    return out
