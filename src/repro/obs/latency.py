"""Allocation-latency / queue-wait distributions derived from a trace.

This is the paper's Obj-2/Obj-4 evidence the aggregate SE/UE metrics can't
show: per-monotask, how long did it take from *resources requested* (the
monotask arriving at its worker, ready to run) to *resources granted* (the
worker starting it)?  Ursa's claim is that per-monotask request-at-ready /
release-on-completion allocation keeps this latency low even under load.

Derived metrics (all in simulation seconds):

* **allocation latency** (per resource type) — ``mt_start.t − queue_push.t``
  for queued monotasks; small-network bypass monotasks are granted at the
  ready instant and contribute ``0.0``.
* **queue wait** (per resource type) — the same difference, *queued
  monotasks only* (the bypass lane is excluded, so queue-wait isolates the
  queueing discipline while allocation latency covers every grant).
* **placement latency** — ``task_placed.t − task_ready.t``: how long a
  ready task waited for an Algorithm-1 batch (bounded by the scheduling
  interval when the cluster has headroom).
* **admission wait** — taken from the ``waited`` field of ``job_admit``
  (time spent in the memory-gated admission queue).

Everything here is pure post-processing over the event stream — it never
reruns a simulation, so ``scripts/trace_stats.py`` can re-derive the tables
from a JSONL trace file alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from . import events as _ev

__all__ = ["Dist", "percentile", "dist", "derive_latency", "RESOURCE_ORDER"]

RESOURCE_ORDER = ("cpu", "network", "disk")


@dataclass(frozen=True)
class Dist:
    """Summary of one latency sample set (seconds).

    Zero-value contract: :meth:`zero` is the canonical empty summary —
    ``count == 0`` and every statistic exactly ``0.0``.  Consumers that
    need a row for an empty sample (the dashboard's latency panel, CSV
    export) render ``Dist.zero()`` rather than special-casing ``None``;
    a ``Dist`` with ``count == 0`` never means "zero-latency samples".
    For a single sample every percentile equals that sample.
    """

    count: int
    mean: float
    p25: float
    p50: float
    p75: float
    p95: float
    p99: float
    max: float

    @classmethod
    def zero(cls) -> "Dist":
        return cls(count=0, mean=0.0, p25=0.0, p50=0.0, p75=0.0,
                   p95=0.0, p99=0.0, max=0.0)

    def row(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p25": self.p25,
            "p50": self.p50,
            "p75": self.p75,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample.

    Matches ``numpy.percentile``'s default (``linear``) method; pure python
    so trace post-processing has no hard numpy dependency.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    pos = (len(sorted_values) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(sorted_values[lo])
    frac = pos - lo
    return float(sorted_values[lo]) * (1.0 - frac) + float(sorted_values[hi]) * frac


def dist(values: Iterable[float], empty_zero: bool = False) -> Optional[Dist]:
    """Summarize a sample.

    Empty input returns ``None`` by default (absent metric), or the
    explicit :meth:`Dist.zero` summary with ``empty_zero=True`` for
    consumers that always render a row.  A single-sample input is valid:
    every percentile (p25 through p99) equals the sample.
    """
    vs = sorted(values)
    if not vs:
        return Dist.zero() if empty_zero else None
    return Dist(
        count=len(vs),
        mean=sum(vs) / len(vs),
        p25=percentile(vs, 25.0),
        p50=percentile(vs, 50.0),
        p75=percentile(vs, 75.0),
        p95=percentile(vs, 95.0),
        p99=percentile(vs, 99.0),
        max=vs[-1],
    )


def derive_latency(events: Iterable[dict]) -> dict:
    """Derive the latency distributions from an event stream.

    Returns::

        {
          "alloc_latency": {rtype: Dist},   # every granted monotask
          "queue_wait":    {rtype: Dist},   # queued monotasks only
          "placement_latency": Dist | None, # task ready -> placed
          "admission_wait":    Dist | None, # job submit -> admit
          "n_events": int,
          "units": [unit labels in first-seen order],
        }

    Matching is keyed on ``(unit, job, id)`` so traces holding several
    simulation units (each with its own t=0 clock) derive correctly.
    """
    push_t: dict[tuple, float] = {}
    ready_t: dict[tuple, float] = {}
    alloc: dict[str, list[float]] = {r: [] for r in RESOURCE_ORDER}
    qwait: dict[str, list[float]] = {r: [] for r in RESOURCE_ORDER}
    placement: list[float] = []
    admission: list[float] = []
    units: dict[str, None] = {}
    n_events = 0

    for ev in events:
        n_events += 1
        unit = ev.get("unit", "run")
        units.setdefault(unit, None)
        kind = ev["kind"]
        t = ev["t"]
        if kind == _ev.QUEUE_PUSH:
            push_t[(unit, ev["job"], ev["mt"])] = t
        elif kind == _ev.MT_START:
            rtype = ev["rtype"]
            t0 = push_t.pop((unit, ev["job"], ev["mt"]), None)
            if t0 is None:
                # bypass lane: granted at the ready instant, zero latency
                alloc.setdefault(rtype, []).append(0.0)
            else:
                alloc.setdefault(rtype, []).append(t - t0)
                qwait.setdefault(rtype, []).append(t - t0)
        elif kind == _ev.TASK_READY:
            ready_t[(unit, ev["job"], ev["task"])] = t
        elif kind == _ev.TASK_PLACED:
            t0 = ready_t.pop((unit, ev["job"], ev["task"]), None)
            if t0 is not None:
                placement.append(t - t0)
        elif kind == _ev.JOB_ADMIT:
            admission.append(ev["waited"])

    return {
        "alloc_latency": {r: d for r, vs in alloc.items() if (d := dist(vs))},
        "queue_wait": {r: d for r, vs in qwait.items() if (d := dist(vs))},
        "placement_latency": dist(placement),
        "admission_wait": dist(admission),
        "n_events": n_events,
        "units": list(units),
    }
