"""Opt-in observability: monotask lifecycle tracing and trace export.

Public surface:

* :mod:`repro.obs.recorder` — ``enable()`` / ``disable()`` / ``RECORDER``
  (the module-global hook the hot paths read, mirroring
  ``repro.perf.profile``).
* :mod:`repro.obs.events` — the event-kind constants and field schema.
* :mod:`repro.obs.latency` — allocation-latency / queue-wait distributions
  derived from an event stream.
* :mod:`repro.obs.export` — JSONL and Chrome Trace Format (Perfetto)
  serialization plus schema validation.
"""

from __future__ import annotations

from . import events
from .export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace_files,
)
from .latency import RESOURCE_ORDER, Dist, derive_latency, dist, percentile
from .recorder import RECORDER, TraceRecorder, disable, enable

__all__ = [
    "events",
    "TraceRecorder", "RECORDER", "enable", "disable",
    "Dist", "dist", "percentile", "derive_latency", "RESOURCE_ORDER",
    "write_jsonl", "read_jsonl", "chrome_trace", "write_chrome_trace",
    "write_trace_files", "validate_chrome_trace",
]
