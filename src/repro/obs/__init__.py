"""Opt-in observability: monotask lifecycle tracing and trace export.

Public surface:

* :mod:`repro.obs.recorder` — ``enable()`` / ``disable()`` / ``RECORDER``
  (the module-global hook the hot paths read, mirroring
  ``repro.perf.profile``).
* :mod:`repro.obs.events` — the event-kind constants and field schema.
* :mod:`repro.obs.latency` — allocation-latency / queue-wait distributions
  derived from an event stream.
* :mod:`repro.obs.export` — JSONL and Chrome Trace Format (Perfetto)
  serialization plus schema validation.
* :mod:`repro.obs.telemetry` — aggregated cluster metrics (counters,
  gauges, exact busy-time integrals, streaming histograms); its
  ``enable``/``disable`` clash with the recorder's, so access it via the
  submodule (``from repro.obs import telemetry``).
* :mod:`repro.obs.timeseries` — the series primitives telemetry builds on.
* :mod:`repro.obs.promexport` — Prometheus/OpenMetrics text exposition of
  a telemetry collector, plus a line-format validator.
* :mod:`repro.obs.dashboard` — ASCII dashboard panels over telemetry.
* :mod:`repro.obs.critpath` — per-job span trees and the scheduling-aware
  critical path extracted from a recorded event stream.
* :mod:`repro.obs.attribution` — why-slow JCT ledgers (segments sum to JCT)
  and the per-worker idle-time blame ledger, plus the canonical
  ``attribution.json`` serialization and digest.
"""

from __future__ import annotations

from . import dashboard, events, promexport, telemetry, timeseries
from .attribution import (
    attribute,
    attribution_digest,
    render_json,
    write_attribution,
)
from .critpath import UnitTrace, critical_path, parse_events
from .export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace_files,
)
from .latency import RESOURCE_ORDER, Dist, derive_latency, dist, percentile
from .recorder import RECORDER, TraceRecorder, disable, enable

__all__ = [
    "events", "telemetry", "timeseries", "promexport", "dashboard",
    "TraceRecorder", "RECORDER", "enable", "disable",
    "Dist", "dist", "percentile", "derive_latency", "RESOURCE_ORDER",
    "write_jsonl", "read_jsonl", "chrome_trace", "write_chrome_trace",
    "write_trace_files", "validate_chrome_trace",
    "UnitTrace", "parse_events", "critical_path",
    "attribute", "attribution_digest", "render_json", "write_attribution",
]
