"""Event schema for monotask lifecycle tracing.

Every event is a plain dict — JSONL-ready, picklable, order-preserving —
with three fields always present:

* ``t``    — simulation time in seconds (never wall clock: traces are as
  deterministic as the simulation that produced them);
* ``kind`` — one of the constants below;
* ``unit`` — label of the simulation unit the event belongs to (one label
  per independent simulation; the Chrome-trace exporter maps each unit to
  its own Perfetto process so overlapping t=0 clocks never collide).

The remaining fields are kind-specific (see each constant).  ``rtype`` is
always the :class:`~repro.dataflow.graph.ResourceType` *value* string
(``"cpu"`` / ``"network"`` / ``"disk"``), and jobs / tasks / monotasks are
referenced by their integer ids, so a trace can outlive the objects.
"""

from __future__ import annotations

__all__ = [
    "WORKER_SPEC", "JOB_SUBMIT", "JOB_ADMIT", "JM_START", "TASK_READY",
    "TASK_DEPS", "SCHED_TICK", "TASK_PLACED", "QUEUE_PUSH", "QUEUE_POP",
    "MT_START", "RES_RELEASE", "MT_FINISH", "TASK_FINISH", "JOB_FINISH",
    "WORKER_DOWN", "WORKER_UP", "MT_LOST", "RETRY", "ALL_KINDS",
]

#: worker registered with the cluster (emitted once per worker at t=0) —
#: {worker, cores, disks, net, core_rate_mbps, net_mbps, disk_mbps}.
#: Carries the concurrency limits and *nominal* per-slot rates so offline
#: analysis can compute idle capacity and contention slowdown (observed
#: service time vs work_mb / nominal_rate) without the Worker objects.
WORKER_SPEC = "worker_spec"

#: job arrived at the admission controller — {job, name, mem_mb, qlen}
JOB_SUBMIT = "job_submit"
#: admission granted (memory reserved) — {job, waited, reserved_mb}
JOB_ADMIT = "job_admit"
#: the job's JM started (after the creation delay) — {job}
JM_START = "jm_start"
#: all parent tasks done; estimates resolved — {job, task, stage, n_mt, input_mb}
TASK_READY = "task_ready"
#: the task's monotask DAG, emitted right after ``task_ready`` once input
#: estimates are resolved — {job, task, mts: [[mt, rtype, input_mb, work_mb,
#: [parent_mt, ...]], ...]}.  Parent ids cover both intra-task edges and
#: cross-task edges (shuffle reads), so the offline critical-path walk can
#: rebuild the full per-job monotask DAG from the trace alone.
TASK_DEPS = "task_deps"
#: one Algorithm-1 scheduling round finished — {assigned}
SCHED_TICK = "sched_tick"
#: placement decision — {job, task, worker, score, n_mt} (score = winning F(t,w))
TASK_PLACED = "task_placed"
#: monotask entered a per-resource worker queue — {worker, rtype, job, mt, qlen}
QUEUE_PUSH = "queue_push"
#: monotask left the queue (resources granted next) — {worker, rtype, job, mt, qlen}
QUEUE_POP = "queue_pop"
#: resources granted; monotask starts — {worker, rtype, job, mt, running, bypass}
MT_START = "mt_start"
#: worker released the slot / accounted completion — {worker, rtype, mt, running}
RES_RELEASE = "res_release"
#: the JM observed the monotask finish — {job, task, mt, rtype, worker}
MT_FINISH = "mt_finish"
#: last monotask of the task finished — {job, task, worker}
TASK_FINISH = "task_finish"
#: last task of the job finished — {job, jct}; a job killed by the fault
#: layer carries an extra ``failed: True`` field (jct is then time-to-failure)
JOB_FINISH = "job_finish"
#: fault layer took a worker offline — {worker, cause} (cause: crash|blackout)
WORKER_DOWN = "worker_down"
#: a blacked-out worker rejoined the cluster — {worker}
WORKER_UP = "worker_up"
#: a queued/running monotask was evicted or aborted —
#: {worker, rtype, job, task, mt, reason} (reason: crash|lineage|timeout|job_failed)
MT_LOST = "monotask_lost"
#: a task restart was charged against its retry budget — {job, task, attempt, reason}
RETRY = "retry"

ALL_KINDS = frozenset({
    WORKER_SPEC, JOB_SUBMIT, JOB_ADMIT, JM_START, TASK_READY, TASK_DEPS,
    SCHED_TICK, TASK_PLACED, QUEUE_PUSH, QUEUE_POP, MT_START, RES_RELEASE,
    MT_FINISH, TASK_FINISH, JOB_FINISH, WORKER_DOWN, WORKER_UP, MT_LOST,
    RETRY,
})
