"""Time-series primitives for the telemetry collector.

Three building blocks, all driven by *simulation* time (never wall clock)
and all exact — no sampling error anywhere:

* :class:`TimeBins` — accumulates a step function's time integral into
  fixed-width interval bins, so a continuously-evolving signal (running
  monotasks, queue depth) resamples into a fixed-interval series without
  storing every edge.
* :class:`StepAccumulator` — a piecewise-constant signal observed at its
  change points (grant/release edges, queue push/pop).  Maintains the exact
  running integral ``∫value·dt``, the busy time ``∫[value>0]·dt``, the peak,
  and feeds every segment into a :class:`TimeBins`.
* :class:`StreamingHistogram` — fixed-boundary bucket counts with sum /
  count / min / max, Prometheus-classic-histogram shaped, plus interpolated
  quantile estimates for dashboards.

Determinism: every update is a float accumulation in event order.  Because
the optimized and ``legacy_tick`` schedulers fire the exact same event
sequence, the resulting series are bit-identical between them.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional, Sequence

__all__ = ["TimeBins", "StepAccumulator", "StreamingHistogram", "LATENCY_BOUNDS"]

#: default histogram boundaries (seconds) for latency-class observations:
#: log-ish spacing from 1 ms to 30 s, chosen around the 250 ms scheduling
#: interval so allocation latencies spread over several buckets
LATENCY_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


class TimeBins:
    """Fixed-width interval bins accumulating ``value × seconds`` weight.

    ``add(t0, t1, value)`` distributes the segment's integral across the
    bins it overlaps; ``series()`` divides each bin by its covered span to
    yield the time-weighted mean per interval.
    """

    __slots__ = ("width", "sums")

    def __init__(self, width: float):
        if width <= 0:
            raise ValueError(f"bin width must be positive (got {width!r})")
        self.width = width
        self.sums: list[float] = []

    def add(self, t0: float, t1: float, value: float) -> None:
        """Accumulate ``value`` held over ``[t0, t1)`` into the bins."""
        if t1 <= t0:
            return
        w = self.width
        i0 = int(t0 / w)
        i1 = int(t1 / w)
        if i1 * w >= t1:
            i1 -= 1  # half-open [t0, t1): a boundary end touches no new bin
        sums = self.sums
        if len(sums) <= i1:
            sums.extend([0.0] * (i1 + 1 - len(sums)))
        if value == 0.0:
            return  # bins were extended so the series still covers the gap
        if i0 == i1:
            sums[i0] += value * (t1 - t0)
            return
        sums[i0] += value * ((i0 + 1) * w - t0)
        full = value * w
        for i in range(i0 + 1, i1):
            sums[i] += full
        sums[i1] += value * (t1 - i1 * w)

    def series(self, end: Optional[float] = None) -> list[float]:
        """Time-weighted mean per bin.

        Every bin divides by the full width except the last, which divides
        by the span actually covered (``end − k·width``) so a run ending
        mid-interval is not under-reported.  ``end=None`` uses full widths
        throughout.
        """
        if not self.sums:
            return []
        out = [s / self.width for s in self.sums]
        if end is not None:
            last = len(self.sums) - 1
            span = end - last * self.width
            if 0.0 < span < self.width:
                out[last] = self.sums[last] / span
        return out

    @property
    def integral(self) -> float:
        """Total accumulated ``value × seconds`` across all bins."""
        return sum(self.sums)


class StepAccumulator:
    """A piecewise-constant signal with exact integrals and binning.

    The signal holds ``value`` from the previous change point to the next;
    :meth:`set` / :meth:`delta` advance time, fold the finished segment into
    the integrals and bins, then change the value.  Simulation time is
    monotonic, so ``t`` never runs backwards; same-instant updates simply
    replace the value (zero-length segments contribute nothing).
    """

    __slots__ = ("value", "last_t", "integral", "busy_seconds", "peak", "bins")

    def __init__(self, bin_width: float, t0: float = 0.0, value: float = 0.0):
        self.value = value
        self.last_t = t0
        self.integral = 0.0
        self.busy_seconds = 0.0
        self.peak = value
        self.bins = TimeBins(bin_width)

    def advance(self, t: float) -> None:
        """Fold the segment ``[last_t, t)`` at the current value."""
        if t <= self.last_t:
            return
        dt = t - self.last_t
        v = self.value
        self.integral += v * dt
        if v > 0:
            self.busy_seconds += dt
        self.bins.add(self.last_t, t, v)
        self.last_t = t

    def set(self, t: float, value: float) -> None:
        self.advance(t)
        self.value = value
        if value > self.peak:
            self.peak = value

    def delta(self, t: float, dv: float) -> None:
        # advance() + set() unrolled: this runs once per grant/release edge
        # on the scheduling hot path, where the nested calls are measurable
        lt = self.last_t
        if t > lt:
            dt = t - lt
            v = self.value
            self.integral += v * dt
            if v > 0:
                self.busy_seconds += dt
            self.bins.add(lt, t, v)
            self.last_t = t
        v = self.value + dv
        self.value = v
        if v > self.peak:
            self.peak = v

    def mean(self, end: Optional[float] = None) -> float:
        """Time-weighted mean over ``[0, end]`` (default: last change)."""
        horizon = end if end is not None else self.last_t
        if horizon <= 0:
            return 0.0
        pending = self.value * max(0.0, horizon - self.last_t)
        return (self.integral + pending) / horizon

    def series(self, end: Optional[float] = None) -> list[float]:
        """Per-bin time-weighted means, after flushing up to ``end``."""
        if end is not None:
            self.advance(end)
        return self.bins.series(end)


class StreamingHistogram:
    """Fixed-boundary streaming histogram (Prometheus classic shape).

    ``bounds`` are the upper bin edges; observations land in the first
    bucket whose bound is ≥ the value, with one overflow bucket above the
    last bound (the ``+Inf`` bucket at exposition time).
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = LATENCY_BOUNDS):
        b = tuple(float(x) for x in bounds)
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate (exact min/max at the ends).

        Assumes observations are uniform within a bucket; the overflow
        bucket reports the observed maximum.  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.vmin, self.bounds[0])
                if i >= len(self.bounds):
                    return self.vmax
                hi = self.bounds[i]
                frac = (rank - seen) / c
                est = lo + (hi - lo) * frac
                # clamp: interpolation must not escape the observed range
                # (e.g. N identical samples would otherwise spread across
                # their bucket instead of reporting the sample value)
                return min(max(est, self.vmin), self.vmax)
            seen += c
        return self.vmax

    def as_dict(self) -> dict:
        """JSON-ready snapshot: cumulative Prometheus-style buckets."""
        cumulative = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            cumulative.append([bound, running])
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
            "p25": self.quantile(0.25),
            "p50": self.quantile(0.50),
            "p75": self.quantile(0.75),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": cumulative,  # [upper_bound, cumulative_count] pairs
        }
