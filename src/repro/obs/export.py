"""Trace export: JSONL and Chrome Trace Format (Perfetto-loadable).

Two serializations of the same event stream:

* **JSONL** — one schema dict per line (see :mod:`repro.obs.events`);
  lossless, greppable, and what ``scripts/trace_stats.py`` re-derives the
  latency tables from without rerunning any simulation.
* **Chrome Trace Format** — the JSON array format Perfetto and
  ``chrome://tracing`` load (open ``trace.json`` at https://ui.perfetto.dev).
  Each simulation *unit* becomes one process (its own t=0 clock); within a
  process, thread 0 is the centralized scheduler and every worker×resource
  pair gets its own thread row:

  - monotask executions are duration slices (``ph: "X"``) on their
    worker×resource row, from resource grant to completion;
  - Algorithm-1 placement decisions and scheduling ticks are instant
    events (``ph: "i"``) on the scheduler row, with the winning ``F(t,w)``
    score in ``args``;
  - queue depth and running-monotask counts are counter tracks
    (``ph: "C"``) so allocation latency is visible as queue build-up;
  - when an attribution result is supplied (``--analyze``), flow events
    (``ph: "s"`` / ``"f"`` pairs sharing an ``id``) draw arrows between
    consecutive monotask slices along each job's scheduling-aware critical
    path, so the chain that bounded the JCT is visible in Perfetto.

Timestamps are simulation seconds scaled to microseconds (the format's
unit); no wall-clock time appears anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from . import events as _ev

__all__ = [
    "write_jsonl", "read_jsonl", "chrome_trace", "write_chrome_trace",
    "write_trace_files", "validate_chrome_trace",
]

_RES_TID = {"cpu": 0, "network": 1, "disk": 2}
_SCALE = 1e6  # simulation seconds -> trace microseconds


def _json_default(obj):
    # numpy scalars reach event fields via workload-derived sizes; .item()
    # yields the equivalent python int/float without importing numpy here
    item = getattr(obj, "item", None)
    if item is not None:
        return item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(events: Iterable[dict], path) -> Path:
    """Write one event per line; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for ev in events:
            fh.write(json.dumps(ev, sort_keys=True, default=_json_default))
            fh.write("\n")
    return path


def read_jsonl(path) -> list[dict]:
    """Read a JSONL trace back into a list of event dicts."""
    out: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# Chrome Trace Format
# ----------------------------------------------------------------------
#: critical-path segment labels that denote actual monotask run time (the
#: flow-arrow anchors); wait labels carry no slice to bind to
_RUN_LABELS = frozenset({
    "compute", "transfer", "disk_io",
    "contention_cpu", "contention_network", "contention_disk",
})


def _flow_events(te: list[dict], pids: dict[str, int],
                 attribution: dict) -> None:
    """Append ``ph: "s"``/``"f"`` flow pairs linking consecutive monotask
    slices along each job's critical path (one arrow per dependency hop)."""
    flow_id = 0
    for unit_label in sorted(attribution.get("units", {})):
        pid = pids.get(unit_label)
        if pid is None:
            continue  # attribution for a unit absent from this stream
        unit = attribution["units"][unit_label]
        for jid in sorted(unit["jobs"], key=int):
            # collapse the segment list into the ordered chain of distinct
            # monotasks with their run-slice extents
            chain: list[dict] = []
            for seg in unit["jobs"][jid]["critical_path"]:
                if seg["label"] not in _RUN_LABELS or "mt" not in seg:
                    continue
                if chain and chain[-1]["mt"] == seg["mt"]:
                    chain[-1]["t1"] = max(chain[-1]["t1"], seg["t1"])
                else:
                    chain.append({
                        "mt": seg["mt"], "worker": seg["worker"],
                        "rtype": seg["rtype"], "t0": seg["t0"], "t1": seg["t1"],
                    })
            for a, b in zip(chain, chain[1:]):
                flow_id += 1
                common = {"name": "critical_path", "cat": "critpath",
                          "pid": pid, "id": flow_id}
                te.append({
                    "ph": "s", **common,
                    "tid": 1 + a["worker"] * 3 + _RES_TID[a["rtype"]],
                    "ts": a["t1"] * _SCALE,
                })
                te.append({
                    "ph": "f", "bp": "e", **common,
                    "tid": 1 + b["worker"] * 3 + _RES_TID[b["rtype"]],
                    "ts": b["t0"] * _SCALE,
                })


def chrome_trace(events: Iterable[dict], engine_stats: dict | None = None,
                 attribution: dict | None = None) -> dict:
    """Convert an event stream into a Chrome Trace Format document.

    ``attribution`` (a :func:`repro.obs.attribution.attribute` result)
    additionally emits critical-path flow arrows between monotask slices.
    """
    te: list[dict] = []
    pids: dict[str, int] = {}
    named_threads: set[tuple[int, int]] = set()
    starts: dict[tuple, dict] = {}

    def thread_meta(pid: int, tid: int, name: str) -> None:
        if (pid, tid) in named_threads:
            return
        named_threads.add((pid, tid))
        te.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    def pid_for(unit: str) -> int:
        pid = pids.get(unit)
        if pid is None:
            pid = pids[unit] = len(pids) + 1
            te.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": unit},
            })
            thread_meta(pid, 0, "scheduler")
        return pid

    def tid_for(pid: int, worker: int, rtype: str) -> int:
        tid = 1 + worker * 3 + _RES_TID[rtype]
        thread_meta(pid, tid, f"w{worker} {rtype}")
        return tid

    for ev in events:
        kind = ev["kind"]
        unit = ev.get("unit", "run")
        pid = pid_for(unit)
        ts = ev["t"] * _SCALE
        if kind == _ev.MT_START:
            starts[(unit, ev["job"], ev["mt"])] = ev
            te.append({
                "ph": "C", "name": f"w{ev['worker']} {ev['rtype']} running",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"running": ev["running"]},
            })
        elif kind == _ev.MT_FINISH:
            start = starts.pop((unit, ev["job"], ev["mt"]), None)
            if start is None:
                continue  # finish without a recorded grant (partial trace)
            tid = tid_for(pid, start["worker"], start["rtype"])
            t0 = start["t"] * _SCALE
            te.append({
                "ph": "X", "name": f"j{ev['job']}/mt{ev['mt']}",
                "cat": start["rtype"], "pid": pid, "tid": tid,
                "ts": t0, "dur": ts - t0,
                "args": {
                    "job": ev["job"], "task": ev["task"], "mt": ev["mt"],
                    "worker": start["worker"], "bypass": start["bypass"],
                },
            })
        elif kind == _ev.RES_RELEASE:
            te.append({
                "ph": "C", "name": f"w{ev['worker']} {ev['rtype']} running",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"running": ev["running"]},
            })
        elif kind in (_ev.QUEUE_PUSH, _ev.QUEUE_POP):
            te.append({
                "ph": "C", "name": f"w{ev['worker']} {ev['rtype']} queued",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"depth": ev["qlen"]},
            })
        elif kind == _ev.TASK_PLACED:
            te.append({
                "ph": "i", "s": "p",
                "name": f"place j{ev['job']}/t{ev['task']} -> w{ev['worker']}",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"score": ev["score"], "worker": ev["worker"], "n_mt": ev["n_mt"]},
            })
        elif kind == _ev.SCHED_TICK:
            te.append({
                "ph": "i", "s": "t", "name": "sched_tick",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"assigned": ev["assigned"]},
            })
        elif kind in (_ev.JOB_SUBMIT, _ev.JOB_ADMIT, _ev.JOB_FINISH):
            te.append({
                "ph": "i", "s": "p", "name": f"{kind} j{ev['job']}",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {k: v for k, v in ev.items() if k not in ("kind", "t", "unit")},
            })

    if attribution is not None:
        _flow_events(te, pids, attribution)
    doc = {"traceEvents": te, "displayTimeUnit": "ms"}
    if engine_stats:
        doc["otherData"] = {
            "engine": {
                unit: {"events_fired": s[0], "sim_end": s[1]}
                for unit, s in engine_stats.items()
            }
        }
    return doc


def write_chrome_trace(events: Iterable[dict], path,
                       engine_stats: dict | None = None,
                       attribution: dict | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(events, engine_stats, attribution),
                   default=_json_default) + "\n"
    )
    return path


def write_trace_files(recorder, out_dir,
                      attribution: dict | None = None) -> dict[str, Path]:
    """Write both serializations of a recorder's stream into ``out_dir``.

    Returns ``{"jsonl": ..., "chrome": ...}``; the fixed file names
    (``trace.jsonl`` / ``trace.json``) keep the CLI, bench scripts and CI
    smoke job pointing at the same artifacts.  ``attribution`` enriches the
    Chrome export with critical-path flow arrows.
    """
    out_dir = Path(out_dir)
    return {
        "jsonl": write_jsonl(recorder.events, out_dir / "trace.jsonl"),
        "chrome": write_chrome_trace(
            recorder.events, out_dir / "trace.json", recorder.engine_stats,
            attribution,
        ),
    }


# ----------------------------------------------------------------------
# validation (used by the CI smoke job and tests)
# ----------------------------------------------------------------------
def _require(ev: dict, field: str, types, errs: list[str], where: str) -> None:
    if not isinstance(ev.get(field), types):
        errs.append(f"{where}: field {field!r} missing or mistyped ({ev.get(field)!r})")


def validate_chrome_trace(doc) -> list[str]:
    """Check a document against the Chrome Trace Format schema subset we
    emit.  Returns a list of error strings — empty means valid."""
    errs: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    te = doc.get("traceEvents")
    if not isinstance(te, list):
        return ["document must contain a 'traceEvents' array"]
    num = (int, float)
    # flow-event bookkeeping: every id must open with exactly one "s" and
    # close with exactly one "f" (steps "t" in between) — a dangling arrow
    # renders as garbage in Perfetto, so it fails validation here
    flow_phases: dict = {}
    flow_ts: dict = {}
    for i, ev in enumerate(te):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errs.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "X":
            _require(ev, "name", str, errs, where)
            _require(ev, "ts", num, errs, where)
            _require(ev, "dur", num, errs, where)
            _require(ev, "pid", int, errs, where)
            _require(ev, "tid", int, errs, where)
            if isinstance(ev.get("dur"), num) and ev["dur"] < 0:
                errs.append(f"{where}: negative duration {ev['dur']!r}")
        elif ph == "i":
            _require(ev, "name", str, errs, where)
            _require(ev, "ts", num, errs, where)
            _require(ev, "pid", int, errs, where)
            if ev.get("s") not in ("g", "p", "t"):
                errs.append(f"{where}: instant scope must be g/p/t, got {ev.get('s')!r}")
        elif ph == "C":
            _require(ev, "name", str, errs, where)
            _require(ev, "ts", num, errs, where)
            _require(ev, "pid", int, errs, where)
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errs.append(f"{where}: counter needs a non-empty args object")
            elif not all(isinstance(v, num) for v in args.values()):
                errs.append(f"{where}: counter args must be numeric")
        elif ph == "M":
            if ev.get("name") not in ("process_name", "thread_name", "process_labels"):
                errs.append(f"{where}: unknown metadata {ev.get('name')!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errs.append(f"{where}: metadata needs args.name")
        elif ph in ("s", "t", "f"):
            _require(ev, "name", str, errs, where)
            _require(ev, "ts", num, errs, where)
            _require(ev, "pid", int, errs, where)
            _require(ev, "tid", int, errs, where)
            fid = ev.get("id")
            if not isinstance(fid, (int, str)):
                errs.append(f"{where}: flow event needs an id")
            else:
                flow_phases.setdefault(fid, []).append(ph)
                if isinstance(ev.get("ts"), num):
                    flow_ts.setdefault(fid, []).append((ev["ts"], ph))
        else:
            errs.append(f"{where}: unexpected phase {ph!r}")
        if "bind_id" in ev and not (ev.get("flow_in") or ev.get("flow_out")):
            errs.append(f"{where}: bind_id without flow_in/flow_out")
        if isinstance(ev.get("ts"), num) and ev["ts"] < 0:
            errs.append(f"{where}: negative timestamp {ev['ts']!r}")
    for fid, phases in flow_phases.items():
        if phases.count("s") != 1 or phases.count("f") != 1:
            errs.append(
                f"flow id {fid!r}: needs exactly one 's' and one 'f', "
                f"got {phases}"
            )
            continue
        ts = dict((ph, t) for t, ph in flow_ts.get(fid, []))
        if "s" in ts and "f" in ts and ts["f"] < ts["s"]:
            errs.append(f"flow id {fid!r}: finish precedes start")
    return errs
