"""Opt-in cluster telemetry (same module-global pattern as ``obs.recorder``).

Where the :mod:`~repro.obs.recorder` captures a *per-event trace* (one dict
per lifecycle event, replayable into Chrome/Perfetto), the telemetry
collector maintains *aggregated series*: counters, gauges, streaming
histograms, and — the core of it — **exact busy-time integrals** per worker
and per resource, computed from grant/release edges rather than sampling.
A monotask that runs 37 ms contributes exactly 0.037 busy-seconds to its
worker's resource, no matter how the 1-second resampling grid falls.

The hot paths read one module global (:data:`TELEMETRY`) per hook site and
branch away while it is ``None``; every hook is a pure observation (no
scheduling, no mutation, no wall clock), so telemetry-on runs stay
bit-identical to telemetry-off runs — enforced by ``tests/obs``.

Usage::

    from repro.obs import telemetry

    tel = telemetry.enable(interval=1.0)
    ...run simulations...
    summary = telemetry.disable().summary()

or via the CLI: ``python -m repro.experiments --telemetry-out DIR`` /
``--dashboard`` (both force serial in-process execution, like ``--trace``).

Enable the collector *before* building the
:class:`~repro.simcore.engine.Simulation`: the engine registers itself at
construction so per-unit engine event counts and the final simulation time
can be harvested without a per-event callback (a Python call per engine
event would dwarf every other hook; lazy harvesting costs nothing).

Series semantics: signals (active monotasks, queue depth, queued MB,
admission-queue length, running jobs) are piecewise-constant between hook
edges; :class:`~repro.obs.timeseries.StepAccumulator` folds each segment
into fixed-``interval`` bins, so ``series[k]`` is the exact time-weighted
mean over ``[k·interval, (k+1)·interval)``.  Cluster utilization divides
the summed per-worker active counts by the summed concurrency limits —
note the network bypass lane (small transfers) runs *outside* the slot
limit, so network utilization can transiently exceed 1.0.
"""

from __future__ import annotations

from typing import Optional

from .timeseries import LATENCY_BOUNDS, StepAccumulator, StreamingHistogram, TimeBins

__all__ = ["TelemetryCollector", "UnitTelemetry", "TELEMETRY", "enable", "disable",
           "unit_summary", "RTYPES", "JCT_BOUNDS"]

RTYPES = ("cpu", "network", "disk")

#: histogram boundaries (seconds) for job-scale durations (JCT, admission
#: wait) — latencies here are seconds-to-minutes, not milliseconds
JCT_BOUNDS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)

#: counter keys, pre-seeded so every summary has the same shape
_COUNTER_KEYS = (
    "grants", "bypass_grants", "releases", "aborts",
    "queue_pushes", "queue_pops", "queue_evicted",
    "jobs_submitted", "jobs_admitted", "jobs_started",
    "jobs_completed", "jobs_failed", "jobs_failed_unadmitted",
    "sched_ticks", "tasks_assigned",
    "retries", "monotasks_lost", "worker_down", "worker_up",
    "wasted_work_mb",
    "jobs_shed", "autoscale_up", "autoscale_down",
)


class _DualStep:
    """Two piecewise-constant signals sharing one clock (queue depth and
    queued MB change at the same instants; folding them together halves the
    bookkeeping on the push/pop hot path)."""

    __slots__ = ("a", "b", "last_t", "int_a", "int_b", "peak_a", "peak_b",
                 "bins_a", "bins_b")

    def __init__(self, bin_width: float):
        self.a = 0.0
        self.b = 0.0
        self.last_t = 0.0
        self.int_a = 0.0
        self.int_b = 0.0
        self.peak_a = 0.0
        self.peak_b = 0.0
        self.bins_a = TimeBins(bin_width)
        self.bins_b = TimeBins(bin_width)

    def set2(self, t: float, a: float, b: float) -> None:
        lt = self.last_t
        if t > lt:
            dt = t - lt
            va = self.a
            vb = self.b
            self.int_a += va * dt
            self.int_b += vb * dt
            self.bins_a.add(lt, t, va)
            self.bins_b.add(lt, t, vb)
            self.last_t = t
        self.a = a
        self.b = b
        if a > self.peak_a:
            self.peak_a = a
        if b > self.peak_b:
            self.peak_b = b

    def advance(self, t: float) -> None:
        self.set2(t, self.a, self.b)


#: opcodes for the deferred-fold log (ints: tuple[0] compares fastest)
_OP_GRANT, _OP_RELEASE, _OP_ABORT, _OP_QPUSH, _OP_QPOP, _OP_QEVICT, _OP_TICK = range(7)


class UnitTelemetry:
    """All metric state for one simulation unit (one experiment run).

    The high-frequency hooks (grant/release/abort, queue push/pop/evict,
    scheduler ticks — tens of thousands per run) do **not** aggregate
    inline: they append an op tuple to :attr:`log`, and :meth:`fold`
    replays the log into the accumulators the first time a summary, the
    dashboard, or ``end_time()`` needs them.  The scheduler's timed hot
    path thus pays one list append per edge instead of dict lookups plus
    float integration; replay preserves the exact event order, so the
    folded aggregates are identical to inline aggregation.
    """

    def __init__(self, label: str, interval: float):
        self.label = label
        self.interval = interval
        #: deferred op log, replayed by fold()
        self.log: list[tuple] = []
        self.counters: dict[str, float] = {k: 0 for k in _COUNTER_KEYS}
        self.counters["wasted_work_mb"] = 0.0
        #: (worker, rtype) -> concurrency limit, registered by Worker.__init__
        self.capacity: dict[tuple[int, str], int] = {}
        #: (worker, rtype) -> active-monotask StepAccumulator
        self.busy: dict[tuple[int, str], StepAccumulator] = {}
        #: (worker, rtype) -> (queue depth, queued MB) dual accumulator
        self.queue: dict[tuple[int, str], _DualStep] = {}
        self.admission_q = StepAccumulator(interval)
        self.running_jobs = StepAccumulator(interval)
        self.alloc_hist = {r: StreamingHistogram(LATENCY_BOUNDS) for r in RTYPES}
        self.admission_wait_hist = StreamingHistogram(JCT_BOUNDS)
        self.jct_hist = StreamingHistogram(JCT_BOUNDS)
        #: (job, mt) -> queue-push time, popped at grant for alloc latency
        self.pending_alloc: dict[tuple[int, int], float] = {}
        #: worker -> went-down time (blackouts record a repair on rejoin)
        self.down_since: dict[int, float] = {}
        self.repair_times: list[float] = []
        self.recovery_times: list[float] = []
        self.engine = None  # the unit's Simulation, registered at construction
        self.engine_events = 0
        self.sim_end = 0.0

    def is_empty(self) -> bool:
        """True for units that never saw a simulation or a hook — e.g. the
        initial ``"run"`` placeholder when every unit was relabelled.
        Empty units are dropped from summaries and exports."""
        return (self.engine is None and not self.log
                and not any(self.counters.values()))

    def fold(self) -> None:
        """Replay the deferred op log into the aggregate structures.

        Runs once per unit (at seal/summary time); the log is replayed in
        append order, which is event order, so the result is exactly what
        inline aggregation would have produced.
        """
        log = self.log
        if not log:
            return
        self.log = []
        interval = self.interval
        c = self.counters
        busy = self.busy
        queue = self.queue
        pending = self.pending_alloc
        alloc_hist = self.alloc_hist
        grants = bypass = releases = aborts = 0
        pushes = pops = evicted = ticks = assigned = 0
        for op in log:
            kind = op[0]
            if kind == _OP_GRANT:
                _, t, worker, rtype, job, mt, byp = op
                grants += 1
                if byp:
                    bypass += 1
                    lat = 0.0
                else:
                    lat = t - pending.pop((job, mt), t)
                alloc_hist[rtype].observe(lat)
                acc = busy.get((worker, rtype))
                if acc is None:
                    acc = busy[(worker, rtype)] = StepAccumulator(interval)
                acc.delta(t, 1.0)
            elif kind == _OP_RELEASE:
                _, t, worker, rtype = op
                releases += 1
                acc = busy.get((worker, rtype))
                if acc is None:
                    acc = busy[(worker, rtype)] = StepAccumulator(interval)
                acc.delta(t, -1.0)
            elif kind == _OP_QPUSH:
                _, t, worker, rtype, job, mt, qlen, work_mb = op
                pushes += 1
                pending[(job, mt)] = t
                q = queue.get((worker, rtype))
                if q is None:
                    q = queue[(worker, rtype)] = _DualStep(interval)
                q.set2(t, qlen, work_mb)
            elif kind == _OP_QPOP:
                _, t, worker, rtype, qlen, work_mb = op
                pops += 1
                q = queue.get((worker, rtype))
                if q is None:
                    q = queue[(worker, rtype)] = _DualStep(interval)
                q.set2(t, qlen, work_mb)
            elif kind == _OP_TICK:
                ticks += 1
                assigned += op[1]
            elif kind == _OP_ABORT:
                _, t, worker, rtype = op
                aborts += 1
                acc = busy.get((worker, rtype))
                if acc is None:
                    acc = busy[(worker, rtype)] = StepAccumulator(interval)
                acc.delta(t, -1.0)
            else:  # _OP_QEVICT
                _, t, worker, rtype, qlen, work_mb, keys = op
                evicted += len(keys)
                for key in keys:
                    pending.pop(key, None)
                q = queue.get((worker, rtype))
                if q is None:
                    q = queue[(worker, rtype)] = _DualStep(interval)
                q.set2(t, qlen, work_mb)
        c["grants"] += grants
        c["bypass_grants"] += bypass
        c["releases"] += releases
        c["aborts"] += aborts
        c["queue_pushes"] += pushes
        c["queue_pops"] += pops
        c["queue_evicted"] += evicted
        c["sched_ticks"] += ticks
        c["tasks_assigned"] += assigned

    # -- lazy accumulator accessors (capacity registration usually seeds
    # -- them eagerly; baselines that bypass Worker still get tracked)
    def busy_acc(self, worker: int, rtype: str) -> StepAccumulator:
        acc = self.busy.get((worker, rtype))
        if acc is None:
            acc = self.busy[(worker, rtype)] = StepAccumulator(self.interval)
        return acc

    def queue_acc(self, worker: int, rtype: str) -> _DualStep:
        acc = self.queue.get((worker, rtype))
        if acc is None:
            acc = self.queue[(worker, rtype)] = _DualStep(self.interval)
        return acc

    def harvest_engine(self) -> None:
        """Pull events-fired / final-time off the registered engine."""
        sim = self.engine
        if sim is not None:
            self.engine_events = sim.events_fired
            self.sim_end = sim.now

    def end_time(self) -> float:
        """The horizon all series are flushed to: the engine's final clock,
        falling back to the latest hook edge when no engine registered."""
        self.fold()
        self.harvest_engine()
        end = self.sim_end
        for acc in self.busy.values():
            if acc.last_t > end:
                end = acc.last_t
        for q in self.queue.values():
            if q.last_t > end:
                end = q.last_t
        if self.admission_q.last_t > end:
            end = self.admission_q.last_t
        if self.running_jobs.last_t > end:
            end = self.running_jobs.last_t
        return end


class TelemetryCollector:
    """Aggregated cluster metrics across simulation units.

    Hook methods are grouped by the seam that calls them.  The
    high-frequency ones (grants, releases, queue edges, ticks) append one
    tuple to the unit's op log and defer all aggregation to
    :meth:`UnitTelemetry.fold`; the low-frequency ones (job lifecycle,
    faults — tens per run) update their accumulators inline.  The split is
    safe because the inline hooks touch no state the folded ops read.
    """

    def __init__(self, interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive (got {interval!r})")
        self.interval = interval
        self.units: dict[str, UnitTelemetry] = {}
        self._u = self._unit("run")
        #: optional ``callback(unit: UnitTelemetry)`` fired when a unit is
        #: sealed (next begin_unit / disable).  The live dashboard hangs off
        #: this; it observes the collector and never touches the simulation,
        #: so determinism guarantees are unaffected.
        self.on_unit_end = None

    def _unit(self, label: str) -> UnitTelemetry:
        u = self.units.get(label)
        if u is None:
            u = self.units[label] = UnitTelemetry(label, self.interval)
        return u

    def _seal_unit(self) -> None:
        u = self._u
        u.harvest_engine()
        if self.on_unit_end is not None and not u.is_empty():
            self.on_unit_end(u)

    def begin_unit(self, label: str) -> None:
        """All subsequent hooks belong to simulation unit ``label``."""
        self._seal_unit()
        self._u = self._unit(str(label))

    @property
    def unit(self) -> str:
        return self._u.label

    # ------------------------------------------------------------------
    # engine seam (Simulation.__init__)
    # ------------------------------------------------------------------
    def attach_engine(self, sim) -> None:
        """Register the unit's engine for lazy stats harvesting.  NOT a
        per-event observer: a Python call per engine event would cost more
        than every other hook combined."""
        self._u.engine = sim

    # ------------------------------------------------------------------
    # worker seams (Worker.__init__ / _grant / _account_completion, and
    # the fault layer's abort paths)
    # ------------------------------------------------------------------
    def worker_capacity(self, worker: int, limits: dict) -> None:
        u = self._u
        for rtype, limit in limits.items():
            u.capacity[(worker, rtype)] = limit
            u.busy_acc(worker, rtype)
            u.queue_acc(worker, rtype)

    def grant(self, t: float, worker: int, rtype: str,
              job: int, mt: int, bypass: bool) -> None:
        self._u.log.append((_OP_GRANT, t, worker, rtype, job, mt, bypass))

    def release(self, t: float, worker: int, rtype: str) -> None:
        self._u.log.append((_OP_RELEASE, t, worker, rtype))

    def abort(self, t: float, worker: int, rtype: str) -> None:
        """A granted monotask was torn down by the fault layer before it
        could complete — the release seam will never fire for it."""
        self._u.log.append((_OP_ABORT, t, worker, rtype))

    # ------------------------------------------------------------------
    # queue seams (MonotaskQueue.push / pop / evict)
    # ------------------------------------------------------------------
    def queue_push(self, t: float, worker: int, rtype: str,
                   job: int, mt: int, qlen: int, work_mb: float) -> None:
        self._u.log.append((_OP_QPUSH, t, worker, rtype, job, mt, qlen, work_mb))

    def queue_pop(self, t: float, worker: int, rtype: str,
                  qlen: int, work_mb: float) -> None:
        self._u.log.append((_OP_QPOP, t, worker, rtype, qlen, work_mb))

    def queue_evict(self, t: float, worker: int, rtype: str,
                    qlen: int, work_mb: float, keys: list) -> None:
        self._u.log.append((_OP_QEVICT, t, worker, rtype, qlen, work_mb, list(keys)))

    # ------------------------------------------------------------------
    # admission / job lifecycle seams
    # ------------------------------------------------------------------
    def job_submitted(self, t: float, qlen: int) -> None:
        u = self._u
        u.counters["jobs_submitted"] += 1
        u.admission_q.set(t, qlen)

    def job_admitted(self, t: float, waited: float) -> None:
        u = self._u
        u.counters["jobs_admitted"] += 1
        u.admission_wait_hist.observe(waited)

    def admission_queue(self, t: float, qlen: int) -> None:
        self._u.admission_q.set(t, qlen)

    def job_started(self, t: float, n_active: int) -> None:
        u = self._u
        u.counters["jobs_started"] += 1
        u.running_jobs.set(t, n_active)

    def job_completed(self, t: float, jct: float, n_active: int) -> None:
        u = self._u
        u.counters["jobs_completed"] += 1
        u.jct_hist.observe(jct)
        u.running_jobs.set(t, n_active)

    def job_failed(self, t: float, n_active: int) -> None:
        u = self._u
        u.counters["jobs_failed"] += 1
        u.running_jobs.set(t, n_active)

    def job_failed_unadmitted(self, t: float) -> None:
        """A waiting job doomed by a permanent capacity loss — it never
        held a reservation, so the running-jobs gauge is untouched."""
        u = self._u
        u.counters["jobs_failed"] += 1
        u.counters["jobs_failed_unadmitted"] += 1

    # ------------------------------------------------------------------
    # scheduler seam (UrsaSystem._tick)
    # ------------------------------------------------------------------
    def sched_tick(self, t: float, assigned: int) -> None:
        self._u.log.append((_OP_TICK, assigned))

    # ------------------------------------------------------------------
    # fault-layer seams (FaultController)
    # ------------------------------------------------------------------
    def worker_down(self, t: float, worker: int, cause: str) -> None:
        u = self._u
        u.counters["worker_down"] += 1
        u.down_since[worker] = t

    def worker_up(self, t: float, worker: int) -> None:
        u = self._u
        u.counters["worker_up"] += 1
        down = u.down_since.pop(worker, None)
        if down is not None:
            u.repair_times.append(t - down)

    def retry(self, n: int = 1) -> None:
        self._u.counters["retries"] += n

    def mt_lost(self, n: int = 1) -> None:
        self._u.counters["monotasks_lost"] += n

    def fault_recovery(self, duration: float) -> None:
        """Seconds from a fault until its last restarted task re-completed
        (the MTTR sample the faults experiments aggregate)."""
        self._u.recovery_times.append(duration)

    def wasted_work(self, mb: float) -> None:
        self._u.counters["wasted_work_mb"] += mb

    # ------------------------------------------------------------------
    # service-layer seams (ServiceDriver / Autoscaler)
    # ------------------------------------------------------------------
    def job_shed(self, t: float) -> None:
        """An arrival rejected by admission backpressure (never submitted,
        so none of the job-lifecycle counters move for it)."""
        self._u.counters["jobs_shed"] += 1

    def autoscale(self, t: float, direction: int, active: int) -> None:
        """The autoscaler added (+1) or drained (−1) a worker; ``active``
        is the post-action live-worker count."""
        key = "autoscale_up" if direction > 0 else "autoscale_down"
        self._u.counters[key] += 1

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def live_units(self) -> dict[str, UnitTelemetry]:
        """Units that actually recorded something (empty ones dropped)."""
        return {label: u for label, u in self.units.items() if not u.is_empty()}

    def summary(self) -> dict:
        """JSON-ready snapshot of every non-empty unit plus totals."""
        live = self.live_units()
        units = {label: unit_summary(u) for label, u in live.items()}
        totals: dict[str, float] = {k: 0 for k in _COUNTER_KEYS}
        totals["wasted_work_mb"] = 0.0
        for u in live.values():
            for k, v in u.counters.items():
                totals[k] += v
        return {"interval": self.interval, "units": units, "totals": totals}


def unit_summary(u: UnitTelemetry) -> dict:
    """JSON-ready snapshot of one unit (shared by summary() and the
    dashboard's per-unit panels)."""
    end = u.end_time()
    rt_util = {}
    for rtype in RTYPES:
        workers = sorted(w for (w, r) in u.busy if r == rtype)
        cap = sum(u.capacity.get((w, rtype), 0) for w in workers)
        integral = 0.0
        busy_s = 0.0
        peak = 0.0
        per_series = []
        for w in workers:
            acc = u.busy[(w, rtype)]
            per_series.append(acc.series(end))
            integral += acc.integral
            busy_s += acc.busy_seconds
            if acc.peak > peak:
                peak = acc.peak
        summed = _sum_series(per_series)
        rt_util[rtype] = {
            "capacity": cap,
            "busy_seconds": busy_s,
            "active_mean": integral / end if end > 0 else 0.0,
            "mean": integral / (cap * end) if cap and end > 0 else 0.0,
            "worker_peak_active": peak,
            "series": [x / cap for x in summed] if cap else summed,
        }

    workers_out: dict[str, dict] = {}
    for (w, rtype) in sorted(u.busy):
        acc = u.busy[(w, rtype)]
        workers_out.setdefault(str(w), {})[rtype] = {
            "capacity": u.capacity.get((w, rtype), 0),
            "busy_seconds": acc.busy_seconds,
            "mean_active": acc.integral / end if end > 0 else 0.0,
            "peak_active": acc.peak,
        }

    queues = {}
    for rtype in RTYPES:
        workers = sorted(w for (w, r) in u.queue if r == rtype)
        accs = [u.queue[(w, rtype)] for w in workers]
        for acc in accs:
            acc.advance(end)
        queues[rtype] = {
            "depth_mean": sum(a.int_a for a in accs) / end if end > 0 else 0.0,
            "depth_worker_peak": max((a.peak_a for a in accs), default=0.0),
            "depth_series": _sum_series([a.bins_a.series(end) for a in accs]),
            "mb_mean": sum(a.int_b for a in accs) / end if end > 0 else 0.0,
            "mb_worker_peak": max((a.peak_b for a in accs), default=0.0),
            "mb_series": _sum_series([a.bins_b.series(end) for a in accs]),
        }

    rep, rec_ = u.repair_times, u.recovery_times
    return {
        "sim_end": end,
        "engine_events": u.engine_events,
        "counters": dict(u.counters),
        "utilization": rt_util,
        "workers": workers_out,
        "queues": queues,
        "admission_queue": _gauge_summary(u.admission_q, end),
        "running_jobs": _gauge_summary(u.running_jobs, end),
        "alloc_latency": {r: u.alloc_hist[r].as_dict() for r in RTYPES},
        "admission_wait": u.admission_wait_hist.as_dict(),
        "jct": u.jct_hist.as_dict(),
        "faults": {
            "repair_count": len(rep),
            "repair_mean_s": sum(rep) / len(rep) if rep else 0.0,
            "repair_max_s": max(rep) if rep else 0.0,
            "recovery_count": len(rec_),
            "recovery_mean_s": sum(rec_) / len(rec_) if rec_ else 0.0,
            "recovery_max_s": max(rec_) if rec_ else 0.0,
            "wasted_work_mb": u.counters["wasted_work_mb"],
        },
    }


def _gauge_summary(acc: StepAccumulator, end: float) -> dict:
    series = acc.series(end)
    return {
        "mean": acc.integral / end if end > 0 else 0.0,
        "peak": acc.peak,
        "series": series,
    }


def _sum_series(series_list: list[list[float]]) -> list[float]:
    """Elementwise sum of variable-length series (short ones pad with 0)."""
    if not series_list:
        return []
    n = max(len(s) for s in series_list)
    out = [0.0] * n
    for s in series_list:
        for i, v in enumerate(s):
            out[i] += v
    return out


#: The active collector, or ``None`` when telemetry is off.  Hook sites
#: read this exactly once per call and branch away while it is ``None``.
TELEMETRY: Optional[TelemetryCollector] = None


def enable(interval: float = 1.0) -> TelemetryCollector:
    """Install (and return) a fresh global collector."""
    global TELEMETRY
    TELEMETRY = TelemetryCollector(interval)
    return TELEMETRY


def disable() -> Optional[TelemetryCollector]:
    """Uninstall the global collector and return it (None if not enabled).
    The final unit's engine stats are harvested on the way out."""
    global TELEMETRY
    tel, TELEMETRY = TELEMETRY, None
    if tel is not None:
        tel._seal_unit()
    return tel
