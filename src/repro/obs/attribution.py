"""Why-slow attribution: JCT ledgers and the idle-time blame ledger.

Two products, both derived offline from a recorded event stream (analysis
never touches the hot path, so enabling it cannot perturb metrics):

* **Per-job JCT ledger** — :func:`attribute` folds each job's critical-path
  segments (:mod:`repro.obs.critpath`) into a fixed-category ledger whose
  entries sum to the job's completion time *by construction*: the segments
  tile ``[submit, finish]``, so the sum telescopes to JCT exactly (up to
  float associativity — the regression gate allows 1e-9 relative error).
* **Idle-time blame ledger** — for every Ursa worker and resource, every
  idle slot-second of the run is classified by *why* the slot sat idle:
  ``fault_down`` (worker offline), ``blocked_policy`` (runnable work existed
  somewhere in the cluster but capping/blocking or placement kept it off
  this slot), ``admission_gated`` (no runnable work, but jobs were waiting
  at the memory-gated admission controller), or ``no_work`` (nothing to
  run anywhere).  This is the paper's Obj-2 waste metric made first-class:
  the ledger shows directly how much executor-style idleness each policy
  leaves behind.

The result dict is JSON-ready; :func:`render_json` serializes it with
sorted keys so the artifact is byte-identical for identical event streams
(serial vs. parallel runs, scalar vs. vector placement), and
:func:`attribution_digest` pins that invariant in tests and CI.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from . import events as ev
from .critpath import UnitTrace, critical_path, parse_events

__all__ = [
    "CATEGORIES", "IDLE_CAUSES", "RTYPES",
    "attribute", "attribute_unit", "idle_blame",
    "render_json", "attribution_digest", "write_attribution", "validate",
    "top_jobs", "sum_error",
]

#: every ledger key, in report order; absent phases are exact 0.0
CATEGORIES = (
    "admission_wait", "jm_startup", "sched_delay",
    "queue_wait_cpu", "queue_wait_network", "queue_wait_disk",
    "compute", "transfer", "disk_io",
    "contention_cpu", "contention_network", "contention_disk",
    "fault_recovery", "execution", "failed", "other",
)

#: idle-second blame classes, in priority order (first match wins)
IDLE_CAUSES = ("fault_down", "blocked_policy", "admission_gated", "no_work")

RTYPES = ("cpu", "network", "disk")


def attribute(events: Iterable[dict]) -> dict:
    """Full attribution of an event stream: ``{"units": {label: ...}}``."""
    units = parse_events(events)
    return {
        "schema": 1,
        "units": {label: attribute_unit(units[label]) for label in sorted(units)},
    }


def attribute_unit(unit: UnitTrace) -> dict:
    """One unit's attribution: per-job ledgers + the idle blame ledger."""
    jobs = {}
    totals = {c: 0.0 for c in CATEGORIES}
    for jid in sorted(unit.jobs):
        job = unit.jobs[jid]
        if job.finish_t is None:
            continue  # never completed (trace truncated); nothing to ledger
        path = critical_path(unit, job)
        ledger = {c: 0.0 for c in CATEGORIES}
        for seg in path:
            ledger[seg["label"]] += seg["t1"] - seg["t0"]
        for c in CATEGORIES:
            totals[c] += ledger[c]
        jobs[str(jid)] = {
            "name": job.name,
            "submit_t": job.submit_t,
            "finish_t": job.finish_t,
            "jct": job.jct,
            "failed": job.failed,
            "ledger": ledger,
            "critical_path": [
                {k: seg[k] for k in sorted(seg)} for seg in path
            ],
        }
    return {
        "jobs": jobs,
        "ledger_totals": totals,
        "idle": idle_blame(unit),
    }


def sum_error(entry: dict) -> float:
    """Relative error between a job's ledger sum and its JCT."""
    total = sum(entry["ledger"].values())
    jct = entry["jct"] or 0.0
    if jct == 0.0:
        return abs(total)
    return abs(total - jct) / jct


def top_jobs(result: dict, n: int = 10) -> list[tuple[str, str, dict]]:
    """The ``n`` slowest jobs across all units as (unit, job_id, entry)."""
    rows = [
        (unit_label, jid, entry)
        for unit_label, unit in result["units"].items()
        for jid, entry in unit["jobs"].items()
    ]
    rows.sort(key=lambda r: (-(r[2]["jct"] or 0.0), r[0], int(r[1])))
    return rows[:n]


# ----------------------------------------------------------------------
# idle-time blame ledger
# ----------------------------------------------------------------------
class _ClusterState:
    """Rolling cluster state for the idle-classification sweep."""

    def __init__(self, unit: UnitTrace) -> None:
        self.running: dict[tuple[int, str], int] = {}
        self.queued: dict[tuple[int, str], int] = {}
        self.down: set[int] = set()
        self.pending_tasks = 0          # ready but not yet placed
        self.waiting_jobs: set[int] = set()  # submitted, not yet admitted
        self.limits = {
            (w, r): spec["limits"][r]
            for w, spec in unit.workers.items()
            for r in RTYPES
        }

    def cause(self, worker: int, rtype: str) -> str:
        if worker in self.down:
            return "fault_down"
        if self.pending_tasks > 0 or any(
            n > 0 for (w, r), n in self.queued.items() if r == rtype
        ):
            return "blocked_policy"
        if self.waiting_jobs:
            return "admission_gated"
        return "no_work"

    def apply(self, e: dict) -> None:
        kind = e["kind"]
        if kind == ev.MT_START:
            if not e["bypass"]:
                self.running[(e["worker"], e["rtype"])] = e["running"]
        elif kind == ev.RES_RELEASE:
            self.running[(e["worker"], e["rtype"])] = e["running"]
        elif kind == ev.QUEUE_PUSH or kind == ev.QUEUE_POP:
            self.queued[(e["worker"], e["rtype"])] = e["qlen"]
        elif kind == ev.TASK_READY:
            self.pending_tasks += 1
        elif kind == ev.TASK_PLACED:
            self.pending_tasks = max(0, self.pending_tasks - 1)
        elif kind == ev.JOB_SUBMIT:
            self.waiting_jobs.add(e["job"])
        elif kind == ev.JOB_ADMIT:
            self.waiting_jobs.discard(e["job"])
        elif kind == ev.JOB_FINISH:
            self.waiting_jobs.discard(e["job"])  # doomed-while-waiting jobs
        elif kind == ev.WORKER_DOWN:
            w = e["worker"]
            self.down.add(w)
            for r in RTYPES:
                self.running[(w, r)] = 0
                self.queued[(w, r)] = 0
        elif kind == ev.WORKER_UP:
            self.down.discard(e["worker"])


def idle_blame(unit: UnitTrace) -> dict:
    """Classify every idle slot-second of every Ursa worker resource.

    Returns ``{"per_worker": {w: {rtype: {cause: s}}}, "totals": {rtype:
    {cause: s}}, "capacity_seconds": {rtype: s}, "end_t": t}``.  Executor
    baselines never instantiate Workers, so their units report an empty
    ledger — their idleness is visible only through the JCT ledgers.
    """
    per_worker: dict[str, dict] = {
        str(w): {r: {c: 0.0 for c in IDLE_CAUSES} for r in RTYPES}
        for w in sorted(unit.workers)
    }
    totals = {r: {c: 0.0 for c in IDLE_CAUSES} for r in RTYPES}
    if not unit.workers:
        return {"per_worker": {}, "totals": totals,
                "capacity_seconds": {r: 0.0 for r in RTYPES}, "end_t": unit.end_t}

    state = _ClusterState(unit)
    prev_t = 0.0
    for e in unit.events:
        t = e["t"]
        dt = t - prev_t
        if dt > 0:
            _integrate(state, per_worker, totals, dt)
            prev_t = t
        state.apply(e)
    if unit.end_t > prev_t:
        _integrate(state, per_worker, totals, unit.end_t - prev_t)
    capacity = {
        r: unit.end_t * sum(
            spec["limits"][r] for spec in unit.workers.values()
        )
        for r in RTYPES
    }
    return {
        "per_worker": per_worker,
        "totals": totals,
        "capacity_seconds": capacity,
        "end_t": unit.end_t,
    }


def _integrate(state: _ClusterState, per_worker: dict, totals: dict,
               dt: float) -> None:
    for (w, r), limit in state.limits.items():
        idle = limit - state.running.get((w, r), 0)
        if idle <= 0:
            continue
        cause = state.cause(w, r)
        amount = idle * dt
        per_worker[str(w)][r][cause] += amount
        totals[r][cause] += amount


# ----------------------------------------------------------------------
# serialization / digests
# ----------------------------------------------------------------------
def render_json(result: dict) -> str:
    """Canonical JSON text: sorted keys, full float precision (the shortest
    round-trip repr), trailing newline — byte-identical for identical event
    streams."""
    return json.dumps(result, sort_keys=True, indent=1) + "\n"


def attribution_digest(result: dict) -> str:
    """sha256 over the canonical JSON — the cross-engine identity pin."""
    return hashlib.sha256(render_json(result).encode()).hexdigest()


def write_attribution(result: dict, path) -> Path:
    """Write the canonical JSON artifact; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_json(result))
    return p


def validate(result: dict, rel_tol: float = 1e-9) -> list[str]:
    """Check the sum-to-JCT identity for every job.  Returns error strings —
    empty means every ledger is exact within ``rel_tol``."""
    errs = []
    for unit_label, unit in result["units"].items():
        for jid, entry in unit["jobs"].items():
            err = sum_error(entry)
            if err > rel_tol:
                errs.append(
                    f"{unit_label} job {jid}: ledger sum off by "
                    f"{err:.3e} (jct={entry['jct']})"
                )
        idle = unit["idle"]
        for r, causes in idle["totals"].items():
            for c, v in causes.items():
                if v < 0:
                    errs.append(f"{unit_label}: negative idle {r}/{c} = {v}")
    return errs
