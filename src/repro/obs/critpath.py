"""Span-tree reconstruction and scheduling-aware critical paths.

Rebuilds per-job structure (job → task → monotask, with admission / queue /
grant / run phases) from a recorded :mod:`repro.obs.events` stream, then
walks each job's monotask DAG *backward* from the last-finishing monotask to
extract the **scheduling-aware critical path**: the chain of wait and work
segments that actually bounded the job's completion time.  Unlike a classic
compute-only critical path, wait edges are first-class — queue residency,
placement delay, admission gating and fault recovery all appear as labeled
segments.

The walk maintains a backward cursor that starts at the job's finish time
and only ever moves earlier, clamped to ``[submit, finish]``; every emitted
segment spans ``[new_cursor, cursor]``.  Segments therefore tile the JCT
window exactly by construction, which is what lets
:mod:`repro.obs.attribution` fold them into a ledger whose entries sum to
JCT (the telescoping sum is exact up to float associativity, well inside
the 1e-9 relative gate).

Granularity degrades gracefully with trace richness:

* **monotask level** — Ursa-scheduled units (queue/grant events present):
  run segments split into pure service time (``work_mb`` / nominal rate
  from the ``worker_spec`` event) vs. contention excess, queue residency
  per resource, placement delay, admission wait.
* **task level** — executor-model baselines share the JM/JP execution
  layer but never touch Worker queues, so their traces carry task
  lifecycles only; run time collapses into one ``execution`` category.
* **job level** — zero-task jobs and jobs killed by the fault layer get a
  single covering segment.

Segment labels are the ledger categories listed in
:data:`repro.obs.attribution.CATEGORIES`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from . import events as ev

__all__ = [
    "MtSpan", "TaskSpan", "JobSpan", "UnitTrace",
    "parse_events", "critical_path",
]


class MtSpan:
    """Lifecycle timestamps and DAG links of one monotask (last attempt)."""

    __slots__ = (
        "mt", "task", "rtype", "worker", "push_t", "pop_t", "start_t",
        "finish_t", "bypass", "work_mb", "input_mb", "parents",
    )

    def __init__(self, mt: int) -> None:
        self.mt = mt
        self.task: Optional[int] = None
        self.rtype: Optional[str] = None
        self.worker: Optional[int] = None
        self.push_t: Optional[float] = None
        self.pop_t: Optional[float] = None
        self.start_t: Optional[float] = None
        self.finish_t: Optional[float] = None
        self.bypass = False
        self.work_mb = 0.0
        self.input_mb = 0.0
        self.parents: list[int] = []


class TaskSpan:
    """Lifecycle timestamps of one task (last attempt)."""

    __slots__ = ("task", "stage", "ready_t", "placed_t", "finish_t", "worker", "mts")

    def __init__(self, task: int) -> None:
        self.task = task
        self.stage = -1
        self.ready_t: Optional[float] = None
        self.placed_t: Optional[float] = None
        self.finish_t: Optional[float] = None
        self.worker: Optional[int] = None
        self.mts: list[int] = []


class JobSpan:
    """One job's span tree: job-level phases plus task and monotask spans."""

    __slots__ = (
        "job", "name", "submit_t", "admit_t", "jm_start_t", "finish_t",
        "jct", "failed", "tasks", "mts", "retry_ts",
    )

    def __init__(self, job: int) -> None:
        self.job = job
        self.name: Optional[str] = None
        self.submit_t: Optional[float] = None
        self.admit_t: Optional[float] = None
        self.jm_start_t: Optional[float] = None
        self.finish_t: Optional[float] = None
        self.jct: Optional[float] = None
        self.failed = False
        self.tasks: dict[int, TaskSpan] = {}
        self.mts: dict[int, MtSpan] = {}
        self.retry_ts: list[float] = []

    def task_span(self, tid: int) -> TaskSpan:
        span = self.tasks.get(tid)
        if span is None:
            span = self.tasks[tid] = TaskSpan(tid)
        return span

    def mt_span(self, mid: int) -> MtSpan:
        span = self.mts.get(mid)
        if span is None:
            span = self.mts[mid] = MtSpan(mid)
        return span


class UnitTrace:
    """Everything one simulation unit's event stream says, indexed."""

    def __init__(self, unit: str) -> None:
        self.unit = unit
        self.jobs: dict[int, JobSpan] = {}
        #: worker -> {"limits": {rtype: slots}, "rates": {rtype: MB/s}}
        self.workers: dict[int, dict] = {}
        #: worker -> [(down_t, up_t_or_None), ...]
        self.down_windows: dict[int, list[list[Optional[float]]]] = {}
        self.end_t = 0.0
        #: the raw events of this unit, in recording order (idle-blame sweep)
        self.events: list[dict] = []

    def job_span(self, jid: int) -> JobSpan:
        span = self.jobs.get(jid)
        if span is None:
            span = self.jobs[jid] = JobSpan(jid)
        return span

    def nominal_rate(self, worker: Optional[int], rtype: Optional[str]) -> float:
        spec = self.workers.get(worker)
        if spec is None or rtype is None:
            return 0.0
        return spec["rates"].get(rtype, 0.0)

    def downtime_overlap(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Merged sub-intervals of [t0, t1] during which any worker was down."""
        spans = []
        for windows in self.down_windows.values():
            for down_t, up_t in windows:
                lo = max(t0, down_t)
                hi = min(t1, up_t if up_t is not None else self.end_t)
                if hi > lo:
                    spans.append((lo, hi))
        if not spans:
            return []
        spans.sort()
        merged = [list(spans[0])]
        for lo, hi in spans[1:]:
            if lo <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], hi)
            else:
                merged.append([lo, hi])
        return [(lo, hi) for lo, hi in merged]


def parse_events(events: Iterable[dict]) -> dict[str, UnitTrace]:
    """Index an event stream into per-unit span trees.

    Re-executed attempts (fault layer) overwrite earlier timestamps, so
    every span reflects the *final* attempt; the time the earlier attempts
    consumed surfaces as gaps that the critical-path walk attributes to
    ``fault_recovery``.
    """
    units: dict[str, UnitTrace] = {}
    for e in events:
        unit = units.get(e["unit"])
        if unit is None:
            unit = units[e["unit"]] = UnitTrace(e["unit"])
        t, kind = e["t"], e["kind"]
        unit.events.append(e)
        if t > unit.end_t:
            unit.end_t = t
        if kind == ev.WORKER_SPEC:
            unit.workers[e["worker"]] = {
                "limits": {"cpu": e["cores"], "network": e["net"], "disk": e["disks"]},
                "rates": {
                    "cpu": e["core_rate_mbps"],
                    "network": e["net_mbps"],
                    "disk": e["disk_mbps"],
                },
            }
        elif kind == ev.JOB_SUBMIT:
            job = unit.job_span(e["job"])
            job.submit_t = t
            job.name = e.get("name")
        elif kind == ev.JOB_ADMIT:
            unit.job_span(e["job"]).admit_t = t
        elif kind == ev.JM_START:
            unit.job_span(e["job"]).jm_start_t = t
        elif kind == ev.TASK_READY:
            span = unit.job_span(e["job"]).task_span(e["task"])
            span.ready_t = t
            span.stage = e["stage"]
            span.placed_t = None  # re-ready after a rewind awaits re-placement
        elif kind == ev.TASK_DEPS:
            job = unit.job_span(e["job"])
            task = job.task_span(e["task"])
            task.mts = [row[0] for row in e["mts"]]
            for mid, rtype, input_mb, work_mb, parents in e["mts"]:
                mt = job.mt_span(mid)
                mt.task = e["task"]
                mt.rtype = rtype
                mt.input_mb = input_mb
                mt.work_mb = work_mb
                mt.parents = list(parents)
        elif kind == ev.TASK_PLACED:
            span = unit.job_span(e["job"]).task_span(e["task"])
            span.placed_t = t
            span.worker = e["worker"]
        elif kind == ev.QUEUE_PUSH:
            mt = unit.job_span(e["job"]).mt_span(e["mt"])
            mt.push_t = t
            mt.worker = e["worker"]
        elif kind == ev.QUEUE_POP:
            unit.job_span(e["job"]).mt_span(e["mt"]).pop_t = t
        elif kind == ev.MT_START:
            mt = unit.job_span(e["job"]).mt_span(e["mt"])
            mt.start_t = t
            mt.worker = e["worker"]
            mt.bypass = e["bypass"]
            if mt.bypass:
                mt.push_t = None  # bypass lane: no queue residency
        elif kind == ev.MT_FINISH:
            mt = unit.job_span(e["job"]).mt_span(e["mt"])
            mt.finish_t = t
            mt.task = e["task"]
            mt.rtype = e["rtype"]
            if mt.worker is None:
                mt.worker = e["worker"]
        elif kind == ev.TASK_FINISH:
            unit.job_span(e["job"]).task_span(e["task"]).finish_t = t
        elif kind == ev.JOB_FINISH:
            job = unit.job_span(e["job"])
            job.finish_t = t
            job.jct = e["jct"]
            job.failed = bool(e.get("failed", False))
            if job.submit_t is None and job.jct is not None:
                # baselines bypass the admission controller; recover the
                # submit anchor from the reported JCT
                job.submit_t = t - job.jct
        elif kind == ev.WORKER_DOWN:
            unit.down_windows.setdefault(e["worker"], []).append([t, None])
        elif kind == ev.WORKER_UP:
            windows = unit.down_windows.get(e["worker"])
            if windows and windows[-1][1] is None:
                windows[-1][1] = t
        elif kind == ev.RETRY:
            unit.job_span(e["job"]).retry_ts.append(t)
    return units


# ----------------------------------------------------------------------
# the backward walk
# ----------------------------------------------------------------------
class _Walk:
    """Backward cursor over ``[submit, finish]`` emitting tiling segments."""

    def __init__(self, unit: UnitTrace, job: JobSpan) -> None:
        self.unit = unit
        self.job = job
        self.submit = job.submit_t if job.submit_t is not None else 0.0
        self.cursor = job.finish_t if job.finish_t is not None else self.submit
        self.segments: list[dict] = []  # built backward, reversed at the end

    def emit(self, t0: float, label: str, **meta) -> None:
        """Emit ``[t0, cursor]`` (clamped so segments tile without overlap)."""
        lo = min(t0, self.cursor)
        if lo < self.submit:
            lo = self.submit
        if lo >= self.cursor:
            return
        seg = {"t0": lo, "t1": self.cursor, "label": label}
        seg.update(meta)
        self.segments.append(seg)
        self.cursor = lo

    def emit_gap(self, t0: float, label: str, **meta) -> None:
        """Like :meth:`emit` but reclassifies fault time: the portion of the
        gap overlapping worker downtime — or any gap containing one of the
        job's retry charges — becomes ``fault_recovery``."""
        lo = min(t0, self.cursor)
        if lo < self.submit:
            lo = self.submit
        if lo >= self.cursor:
            return
        if any(lo <= rt <= self.cursor for rt in self.job.retry_ts):
            self.emit(lo, "fault_recovery", **meta)
            return
        down = self.unit.downtime_overlap(lo, self.cursor)
        for dlo, dhi in reversed(down):
            self.emit(dhi, label, **meta)
            self.emit(dlo, "fault_recovery", **meta)
        self.emit(lo, label, **meta)

    def finish(self) -> list[dict]:
        self.emit(self.submit, "other")
        self.segments.reverse()
        return self.segments


def _last_finisher(spans: Iterable, key: str = "finish_t"):
    """Latest-finishing span; ties break to the smallest id (deterministic)."""
    best = None
    for s in spans:
        t = getattr(s, key)
        if t is None:
            continue
        if best is None or t > getattr(best, key) or (
            t == getattr(best, key) and _span_id(s) < _span_id(best)
        ):
            best = s
    return best


def _span_id(span) -> int:
    return span.mt if isinstance(span, MtSpan) else span.task


def critical_path(unit: UnitTrace, job: JobSpan) -> list[dict]:
    """The job's scheduling-aware critical path as contiguous segments.

    Returns ``[{"t0", "t1", "label", ...}, ...]`` tiling
    ``[submit_t, finish_t]`` in time order; monotask-level segments carry
    ``mt``/``task``/``worker``, task-level ones carry ``task``.
    """
    if job.finish_t is None:
        return []
    walk = _Walk(unit, job)
    if job.failed:
        walk.emit(walk.submit, "failed")
        return walk.finish()
    mt_mode = any(m.start_t is not None and m.finish_t is not None
                  for m in job.mts.values())
    if mt_mode:
        _walk_monotasks(walk, unit, job)
    elif job.tasks:
        _walk_tasks(walk, job)
    else:
        _walk_job_only(walk, job)
    return walk.finish()


def _walk_job_only(walk: _Walk, job: JobSpan) -> None:
    if job.jm_start_t is not None:
        walk.emit(job.jm_start_t, "other")
        if job.admit_t is not None:
            walk.emit(job.admit_t, "jm_startup")
            walk.emit(job.submit_t, "admission_wait")
        else:
            walk.emit(job.submit_t, "jm_startup")


def _chain_to_submit(walk: _Walk, job: JobSpan, ready_t: Optional[float]) -> None:
    """Root task reached: close the chain through JM startup and admission."""
    if ready_t is not None:
        walk.emit(ready_t, "other")
    if job.jm_start_t is not None:
        walk.emit(job.jm_start_t, "other")
    if job.admit_t is not None:
        walk.emit(job.admit_t, "jm_startup")
        walk.emit(job.submit_t, "admission_wait")
    else:
        walk.emit(job.submit_t, "jm_startup")


def _enabling_task(job: JobSpan, ready_t: float,
                   exclude: int) -> Optional[TaskSpan]:
    """The parent task whose completion made this task ready.

    The JM marks children ready in the same simulation instant their last
    parent finishes, so the enabler is exactly a task with
    ``finish_t == ready_t`` (smallest id on ties, for determinism)."""
    best = None
    for span in job.tasks.values():
        if span.task == exclude or span.finish_t != ready_t:
            continue
        if best is None or span.task < best.task:
            best = span
    return best


def _walk_tasks(walk: _Walk, job: JobSpan) -> None:
    """Task-level walk (executor-model baselines: no queue/grant events)."""
    cur = _last_finisher(job.tasks.values())
    if cur is None:
        _walk_job_only(walk, job)
        return
    walk.emit(cur.finish_t, "other")
    seen: set[int] = set()
    while cur is not None and cur.task not in seen:
        seen.add(cur.task)
        ready = cur.ready_t if cur.ready_t is not None else cur.finish_t
        walk.emit_gap(ready, "execution", task=cur.task)
        prev = _enabling_task(job, ready, cur.task)
        if prev is None:
            _chain_to_submit(walk, job, ready)
            return
        walk.emit_gap(prev.finish_t, "other", task=cur.task)
        cur = prev


def _run_segments(walk: _Walk, unit: UnitTrace, mt: MtSpan) -> None:
    """Split the run interval into pure service time vs. contention excess.

    Pure time is ``work_mb`` over the worker's *nominal* per-slot rate (the
    ``worker_spec`` event); anything beyond that is queueing inside the
    machine-level service (shared fabric / spindle / core ledger) — i.e.
    contention, the paper's granted-rate-below-nominal slowdown."""
    dur = mt.finish_t - mt.start_t
    rate = unit.nominal_rate(mt.worker, mt.rtype)
    amount = mt.work_mb if mt.work_mb > 0 else mt.input_mb
    pure = amount / rate if rate > 0 else dur
    if pure > dur:
        pure = dur
    label = {"cpu": "compute", "network": "transfer", "disk": "disk_io"}.get(
        mt.rtype, "execution"
    )
    meta = {"mt": mt.mt, "task": mt.task, "worker": mt.worker, "rtype": mt.rtype}
    walk.emit(mt.start_t + pure, f"contention_{mt.rtype}", **meta)
    walk.emit(mt.start_t, label, **meta)


def _walk_monotasks(walk: _Walk, unit: UnitTrace, job: JobSpan) -> None:
    """Monotask-level walk (Ursa units: full queue/grant instrumentation)."""
    cur = _last_finisher(job.mts.values())
    walk.emit(cur.finish_t, "other")
    seen: set[int] = set()
    while cur is not None and cur.mt not in seen:
        seen.add(cur.mt)
        if cur.start_t is None or cur.finish_t is None:
            # lost to a fault and never re-run to completion on this id;
            # close out through the task chain below
            break
        _run_segments(walk, unit, cur)
        lower = cur.start_t
        if cur.push_t is not None:
            walk.emit(cur.push_t, f"queue_wait_{cur.rtype}",
                      mt=cur.mt, task=cur.task, worker=cur.worker)
            lower = cur.push_t
        task = job.tasks.get(cur.task) if cur.task is not None else None
        intra = [
            job.mts[p] for p in cur.parents
            if p in job.mts and task is not None and p in task.mts
        ]
        prev = _last_finisher(intra)
        if prev is not None:
            # intra-task child: the JM enqueues it the instant its last
            # parent finishes, so this gap is zero in fault-free runs
            walk.emit_gap(prev.finish_t, "sched_delay", mt=cur.mt, task=cur.task)
            cur = prev
            continue
        # task-source monotask: pushed by place_task; chain through the
        # task's ready/placed anchors to the enabling parent task
        if task is None or task.ready_t is None:
            walk.emit_gap(walk.submit, "sched_delay", mt=cur.mt)
            return
        placed = task.placed_t if task.placed_t is not None else task.ready_t
        walk.emit_gap(placed, "other", task=task.task)
        walk.emit_gap(task.ready_t, "sched_delay", task=task.task)
        enabler = _enabling_task(job, task.ready_t, task.task)
        if enabler is None:
            _chain_to_submit(walk, job, task.ready_t)
            return
        walk.emit_gap(enabler.finish_t, "other", task=task.task)
        cur = _last_finisher(
            [job.mts[m] for m in enabler.mts if m in job.mts]
        )
        if cur is None:
            walk.emit_gap(enabler.ready_t if enabler.ready_t is not None
                          else walk.submit, "execution", task=enabler.task)
            _chain_to_submit(walk, job, enabler.ready_t)
            return
