"""repro — a reproduction of Ursa (EuroSys '20).

"Improving Resource Utilization by Timely Fine-Grained Scheduling",
Jin, Cai, Li, Zheng, Jiang, Cheng — EuroSys 2020.

The package provides:

* ``repro.simcore`` / ``repro.cluster`` — a discrete-event cluster substrate
  (fluid CPU/network/disk, memory ledgers, allocation & usage traces);
* ``repro.dataflow`` / ``repro.execution`` — Ursa's execution layer:
  OpGraph primitives, monotask generation, job managers and job processes;
* ``repro.scheduler`` — Ursa's scheduling layer: resource estimation,
  Algorithm-1 task placement, EJF/SRJF ordering, per-worker monotask queues;
* ``repro.baselines`` — executor-model comparators (YARN+Spark, YARN+Tez,
  MonoSpark/Y+U, Tetris, Capacity, CPU over-subscription);
* ``repro.api`` — user-facing APIs (UrsaContext, Spark-like Dataset,
  Pregel-like vertex programs, a mini SQL engine with TPC-H-style tables);
* ``repro.workloads`` — generators for the paper's TPC-H / TPC-DS / Mixed /
  TPC-H2 / synthetic expectable workloads;
* ``repro.metrics`` / ``repro.experiments`` — SE/UE/JCT accounting and one
  module per table/figure in the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
