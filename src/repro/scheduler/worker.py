"""Worker agents: distributed queue management (§4.2.3).

Each worker owns one queue per resource type and performs the *actual*
resource allocation: when a resource slot frees up, the highest-priority
queued monotask starts immediately — no round-trip through the centralized
scheduler, which is what keeps allocation latency low (Obj-4).

Concurrency control follows the paper:

* CPU — as many concurrent monotasks as cores;
* disk — one monotask per disk (a single sequential stream already saturates
  the spindle);
* network — a small constant (1–4) per worker to avoid contention, with a
  bypass lane for latency-sensitive small transfers (< 16 KB by default).

The worker also monitors per-resource processing rates: ``rate_r = X/T``
over a window of completed type-r monotasks (times the core count for CPU),
which the scheduler uses to turn assigned work into
``APT_r(w)`` — the approximate processing time to drain worker ``w``'s
type-r backlog.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..cluster.cluster import Cluster
from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Monotask, MonotaskState, Task
from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from .ordering import SchedulingPolicy
from .queues import MonotaskQueue

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager

__all__ = ["WorkerConfig", "Worker"]

_RES = (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)


class WorkerConfig:
    """Tunables for worker-side queue management."""

    def __init__(
        self,
        network_concurrency: int = 2,
        small_network_mb: float = 16.0 / 1024.0,
        rate_window: int = 50,
    ):
        if not 1 <= network_concurrency <= 16:
            raise ValueError("network_concurrency out of range")
        self.network_concurrency = network_concurrency
        self.small_network_mb = small_network_mb
        self.rate_window = rate_window


class _RateMonitor:
    """Sliding-window X/T processing-rate estimate, seeded with the nominal
    hardware rate so cold workers still get sensible APTs.  Sums are kept
    incrementally so reading the rate is O(1) (it is on the placement
    algorithm's innermost path)."""

    def __init__(self, nominal_rate: float, window: int):
        self._samples: deque[tuple[float, float]] = deque()
        self._window = window
        # one nominal pseudo-sample anchors the estimate
        self._x = nominal_rate * 1.0
        self._t = 1.0
        self.rate = self._x / self._t

    def record(self, work_mb: float, duration_s: float) -> None:
        if duration_s <= 1e-9 or work_mb <= 0:
            return
        self._samples.append((work_mb, duration_s))
        self._x += work_mb
        self._t += duration_s
        if len(self._samples) > self._window:
            old_x, old_t = self._samples.popleft()
            self._x -= old_x
            self._t -= old_t
        self.rate = self._x / self._t


class Worker:
    """Queue management and resource allocation for one machine."""

    def __init__(
        self,
        cluster: Cluster,
        index: int,
        policy: SchedulingPolicy,
        config: WorkerConfig | None = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.index = index
        self.machine = cluster.machine(index)
        self.policy = policy
        self.config = config or WorkerConfig()
        #: cleared by the fault layer while the worker is crashed / blacked
        #: out; placement skips dead workers and nothing is enqueued on them
        self.alive = True

        self.queues: dict[ResourceType, MonotaskQueue] = {
            r: MonotaskQueue(r, owner=index, clock=self.sim) for r in _RES
        }
        self.running: dict[ResourceType, int] = {r: 0 for r in _RES}
        self.assigned_work: dict[ResourceType, float] = {r: 0.0 for r in _RES}
        spec = self.machine.spec
        self.rates: dict[ResourceType, _RateMonitor] = {
            ResourceType.CPU: _RateMonitor(spec.core_rate_mbps, self.config.rate_window),
            ResourceType.NETWORK: _RateMonitor(spec.net_mbps, self.config.rate_window),
            ResourceType.DISK: _RateMonitor(spec.disk_mbps, self.config.rate_window),
        }
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.worker_capacity(index, {
                "cpu": spec.cores,
                "network": self.config.network_concurrency,
                "disk": spec.disks,
            })
        rec = _obs.RECORDER
        if rec is not None:
            rec.worker_spec(
                self.sim.now, index, spec.cores, spec.disks,
                self.config.network_concurrency, spec.core_rate_mbps,
                spec.net_mbps, spec.disk_mbps,
            )

    # ------------------------------------------------------------------
    # capacity limits (paper §4.2.3 "Concurrency control")
    # ------------------------------------------------------------------
    def _limit(self, rtype: ResourceType) -> int:
        if rtype is ResourceType.CPU:
            return self.machine.spec.cores
        if rtype is ResourceType.NETWORK:
            return self.config.network_concurrency
        return self.machine.spec.disks

    # ------------------------------------------------------------------
    # load metrics consumed by Algorithm 1
    # ------------------------------------------------------------------
    def processing_rate(self, rtype: ResourceType) -> float:
        """MB/s the worker processes type-r work at (X/T; ×cores for CPU)."""
        rate = self.rates[rtype].rate
        if rtype is ResourceType.CPU:
            rate *= self.machine.spec.cores
        return rate

    def processing_rates(self) -> tuple[float, float, float]:
        """(cpu, network, disk) rates as one tuple for the placement loop."""
        return (
            self.rates[ResourceType.CPU].rate * self.machine.spec.cores,
            self.rates[ResourceType.NETWORK].rate,
            self.rates[ResourceType.DISK].rate,
        )

    def apt(self, rtype: ResourceType) -> float:
        """Approximate processing time to finish all assigned type-r work."""
        if rtype is ResourceType.CPU and self.running[rtype] < self._limit(rtype):
            # "if CPU in w is immediately available ... APT_cpu(w) = 0"
            return 0.0
        return self.assigned_work[rtype] / max(self.processing_rate(rtype), 1e-9)

    @property
    def available_memory_mb(self) -> float:
        return self.machine.memory.available

    @property
    def memory_capacity_mb(self) -> float:
        return self.machine.memory.capacity

    # ------------------------------------------------------------------
    # task assignment bookkeeping (from the centralized scheduler)
    # ------------------------------------------------------------------
    def add_assigned_task(self, task: Task) -> None:
        for mt in task.monotasks:
            self.assigned_work[mt.rtype] += mt.input_size_mb

    # ------------------------------------------------------------------
    # fault-layer hooks (no-ops in failure-free runs)
    # ------------------------------------------------------------------
    def is_bypass(self, mt: Monotask) -> bool:
        """Whether ``mt`` went through the small-network bypass lane (such
        grants never incremented ``running``, so aborts must not decrement)."""
        return (
            mt.rtype is ResourceType.NETWORK
            and mt.input_size_mb < self.config.small_network_mb
        )

    def remove_assigned_task(self, task: Task) -> None:
        """Undo :meth:`add_assigned_task` for a task being torn down: only
        the not-yet-completed monotasks still count toward the backlog
        (completed ones were subtracted by :meth:`_account_completion`)."""
        for mt in task.monotasks:
            if mt.state is not MonotaskState.DONE:
                self.assigned_work[mt.rtype] = max(
                    0.0, self.assigned_work[mt.rtype] - mt.input_size_mb
                )

    def release_running(self, rtype: ResourceType) -> None:
        """Free the slot held by an aborted (non-bypass) running monotask.
        The fault layer calls :meth:`backfill` once teardown is complete, so
        the slot is not immediately re-granted mid-rewind."""
        self.running[rtype] -= 1

    def backfill(self) -> None:
        """Start queued monotasks into any slots freed by aborts."""
        for rtype in _RES:
            self._maybe_start(rtype)

    def fault_crash(self) -> None:
        """Take the worker offline: drop every queued monotask (their tasks
        are rewound by the fault layer) and zero the load metrics feeding
        ``APT_r(w)``."""
        self.alive = False
        for q in self.queues.values():
            q.evict(lambda entry: True)
        self.running = {r: 0 for r in _RES}
        self.assigned_work = {r: 0.0 for r in _RES}

    def fault_rejoin(self) -> None:
        """Bring a blacked-out worker back with empty queues and freshly
        seeded rate monitors, so ``APT_r(w)`` restarts from the nominal
        hardware rates rather than stale pre-crash samples."""
        self.alive = True
        spec = self.machine.spec
        self.rates = {
            ResourceType.CPU: _RateMonitor(spec.core_rate_mbps, self.config.rate_window),
            ResourceType.NETWORK: _RateMonitor(spec.net_mbps, self.config.rate_window),
            ResourceType.DISK: _RateMonitor(spec.disk_mbps, self.config.rate_window),
        }

    # ------------------------------------------------------------------
    # queue operations (called via the JM backend)
    # ------------------------------------------------------------------
    def enqueue(self, jm: "JobManager", mt: Monotask) -> None:
        mt.state = MonotaskState.QUEUED
        if (
            mt.rtype is ResourceType.NETWORK
            and mt.input_size_mb < self.config.small_network_mb
        ):
            # latency-sensitive small transfers bypass the queue (§4.2.3)
            self._grant(jm, mt, self._small_network_done, bypass=True)
            return
        self.queues[mt.rtype].push(self.policy, self.sim.now, jm, mt)
        self._maybe_start(mt.rtype)

    def resort_queues(self) -> None:
        for q in self.queues.values():
            q.resort(self.policy, self.sim.now)

    def _maybe_start(self, rtype: ResourceType) -> None:
        queue = self.queues[rtype]
        limit = self._limit(rtype)
        while self.running[rtype] < limit:
            entry = queue.pop()
            if entry is None:
                return
            self.running[rtype] += 1
            self._grant(entry.jm, entry.mt, self._monotask_done, bypass=False)

    def _grant(self, jm: "JobManager", mt: Monotask, on_done, *, bypass: bool) -> None:
        """The single seam through which every monotask start flows — queue
        pops and the small-network bypass lane alike — so resource-grant
        instrumentation lives in exactly one place for both the optimized
        and ``legacy_tick`` reference schedulers."""
        rec = _obs.RECORDER
        if rec is not None:
            rec.mt_start(
                self.sim.now, self.index, mt.rtype.value, jm.job.job_id,
                mt.mt_id, self.running[mt.rtype], bypass,
            )
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.grant(
                self.sim.now, self.index, mt.rtype.value, jm.job.job_id,
                mt.mt_id, bypass,
            )
        jm.run_monotask(mt, on_done)

    # ------------------------------------------------------------------
    # completion callbacks
    # ------------------------------------------------------------------
    def _monotask_done(self, mt: Monotask) -> None:
        rtype = mt.rtype
        self.running[rtype] -= 1
        self._account_completion(mt)
        self._maybe_start(rtype)

    def _small_network_done(self, mt: Monotask) -> None:
        self._account_completion(mt)

    def _account_completion(self, mt: Monotask) -> None:
        """The matching release seam: every completion — queued or bypass —
        is accounted (and traced) here."""
        rec = _obs.RECORDER
        if rec is not None:
            rec.res_release(
                self.sim.now, self.index, mt.rtype.value, mt.mt_id,
                self.running[mt.rtype],
            )
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.release(self.sim.now, self.index, mt.rtype.value)
        self.assigned_work[mt.rtype] = max(
            0.0, self.assigned_work[mt.rtype] - mt.input_size_mb
        )
        if mt.started_at is not None and mt.finished_at is not None:
            self.rates[mt.rtype].record(mt.input_size_mb, mt.finished_at - mt.started_at)

    # ------------------------------------------------------------------
    @property
    def queued_monotasks(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Worker({self.index}, queued={self.queued_monotasks})"
