"""Job-ordering policies: EJF and SRJF (§4.2.2 "Job ordering").

Both policies influence Ursa in three places:

1. **Job admission** — the admission queue is ordered by the policy.
2. **Task placement** — a per-job bonus is added to every stage score so
   higher-priority jobs' stages are placed first (the paper adds ``W·T`` for
   EJF, with an analogous enforcement for SRJF).
3. **Monotask ordering** — worker queues order monotasks of different jobs
   by the policy's rank (§4.2.3).

SRJF ranks jobs by the remaining per-resource work vector ``R`` against the
cluster load vector ``L``: the priority score is the inverse of
``Σ_r (2L_r − R_r) · R_r / L_r`` — "when a resource is heavily demanded,
more weight is given to it to pick the job with the smallest remaining
work".  Smaller dot-product ⇒ higher priority.
"""

from __future__ import annotations

from typing import Iterable

from ..dataflow.graph import ResourceType
from ..execution.job import Job

__all__ = ["SchedulingPolicy", "EarliestJobFirst", "SmallestRemainingJobFirst"]

_RES = (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)
_EPS = 1e-9


class SchedulingPolicy:
    """Interface: rank jobs (lower = more urgent) and weight stage scores."""

    name = "base"
    #: True when a job's rank can change between two refreshes (e.g. SRJF,
    #: whose rank tracks remaining work).  Statically-ranked policies let
    #: the scheduler skip the per-tick worker-queue resort entirely.
    dynamic_rank = False

    def __init__(self, weight: float = 0.05):
        # W in the paper: "a weight that indicates how much EJF should be
        # enforced" (and analogously for SRJF).
        self.weight = weight

    def refresh(self, jobs: Iterable[Job], now: float) -> None:
        """Recompute any global state (e.g. SRJF's cluster load L)."""

    def job_rank(self, job: Job, now: float) -> float:
        """Total order over jobs; lower rank = scheduled first."""
        raise NotImplementedError

    def placement_bonus(self, job: Job, now: float) -> float:
        """Additive bonus for this job's stages in Algorithm 1."""
        raise NotImplementedError


class EarliestJobFirst(SchedulingPolicy):
    """EJF: prioritize by submission time; bonus grows as W·T (elapsed)."""

    name = "ejf"

    def job_rank(self, job: Job, now: float) -> float:
        # job_id breaks ties among same-instant submissions so "earliest"
        # stays well-defined (submission order)
        return job.submit_time + 1e-6 * job.job_id

    def placement_bonus(self, job: Job, now: float) -> float:
        return self.weight * max(0.0, now - job.submit_time) - 1e-9 * job.job_id


class SmallestRemainingJobFirst(SchedulingPolicy):
    """SRJF over the per-resource remaining-work vector R (§4.2.2)."""

    name = "srjf"
    dynamic_rank = True

    def __init__(self, weight: float = 0.05, bonus_cap: float = 200.0,
                 memoize: bool = True):
        super().__init__(weight)
        self.bonus_cap = bonus_cap
        self.memoize = memoize
        self._load: dict[ResourceType, float] = {r: 0.0 for r in _RES}
        self._total_load = 0.0
        # job_id -> (job.work_version, dot); valid within one refresh
        self._dot_cache: dict[int, tuple[int, float]] = {}

    def refresh(self, jobs: Iterable[Job], now: float) -> None:
        load = {r: 0.0 for r in _RES}
        for job in jobs:
            for r in _RES:
                load[r] += job.remaining_work.get(r, 0.0)
        self._load = load
        self._total_load = sum(load.values())
        self._dot_cache.clear()

    def _dot(self, job: Job) -> float:
        """Σ_r (2L_r − R_r) · R_r / L_r — small when the job is nearly done.

        ``job_rank`` and ``placement_bonus`` both call this, for every queue
        entry on every resort and for every stage score of a placement
        round, so the value is memoized per refresh.  The cache entry is
        keyed by ``job.work_version`` (bumped whenever remaining work is
        decremented), so a hit is exactly the value a recompute would give.
        """
        if self.memoize:
            cached = self._dot_cache.get(job.job_id)
            if cached is not None and cached[0] == job.work_version:
                return cached[1]
        total = 0.0
        for r in _RES:
            big_l = self._load[r]
            rem = min(job.remaining_work.get(r, 0.0), big_l)
            if big_l <= _EPS:
                continue
            total += (2.0 * big_l - rem) * rem / big_l
        if self.memoize:
            self._dot_cache[job.job_id] = (job.work_version, total)
        return total

    def job_rank(self, job: Job, now: float) -> float:
        return self._dot(job)

    def placement_bonus(self, job: Job, now: float) -> float:
        """W × (ΣL / dot): dimensionless urgency that diverges as a job's
        remaining work approaches zero (finish nearly-done jobs), capped to
        keep stage scores comparable."""
        dot = self._dot(job)
        if self._total_load <= _EPS:
            return 0.0
        urgency = self._total_load / max(dot, _EPS)
        return self.weight * min(urgency, self.bonus_cap)
