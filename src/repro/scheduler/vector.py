"""Vectorized Algorithm-1 placement engine (the F(t, w) fast path).

The scalar :class:`~repro.scheduler.placement.UrsaPlacement` scores every
ready task against every candidate worker with an inlined python loop —
``tasks_scored × workers`` full ``F(t, w)`` evaluations per scheduling
round.  This module replaces that inner product with a struct-of-arrays
engine built around two observations:

1. **Stages are homogeneous.**  Tasks in one stage overwhelmingly share a
   single ``(usage, est_mem)`` profile (equal-size partitions), and
   ``F(t, w)`` depends on the task only through that profile.  Scoring once
   per *profile* and reusing the row for every task in the group removes
   the dominant ``×tasks`` factor; after a commit only the chosen worker's
   entry can change (headroom shrinks nowhere else), so each placement
   refreshes exactly one entry per cached row instead of rescoring the
   stage.
2. **Worker state is columnar.**  Per-worker headroom ``D_r(w)``, free
   memory, ``1/(rate_r·EPT)`` and liveness live in parallel columns
   (python lists mirrored by lazily-materialized numpy arrays).  A profile
   row is then one broadcasted pass — feasibility mask → per-resource
   ``D_r · min(Inc_r, D_r)`` terms → F vector — when the cluster is wide
   enough for numpy to win (``broadcast_min_workers``), and a tight python
   loop over the same columns below that.

**Bit-identity.**  Every arithmetic step follows the scalar engine's
operation order exactly — same term order (cpu, net, disk, mem), same
``max(0, ·)`` clamps, same ``+ 1e-9`` memory-fit slack — and numpy's
elementwise float64 ops are IEEE-754 identical to CPython's float ops, so
the vector engine reproduces the scalar engine's scores *bitwise*, not
just approximately.  Ties resolve through first-occurrence ``max`` /
``.index`` scans, matching the scalar first-strict-maximum loop.  The
``tests/scheduler`` randomized property suite pins scalar ≡ vector ≡
brute-force-reference down to the float, across resource mixes, blocking,
capping, dead workers and locality; ``tests/perf`` pins end-to-end metric
digests.

**Fallbacks.**  Locality-constrained tasks (a single candidate worker) are
scored through the scalar single-pair path; the profiler counts them
(``vector_fallbacks``) alongside vectorized stages, profile rows and array
rebuilds so a workload that defeats the dedup shows up in ``--profile``
output.

Commits update the columns (and any materialized numpy mirror) *in place*
— grants and tentative releases within a round are incremental writes to
four cells, never a rebuild; the columns themselves are re-derived once
per round from the workers' O(1)-maintained rate monitors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .placement import UrsaPlacement

__all__ = [
    "PLACEMENT_MODES",
    "VectorUrsaPlacement",
    "get_default_mode",
    "resolve_mode",
    "set_default_mode",
]

_NEG_INF = float("-inf")

#: recognized values for ``UrsaConfig.placement_mode`` / ``--placement``
PLACEMENT_MODES = ("scalar", "vector")

#: process-wide default engine for systems that don't pin a mode; the CLI
#: ``--placement`` flag (and the parallel runner's pool initializer) set it
_DEFAULT_MODE = "scalar"


def set_default_mode(mode: str) -> None:
    """Set the process-wide default placement engine ("scalar"/"vector")."""
    global _DEFAULT_MODE
    _DEFAULT_MODE = resolve_mode(mode)


def get_default_mode() -> str:
    return _DEFAULT_MODE


def resolve_mode(mode: Optional[str]) -> str:
    """Validate a mode string; ``None`` means the process-wide default."""
    if mode is None:
        return _DEFAULT_MODE
    if mode not in PLACEMENT_MODES:
        raise ValueError(
            f"unknown placement mode {mode!r}; known: {PLACEMENT_MODES}"
        )
    return mode


class _VectorState:
    """Struct-of-arrays worker headroom state for one placement round.

    Columns (python lists indexed by worker) mirror what a list of
    ``_WorkerView`` objects holds, derived with the identical float
    expressions; ``_cols`` lazily materializes numpy copies for the
    broadcast path and is patched — not rebuilt — on every commit/restore.
    """

    __slots__ = (
        "n", "alive", "d0", "d1", "d2", "mem_avail", "mem_cap",
        "inv0", "inv1", "inv2", "_cols", "prof",
    )

    def __init__(self, workers, ept: float, prof=None):
        from .placement import _FLUID

        r_cpu, r_net, r_disk = _FLUID
        self.n = len(workers)
        self.prof = prof
        self.alive = alive = []
        self.d0 = d0 = []
        self.d1 = d1 = []
        self.d2 = d2 = []
        self.mem_avail = mem_avail = []
        self.mem_cap = mem_cap = []
        self.inv0 = inv0 = []
        self.inv1 = inv1 = []
        self.inv2 = inv2 = []
        for w in workers:
            # the paper's D_r(w) = max(0, (EPT − APT_r(w)) / EPT), computed
            # with the same expressions as _WorkerView.__init__
            d0.append(max(0.0, (ept - w.apt(r_cpu)) / ept))
            d1.append(max(0.0, (ept - w.apt(r_net)) / ept))
            d2.append(max(0.0, (ept - w.apt(r_disk)) / ept))
            rates = w.processing_rates()
            inv0.append(1.0 / (max(rates[0], 1e-9) * ept))
            inv1.append(1.0 / (max(rates[1], 1e-9) * ept))
            inv2.append(1.0 / (max(rates[2], 1e-9) * ept))
            mem_avail.append(w.available_memory_mb)
            mem_cap.append(w.memory_capacity_mb)
            alive.append(w.alive)
        self._cols = None

    # ------------------------------------------------------------------
    def _columns(self):
        """Materialize (or return) the numpy mirrors of the columns."""
        cols = self._cols
        if cols is None:
            cols = self._cols = (
                np.array(self.alive, dtype=bool),
                np.array(self.d0), np.array(self.d1), np.array(self.d2),
                np.array(self.mem_avail), np.array(self.mem_cap),
                np.array(self.inv0), np.array(self.inv1), np.array(self.inv2),
            )
            if self.prof is not None:
                self.prof.vector_rebuilds += 1
        return cols

    # ------------------------------------------------------------------
    def score_row(self, usage, mem: float, broadcast_min: int) -> list:
        """F(t, w) for one task profile against every worker.

        Returns a dense python list (fast C-level ``max``/``.index`` for
        the greedy loop); infeasible workers hold ``-inf``.  Dispatches to
        the numpy broadcast above ``broadcast_min`` workers and to a scalar
        column loop below it — both bit-identical to ``UrsaPlacement``'s
        inlined scoring.
        """
        if self.n >= broadcast_min:
            return self._row_broadcast(usage, mem)
        return self._row_python(usage, mem)

    def _row_broadcast(self, usage, mem: float) -> list:
        u_cpu, u_net, u_disk = usage
        alive, d0, d1, d2, avail, cap, inv0, inv1, inv2 = self._columns()
        # feasibility mask: liveness, memory fit, and the blocking rule
        # (some needed resource with zero headroom) per used resource
        feasible = alive & ((avail + 1e-9) >= mem)
        f = None
        # term order (cpu, net, disk, mem) and the min-cap match the scalar
        # engine op-for-op, so the summed floats are bitwise equal
        if u_cpu > 0.0:
            feasible &= d0 > 0.0
            inc = u_cpu * inv0
            np.minimum(inc, d0, out=inc)
            f = d0 * inc
        if u_net > 0.0:
            feasible &= d1 > 0.0
            inc = u_net * inv1
            np.minimum(inc, d1, out=inc)
            term = d1 * inc
            f = term if f is None else f + term
        if u_disk > 0.0:
            feasible &= d2 > 0.0
            inc = u_disk * inv2
            np.minimum(inc, d2, out=inc)
            term = d2 * inc
            f = term if f is None else f + term
        if mem > 0.0:
            d_mem = avail / cap
            feasible &= d_mem > 0.0
            term = d_mem * np.minimum(mem / cap, d_mem)
            f = term if f is None else f + term
        if f is None:
            f = np.zeros(self.n)
        return np.where(feasible, f, _NEG_INF).tolist()

    def _row_python(self, usage, mem: float) -> list:
        """Scalar twin of :meth:`_row_broadcast` over the same columns (the
        numpy call overhead loses on narrow clusters)."""
        u_cpu, u_net, u_disk = usage
        alive = self.alive
        d0, d1, d2 = self.d0, self.d1, self.d2
        mem_avail, mem_cap = self.mem_avail, self.mem_cap
        inv0, inv1, inv2 = self.inv0, self.inv1, self.inv2
        out = []
        append = out.append
        for i in range(self.n):
            if not alive[i]:
                append(_NEG_INF)
                continue
            avail = mem_avail[i]
            if mem > avail + 1e-9:
                append(_NEG_INF)
                continue
            f = 0.0
            if u_cpu > 0.0:
                dr = d0[i]
                if dr <= 0.0:
                    append(_NEG_INF)
                    continue
                inc = u_cpu * inv0[i]
                if inc > dr:
                    inc = dr
                f += dr * inc
            if u_net > 0.0:
                dr = d1[i]
                if dr <= 0.0:
                    append(_NEG_INF)
                    continue
                inc = u_net * inv1[i]
                if inc > dr:
                    inc = dr
                f += dr * inc
            if u_disk > 0.0:
                dr = d2[i]
                if dr <= 0.0:
                    append(_NEG_INF)
                    continue
                inc = u_disk * inv2[i]
                if inc > dr:
                    inc = dr
                f += dr * inc
            if mem > 0.0:
                cap = mem_cap[i]
                d_mem = avail / cap
                if d_mem <= 0.0:
                    append(_NEG_INF)
                    continue
                inc_mem = mem / cap
                f += d_mem * (inc_mem if inc_mem <= d_mem else d_mem)
            append(f)
        return out

    def score_one(self, i: int, usage, mem: float) -> float:
        """F(t, w) for one (profile, worker) pair; ``-inf`` if infeasible.

        Used to refresh a committed worker's entry in cached rows and to
        score locality-constrained tasks — same op order as the rows.
        """
        if not self.alive[i]:
            return _NEG_INF
        avail = self.mem_avail[i]
        if mem > avail + 1e-9:
            return _NEG_INF
        u_cpu, u_net, u_disk = usage
        f = 0.0
        if u_cpu > 0.0:
            dr = self.d0[i]
            if dr <= 0.0:
                return _NEG_INF
            inc = u_cpu * self.inv0[i]
            if inc > dr:
                inc = dr
            f += dr * inc
        if u_net > 0.0:
            dr = self.d1[i]
            if dr <= 0.0:
                return _NEG_INF
            inc = u_net * self.inv1[i]
            if inc > dr:
                inc = dr
            f += dr * inc
        if u_disk > 0.0:
            dr = self.d2[i]
            if dr <= 0.0:
                return _NEG_INF
            inc = u_disk * self.inv2[i]
            if inc > dr:
                inc = dr
            f += dr * inc
        if mem > 0.0:
            cap = self.mem_cap[i]
            d_mem = avail / cap
            if d_mem <= 0.0:
                return _NEG_INF
            inc_mem = mem / cap
            f += d_mem * (inc_mem if inc_mem <= d_mem else d_mem)
        return f

    # ------------------------------------------------------------------
    def commit(self, i: int, usage, mem: float, touched=None) -> None:
        """Shrink worker ``i``'s headroom for one granted task (same ops in
        the same order as the scalar ``_commit``); patches the numpy mirror
        in place when it exists."""
        if touched is not None and i not in touched:
            # dirty-set undo: snapshot a worker once, on first touch
            touched[i] = (self.d0[i], self.d1[i], self.d2[i], self.mem_avail[i])
        u_cpu, u_net, u_disk = usage
        if u_cpu > 0.0:
            nd = self.d0[i] - u_cpu * self.inv0[i]
            self.d0[i] = nd if nd > 0.0 else 0.0
        if u_net > 0.0:
            nd = self.d1[i] - u_net * self.inv1[i]
            self.d1[i] = nd if nd > 0.0 else 0.0
        if u_disk > 0.0:
            nd = self.d2[i] - u_disk * self.inv2[i]
            self.d2[i] = nd if nd > 0.0 else 0.0
        self.mem_avail[i] -= mem
        cols = self._cols
        if cols is not None:
            cols[1][i] = self.d0[i]
            cols[2][i] = self.d1[i]
            cols[3][i] = self.d2[i]
            cols[4][i] = self.mem_avail[i]

    def restore(self, i: int, snap: tuple) -> None:
        """Undo every commit against worker ``i`` (tentative scoring)."""
        self.d0[i], self.d1[i], self.d2[i], self.mem_avail[i] = snap
        cols = self._cols
        if cols is not None:
            cols[1][i], cols[2][i], cols[3][i], cols[4][i] = snap


class VectorUrsaPlacement(UrsaPlacement):
    """Algorithm 1 on the vectorized engine.

    Drop-in replacement for :class:`UrsaPlacement` (same lazy-heap stage
    selection, generation reuse and dirty-set undo — those drivers are
    inherited); only the scoring core is swapped for the profile-dedup /
    broadcast engine.  Selected via ``UrsaConfig(placement_mode="vector")``
    or the ``--placement vector`` CLI flag.
    """

    def __init__(
        self,
        ept: float = 0.3,
        stage_bonus: float = 1e6,
        stage_aware: bool = True,
        ignore_network: bool = False,
        broadcast_min_workers: int = 32,
    ):
        super().__init__(ept, stage_bonus, stage_aware, ignore_network)
        if broadcast_min_workers < 2:
            raise ValueError("broadcast_min_workers must be >= 2")
        self.broadcast_min_workers = broadcast_min_workers
        # per-round profile-row cache for the non-stage-aware task heap
        self._round_rows: dict = {}

    # ------------------------------------------------------------------
    def place(self, ready, workers, now, job_policy):
        self._round_rows = {}
        return super().place(ready, workers, now, job_policy)

    def _build_state(self, workers) -> _VectorState:
        return _VectorState(workers, self.ept, self._prof)

    def _commit_assign(self, state: _VectorState, widx, usage, mem) -> None:
        state.commit(widx, usage, mem)
        rows = self._round_rows
        if rows:
            score_one = state.score_one
            for key, entry in rows.items():
                # headroom only shrinks: a worker infeasible for a profile
                # can never become feasible again within the round, and a
                # refresh only lowers the entry — the cached (best, argmax)
                # stays valid unless the refreshed worker *was* the argmax
                row = entry[0]
                if row[widx] != _NEG_INF:
                    row[widx] = score_one(widx, key[0], key[1])
                    if entry[2] == widx:
                        entry[1] = None  # best is stale; recompute on read

    # ------------------------------------------------------------------
    def _stage_score_tentative(self, scored, state) -> tuple[float, list]:
        touched = self._touched  # worker index -> (d0, d1, d2, mem) snapshot
        result = self._stage_score(scored, state, touched)
        for i, snap in touched.items():
            state.restore(i, snap)
        touched.clear()
        return result

    def _stage_score(self, scored, state: _VectorState, touched=None):
        """StageScore via profile rows: one F row per distinct (usage, mem)
        profile, a cached (best, argmax) per row, and a single-entry
        refresh per commit.  Scores only shrink within a round, so a
        refresh invalidates the cached best only when it hits the argmax
        itself (entry[1] = None → recomputed on next read).  Decision- and
        float-identical to the scalar engine: rows are unchanged between
        commits, so the cached first-occurrence argmax equals what a
        per-task ``max``/``.index`` rescan would find."""
        prof = self._prof
        broadcast_min = self.broadcast_min_workers
        plan: list = []
        plan_append = plan.append
        score = 0.0
        stage_bonus = self.stage_bonus
        rows: dict = {}  # (usage, mem) -> [row, best_f, argmax]
        rows_computed = 0
        fallbacks = 0
        scanned = 0
        score_one = state.score_one
        commit = state.commit
        last_key = None
        entry = None
        for task, usage, mem in scored:
            loc = task.locality
            if loc is None:
                key = (usage, mem)
                # stages list same-profile tasks consecutively, so one
                # equality check usually replaces the dict lookup
                if key != last_key:
                    entry = rows.get(key)
                    if entry is None:
                        row = state.score_row(usage, mem, broadcast_min)
                        best = max(row)
                        entry = [
                            row, best,
                            row.index(best) if best != _NEG_INF else -1,
                        ]
                        rows[key] = entry
                        rows_computed += 1
                        scanned += state.n
                    last_key = key
                best_f = entry[1]
                if best_f is None:  # stale after an argmax refresh
                    row = entry[0]
                    best_f = max(row)
                    entry[1] = best_f
                    entry[2] = row.index(best_f) if best_f != _NEG_INF else -1
                if best_f == _NEG_INF:
                    stage_bonus = 0.0
                    continue
                widx = entry[2]
            else:
                # scalar fallback: a locality pin leaves one candidate
                fallbacks += 1
                scanned += 1
                best_f = score_one(loc, usage, mem)
                if best_f == _NEG_INF:
                    stage_bonus = 0.0
                    continue
                widx = loc
            plan_append((task, usage, mem, widx, best_f))
            commit(widx, usage, mem, touched)
            for k2, e2 in rows.items():
                row2 = e2[0]
                if row2[widx] != _NEG_INF:
                    row2[widx] = score_one(widx, k2[0], k2[1])
                    scanned += 1
                    if e2[2] == widx:
                        e2[1] = None  # best is stale; recompute on read
            score += best_f
        if prof is not None:
            prof.stages_scored += 1
            prof.tasks_scored += len(scored)
            prof.workers_scanned += scanned
            prof.vector_stages += 1
            prof.vector_rows += rows_computed
            prof.vector_fallbacks += fallbacks
        if not plan:
            return (0.0, [])
        return (score / len(plan) + stage_bonus, plan)

    # ------------------------------------------------------------------
    def _best_worker(self, task, state: _VectorState):
        """Fig-7 task-mode scoring through the round-level row cache (rows
        stay valid across the lazy heap's re-evaluations; permanent commits
        refresh single entries via :meth:`_commit_assign`)."""
        prof = self._prof
        usage = self._usage(task)
        mem = task.est_mem_mb
        if task.locality is not None:
            if prof is not None:
                prof.tasks_scored += 1
                prof.workers_scanned += 1
                prof.vector_fallbacks += 1
            f = state.score_one(task.locality, usage, mem)
            if f == _NEG_INF:
                return None, 0.0
            return task.locality, f
        rows = self._round_rows
        key = (usage, mem)
        entry = rows.get(key)
        if entry is None:
            row = state.score_row(usage, mem, self.broadcast_min_workers)
            best = max(row)
            entry = [row, best, row.index(best) if best != _NEG_INF else -1]
            rows[key] = entry
            if prof is not None:
                prof.vector_rows += 1
                prof.workers_scanned += state.n
        if prof is not None:
            prof.tasks_scored += 1
        best_f = entry[1]
        if best_f is None:  # stale after an argmax refresh in _commit_assign
            row = entry[0]
            best_f = max(row)
            entry[1] = best_f
            entry[2] = row.index(best_f) if best_f != _NEG_INF else -1
        if best_f == _NEG_INF:
            return None, 0.0
        return entry[2], best_f
