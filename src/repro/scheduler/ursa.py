"""UrsaSystem — the integrated scheduling + execution framework (Figure 2).

Wires together:

* the **centralized scheduler**: memory-gated admission, batched Algorithm-1
  task placement at a configurable scheduling interval, job-ordering policy
  (EJF / SRJF);
* the **workers**: distributed per-resource monotask queues with ordering
  and concurrency control, processing-rate monitoring;
* the **execution layer**: a JM per job (created round-robin with a small
  launch delay) and JPs executing monotasks on the simulated machines.

Usage::

    cluster = Cluster(ClusterSpec.paper_cluster())
    ursa = UrsaSystem(cluster, UrsaConfig(policy="srjf"))
    for graph, mem, t in my_jobs:
        ursa.submit(graph, requested_memory_mb=mem, at=t)
    ursa.run()
    print(ursa.makespan(), ursa.mean_jct())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING, Optional

from ..cluster.cluster import Cluster
from ..dataflow.graph import OpGraph
from ..dataflow.monotask import Monotask, Task
from ..execution.job import Job, JobState
from ..execution.jobmanager import JobManager
from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from ..perf import profile as _profile
from .admission import AdmissionController
from .ordering import EarliestJobFirst, SchedulingPolicy, SmallestRemainingJobFirst
from . import vector as _vector
from .placement import Assignment, PlacementPolicy, ReadyStage, UrsaPlacement
from .worker import Worker, WorkerConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan, RetryPolicy

__all__ = ["UrsaConfig", "UrsaSystem"]


@dataclass
class UrsaConfig:
    """Tunables of the scheduling layer."""

    policy: str = "ejf"                  # "ejf" or "srjf"
    policy_weight: float = 0.05          # W (how strongly to enforce ordering)
    scheduling_interval: float = 0.25    # batch placement period (s)
    ept_factor: float = 1.2              # EPT = interval * factor (§4.2.2)
    jm_creation_delay: float = 0.05      # launching the JM process
    stage_aware: bool = True             # Fig. 7 ablation switch
    ignore_network: bool = False         # §5.2 ablation switch
    job_ordering: bool = True            # Table 6: enforce policy at admission/placement
    monotask_ordering: bool = True       # Table 6: enforce policy in worker queues
    starvation_timeout: float = 120.0
    worker: WorkerConfig = field(default_factory=WorkerConfig)
    placement: Optional[PlacementPolicy] = None  # default: Algorithm 1
    # Algorithm-1 engine selection: "scalar" (the inlined python loops) or
    # "vector" (repro.scheduler.vector's profile-dedup / numpy-broadcast
    # engine — bit-identical scores, measured faster).  None defers to the
    # process-wide default set by the --placement CLI flag.
    placement_mode: Optional[str] = None
    # Pre-PR3 reference tick: snapshot-all placement, resort every round,
    # no SRJF memoization.  Used by the determinism suite and bench_sim as
    # the bit-identical (but slower) baseline.
    legacy_tick: bool = False
    # Fault injection (repro.faults).  None or an empty plan schedules
    # nothing and leaves every code path — floats, event counts, trace
    # bytes — identical to a failure-free build (pinned by tests/faults).
    faults: Optional["FaultPlan"] = None
    # Retry budget for fault-induced re-execution; None = RetryPolicy().
    retry: Optional["RetryPolicy"] = None

    def build_policy(self) -> SchedulingPolicy:
        if self.policy == "ejf":
            return EarliestJobFirst(self.policy_weight)
        if self.policy == "srjf":
            return SmallestRemainingJobFirst(
                self.policy_weight, memoize=not self.legacy_tick
            )
        raise ValueError(f"unknown policy {self.policy!r}")


class _FifoPolicy(EarliestJobFirst):
    """Used when job/monotask ordering is disabled (Table 6 ablations):
    ranks by submission only and adds no placement bonus."""

    name = "fifo"

    def placement_bonus(self, job: Job, now: float) -> float:
        return 0.0


class UrsaSystem:
    """The centralized scheduler plus its worker agents."""

    def __init__(self, cluster: Cluster, config: UrsaConfig | None = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config or UrsaConfig()

        self.policy = self.config.build_policy()
        # Table 6 ablations: JO controls admission+placement ordering, MO
        # controls worker-queue ordering.
        self._admission_policy = self.policy if self.config.job_ordering else _FifoPolicy(0.0)
        self._queue_policy = self.policy if self.config.monotask_ordering else _FifoPolicy(0.0)

        if self.config.placement is not None:
            self.placement = self.config.placement
        else:
            placement_cls = UrsaPlacement
            if self.config.legacy_tick:
                from .reference import ReferenceUrsaPlacement

                placement_cls = ReferenceUrsaPlacement
            elif _vector.resolve_mode(self.config.placement_mode) == "vector":
                placement_cls = _vector.VectorUrsaPlacement
            self.placement = placement_cls(
                ept=self.config.scheduling_interval * self.config.ept_factor,
                stage_aware=self.config.stage_aware,
                ignore_network=self.config.ignore_network,
            )
        # Worker queues only need a per-tick resort when ranks can drift
        # between refreshes (SRJF); EJF/FIFO keys are static per job, so a
        # resort would recompute identical keys and heapify an already-valid
        # heap — a guaranteed no-op we elide (legacy mode keeps it).
        self._resort_each_tick = (
            self._queue_policy.dynamic_rank or self.config.legacy_tick
        )
        self.workers = [
            Worker(cluster, i, self._queue_policy, self.config.worker)
            for i in range(cluster.num_machines)
        ]
        self.admission = AdmissionController(
            cluster.total_memory_mb, self._admission_policy, self.config.starvation_timeout
        )

        self.jobs: list[Job] = []
        self.jms: dict[int, JobManager] = {}
        self.active_jobs: set[int] = set()
        self.completed_jobs: list[Job] = []
        self.failed_jobs: list[Job] = []
        self._next_job_id = 0
        self._rr_jm = 0
        self._tick_scheduled = False

        # Fault layer: only wired when a non-empty plan is configured, so
        # failure-free runs carry no controller, no scheduled fault events,
        # and no per-task-completion hook (the JM's on_task_complete lookup
        # finds nothing on the class).
        self.fault_controller = None
        if self.config.faults:
            from ..faults.injector import FaultController

            self.fault_controller = FaultController(
                self, self.config.faults, self.config.retry
            )
            self.on_task_complete = self.fault_controller.task_completed

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: OpGraph,
        requested_memory_mb: float,
        at: Optional[float] = None,
        category: str = "generic",
    ) -> Job:
        """Submit a job now (or at a future simulation time)."""
        job = Job(
            self._next_job_id,
            graph,
            submit_time=at if at is not None else self.sim.now,
            requested_memory_mb=requested_memory_mb,
            category=category,
        )
        self._next_job_id += 1
        self.jobs.append(job)
        if at is None or at <= self.sim.now:
            self._arrive(job)
        else:
            self.sim.at(at, self._arrive, job)
        return job

    def _arrive(self, job: Job) -> None:
        self.admission.submit(job, self.sim.now)
        self._try_admit()
        self._ensure_tick()

    def _try_admit(self) -> None:
        for job in self.admission.admit_ready(self.sim.now):
            # JM launched on a round-robin worker (§4.1.3); model its startup
            worker = self._rr_jm % self.cluster.num_machines
            self._rr_jm += 1
            del worker  # placement of the JM process itself is not simulated
            self.sim.schedule(self.config.jm_creation_delay, self._start_jm, job)

    def _start_jm(self, job: Job) -> None:
        jm = JobManager(self.sim, self.cluster, job, self)
        self.jms[job.job_id] = jm
        self.active_jobs.add(job.job_id)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.job_started(self.sim.now, len(self.active_jobs))
        jm.start()

    # ------------------------------------------------------------------
    # SchedulerBackend protocol (called by JMs)
    # ------------------------------------------------------------------
    def on_tasks_ready(self, jm: JobManager, tasks: list[Task]) -> None:
        # tasks wait (at most one interval) for the next placement batch
        self._ensure_tick()

    def enqueue_monotask(self, jm: JobManager, mt: Monotask) -> None:
        assert mt.task is not None and mt.task.worker is not None
        self.workers[mt.task.worker].enqueue(jm, mt)

    def on_job_complete(self, jm: JobManager) -> None:
        job = jm.job
        self.active_jobs.discard(job.job_id)
        self.completed_jobs.append(job)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.job_completed(self.sim.now, job.jct or 0.0, len(self.active_jobs))
        self.admission.release(job)
        self._try_admit()

    def on_job_failed(self, jm: JobManager) -> None:
        """Fault layer: a job exhausted its retry budget.  Its admission
        reservation is returned to the pool, which may unblock waiting
        jobs — graceful degradation rather than a wedged cluster."""
        job = jm.job
        self.active_jobs.discard(job.job_id)
        self.failed_jobs.append(job)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.job_failed(self.sim.now, len(self.active_jobs))
        self.admission.release(job)
        self._try_admit()

    # ------------------------------------------------------------------
    # the scheduling loop
    # ------------------------------------------------------------------
    def _ensure_tick(self) -> None:
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.schedule(self.config.scheduling_interval, self._tick)

    def _tick(self) -> None:
        """One batched scheduling round (Algorithm 1, §4.2.2).

        Every ``scheduling_interval`` seconds the scheduler (1) refreshes
        job ranks for the ordering policy, (2) optionally resorts worker
        queues so SRJF keys track drained work, and (3) hands the ready
        stages to the placement policy, which scores each candidate worker
        ``w`` for each task ``t`` by the estimated extra completion time

            F(t, w) = Σ_r D_r(w) · Inc_r(t, w)

        where ``D_r(w)`` is worker ``w``'s backlog-drain time for resource
        ``r`` (derived from APT_r(w), the amount of pending type-r work over
        the measured processing rate) and ``Inc_r(t, w)`` is the increment
        task ``t`` would add.  A task is only placed where its queueing
        delay stays within EPT = scheduling_interval × ept_factor; see
        :mod:`repro.scheduler.placement` for the per-term computation."""
        self._tick_scheduled = False
        now = self.sim.now
        prof = _profile.PROFILER
        if prof is None:
            self._refresh_policies(now)
            if self._resort_each_tick:
                for w in self.workers:
                    w.resort_queues()
            assignments = self.placement.place(
                self._ready_stages(), self.workers, now, self._admission_policy
            )
            self._dispatch(assignments)
        else:
            # instrumented twin of the fast path above: same steps, with a
            # perf_counter_ns fence between the tick phases
            t0 = perf_counter_ns()
            self._refresh_policies(now)
            t1 = perf_counter_ns()
            if self._resort_each_tick:
                for w in self.workers:
                    w.resort_queues()
                prof.resort_ticks += 1
            t2 = perf_counter_ns()
            ready = self._ready_stages()
            t3 = perf_counter_ns()
            assignments = self.placement.place(
                ready, self.workers, now, self._admission_policy
            )
            t4 = perf_counter_ns()
            self._dispatch(assignments)
            t5 = perf_counter_ns()
            prof.record_tick(
                t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4, len(assignments)
            )
        rec = _obs.RECORDER
        if rec is not None:
            rec.sched_tick(now, len(assignments))
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.sched_tick(now, len(assignments))
        if self.active_jobs or self.admission.queue_length:
            self._ensure_tick()

    def _refresh_policies(self, now: float) -> None:
        """Recompute job ranks (EJF: submit order; SRJF: remaining work)
        that both the placement bonus ``W`` weighting and the worker-queue
        keys read during this round."""
        active = [self.jms[j].job for j in self.active_jobs]
        self.policy.refresh(active, now)
        if self._queue_policy is not self.policy:
            self._queue_policy.refresh(active, now)

    def _dispatch(self, assignments: list[Assignment]) -> None:
        rec = _obs.RECORDER
        for a in assignments:
            if rec is not None:
                # decision first, effects (queue pushes etc.) after it
                rec.task_placed(
                    self.sim.now, a.jm.job.job_id, a.task.task_id, a.worker,
                    a.score, len(a.task.monotasks),
                )
            self.workers[a.worker].add_assigned_task(a.task)
            a.jm.place_task(a.task, a.worker)

    def _ready_stages(self) -> list[ReadyStage]:
        """Collect Algorithm 1's candidate set: every READY task of every
        active job, grouped by stage (stage-aware scoring shares one
        ``Inc_r`` profile per stage).  Iteration is sorted job id then sorted
        stage id — determinism requires never exposing set order here."""
        ready: list[ReadyStage] = []
        for job_id in sorted(self.active_jobs):
            jm = self.jms[job_id]
            by_stage: dict[int, list[Task]] = {}
            for task in jm.ready_tasks:
                assert task.stage is not None
                by_stage.setdefault(task.stage.stage_id, []).append(task)
            for sid, tasks in sorted(by_stage.items()):
                ready.append(ReadyStage(jm, tasks[0].stage, tasks))
        return ready

    # ------------------------------------------------------------------
    # driving and reporting
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation until all submitted jobs finish (or ``until``)."""
        if until is not None:
            return self.sim.run(until=until, max_events=max_events)
        return self.sim.drain() if max_events is None else self.sim.run(max_events=max_events)

    @property
    def all_done(self) -> bool:
        return all(j.state is JobState.DONE for j in self.jobs)

    @property
    def all_terminal(self) -> bool:
        """Every job reached DONE or (under fault injection) FAILED."""
        return all(j.terminal for j in self.jobs)

    def makespan(self) -> float:
        if not self.jobs:
            return 0.0
        start = min(j.submit_time for j in self.jobs)
        end = max(j.finish_time or self.sim.now for j in self.jobs)
        return end - start

    def mean_jct(self) -> float:
        jcts = [j.jct for j in self.jobs if j.jct is not None]
        return sum(jcts) / len(jcts) if jcts else 0.0
