"""Ursa's scheduling layer: admission, placement, ordering, worker queues."""

from .admission import AdmissionController
from .ordering import EarliestJobFirst, SchedulingPolicy, SmallestRemainingJobFirst
from .placement import Assignment, PlacementPolicy, ReadyStage, UrsaPlacement
from .queues import MonotaskQueue, QueueEntry
from .reference import ReferenceUrsaPlacement
from .ursa import UrsaConfig, UrsaSystem
from .vector import VectorUrsaPlacement
from .worker import Worker, WorkerConfig

__all__ = [
    "AdmissionController",
    "EarliestJobFirst",
    "SchedulingPolicy",
    "SmallestRemainingJobFirst",
    "Assignment",
    "PlacementPolicy",
    "ReadyStage",
    "UrsaPlacement",
    "ReferenceUrsaPlacement",
    "VectorUrsaPlacement",
    "MonotaskQueue",
    "QueueEntry",
    "UrsaConfig",
    "UrsaSystem",
    "Worker",
    "WorkerConfig",
]
