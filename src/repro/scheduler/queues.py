"""Per-worker monotask queues with policy-aware ordering (§4.2.3).

"Instead of FIFO, monotasks in each queue are ordered based on the
scheduling policy and task dependency.  Among jobs, monotasks are ordered
according to their job priorities (EJF or SRJF).  Within a job, CPU
monotasks in the same stage are ordered in descending order of their input
sizes so that larger tasks can start earlier ..., while network and disk
monotasks in the same stage are ordered in ascending order of their input
sizes to make their dependent monotasks ready earlier."

Entries carry a sort key computed at enqueue time; :meth:`resort` recomputes
keys (the scheduler calls it at batch boundaries so SRJF ranks stay fresh as
remaining work drains).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Monotask
from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from .ordering import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager

__all__ = ["QueueEntry", "MonotaskQueue"]


class QueueEntry:
    __slots__ = ("key", "seq", "jm", "mt")

    def __init__(self, key: tuple, seq: int, jm: "JobManager", mt: Monotask):
        self.key = key
        self.seq = seq
        self.jm = jm
        self.mt = mt

    def __lt__(self, other: "QueueEntry") -> bool:
        return (self.key, self.seq) < (other.key, other.seq)


class MonotaskQueue:
    """An ordered queue of monotasks of one resource type at one worker.

    ``owner`` (the owning worker's index) and ``clock`` (an object with a
    ``now`` attribute, normally the simulation) are only needed for
    lifecycle tracing — queues built without them never emit events, which
    keeps standalone/unit-test construction unchanged.
    """

    def __init__(self, rtype: ResourceType, owner: Optional[int] = None, clock=None):
        self.rtype = rtype
        self._owner = owner
        self._clock = clock
        self._heap: list[QueueEntry] = []
        self._seq = 0
        # running total of queued input sizes, maintained on push/pop so
        # queued_work_mb is O(1) (it feeds the APT/backlog estimates that the
        # placement loop reads per candidate worker)
        self._work_mb = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _key(self, policy: SchedulingPolicy, now: float, jm: "JobManager", mt: Monotask) -> tuple:
        # larger CPU monotasks first (start long work early); smaller
        # network/disk monotasks first (unblock dependents early)
        if self.rtype is ResourceType.CPU:
            intra = -mt.input_size_mb
        else:
            intra = mt.input_size_mb
        return (policy.job_rank(jm.job, now), intra)

    def push(self, policy: SchedulingPolicy, now: float, jm: "JobManager", mt: Monotask) -> None:
        entry = QueueEntry(self._key(policy, now, jm, mt), self._seq, jm, mt)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._work_mb += mt.input_size_mb
        rec = _obs.RECORDER
        if rec is not None and self._owner is not None:
            rec.queue_push(
                now, self._owner, self.rtype.value, jm.job.job_id, mt.mt_id,
                len(self._heap),
            )
        tel = _tel.TELEMETRY
        if tel is not None and self._owner is not None:
            tel.queue_push(
                now, self._owner, self.rtype.value, jm.job.job_id, mt.mt_id,
                len(self._heap), self._work_mb,
            )

    def pop(self) -> Optional[QueueEntry]:
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        if self._heap:
            self._work_mb -= entry.mt.input_size_mb
        else:
            # pin the running total back to exactly zero when the queue
            # drains, so float cancellation error cannot accumulate across
            # fill/drain cycles
            self._work_mb = 0.0
        rec = _obs.RECORDER
        if rec is not None and self._owner is not None and self._clock is not None:
            rec.queue_pop(
                self._clock.now, self._owner, self.rtype.value,
                entry.jm.job.job_id, entry.mt.mt_id, len(self._heap),
            )
        tel = _tel.TELEMETRY
        if tel is not None and self._owner is not None and self._clock is not None:
            tel.queue_pop(
                self._clock.now, self._owner, self.rtype.value,
                len(self._heap), self._work_mb,
            )
        return entry

    def peek(self) -> Optional[QueueEntry]:
        return self._heap[0] if self._heap else None

    def resort(self, policy: SchedulingPolicy, now: float) -> None:
        """Recompute keys (SRJF ranks drift as remaining work drains)."""
        for entry in self._heap:
            entry.key = self._key(policy, now, entry.jm, entry.mt)
        heapq.heapify(self._heap)

    def evict(self, pred: Callable[[QueueEntry], bool]) -> list[QueueEntry]:
        """Remove every entry matching ``pred`` (fault layer: dead-worker
        drain, or per-task eviction when a lineage restart pulls a task's
        queued monotasks back).  Returns the evicted entries in policy order
        so callers emit deterministic, heap-layout-independent traces; the
        survivors keep their keys and are re-heapified in place."""
        if not self._heap:
            return []
        evicted = [e for e in self._heap if pred(e)]
        if not evicted:
            return []
        self._heap = [e for e in self._heap if not pred(e)]
        heapq.heapify(self._heap)
        if self._heap:
            for entry in evicted:
                self._work_mb -= entry.mt.input_size_mb
        else:
            # same drain-to-zero pinning as pop()
            self._work_mb = 0.0
        evicted.sort()
        tel = _tel.TELEMETRY
        if tel is not None and self._owner is not None and self._clock is not None:
            tel.queue_evict(
                self._clock.now, self._owner, self.rtype.value,
                len(self._heap), self._work_mb,
                [(e.jm.job.job_id, e.mt.mt_id) for e in evicted],
            )
        return evicted

    def queued_work_mb(self) -> float:
        """Total queued input size in MB (O(1); maintained incrementally)."""
        return self._work_mb

    def __iter__(self) -> Iterator[QueueEntry]:
        """Yield entries in policy order (the order :meth:`pop` would drain
        them), not raw heap-array order — a heap's backing list only
        guarantees its *first* element is the minimum."""
        return iter(sorted(self._heap))

    def __repr__(self) -> str:
        """Show the queue in policy order (same contract as ``__iter__``):
        the raw heap array would misleadingly suggest a drain order."""
        owner = f"@w{self._owner}" if self._owner is not None else ""
        mts = ", ".join(
            f"mt{e.mt.mt_id}(j{e.jm.job.job_id})" for e in sorted(self._heap)
        )
        return (
            f"MonotaskQueue({self.rtype.value}{owner}, "
            f"{len(self._heap)} queued: [{mts}])"
        )

    __str__ = __repr__
