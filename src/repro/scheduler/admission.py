"""Memory-gated job admission (§4.2.2 "Job admission").

"The scheduler admits the job if the cluster has sufficient memory, or
otherwise puts the job in a queue.  This is to prevent memory deadlock ...
memory is not actually allocated from workers at job admission, but reserved
cluster-wise."

The admission queue is ordered by the scheduling policy (earliest-first for
EJF, smallest-remaining-first for SRJF).  Smaller jobs may bypass a job that
does not fit, but to prevent the starvation of large-memory jobs (handled
"similarly as in existing schedulers"), bypassing is disabled once the head
job has waited longer than ``starvation_timeout``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..execution.job import Job
from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from .ordering import SchedulingPolicy

__all__ = ["AdmissionController"]


class AdmissionController:
    def __init__(
        self,
        total_memory_mb: float,
        policy: SchedulingPolicy,
        starvation_timeout: float = 120.0,
    ):
        if total_memory_mb <= 0:
            raise ValueError("total memory must be positive")
        self.total_memory_mb = total_memory_mb
        self.policy = policy
        self.starvation_timeout = starvation_timeout
        self.reserved_mb = 0.0
        self.waiting: list[Job] = []
        self._wait_since: dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def available_mb(self) -> float:
        return self.total_memory_mb - self.reserved_mb

    def submit(self, job: Job, now: float) -> None:
        if job.requested_memory_mb > self.total_memory_mb:
            raise ValueError(
                f"job {job.job_id} requests {job.requested_memory_mb:.0f} MB; "
                f"the cluster only has {self.total_memory_mb:.0f} MB"
            )
        self.waiting.append(job)
        self._wait_since[job.job_id] = now
        rec = _obs.RECORDER
        if rec is not None:
            rec.job_submit(
                now, job.job_id, job.category, job.requested_memory_mb,
                len(self.waiting),
            )
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.job_submitted(now, len(self.waiting))

    def release(self, job: Job) -> None:
        self.reserved_mb = max(0.0, self.reserved_mb - job.requested_memory_mb)

    def resize(self, new_total_mb: float, fail_oversized: bool = False) -> list[Job]:
        """Fault-layer hook: the admittable memory pool shrinks when a worker
        dies and grows back when it rejoins.  ``reserved_mb`` may temporarily
        exceed the new total — already-admitted jobs keep their reservations
        and the gap closes as they finish.

        With ``fail_oversized`` (permanent crashes only — blacked-out
        capacity returns), waiting jobs whose request can *never* fit the
        shrunken cluster are removed and returned so the caller can fail
        them; under a blackout they simply keep waiting for the rejoin.
        """
        if new_total_mb <= 0:
            raise ValueError("resize would leave no admittable memory")
        self.total_memory_mb = new_total_mb
        if not fail_oversized:
            return []
        doomed = [j for j in self.waiting if j.requested_memory_mb > new_total_mb]
        if doomed:
            self.waiting = [
                j for j in self.waiting if j.requested_memory_mb <= new_total_mb
            ]
            for job in doomed:
                self._wait_since.pop(job.job_id, None)
        return doomed

    def admit_ready(self, now: float) -> list[Job]:
        """Admit as many waiting jobs as memory allows, in policy order."""
        admitted: list[Job] = []
        rec = _obs.RECORDER
        tel = _tel.TELEMETRY
        self.waiting.sort(key=lambda j: (self.policy.job_rank(j, now), j.job_id))
        head_blocked = False
        remaining: list[Job] = []
        for job in self.waiting:
            if head_blocked and self._head_starving(now):
                remaining.append(job)
                continue
            if job.requested_memory_mb <= self.available_mb + 1e-9:
                self.reserved_mb += job.requested_memory_mb
                admitted.append(job)
                since = self._wait_since.pop(job.job_id, now)
                if rec is not None:
                    rec.job_admit(
                        now, job.job_id, now - since, job.requested_memory_mb
                    )
                if tel is not None:
                    tel.job_admitted(now, now - since)
            else:
                if not head_blocked:
                    self._blocked_head = job
                head_blocked = True
                remaining.append(job)
        self.waiting = remaining
        if tel is not None and admitted:
            tel.admission_queue(now, len(self.waiting))
        return admitted

    def _head_starving(self, now: float) -> bool:
        head = getattr(self, "_blocked_head", None)
        if head is None:
            return False
        waited = now - self._wait_since.get(head.job_id, now)
        return waited > self.starvation_timeout

    @property
    def queue_length(self) -> int:
        return len(self.waiting)
