"""Task placement — Algorithm 1 (§4.2.2) and its ablation variants.

Key quantities, named as in the paper:

* ``APT_r(w)`` — approximate time for worker ``w`` to drain its assigned
  type-r work (computed by the worker agents from measured processing
  rates).
* ``EPT`` — expected processing time per scheduling round; slightly larger
  than the scheduling interval to absorb communication delay.
* ``D_r(w) = max(0, (EPT − APT_r(w)) / EPT)`` — normalized headroom;
  ``D_mem(w)`` is the free-memory fraction.
* ``Inc_r(t, w)`` — the load increase on ``w`` if task ``t`` lands there:
  estimated type-r usage ÷ w's type-r processing rate ÷ EPT (memory: the
  estimated memory footprint ÷ capacity).
* ``F(t, w) = Σ_r D_r(w) · Inc_r(t, w)`` with two guard rules: never place
  where some ``D_r = 0`` while ``Inc_r > 0`` (execution would block on r),
  and cap ``Inc_r`` at ``D_r`` (availability bounds the contribution).

Whole stages are scored and placed together — a large ``stage_bonus`` makes
fully-placeable stages win over partial plans, which avoids manufacturing
stragglers that would block dependent stages (§5.2 ablates this).

Implementation notes (the placement loop runs at every scheduling interval
and dominated scheduler wall time):

* Stage selection uses lazy re-evaluation on a max-heap.  Within one
  placement round every commit can only *shrink* worker headroom, so stage
  scores are monotonically non-increasing; popping the stale maximum and
  re-scoring it fresh selects exactly the stage Algorithm 1's quadratic
  loop would, at a fraction of the cost.
* Tentative stage scoring undoes its commits with a *dirty set*: only the
  views a tentative plan actually touched are snapshotted (on first touch)
  and restored, instead of snapshot/restoring every worker per candidate
  stage.
* A heap entry whose generation still matches the commit counter was scored
  against the current view state, so its stored plan is committed without a
  redundant rescore (every round's first selection hits this).
* Per-task ``(cpu, net, disk)`` usage tuples are resolved once per task
  (``Task.sched_usage``): the estimates they derive from are frozen when
  the task becomes ready, and the same task is re-scored many times across
  rounds while it waits for headroom.
* The scoring loop is inlined into :meth:`UrsaPlacement._stage_score` /
  :meth:`UrsaPlacement._best_worker` and prunes candidates with the
  cheapest checks first (memory fit, then the zero-headroom blocking rule
  per needed resource), so infeasible workers cost a comparison or two
  instead of a full ``F(t, w)`` evaluation.

All of this is float-for-float identical to the straightforward
implementation kept in :mod:`repro.scheduler.reference` — the
``tests/perf`` determinism suite pins that equivalence end-to-end.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional, Sequence

from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Stage, Task
from ..perf import profile as _profile
from .ordering import SchedulingPolicy
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager

__all__ = ["Assignment", "PlacementPolicy", "ReadyStage", "UrsaPlacement"]

_FLUID = (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)
_CPU, _NET, _DISK = 0, 1, 2
_NEG_INF = float("-inf")


class Assignment:
    """One placement decision: task → worker.

    ``score`` carries the winning pure ``F(t, w)`` (no policy bonus) for
    lifecycle tracing; policies that don't score (e.g. Capacity) leave the
    default."""

    __slots__ = ("jm", "task", "worker", "score")

    def __init__(self, jm: "JobManager", task: Task, worker: int, score: float = 0.0):
        self.jm = jm
        self.task = task
        self.worker = worker
        self.score = score


class ReadyStage:
    """A stage with currently-ready tasks, as seen by the placement round."""

    __slots__ = ("jm", "stage", "tasks")

    def __init__(self, jm: "JobManager", stage: Stage, tasks: list[Task]):
        self.jm = jm
        self.stage = stage
        self.tasks = tasks


class PlacementPolicy:
    """Interface implemented by Algorithm 1, Tetris, and Capacity."""

    def place(
        self,
        ready: list[ReadyStage],
        workers: Sequence[Worker],
        now: float,
        job_policy: SchedulingPolicy,
    ) -> list[Assignment]:
        raise NotImplementedError


class _WorkerView:
    """Tentative per-round view of one worker's headroom (tuple-indexed)."""

    __slots__ = (
        "worker", "index", "d", "mem_available", "inv_rate_ept", "mem_capacity",
        "alive",
    )

    def __init__(self, worker: Worker, index: int, ept: float):
        self.worker = worker
        self.index = index
        #: the paper's D_r(w) = max(0, (EPT − APT_r(w)) / EPT) per fluid
        #: resource, where APT_r(w) comes from the worker's rate monitors
        self.d = [
            max(0.0, (ept - worker.apt(r)) / ept) for r in _FLUID
        ]
        self.mem_available = worker.available_memory_mb
        self.mem_capacity = worker.memory_capacity_mb
        rates = worker.processing_rates()
        #: 1 / (rate_r(w) · EPT): multiplying by estimated usage (MB) gives
        #: Inc_r(t, w) without a division on the scoring hot path
        self.inv_rate_ept = tuple(1.0 / (max(r, 1e-9) * ept) for r in rates)
        #: dead workers (fault layer) are skipped by every candidate scan;
        #: the flag lives on the view so the hot loops stay attribute-local
        self.alive = worker.alive

    @property
    def d_mem(self) -> float:
        """D_mem(w): the free-memory fraction (§4.2.2)."""
        return self.mem_available / self.mem_capacity

    def snapshot(self) -> tuple:
        return (self.d[0], self.d[1], self.d[2], self.mem_available)

    def restore(self, snap: tuple) -> None:
        self.d[0], self.d[1], self.d[2], self.mem_available = snap


def _task_usage(task: Task, ignore_network: bool) -> tuple[float, float, float]:
    return (
        task.est_cpu_mb,
        0.0 if ignore_network else task.est_net_mb,
        task.est_disk_mb,
    )


class UrsaPlacement(PlacementPolicy):
    """Algorithm 1 with stage-awareness and job-ordering bonuses."""

    def __init__(
        self,
        ept: float = 0.3,
        stage_bonus: float = 1e6,
        stage_aware: bool = True,
        ignore_network: bool = False,
    ):
        if ept <= 0:
            raise ValueError("EPT must be positive")
        self.ept = ept
        self.stage_bonus = stage_bonus
        self.stage_aware = stage_aware
        self.ignore_network = ignore_network
        # per-round scratch state (valid only inside one place() call)
        self._touched: dict[_WorkerView, tuple] = {}
        self._prof = None

    # ------------------------------------------------------------------
    def place(self, ready, workers, now, job_policy) -> list[Assignment]:
        self._prof = _profile.PROFILER
        views = self._build_state(workers)
        try:
            if self.stage_aware:
                return self._place_by_stage(ready, views, now, job_policy)
            return self._place_by_task(ready, views, now, job_policy)
        finally:
            self._prof = None

    def _build_state(self, workers):
        """Per-round worker headroom state.  The scalar engine uses a list of
        :class:`_WorkerView`; :class:`~repro.scheduler.vector.\
        VectorUrsaPlacement` overrides this with a struct-of-arrays state."""
        return [_WorkerView(w, i, self.ept) for i, w in enumerate(workers)]

    def _commit_assign(self, state, widx: int, usage, mem: float) -> None:
        """Permanently commit one plan entry against the round state (the
        engine-specific twin of :meth:`_commit`)."""
        self._commit(state[widx], usage, mem)

    def _usage(self, task: Task) -> tuple[float, float, float]:
        # est_* are frozen when the task becomes ready (before it is ever
        # scored), so the tuple is resolved once per task, not per round
        u = task.sched_usage
        if u is None:
            u = (
                task.est_cpu_mb,
                0.0 if self.ignore_network else task.est_net_mb,
                task.est_disk_mb,
            )
            task.sched_usage = u
        return u

    # ------------------------------------------------------------------
    def _place_by_stage(self, ready, views, now, job_policy) -> list[Assignment]:
        assignments: list[Assignment] = []
        pending = [rs for rs in ready if rs.tasks]
        prof = self._prof
        # Lazy-greedy max-heap of (-score, tiebreak, stage, scored, plan,
        # gen).  `gen` counts permanent commits: an entry whose gen still
        # matches was scored against the *current* view state, so its stored
        # score and plan are exactly what a fresh rescore would produce and
        # can be committed without re-scoring.
        gen = 0
        heap: list = []
        for seq, rs in enumerate(pending):
            # per-stage (task, usage, mem) tuples, resolved once per round:
            # the same stage is re-scored many times as the heap re-evaluates
            scored = [(t, self._usage(t), t.est_mem_mb) for t in rs.tasks]
            score, plan = self._stage_score_tentative(scored, views)
            if not plan:
                continue
            score += job_policy.placement_bonus(rs.jm.job, now)
            heapq.heappush(heap, (-score, seq, rs, scored, plan, gen))
        seq = len(pending)
        while heap:
            neg_stale, _sq, rs, scored, plan, g = heapq.heappop(heap)
            if not rs.tasks:
                continue
            if g != gen:
                score, plan = self._stage_score_tentative(scored, views)
                if not plan:
                    continue  # headroom only shrinks within a round: drop
                score += job_policy.placement_bonus(rs.jm.job, now)
                if heap and -heap[0][0] > score + 1e-12:
                    # stale top: push back with the fresh score and retry
                    seq += 1
                    heapq.heappush(heap, (-score, seq, rs, scored, plan, gen))
                    if prof is not None:
                        prof.heap_repushes += 1
                    continue
            # else: no commit since this entry was scored — the stored plan
            # is fresh, and the heap property guarantees every remaining
            # stale score (an upper bound on its fresh score) is <= ours
            placed_ids = set()
            for task, usage, mem, widx, f in plan:
                self._commit_assign(views, widx, usage, mem)
                assignments.append(Assignment(rs.jm, task, widx, f))
                placed_ids.add(task.task_id)
            gen += 1
            rs.tasks = [t for t in rs.tasks if t.task_id not in placed_ids]
            if rs.tasks:
                # the leftover was unplaceable with shrunken headroom; it
                # stays ready for the next scheduling interval
                continue
        return assignments

    def _place_by_task(self, ready, views, now, job_policy) -> list[Assignment]:
        """Fig-7 ablation: greedily place single highest-score tasks.

        The reference loop re-scores the whole pool for every placement
        (O(P²·W)); scores only shrink as headroom is committed, so the same
        lazy max-heap trick applies.  Ties are resolved exactly as the
        reference's first-strict-maximum scan does — by original pool
        position — so entries keep their enumeration index on re-push and
        the acceptance test compares full (score, seq) keys.
        """
        assignments: list[Assignment] = []
        prof = self._prof
        heap: list = []
        pool = [(rs.jm, t) for rs in ready for t in rs.tasks]
        for seq, (jm, task) in enumerate(pool):
            widx, f = self._best_worker(task, views)
            if widx is None:
                continue
            score = f + job_policy.placement_bonus(jm.job, now)
            heap.append((-score, seq, jm, task))
        heapq.heapify(heap)
        while heap:
            neg_stale, seq, jm, task = heapq.heappop(heap)
            widx, f = self._best_worker(task, views)
            if widx is None:
                continue  # headroom only shrinks: never feasible again
            score = f + job_policy.placement_bonus(jm.job, now)
            if heap and (heap[0][0], heap[0][1]) < (-score, seq):
                # a stale competitor might still beat us (or win the
                # pool-order tie): re-evaluate it first
                heapq.heappush(heap, (-score, seq, jm, task))
                if prof is not None:
                    prof.heap_repushes += 1
                continue
            self._commit_assign(views, widx, self._usage(task), task.est_mem_mb)
            assignments.append(Assignment(jm, task, widx, f))
        return assignments

    # ------------------------------------------------------------------
    # Algorithm 1's StageScore (tentative commits undone via the dirty set)
    # ------------------------------------------------------------------
    def _stage_score_tentative(self, scored, views) -> tuple[float, list]:
        touched = self._touched
        result = self._stage_score(scored, views, touched)
        for view, snap in touched.items():
            view.d[0], view.d[1], view.d[2], view.mem_available = snap
        touched.clear()
        return result

    def _stage_score(self, scored, views, touched=None) -> tuple[float, list]:
        """Score one stage; returns (score, plan of (task, usage, mem, widx, f)).

        The best-worker search is inlined (this plus _best_worker is the
        innermost scheduler loop); term order matches the reference
        implementation exactly, so all floats are bit-identical.
        """
        prof = self._prof
        scanned = 0
        plan: list = []
        score = 0.0
        stage_bonus = self.stage_bonus
        for task, usage, mem in scored:
            u_cpu, u_net, u_disk = usage
            if task.locality is None:
                candidates = views
            else:
                candidates = (views[task.locality],)
            scanned += len(candidates)
            best_view: Optional[_WorkerView] = None
            best_f = _NEG_INF
            # inlined F(t, w) = Σ_r D_r(w) · Inc_r(t, w) over the candidates
            for view in candidates:
                if not view.alive:
                    continue  # fault layer: dead workers take no placements
                if mem > view.mem_available + 1e-9:
                    continue
                d = view.d
                inv = view.inv_rate_ept
                f = 0.0
                if u_cpu > 0.0:
                    dr = d[0]
                    if dr <= 0.0:
                        continue  # blocking rule: zero headroom, work needed
                    inc = u_cpu * inv[0]
                    if inc > dr:
                        inc = dr  # availability caps the contribution
                    f += dr * inc
                if u_net > 0.0:
                    dr = d[1]
                    if dr <= 0.0:
                        continue
                    inc = u_net * inv[1]
                    if inc > dr:
                        inc = dr
                    f += dr * inc
                if u_disk > 0.0:
                    dr = d[2]
                    if dr <= 0.0:
                        continue
                    inc = u_disk * inv[2]
                    if inc > dr:
                        inc = dr
                    f += dr * inc
                if mem > 0.0:
                    d_mem = view.mem_available / view.mem_capacity
                    if d_mem <= 0.0:
                        continue
                    inc_mem = mem / view.mem_capacity
                    f += d_mem * (inc_mem if inc_mem <= d_mem else d_mem)
                if f > best_f:
                    best_f, best_view = f, view
            if best_view is None:
                stage_bonus = 0.0
            else:
                plan.append((task, usage, mem, best_view.index, best_f))
                # inlined _commit (same ops in the same order)
                bd = best_view.d
                if touched is not None and best_view not in touched:
                    touched[best_view] = (bd[0], bd[1], bd[2], best_view.mem_available)
                binv = best_view.inv_rate_ept
                if u_cpu > 0.0:
                    nd = bd[0] - u_cpu * binv[0]
                    bd[0] = nd if nd > 0.0 else 0.0
                if u_net > 0.0:
                    nd = bd[1] - u_net * binv[1]
                    bd[1] = nd if nd > 0.0 else 0.0
                if u_disk > 0.0:
                    nd = bd[2] - u_disk * binv[2]
                    bd[2] = nd if nd > 0.0 else 0.0
                best_view.mem_available -= mem
                score += best_f
        if prof is not None:
            prof.stages_scored += 1
            prof.tasks_scored += len(scored)
            prof.workers_scanned += scanned
        if not plan:
            return (0.0, [])
        return (score / len(plan) + stage_bonus, plan)

    def _best_worker(self, task: Task, views) -> tuple[Optional[int], float]:
        if task.locality is not None:
            candidates = (views[task.locality],)
        else:
            candidates = views
        u_cpu, u_net, u_disk = self._usage(task)
        mem = task.est_mem_mb
        prof = self._prof
        if prof is not None:
            prof.tasks_scored += 1
            prof.workers_scanned += len(candidates)
        best_view: Optional[_WorkerView] = None
        best_f = _NEG_INF
        # Inlined F(t, w) = Σ_r D_r(w) · Inc_r(t, w) over all candidates: the
        # cheap feasibility checks (liveness, memory fit, zero-headroom
        # blocking rule) prune a worker before any scoring arithmetic runs.
        # Term order matches _score exactly so the computed floats are
        # bit-identical to the reference path.
        for view in candidates:
            if not view.alive:
                continue  # fault layer: dead workers take no placements
            if mem > view.mem_available + 1e-9:
                continue
            d = view.d
            inv = view.inv_rate_ept
            f = 0.0
            if u_cpu > 0.0:
                dr = d[0]
                if dr <= 0.0:
                    continue  # blocking rule: needed resource, zero headroom
                inc = u_cpu * inv[0]
                if inc > dr:
                    inc = dr  # availability caps the contribution
                f += dr * inc
            if u_net > 0.0:
                dr = d[1]
                if dr <= 0.0:
                    continue
                inc = u_net * inv[1]
                if inc > dr:
                    inc = dr
                f += dr * inc
            if u_disk > 0.0:
                dr = d[2]
                if dr <= 0.0:
                    continue
                inc = u_disk * inv[2]
                if inc > dr:
                    inc = dr
                f += dr * inc
            if mem > 0.0:
                d_mem = view.mem_available / view.mem_capacity
                if d_mem <= 0.0:
                    continue
                inc_mem = mem / view.mem_capacity
                f += d_mem * (inc_mem if inc_mem <= d_mem else d_mem)
            if f > best_f:
                best_f, best_view = f, view
        if best_view is None:
            return None, 0.0
        return best_view.index, best_f

    def _score(self, task: Task, usage, view: _WorkerView) -> Optional[float]:
        """Reference scoring of one (task, worker) pair — the textbook
        ``F(t, w) = Σ_r D_r(w) · Inc_r(t, w)`` of Algorithm 1, kept for
        tests and the brute-force reference; the hot path inlines this into
        :meth:`_best_worker`.  ``None`` means infeasible: the worker is dead,
        the task's memory does not fit, or some needed resource has zero
        headroom (the blocking rule)."""
        if not view.alive:
            return None  # fault layer: dead workers take no placements
        mem = task.est_mem_mb
        if mem > view.mem_available + 1e-9:
            return None
        d = view.d
        inv = view.inv_rate_ept
        f = 0.0
        for r in (_CPU, _NET, _DISK):
            u = usage[r]
            if u <= 0.0:
                continue
            dr = d[r]  # D_r(w)
            if dr <= 0.0:
                # blocking rule: needed resource with zero headroom
                return None
            inc = u * inv[r]  # Inc_r(t, w) = usage_r / (rate_r(w) · EPT)
            if inc > dr:
                inc = dr  # availability caps the contribution
            f += dr * inc
        d_mem = view.mem_available / view.mem_capacity
        if mem > 0.0:
            if d_mem <= 0.0:
                return None
            inc_mem = mem / view.mem_capacity  # Inc_mem(t, w)
            f += d_mem * min(inc_mem, d_mem)
        return f

    def _commit(self, view: _WorkerView, usage, mem: float, touched=None) -> None:
        if touched is not None and view not in touched:
            # dirty-set undo: snapshot a view once, on first tentative touch
            touched[view] = (view.d[0], view.d[1], view.d[2], view.mem_available)
        d = view.d
        inv = view.inv_rate_ept
        for r in (_CPU, _NET, _DISK):
            if usage[r] > 0.0:
                nd = d[r] - usage[r] * inv[r]
                d[r] = nd if nd > 0.0 else 0.0
        view.mem_available -= mem
