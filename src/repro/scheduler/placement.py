"""Task placement — Algorithm 1 (§4.2.2) and its ablation variants.

Key quantities, named as in the paper:

* ``APT_r(w)`` — approximate time for worker ``w`` to drain its assigned
  type-r work (computed by the worker agents from measured processing
  rates).
* ``EPT`` — expected processing time per scheduling round; slightly larger
  than the scheduling interval to absorb communication delay.
* ``D_r(w) = max(0, (EPT − APT_r(w)) / EPT)`` — normalized headroom;
  ``D_mem(w)`` is the free-memory fraction.
* ``Inc_r(t, w)`` — the load increase on ``w`` if task ``t`` lands there:
  estimated type-r usage ÷ w's type-r processing rate ÷ EPT (memory: the
  estimated memory footprint ÷ capacity).
* ``F(t, w) = Σ_r D_r(w) · Inc_r(t, w)`` with two guard rules: never place
  where some ``D_r = 0`` while ``Inc_r > 0`` (execution would block on r),
  and cap ``Inc_r`` at ``D_r`` (availability bounds the contribution).

Whole stages are scored and placed together — a large ``stage_bonus`` makes
fully-placeable stages win over partial plans, which avoids manufacturing
stragglers that would block dependent stages (§5.2 ablates this).

Implementation note: stage selection uses lazy re-evaluation on a max-heap.
Within one placement round every commit can only *shrink* worker headroom,
so stage scores are monotonically non-increasing; popping the stale maximum
and re-scoring it fresh therefore selects exactly the stage Algorithm 1's
quadratic loop would, at a fraction of the cost (the placement loop runs at
every scheduling interval and dominated scheduler wall time before this).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional, Sequence

from ..dataflow.graph import ResourceType
from ..dataflow.monotask import Stage, Task
from .ordering import SchedulingPolicy
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager

__all__ = ["Assignment", "PlacementPolicy", "ReadyStage", "UrsaPlacement"]

_FLUID = (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK)
_CPU, _NET, _DISK = 0, 1, 2


class Assignment:
    """One placement decision: task → worker."""

    __slots__ = ("jm", "task", "worker")

    def __init__(self, jm: "JobManager", task: Task, worker: int):
        self.jm = jm
        self.task = task
        self.worker = worker


class ReadyStage:
    """A stage with currently-ready tasks, as seen by the placement round."""

    __slots__ = ("jm", "stage", "tasks")

    def __init__(self, jm: "JobManager", stage: Stage, tasks: list[Task]):
        self.jm = jm
        self.stage = stage
        self.tasks = tasks


class PlacementPolicy:
    """Interface implemented by Algorithm 1, Tetris, and Capacity."""

    def place(
        self,
        ready: list[ReadyStage],
        workers: Sequence[Worker],
        now: float,
        job_policy: SchedulingPolicy,
    ) -> list[Assignment]:
        raise NotImplementedError


class _WorkerView:
    """Tentative per-round view of one worker's headroom (tuple-indexed)."""

    __slots__ = ("worker", "index", "d", "mem_available", "inv_rate_ept", "mem_capacity")

    def __init__(self, worker: Worker, index: int, ept: float):
        self.worker = worker
        self.index = index
        self.d = [
            max(0.0, (ept - worker.apt(r)) / ept) for r in _FLUID
        ]
        self.mem_available = worker.available_memory_mb
        self.mem_capacity = worker.memory_capacity_mb
        rates = worker.processing_rates()
        self.inv_rate_ept = tuple(1.0 / (max(r, 1e-9) * ept) for r in rates)

    @property
    def d_mem(self) -> float:
        return self.mem_available / self.mem_capacity

    def snapshot(self) -> tuple:
        return (self.d[0], self.d[1], self.d[2], self.mem_available)

    def restore(self, snap: tuple) -> None:
        self.d[0], self.d[1], self.d[2], self.mem_available = snap


def _task_usage(task: Task, ignore_network: bool) -> tuple[float, float, float]:
    return (
        task.est_cpu_mb,
        0.0 if ignore_network else task.est_net_mb,
        task.est_disk_mb,
    )


class UrsaPlacement(PlacementPolicy):
    """Algorithm 1 with stage-awareness and job-ordering bonuses."""

    def __init__(
        self,
        ept: float = 0.3,
        stage_bonus: float = 1e6,
        stage_aware: bool = True,
        ignore_network: bool = False,
    ):
        if ept <= 0:
            raise ValueError("EPT must be positive")
        self.ept = ept
        self.stage_bonus = stage_bonus
        self.stage_aware = stage_aware
        self.ignore_network = ignore_network

    # ------------------------------------------------------------------
    def place(self, ready, workers, now, job_policy) -> list[Assignment]:
        views = [_WorkerView(w, i, self.ept) for i, w in enumerate(workers)]
        if self.stage_aware:
            return self._place_by_stage(ready, views, now, job_policy)
        return self._place_by_task(ready, views, now, job_policy)

    # ------------------------------------------------------------------
    def _place_by_stage(self, ready, views, now, job_policy) -> list[Assignment]:
        assignments: list[Assignment] = []
        pending = [rs for rs in ready if rs.tasks]
        # lazy-greedy max-heap of (-score, tiebreak, stage)
        heap: list[tuple[float, int, ReadyStage]] = []
        for seq, rs in enumerate(pending):
            score, plan = self._stage_score_tentative(rs.tasks, views)
            if not plan:
                continue
            score += job_policy.placement_bonus(rs.jm.job, now)
            heapq.heappush(heap, (-score, seq, rs))
        seq = len(pending)
        while heap:
            neg_stale, _sq, rs = heapq.heappop(heap)
            if not rs.tasks:
                continue
            score, plan = self._stage_score_tentative(rs.tasks, views)
            if not plan:
                continue  # headroom only shrinks within a round: drop
            score += job_policy.placement_bonus(rs.jm.job, now)
            if heap and -heap[0][0] > score + 1e-12:
                # stale top: push back with the fresh score and retry
                seq += 1
                heapq.heappush(heap, (-score, seq, rs))
                continue
            placed_ids = set()
            for task, widx in plan:
                self._commit(views[widx], task)
                assignments.append(Assignment(rs.jm, task, widx))
                placed_ids.add(task.task_id)
            rs.tasks = [t for t in rs.tasks if t.task_id not in placed_ids]
            if rs.tasks:
                # the leftover was unplaceable with shrunken headroom; it
                # stays ready for the next scheduling interval
                continue
        return assignments

    def _place_by_task(self, ready, views, now, job_policy) -> list[Assignment]:
        """Fig-7 ablation: greedily place single highest-score tasks."""
        assignments: list[Assignment] = []
        pool: list[tuple["JobManager", Task]] = [
            (rs.jm, t) for rs in ready for t in rs.tasks
        ]
        while pool:
            best = None
            best_score = float("-inf")
            for i, (jm, task) in enumerate(pool):
                widx, score = self._best_worker(task, views)
                if widx is None:
                    continue
                score += job_policy.placement_bonus(jm.job, now)
                if score > best_score:
                    best_score, best = score, (i, widx)
            if best is None:
                break
            i, widx = best
            jm, task = pool.pop(i)
            self._commit(views[widx], task)
            assignments.append(Assignment(jm, task, widx))
        return assignments

    # ------------------------------------------------------------------
    # Algorithm 1's StageScore (on a tentative copy of the views)
    # ------------------------------------------------------------------
    def _stage_score_tentative(self, tasks, views) -> tuple[float, list[tuple[Task, int]]]:
        snaps = [v.snapshot() for v in views]
        result = self._stage_score(tasks, views)
        for v, s in zip(views, snaps):
            v.restore(s)
        return result

    def _stage_score(self, tasks, views) -> tuple[float, list[tuple[Task, int]]]:
        plan: list[tuple[Task, int]] = []
        score = 0.0
        stage_bonus = self.stage_bonus
        for task in tasks:
            widx, f = self._best_worker(task, views)
            if widx is None:
                stage_bonus = 0.0
            else:
                plan.append((task, widx))
                self._commit(views[widx], task)
                score += f
        if not plan:
            return (0.0, [])
        return (score / len(plan) + stage_bonus, plan)

    def _best_worker(self, task: Task, views) -> tuple[Optional[int], float]:
        if task.locality is not None:
            candidates = (views[task.locality],)
        else:
            candidates = views
        usage = _task_usage(task, self.ignore_network)
        best_view: Optional[_WorkerView] = None
        best_f = float("-inf")
        for view in candidates:
            f = self._score(task, usage, view)
            if f is not None and f > best_f:
                best_f, best_view = f, view
        if best_view is None:
            return None, 0.0
        return best_view.index, best_f

    def _score(self, task: Task, usage, view: _WorkerView) -> Optional[float]:
        mem = task.est_mem_mb
        if mem > view.mem_available + 1e-9:
            return None
        d = view.d
        inv = view.inv_rate_ept
        f = 0.0
        for r in (_CPU, _NET, _DISK):
            u = usage[r]
            if u <= 0.0:
                continue
            dr = d[r]
            if dr <= 0.0:
                # blocking rule: needed resource with zero headroom
                return None
            inc = u * inv[r]
            if inc > dr:
                inc = dr  # availability caps the contribution
            f += dr * inc
        d_mem = view.mem_available / view.mem_capacity
        if mem > 0.0:
            if d_mem <= 0.0:
                return None
            inc_mem = mem / view.mem_capacity
            f += d_mem * min(inc_mem, d_mem)
        return f

    def _commit(self, view: _WorkerView, task: Task) -> None:
        usage = _task_usage(task, self.ignore_network)
        d = view.d
        inv = view.inv_rate_ept
        for r in (_CPU, _NET, _DISK):
            if usage[r] > 0.0:
                nd = d[r] - usage[r] * inv[r]
                d[r] = nd if nd > 0.0 else 0.0
        view.mem_available -= task.est_mem_mb
