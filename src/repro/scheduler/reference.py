"""Frozen pre-optimization scheduling-tick reference (PR-2 behaviour).

:class:`ReferenceUrsaPlacement` is a verbatim copy of the Algorithm-1
implementation *before* the tick fast path landed (dirty-set undo, usage
caching, inlined candidate pruning).  It snapshot/restores **every** worker
view per candidate stage and re-derives every task-usage tuple on demand —
exactly the code the optimized :class:`~repro.scheduler.placement.\
UrsaPlacement` replaced.

It exists for two reasons:

* the ``tests/perf`` determinism suite proves the optimized tick produces
  **bit-identical** experiment metrics to this reference, and
* ``scripts/bench_sim.py`` measures the single-simulation speedup of the
  fast path against it (``BENCH_sim.json``).

``UrsaConfig(legacy_tick=True)`` selects this placement and additionally
restores the two other pre-change behaviours: worker queues are re-sorted
on *every* tick (even under statically-ranked policies) and SRJF's
``_dot(job)`` is recomputed on every call instead of memoized.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from ..dataflow.monotask import Task
from .placement import (
    _CPU,
    _DISK,
    _NET,
    Assignment,
    PlacementPolicy,
    ReadyStage,
    _task_usage,
    _WorkerView,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager

__all__ = ["ReferenceUrsaPlacement"]


class ReferenceUrsaPlacement(PlacementPolicy):
    """Algorithm 1, pre-fast-path: snapshot-all undo, no caching."""

    def __init__(
        self,
        ept: float = 0.3,
        stage_bonus: float = 1e6,
        stage_aware: bool = True,
        ignore_network: bool = False,
    ):
        if ept <= 0:
            raise ValueError("EPT must be positive")
        self.ept = ept
        self.stage_bonus = stage_bonus
        self.stage_aware = stage_aware
        self.ignore_network = ignore_network

    # ------------------------------------------------------------------
    def place(self, ready, workers, now, job_policy) -> list[Assignment]:
        views = [_WorkerView(w, i, self.ept) for i, w in enumerate(workers)]
        if self.stage_aware:
            return self._place_by_stage(ready, views, now, job_policy)
        return self._place_by_task(ready, views, now, job_policy)

    # ------------------------------------------------------------------
    def _place_by_stage(self, ready, views, now, job_policy) -> list[Assignment]:
        assignments: list[Assignment] = []
        pending = [rs for rs in ready if rs.tasks]
        # lazy-greedy max-heap of (-score, tiebreak, stage)
        heap: list[tuple[float, int, ReadyStage]] = []
        for seq, rs in enumerate(pending):
            score, plan = self._stage_score_tentative(rs.tasks, views)
            if not plan:
                continue
            score += job_policy.placement_bonus(rs.jm.job, now)
            heapq.heappush(heap, (-score, seq, rs))
        seq = len(pending)
        while heap:
            neg_stale, _sq, rs = heapq.heappop(heap)
            if not rs.tasks:
                continue
            score, plan = self._stage_score_tentative(rs.tasks, views)
            if not plan:
                continue  # headroom only shrinks within a round: drop
            score += job_policy.placement_bonus(rs.jm.job, now)
            if heap and -heap[0][0] > score + 1e-12:
                # stale top: push back with the fresh score and retry
                seq += 1
                heapq.heappush(heap, (-score, seq, rs))
                continue
            placed_ids = set()
            for task, widx, f in plan:
                self._commit(views[widx], task)
                assignments.append(Assignment(rs.jm, task, widx, f))
                placed_ids.add(task.task_id)
            rs.tasks = [t for t in rs.tasks if t.task_id not in placed_ids]
            if rs.tasks:
                # the leftover was unplaceable with shrunken headroom; it
                # stays ready for the next scheduling interval
                continue
        return assignments

    def _place_by_task(self, ready, views, now, job_policy) -> list[Assignment]:
        """Fig-7 ablation: greedily place single highest-score tasks."""
        assignments: list[Assignment] = []
        pool: list[tuple["JobManager", Task]] = [
            (rs.jm, t) for rs in ready for t in rs.tasks
        ]
        while pool:
            best = None
            best_score = float("-inf")
            for i, (jm, task) in enumerate(pool):
                widx, f = self._best_worker(task, views)
                if widx is None:
                    continue
                score = f + job_policy.placement_bonus(jm.job, now)
                if score > best_score:
                    best_score, best = score, (i, widx, f)
            if best is None:
                break
            i, widx, f = best
            jm, task = pool.pop(i)
            self._commit(views[widx], task)
            assignments.append(Assignment(jm, task, widx, f))
        return assignments

    # ------------------------------------------------------------------
    # Algorithm 1's StageScore (on a tentative copy of the views)
    # ------------------------------------------------------------------
    def _stage_score_tentative(
        self, tasks, views
    ) -> tuple[float, list[tuple[Task, int, float]]]:
        snaps = [v.snapshot() for v in views]
        result = self._stage_score(tasks, views)
        for v, s in zip(views, snaps):
            v.restore(s)
        return result

    def _stage_score(self, tasks, views) -> tuple[float, list[tuple[Task, int, float]]]:
        plan: list[tuple[Task, int, float]] = []
        score = 0.0
        stage_bonus = self.stage_bonus
        for task in tasks:
            widx, f = self._best_worker(task, views)
            if widx is None:
                stage_bonus = 0.0
            else:
                plan.append((task, widx, f))
                self._commit(views[widx], task)
                score += f
        if not plan:
            return (0.0, [])
        return (score / len(plan) + stage_bonus, plan)

    def _best_worker(self, task: Task, views) -> tuple[Optional[int], float]:
        if task.locality is not None:
            candidates = (views[task.locality],)
        else:
            candidates = views
        usage = _task_usage(task, self.ignore_network)
        best_view: Optional[_WorkerView] = None
        best_f = float("-inf")
        for view in candidates:
            f = self._score(task, usage, view)
            if f is not None and f > best_f:
                best_f, best_view = f, view
        if best_view is None:
            return None, 0.0
        return best_view.index, best_f

    def _score(self, task: Task, usage, view: _WorkerView) -> Optional[float]:
        if not view.alive:
            # fault layer: same liveness gate (and gate placement) as the
            # optimized candidate loops, so both modes stay float-identical
            return None
        mem = task.est_mem_mb
        if mem > view.mem_available + 1e-9:
            return None
        d = view.d
        inv = view.inv_rate_ept
        f = 0.0
        for r in (_CPU, _NET, _DISK):
            u = usage[r]
            if u <= 0.0:
                continue
            dr = d[r]
            if dr <= 0.0:
                # blocking rule: needed resource with zero headroom
                return None
            inc = u * inv[r]
            if inc > dr:
                inc = dr  # availability caps the contribution
            f += dr * inc
        d_mem = view.mem_available / view.mem_capacity
        if mem > 0.0:
            if d_mem <= 0.0:
                return None
            inc_mem = mem / view.mem_capacity
            f += d_mem * min(inc_mem, d_mem)
        return f

    def _commit(self, view: _WorkerView, task: Task) -> None:
        usage = _task_usage(task, self.ignore_network)
        d = view.d
        inv = view.inv_rate_ept
        for r in (_CPU, _NET, _DISK):
            if usage[r] > 0.0:
                nd = d[r] - usage[r] * inv[r]
                d[r] = nd if nd > 0.0 else 0.0
        view.mem_available -= task.est_mem_mb
