"""Deterministic fault injection & recovery for the simulated cluster.

The paper evaluates Ursa on a failure-free testbed; this package lets the
reproduction ask the follow-up question its design implies: how gracefully
does monotask-level scheduling degrade when workers die, black out, or
straggle mid-stage?  Three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a declarative, seed-
  derivable schedule of fault events (crash / blackout / slowdown / grant
  timeout) plus the :class:`RetryPolicy` governing re-execution;
* :mod:`repro.faults.injector` — :class:`FaultController`, which compiles a
  plan into simcore engine events at ``UrsaSystem`` construction and
  orchestrates each fault end-to-end (worker state, queues, admission,
  lineage restarts, retry budget, stats);
* :mod:`repro.faults.recovery` — the per-job lineage analysis: which tasks
  must re-execute when a worker's shard outputs vanish, and how task /
  monotask / dependency-counter state is rewound so the normal scheduling
  path re-runs them.

Everything is deterministic: a fixed plan + seed yields bit-identical
metrics and trace event streams across serial vs parallel harness runs and
across the optimized vs ``legacy_tick`` schedulers.  An **empty** plan (or
``faults=None``) schedules nothing and leaves every code path, float, and
trace byte identical to a build without this package.
"""

from .injector import FaultController, FaultStats
from .plan import (
    FaultPlan,
    GrantTimeout,
    ResourceSlowdown,
    RetryPolicy,
    WorkerBlackout,
    WorkerCrash,
)

__all__ = [
    "FaultPlan",
    "WorkerCrash",
    "WorkerBlackout",
    "ResourceSlowdown",
    "GrantTimeout",
    "RetryPolicy",
    "FaultController",
    "FaultStats",
]
