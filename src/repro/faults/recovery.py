"""Lineage-based restart-set computation for worker loss.

When a worker dies, three kinds of work are lost:

1. tasks **placed on the dead worker** (queued/running monotasks gone);
2. tasks elsewhere whose *resolved inputs* referenced shard outputs that
   lived on the dead worker (their pull sources / cached sizes are stale);
3. **completed upstream tasks** whose output partitions died with the
   worker while downstream consumers still need them — these must
   re-execute, exactly like Spark-style lineage recovery.

:func:`restart_set` computes the closure of all three from the per-job
metadata drop list, distinguishing *charged* restarts (started or finished
work was lost — they count against the retry budget) from free ones (the
task was merely READY; nothing ran yet).

Damage is tracked at dataset granularity, not per partition: a network
monotask pulls a shard of *every* partition of its upstream dataset, so one
lost partition taints all of its readers; for disk/CPU readers this is
conservative (a reader of an undamaged sibling partition is restarted too),
which trades a little redundant re-execution for a closure that is simple
and deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..dataflow.monotask import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager

__all__ = ["lineage_maps", "restart_set"]


def lineage_maps(plan) -> tuple[dict[tuple[int, int], Task], dict[int, list[Task]]]:
    """Derive the job's data lineage from its monotask plan.

    Returns ``(producers, readers)`` where ``producers`` maps each output
    partition key ``(data_id, partition_index)`` to the task that produces
    it, and ``readers`` maps each ``data_id`` to the ordered, de-duplicated
    list of tasks that read it (external job inputs appear here too; they
    have no producer entry — durable storage never needs re-execution).
    """
    producers: dict[tuple[int, int], Task] = {}
    readers: dict[int, dict[Task, None]] = {}
    for task in plan.tasks:
        for mt in task.monotasks:
            for op in mt.ops:
                if op.output is not None:
                    producers[(op.output.data_id, mt.partition_index)] = task
                for handle in op.reads:
                    readers.setdefault(handle.data_id, {})[task] = None
    return producers, {did: list(ts) for did, ts in readers.items()}


def restart_set(
    jm: "JobManager", worker: int, dropped: list[tuple[int, int]]
) -> tuple[list[Task], set[Task]]:
    """Tasks of ``jm``'s job that must re-execute after ``worker`` died.

    ``dropped`` is the sorted ``(data_id, partition)`` list returned by
    ``MetadataStore.invalidate_machine``.  Returns ``(tasks, charged)``:
    ``tasks`` sorted by task id for deterministic rewind order, ``charged``
    the subset whose restart consumes a retry attempt (lost started or
    completed work — PLACED anywhere, or DONE producers of dropped data).
    READY tasks with stale inputs restart for free: placement never
    happened, so no work was lost.
    """
    producers, readers = lineage_maps(jm.job.plan)
    damaged_ids: dict[int, None] = {}
    for did, _p in dropped:
        damaged_ids[did] = None

    restart: dict[Task, None] = {}
    charged: set[Task] = set()
    worklist: list[Task] = []

    def push(task: Task, charge: bool) -> None:
        if charge:
            charged.add(task)
        if task not in restart:
            restart[task] = None
            worklist.append(task)

    # seed 1: tasks placed on the dead worker — their queued monotasks were
    # drained and their running ones aborted; anything they had done is gone
    for task in jm.job.plan.tasks:
        if task.state is TaskState.PLACED and task.worker == worker:
            push(task, charge=True)

    # seed 2: readers of damaged datasets whose inputs are already resolved
    # (READY: stale sizes/sources, free; PLACED elsewhere: mid-flight pulls
    # from a dead source, charged)
    for did in sorted(damaged_ids):
        for task in readers.get(did, ()):
            if task.state is TaskState.READY:
                push(task, charge=False)
            elif task.state is TaskState.PLACED:
                push(task, charge=True)

    # seed 3: a dropped partition some BLOCKED task will eventually read —
    # its DONE producer must re-execute now (the consumer has not resolved
    # inputs yet, so the producer alone restarts)
    for did, part in dropped:
        producer = producers.get((did, part))
        if producer is None or producer.state is not TaskState.DONE:
            continue
        for task in readers.get(did, ()):
            if task.state is TaskState.BLOCKED:
                push(producer, charge=True)
                break

    # closure: every restarting task re-resolves its inputs from metadata at
    # re-ready time, so each damaged dataset it reads needs its dropped
    # partitions re-produced; DONE producers join the set (a producer that
    # was PLACED on the dead worker is already in seed 1 — all of a task's
    # outputs live where it ran)
    while worklist:
        task = worklist.pop()
        for mt in task.monotasks:
            for op in mt.ops:
                for handle in op.reads:
                    if handle.data_id not in damaged_ids:
                        continue
                    for did, part in dropped:
                        if did != handle.data_id:
                            continue
                        producer = producers.get((did, part))
                        if producer is not None and producer.state is TaskState.DONE:
                            push(producer, charge=True)

    ordered = sorted(restart, key=lambda t: t.task_id)
    return ordered, charged
