"""Fault plans: declarative, seed-derivable schedules of cluster faults.

A :class:`FaultPlan` is an immutable tuple of fault specs, each naming an
absolute simulation time and a target worker.  Plans are plain frozen
dataclasses — hashable, picklable, and ``repr``-stable — so they ride
through the parallel harness and its on-disk result cache unchanged.

Doctest (also exercised by the CI docs job)::

    >>> plan = FaultPlan.seeded(seed=7, num_workers=4, window=(2.0, 10.0),
    ...                         crashes=1, blackouts=1)
    >>> plan == FaultPlan.seeded(seed=7, num_workers=4, window=(2.0, 10.0),
    ...                          crashes=1, blackouts=1)
    True
    >>> bool(FaultPlan())
    False
    >>> times = [ev.at for ev in plan.events]
    >>> times == sorted(times) and len(plan.events) == 2
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from ..simcore.rng import derive_rng

__all__ = [
    "WorkerCrash",
    "WorkerBlackout",
    "ResourceSlowdown",
    "GrantTimeout",
    "RetryPolicy",
    "FaultPlan",
]

#: resources a slowdown can target (matches ResourceType values)
_SLOWDOWN_RESOURCES = ("cpu", "disk", "network")


@dataclass(frozen=True)
class WorkerCrash:
    """Permanent loss of one worker at time ``at``: its queues are drained,
    in-flight grants aborted, shard outputs it held invalidated, and the
    admission controller resized down for good."""

    at: float
    worker: int


@dataclass(frozen=True)
class WorkerBlackout:
    """Transient loss: the worker crashes at ``at`` and rejoins at
    ``at + duration`` with empty queues and freshly seeded rate monitors
    (so ``APT_r(w)`` is rebuilt from the nominal rates)."""

    at: float
    worker: int
    duration: float


@dataclass(frozen=True)
class ResourceSlowdown:
    """Straggler injection: scale one fluid resource's unit rate on one
    worker by ``factor`` for ``duration`` seconds (factor 0.25 = 4x slower).
    ``resource`` is ``"cpu"``, ``"disk"`` or ``"network"`` (receiver-side
    downlink; requires the default ``receiver`` fabric)."""

    at: float
    worker: int
    resource: str
    factor: float
    duration: float


@dataclass(frozen=True)
class GrantTimeout:
    """The grant of one running monotask on ``worker`` times out at ``at``:
    the monotask is aborted and re-enqueued after ``delay`` seconds, charged
    against its task's retry budget.  The victim is picked deterministically
    (lowest job id, then lowest monotask id)."""

    at: float
    worker: int
    delay: float = 0.5


FaultSpec = Union[WorkerCrash, WorkerBlackout, ResourceSlowdown, GrantTimeout]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for fault-induced task re-execution.

    Each *charged* restart of a task (it had started or finished work that
    was lost) bumps a per-task attempt counter; when a counter exceeds
    ``max_attempts`` the whole job fails gracefully — its remaining work is
    torn down, ``finish_time`` is stamped (so metrics still aggregate), and
    partial results (``tasks_done``) are retained for accounting.
    Restarts of tasks that were merely READY are free: no work was lost.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Re-ready delay before a task's ``attempt``-th charged retry."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events.

    Empty plans are falsy and inject nothing — ``UrsaConfig(faults=
    FaultPlan())`` is bit-identical to ``faults=None`` (pinned by
    ``tests/faults``).
    """

    events: Tuple[FaultSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate(self, num_workers: int) -> None:
        """Raise ``ValueError`` on out-of-range workers, non-positive times,
        plans that permanently kill every worker, or bad slowdown targets."""
        dead = set()
        for ev in self.events:
            if not 0 <= ev.worker < num_workers:
                raise ValueError(f"fault targets worker {ev.worker} of {num_workers}")
            if not ev.at > 0.0:
                raise ValueError(f"fault time must be > 0, got {ev.at!r}")
            if isinstance(ev, WorkerCrash):
                dead.add(ev.worker)
            elif isinstance(ev, (WorkerBlackout, ResourceSlowdown)):
                if not ev.duration > 0.0:
                    raise ValueError(f"duration must be > 0, got {ev.duration!r}")
            if isinstance(ev, ResourceSlowdown):
                if ev.resource not in _SLOWDOWN_RESOURCES:
                    raise ValueError(f"unknown slowdown resource {ev.resource!r}")
                if not ev.factor > 0.0:
                    raise ValueError(f"slowdown factor must be > 0, got {ev.factor!r}")
        if len(dead) >= num_workers:
            raise ValueError("plan permanently crashes every worker")

    @staticmethod
    def seeded(
        seed: int,
        num_workers: int,
        window: tuple[float, float],
        crashes: int = 1,
        blackouts: int = 0,
        slowdowns: int = 0,
        timeouts: int = 0,
        blackout_duration: float = 5.0,
        slowdown_factor: float = 0.25,
        slowdown_duration: float = 5.0,
    ) -> "FaultPlan":
        """Derive a reproducible plan from ``seed``.

        Fault times are drawn uniformly from ``window`` and targets from the
        worker set via :func:`repro.simcore.rng.derive_rng`, so the same
        arguments always yield the same plan on every platform.  Crash /
        blackout targets are sampled without replacement (a worker dies at
        most once) and at least one worker is always left untouched by
        permanent crashes.
        """
        lo, hi = window
        if not hi > lo > 0.0:
            raise ValueError(f"window must satisfy 0 < lo < hi, got {window!r}")
        n_down = crashes + blackouts
        if n_down >= num_workers:
            raise ValueError(
                f"{n_down} crash/blackout targets need < {num_workers} workers"
            )
        rng = derive_rng(seed, "fault_plan", num_workers, crashes, blackouts,
                         slowdowns, timeouts)
        events: list[FaultSpec] = []
        down = (
            [int(w) for w in rng.choice(num_workers, size=n_down, replace=False)]
            if n_down else []
        )
        for w in down[:crashes]:
            events.append(WorkerCrash(at=_t(rng, lo, hi), worker=w))
        for w in down[crashes:]:
            events.append(
                WorkerBlackout(at=_t(rng, lo, hi), worker=w,
                               duration=blackout_duration)
            )
        for _ in range(slowdowns):
            events.append(
                ResourceSlowdown(
                    at=_t(rng, lo, hi),
                    worker=int(rng.integers(num_workers)),
                    resource=_SLOWDOWN_RESOURCES[int(rng.integers(3))],
                    factor=slowdown_factor,
                    duration=slowdown_duration,
                )
            )
        for _ in range(timeouts):
            events.append(
                GrantTimeout(at=_t(rng, lo, hi), worker=int(rng.integers(num_workers)))
            )
        events.sort(key=lambda ev: (ev.at, ev.worker, type(ev).__name__))
        plan = FaultPlan(tuple(events))
        plan.validate(num_workers)
        return plan


def _t(rng, lo: float, hi: float) -> float:
    return float(lo + (hi - lo) * rng.random())
