"""The fault controller: compiles a :class:`FaultPlan` into simulation
events and drives recovery when they fire.

One controller is attached per :class:`~repro.scheduler.ursa.UrsaSystem`
when ``UrsaConfig.faults`` is a non-empty plan.  It owns all cross-layer
recovery choreography so the scheduler/execution modules only expose small
mechanical hooks (``Worker.fault_crash``, ``JobManager.fault_rewind_task``,
``AdmissionController.resize``, ``JobProcess.abort_monotask``, ...):

* **worker crash / blackout** — take the worker offline, shrink the
  admission pool (permanently failing waiting jobs that can never fit a
  permanently-shrunken cluster), invalidate its shard outputs in every
  job's metadata store, compute each job's lineage restart set, charge
  retry budgets, tear down and rewind the affected tasks, and schedule
  their re-ready with the retry backoff;
* **blackout rejoin** — bring the worker back with empty queues and
  re-seeded rate monitors, grow the admission pool, re-kick admission;
* **resource slowdown** — scale one fluid resource's unit rate for a
  bounded interval (straggler injection);
* **grant timeout** — abort one running monotask's grant and re-enqueue it
  after a delay, charged against its task's retry budget.

Everything here iterates in sorted job/task/monotask order, never in heap
or set order, so the injected event stream is identical between the
optimized and ``legacy_tick`` schedulers and across serial/parallel
experiment harness runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..dataflow.monotask import Monotask, MonotaskState, Task, TaskState
from ..execution.job import JobState
from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from .plan import (
    FaultPlan,
    GrantTimeout,
    ResourceSlowdown,
    RetryPolicy,
    WorkerBlackout,
    WorkerCrash,
)
from .recovery import restart_set

if TYPE_CHECKING:  # pragma: no cover
    from ..execution.jobmanager import JobManager
    from ..scheduler.ursa import UrsaSystem

__all__ = ["FaultController", "FaultStats"]


@dataclass
class FaultStats:
    """Plain picklable counters the fault experiments aggregate.

    ``wasted_work_mb`` counts the input MB of completed-and-lost plus
    started-and-aborted monotasks (re-execution repeats it);
    ``recovery_times`` holds, per fault that restarted tasks, the seconds
    until the last restarted task completed again.
    """

    worker_crashes: int = 0
    blackouts: int = 0
    slowdowns: int = 0
    grant_timeouts: int = 0
    monotasks_lost: int = 0
    tasks_restarted: int = 0
    retries_charged: int = 0
    jobs_failed: int = 0
    wasted_work_mb: float = 0.0
    recovery_times: list = field(default_factory=list)

    def as_dict(self) -> dict:
        times = self.recovery_times
        return {
            "worker_crashes": self.worker_crashes,
            "blackouts": self.blackouts,
            "slowdowns": self.slowdowns,
            "grant_timeouts": self.grant_timeouts,
            "monotasks_lost": self.monotasks_lost,
            "tasks_restarted": self.tasks_restarted,
            "retries_charged": self.retries_charged,
            "jobs_failed": self.jobs_failed,
            "wasted_work_mb": self.wasted_work_mb,
            "recovery_mean_s": sum(times) / len(times) if times else 0.0,
            "recovery_max_s": max(times) if times else 0.0,
        }


#: ResourceSlowdown.resource -> (processor getter, nominal-rate getter)
_SLOWDOWN_TARGETS = ("cpu", "disk", "network")


class FaultController:
    """Schedules a plan's events and orchestrates recovery when they fire."""

    def __init__(
        self,
        system: "UrsaSystem",
        plan: FaultPlan,
        retry: Optional[RetryPolicy] = None,
    ):
        plan.validate(system.cluster.num_machines)
        self.system = system
        self.sim = system.sim
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = FaultStats()
        #: per-(job_id, task_id) charged-restart counters
        self._attempts: dict[tuple[int, int], int] = {}
        #: [fault_time, {(job_id, task_id), ...}] awaiting re-completion;
        #: drained by :meth:`task_completed` into ``stats.recovery_times``
        self._pending: list[list] = []
        #: workers currently offline (drives absolute admission resizes)
        self._down: set[int] = set()

        for ev in plan.events:
            if isinstance(ev, WorkerCrash):
                self.sim.at(ev.at, self._on_worker_down, ev.worker, True)
            elif isinstance(ev, WorkerBlackout):
                self.sim.at(ev.at, self._on_worker_down, ev.worker, False)
                self.sim.at(ev.at + ev.duration, self._on_rejoin, ev.worker)
            elif isinstance(ev, ResourceSlowdown):
                self.sim.at(ev.at, self._on_slowdown, ev)
                self.sim.at(ev.at + ev.duration, self._on_slowdown_end, ev)
            elif isinstance(ev, GrantTimeout):
                self.sim.at(ev.at, self._on_grant_timeout, ev)
            else:  # pragma: no cover - plan.validate typing guards this
                raise TypeError(f"unknown fault spec {ev!r}")

    # ------------------------------------------------------------------
    # worker loss (crash = permanent, blackout = transient)
    # ------------------------------------------------------------------
    def _on_worker_down(self, worker: int, permanent: bool) -> None:
        wk = self.system.workers[worker]
        if not wk.alive:
            return  # already offline (overlapping plan entries)
        now = self.sim.now
        kind = "crash" if permanent else "blackout"
        if permanent:
            self.stats.worker_crashes += 1
        else:
            self.stats.blackouts += 1
        rec = _obs.RECORDER
        if rec is not None:
            rec.worker_down(now, worker, kind)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.worker_down(now, worker, kind)

        wk.fault_crash()
        self._down.add(worker)
        doomed = self.system.admission.resize(
            self._admittable_memory(), fail_oversized=permanent
        )
        for job in sorted(doomed, key=lambda j: j.job_id):
            # never admitted: no reservation to release, no JM to tear down
            job.state = JobState.FAILED
            job.finish_time = now
            self.system.failed_jobs.append(job)
            self.stats.jobs_failed += 1
            if rec is not None:
                rec.job_finish(now, job.job_id, job.jct or 0.0, failed=True)
            if tel is not None:
                tel.job_failed_unadmitted(now)
        if tel is not None and doomed:
            tel.admission_queue(now, self.system.admission.queue_length)

        freed: dict[int, None] = {}
        pending_keys: set[tuple[int, int]] = set()
        for job_id in sorted(self.system.active_jobs):
            jm = self.system.jms[job_id]
            dropped = jm.metadata.invalidate_machine(worker)
            tasks, charged = restart_set(jm, worker, dropped)
            if not tasks:
                continue
            # charge the retry budget up front: if any task is out of
            # attempts the whole job fails and nothing is rewound twice
            over_budget = False
            for task in tasks:
                if task not in charged:
                    continue
                key = (job_id, task.task_id)
                attempt = self._attempts.get(key, 0) + 1
                self._attempts[key] = attempt
                self.stats.retries_charged += 1
                if rec is not None:
                    rec.retry(now, job_id, task.task_id, attempt, kind)
                if tel is not None:
                    tel.retry()
                if attempt > self.retry.max_attempts:
                    over_budget = True
            if over_budget:
                self._fail_job(jm, freed)
                continue
            for task in tasks:
                self._teardown_task(
                    jm, task, freed,
                    reason=kind if task.worker == worker else "lineage",
                )
            jm.fault_recount_dependencies()
            self.stats.tasks_restarted += len(tasks)
            for task in tasks:
                key = (job_id, task.task_id)
                pending_keys.add(key)
                if task.state is TaskState.BLOCKED and task.remaining_parents == 0:
                    delay = (
                        self.retry.delay(self._attempts.get(key, 0))
                        if task in charged else 0.0
                    )
                    self.sim.at(now + delay, jm.fault_recover_ready, task)
        if pending_keys:
            self._pending.append([now, pending_keys])
        self._backfill(freed)
        self.system._ensure_tick()

    def _on_rejoin(self, worker: int) -> None:
        wk = self.system.workers[worker]
        if wk.alive:
            return
        wk.fault_rejoin()
        self._down.discard(worker)
        self.system.admission.resize(self._admittable_memory())
        rec = _obs.RECORDER
        if rec is not None:
            rec.worker_up(self.sim.now, worker)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.worker_up(self.sim.now, worker)
            tel.admission_queue(self.sim.now, self.system.admission.queue_length)
        self.system._try_admit()
        self.system._ensure_tick()

    def _admittable_memory(self) -> float:
        cluster = self.system.cluster
        down_mb = sum(
            cluster.machine(i).memory.capacity for i in sorted(self._down)
        )
        return cluster.total_memory_mb - down_mb

    # ------------------------------------------------------------------
    # stragglers
    # ------------------------------------------------------------------
    def _slowdown_processor(self, ev: ResourceSlowdown):
        """(processor, nominal_rate) for a slowdown target, or ``None`` when
        the fabric cannot express it (network slowdowns need the default
        receiver-side fabric's per-machine downlink processors)."""
        machine = self.system.cluster.machine(ev.worker)
        if ev.resource == "cpu":
            return machine.cpu, machine.spec.core_rate_mbps
        if ev.resource == "disk":
            return machine.disk, machine.spec.disk_mbps
        network = self.system.cluster.network
        rx = getattr(network, "_rx", None)
        if rx is None:
            return None  # MaxMinFabric: no per-receiver processor to slow
        return rx[ev.worker], network.downlink_mbps

    def _on_slowdown(self, ev: ResourceSlowdown) -> None:
        target = self._slowdown_processor(ev)
        if target is None:
            return
        proc, nominal = target
        proc.set_unit_rate(nominal * ev.factor)
        self.stats.slowdowns += 1

    def _on_slowdown_end(self, ev: ResourceSlowdown) -> None:
        target = self._slowdown_processor(ev)
        if target is None:
            return
        proc, nominal = target
        proc.set_unit_rate(nominal)

    # ------------------------------------------------------------------
    # grant timeouts
    # ------------------------------------------------------------------
    def _on_grant_timeout(self, ev: GrantTimeout) -> None:
        wk = self.system.workers[ev.worker]
        if not wk.alive:
            return
        victim = self._timeout_victim(ev.worker, wk)
        if victim is None:
            return  # nothing running there; the timeout fizzles
        jm, mt = victim
        task = mt.task
        assert task is not None
        now = self.sim.now
        self.stats.grant_timeouts += 1
        tel = _tel.TELEMETRY
        jp = jm._jps.get(ev.worker)
        if jp is not None:
            waste = jp.abort_monotask(mt)
            self.stats.wasted_work_mb += waste
            if tel is not None:
                tel.wasted_work(waste)
        wk.release_running(mt.rtype)
        if tel is not None:
            # the grant's busy interval ends here; no release will follow
            tel.abort(now, ev.worker, mt.rtype.value)
            tel.mt_lost()
        # the work stays assigned to this worker: only the grant was lost,
        # so the monotask keeps its resolved inputs and re-queues in place
        mt.state = MonotaskState.READY
        mt.started_at = None
        self.stats.monotasks_lost += 1
        rec = _obs.RECORDER
        if rec is not None:
            rec.mt_lost(
                now, ev.worker, mt.rtype.value, jm.job.job_id, task.task_id,
                mt.mt_id, "timeout",
            )
        key = (jm.job.job_id, task.task_id)
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        self.stats.retries_charged += 1
        if rec is not None:
            rec.retry(now, jm.job.job_id, task.task_id, attempt, "timeout")
        if tel is not None:
            tel.retry()
        if attempt > self.retry.max_attempts:
            freed: dict[int, None] = {}
            self._fail_job(jm, freed)
            self._backfill(freed)
        else:
            self.sim.at(now + ev.delay, jm.fault_requeue_monotask, mt)
        wk.backfill()
        self.system._ensure_tick()

    def _timeout_victim(
        self, worker: int, wk
    ) -> Optional[tuple["JobManager", Monotask]]:
        """First running non-bypass monotask on ``worker`` in sorted
        (job, plan-task, monotask) order — deterministic across schedulers."""
        for job_id in sorted(self.system.active_jobs):
            jm = self.system.jms[job_id]
            for task in jm.job.plan.tasks:
                if task.state is not TaskState.PLACED or task.worker != worker:
                    continue
                for mt in task.monotasks:
                    if mt.state is MonotaskState.RUNNING and not wk.is_bypass(mt):
                        return jm, mt
        return None

    # ------------------------------------------------------------------
    # teardown helpers
    # ------------------------------------------------------------------
    def _teardown_task(
        self, jm: "JobManager", task: Task, freed: dict[int, None], reason: str
    ) -> None:
        """Abort/evict a restarting task's monotasks and rewind it.  The
        worker's freed slots are backfilled by the caller after the whole
        restart set is processed, so mid-teardown grants cannot race."""
        rec = _obs.RECORDER
        tel = _tel.TELEMETRY
        now = self.sim.now
        if task.state is TaskState.PLACED and task.worker is not None:
            widx = task.worker
            wk = self.system.workers[widx]
            if wk.alive:
                # (a dead worker's queues were drained by fault_crash)
                for q in wk.queues.values():
                    q.evict(lambda e, t=task: e.mt.task is t)
            jp = jm._jps.get(widx)
            lost: list[Monotask] = []
            for mt in task.monotasks:
                if mt.state is MonotaskState.RUNNING:
                    if jp is not None:
                        jp.abort_monotask(mt)
                    if wk.alive and not wk.is_bypass(mt):
                        wk.release_running(mt.rtype)
                        freed[widx] = None
                    if tel is not None:
                        # every RUNNING monotask held a grant (bypass lane
                        # included) that will never reach the release seam
                        tel.abort(now, widx, mt.rtype.value)
                    lost.append(mt)
                elif mt.state is MonotaskState.QUEUED:
                    lost.append(mt)
            if wk.alive:
                wk.remove_assigned_task(task)
            if rec is not None:
                for mt in lost:
                    rec.mt_lost(
                        now, widx, mt.rtype.value, jm.job.job_id,
                        task.task_id, mt.mt_id, reason,
                    )
            self.stats.monotasks_lost += len(lost)
            if tel is not None:
                tel.mt_lost(len(lost))
        waste = jm.fault_rewind_task(task)
        self.stats.wasted_work_mb += waste
        if tel is not None:
            tel.wasted_work(waste)

    def _fail_job(self, jm: "JobManager", freed: dict[int, None]) -> None:
        """Retry budget exhausted: tear down the job's placed tasks (their
        memory and slots return to the cluster), stamp FAILED, release its
        admission reservation, and forget its pending recovery keys."""
        now = self.sim.now
        job_id = jm.job.job_id
        placed = sorted(
            (t for t in jm.job.plan.tasks if t.state is TaskState.PLACED),
            key=lambda t: t.task_id,
        )
        for task in placed:
            self._teardown_task(jm, task, freed, reason="job_failed")
        jm.fault_mark_failed(now)
        self.stats.jobs_failed += 1
        self.system.on_job_failed(jm)
        kept: list[list] = []
        for t0, keys in self._pending:
            keys = {k for k in keys if k[0] != job_id}
            if keys:
                kept.append([t0, keys])
            # a window emptied by a job failure records no recovery time:
            # the work was abandoned, not recovered
        self._pending = kept

    def _backfill(self, freed: dict[int, None]) -> None:
        for widx in sorted(freed):
            wk = self.system.workers[widx]
            if wk.alive:
                wk.backfill()

    # ------------------------------------------------------------------
    # recovery-time accounting (UrsaSystem.on_task_complete hook)
    # ------------------------------------------------------------------
    def task_completed(self, jm: "JobManager", task: Task) -> None:
        if not self._pending:
            return
        key = (jm.job.job_id, task.task_id)
        now = self.sim.now
        tel = _tel.TELEMETRY
        kept: list[list] = []
        for t0, keys in self._pending:
            keys.discard(key)
            if keys:
                kept.append([t0, keys])
            else:
                self.stats.recovery_times.append(now - t0)
                if tel is not None:
                    tel.fault_recovery(now - t0)
        self._pending = kept
