"""Mini TPC-H queries, runnable as real jobs on the simulated cluster.

Q1, Q3, Q6 and Q14 re-expressed over the mini schema via the Relation API
(Q14 and Q8-like join shapes are the ones the paper profiles in Fig. 1 /
Table 1).  Each call builds a fresh OpGraph so the query runs as one job.
Reference implementations in plain Python (``*_reference``) let tests check
the distributed results exactly.
"""

from __future__ import annotations

from .catalog import Catalog
from .relation import AVG, COUNT, SUM

__all__ = [
    "q1_pricing_summary", "q1_reference",
    "q3_shipping_priority", "q3_reference",
    "q6_forecast_revenue", "q6_reference",
    "q14_promo_effect", "q14_reference",
]


def q1_pricing_summary(catalog: Catalog, ship_cutoff: int = 19980902) -> list[dict]:
    """Q1: per (returnflag, linestatus) pricing aggregates."""
    li = catalog.relation("lineitem")
    rel = (
        li.where(lambda r: r["l_shipdate"] <= ship_cutoff)
        .select(
            "l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
            disc_price=lambda r: r["l_extendedprice"] * (1 - r["l_discount"]),
        )
        .group_by("l_returnflag", "l_linestatus")
        .agg(
            SUM("l_quantity", "sum_qty"),
            SUM("l_extendedprice", "sum_base_price"),
            SUM("disc_price", "sum_disc_price"),
            AVG("l_quantity", "avg_qty"),
            COUNT(None, "count_order"),
        )
        .order_by("l_returnflag")
    )
    return rel.rows()


def q1_reference(tables, ship_cutoff: int = 19980902) -> dict:
    acc: dict = {}
    for r in tables["lineitem"]:
        if r["l_shipdate"] > ship_cutoff:
            continue
        key = (r["l_returnflag"], r["l_linestatus"])
        a = acc.setdefault(key, dict(qty=0, base=0.0, disc=0.0, n=0))
        a["qty"] += r["l_quantity"]
        a["base"] += r["l_extendedprice"]
        a["disc"] += r["l_extendedprice"] * (1 - r["l_discount"])
        a["n"] += 1
    return acc


def q3_shipping_priority(catalog: Catalog, segment: str = "BUILDING", cutoff: int = 19950315) -> list[dict]:
    """Q3: revenue of unshipped orders for one market segment."""
    cust = catalog.relation("customer")
    # join chain: customer -> orders -> lineitem; built on one shared graph
    graph = cust.dataset.graph
    orders = catalog.relation("orders", graph=graph)
    li = catalog.relation("lineitem", graph=graph)
    rel = (
        cust.where(lambda r: r["c_mktsegment"] == segment)
        .join(orders, on=("c_custkey", "o_custkey"))
        .where(lambda r: r["o_orderdate"] < cutoff)
        .join(li, on=("o_orderkey", "l_orderkey"))
        .select(
            "o_orderkey", "o_orderdate",
            revenue=lambda r: r["l_extendedprice"] * (1 - r["l_discount"]),
        )
        .group_by("o_orderkey", "o_orderdate")
        .agg(SUM("revenue", "revenue"))
        .order_by("revenue", desc=True)
        .limit(10)
    )
    return rel.rows()


def q3_reference(tables, segment: str = "BUILDING", cutoff: int = 19950315) -> dict:
    segment_custs = {c["c_custkey"] for c in tables["customer"] if c["c_mktsegment"] == segment}
    open_orders = {
        o["o_orderkey"]: o
        for o in tables["orders"]
        if o["o_custkey"] in segment_custs and o["o_orderdate"] < cutoff
    }
    rev: dict = {}
    for r in tables["lineitem"]:
        if r["l_orderkey"] in open_orders:
            rev[r["l_orderkey"]] = rev.get(r["l_orderkey"], 0.0) + r["l_extendedprice"] * (
                1 - r["l_discount"]
            )
    return rev


def q6_forecast_revenue(
    catalog: Catalog, year_lo: int = 19940101, year_hi: int = 19950101,
    disc_lo: float = 0.02, disc_hi: float = 0.09, max_qty: int = 24,
) -> float:
    """Q6: revenue increase from a discount/quantity band."""
    li = catalog.relation("lineitem")
    rows = (
        li.where(
            lambda r: year_lo <= r["l_shipdate"] < year_hi
            and disc_lo <= r["l_discount"] <= disc_hi
            and r["l_quantity"] < max_qty
        )
        .select(revenue=lambda r: r["l_extendedprice"] * r["l_discount"])
        .group_by()
        .agg(SUM("revenue", "revenue"))
        .rows()
    )
    return rows[0]["revenue"] if rows else 0.0


def q6_reference(tables, year_lo=19940101, year_hi=19950101, disc_lo=0.02, disc_hi=0.09, max_qty=24) -> float:
    return sum(
        r["l_extendedprice"] * r["l_discount"]
        for r in tables["lineitem"]
        if year_lo <= r["l_shipdate"] < year_hi
        and disc_lo <= r["l_discount"] <= disc_hi
        and r["l_quantity"] < max_qty
    )


def q14_promo_effect(catalog: Catalog, month_lo: int = 19950101, month_hi: int = 19960101) -> float:
    """Q14: % of revenue from promo parts in one month (Fig 1e/1f query)."""
    li = catalog.relation("lineitem")
    part = catalog.relation("part", graph=li.dataset.graph)
    rows = (
        li.where(lambda r: month_lo <= r["l_shipdate"] < month_hi)
        .join(part, on=("l_partkey", "p_partkey"))
        .select(
            revenue=lambda r: r["l_extendedprice"] * (1 - r["l_discount"]),
            promo=lambda r: (
                r["l_extendedprice"] * (1 - r["l_discount"])
                if r["p_type"].startswith("PROMO")
                else 0.0
            ),
        )
        .group_by()
        .agg(SUM("revenue", "revenue"), SUM("promo", "promo"))
        .rows()
    )
    if not rows or rows[0]["revenue"] == 0:
        return 0.0
    return 100.0 * rows[0]["promo"] / rows[0]["revenue"]


def q14_reference(tables, month_lo: int = 19950101, month_hi: int = 19960101) -> float:
    ptype = {p["p_partkey"]: p["p_type"] for p in tables["part"]}
    rev = promo = 0.0
    for r in tables["lineitem"]:
        if not (month_lo <= r["l_shipdate"] < month_hi):
            continue
        amount = r["l_extendedprice"] * (1 - r["l_discount"])
        rev += amount
        if ptype[r["l_partkey"]].startswith("PROMO"):
            promo += amount
    return 100.0 * promo / rev if rev else 0.0
