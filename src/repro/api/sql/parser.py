"""A tiny SQL front end (the "Hive plug-in" stand-in of §4.1.2).

Supported grammar (enough for the TPC-H-shaped queries the experiments run):

    SELECT <item> [, <item>...]
    FROM <table> [JOIN <table> ON <col> = <col>]...
    [WHERE <cond> [AND <cond>]...]
    [GROUP BY <col> [, <col>...]]
    [ORDER BY <col> [DESC]]
    [LIMIT <n>]

where <item> is a column, ``agg(col)`` (count/sum/avg/min/max, optionally
``AS alias``), and <cond> compares a column to a literal with
=, !=, <, <=, >, >= .  Everything compiles onto the Relation layer, i.e.
each query runs as one Ursa job.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from .catalog import Catalog
from .relation import AggSpec, Relation

__all__ = ["SqlError", "parse_and_run", "SqlEngine"]

_AGG_RE = re.compile(
    r"^(count|sum|avg|min|max)\s*\(\s*(\*|[A-Za-z_][\w.]*)\s*\)(?:\s+as\s+([A-Za-z_]\w*))?$",
    re.IGNORECASE,
)
_COND_RE = re.compile(
    r"^([A-Za-z_][\w.]*)\s*(=|!=|<=|>=|<|>)\s*(.+)$"
)


class SqlError(ValueError):
    """Raised on malformed or unsupported SQL."""


def _split_top(text: str, sep: str) -> list[str]:
    """Split on sep outside parentheses."""
    parts, depth, cur = [], 0, []
    i = 0
    sep_l = sep.lower()
    low = text.lower()
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        # separators with surrounding spaces (" join ", " and ") already
        # carry their own word boundaries; bare-word separators need a check
        boundary_ok = (
            not sep_l.strip(" ").isalpha()
            or sep_l != sep_l.strip(" ")
            or _word_boundary(low, i, len(sep_l))
        )
        if depth == 0 and low.startswith(sep_l, i) and boundary_ok:
            parts.append("".join(cur).strip())
            cur = []
            i += len(sep_l)
            continue
        cur.append(ch)
        i += 1
    parts.append("".join(cur).strip())
    return parts


def _word_boundary(text: str, i: int, length: int) -> bool:
    before_ok = i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")
    j = i + length
    after_ok = j >= len(text) or not (text[j].isalnum() or text[j] == "_")
    return before_ok and after_ok


def _parse_literal(text: str) -> Any:
    text = text.strip()
    if (text.startswith("'") and text.endswith("'")) or (
        text.startswith('"') and text.endswith('"')
    ):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise SqlError(f"cannot parse literal {text!r}") from None


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _Query:
    select_items: list[str]
    table: str
    joins: list[tuple[str, str, str]]  # (table, left_col, right_col)
    where: list[tuple[str, str, Any]]
    group_by: list[str]
    order_by: Optional[tuple[str, bool]]
    limit: Optional[int]


def _parse(sql: str) -> _Query:
    text = " ".join(sql.strip().rstrip(";").split())
    low = text.lower()
    if not low.startswith("select "):
        raise SqlError("query must start with SELECT")

    q = _Query()
    q.joins, q.where, q.group_by, q.order_by, q.limit = [], [], [], None, None

    # carve the clauses in order
    def carve(keyword: str, rest: str) -> tuple[Optional[str], str]:
        idx = _find_keyword(rest, keyword)
        if idx < 0:
            return None, rest
        return rest[idx + len(keyword):].strip(), rest[:idx].strip()

    rest = text[len("select "):]
    limit_part, rest = carve("limit", rest)
    order_part, rest = carve("order by", rest)
    group_part, rest = carve("group by", rest)
    where_part, rest = carve("where", rest)
    from_idx = _find_keyword(rest, "from")
    if from_idx < 0:
        raise SqlError("missing FROM clause")
    select_part = rest[:from_idx].strip()
    from_part = rest[from_idx + 4:].strip()

    q.select_items = [s.strip() for s in _split_top(select_part, ",")]
    if not q.select_items or not all(q.select_items):
        raise SqlError("empty SELECT list")

    join_chunks = _split_top(from_part, " join ")
    q.table = join_chunks[0].strip()
    for chunk in join_chunks[1:]:
        m = re.match(
            r"^([A-Za-z_]\w*)\s+on\s+([A-Za-z_][\w.]*)\s*=\s*([A-Za-z_][\w.]*)$",
            chunk.strip(),
            re.IGNORECASE,
        )
        if not m:
            raise SqlError(f"cannot parse JOIN clause {chunk!r}")
        q.joins.append((m.group(1), m.group(2), m.group(3)))

    if where_part:
        for cond in _split_top(where_part, " and "):
            m = _COND_RE.match(cond.strip())
            if not m:
                raise SqlError(f"cannot parse condition {cond!r}")
            q.where.append((m.group(1), m.group(2), _parse_literal(m.group(3))))

    if group_part:
        q.group_by = [c.strip() for c in group_part.split(",")]
    if order_part:
        tokens = order_part.split()
        desc = len(tokens) > 1 and tokens[1].lower() == "desc"
        q.order_by = (tokens[0], desc)
    if limit_part is not None:
        try:
            q.limit = int(limit_part)
        except ValueError:
            raise SqlError(f"bad LIMIT {limit_part!r}") from None
    return q


def _find_keyword(text: str, keyword: str) -> int:
    low = text.lower()
    k = keyword.lower()
    depth = 0
    for i in range(len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
        if depth == 0 and low.startswith(k, i) and _word_boundary(low, i, len(k)):
            return i
    return -1


def _compile(q: _Query, catalog: Catalog) -> Relation:
    from ...dataflow.graph import OpGraph

    graph = OpGraph(f"sql_{q.table}")
    rel = catalog.relation(q.table, graph=graph)
    for table, lcol, rcol in q.joins:
        right = catalog.relation(table, graph=graph)
        rel = rel.join(right, on=(_strip_table(lcol), _strip_table(rcol)))

    if q.where:
        conds = [(col if "." not in col else col.split(".", 1)[1], op, lit) for col, op, lit in q.where]

        def pred(row: dict, conds=conds) -> bool:
            return all(_OPS[op](row[col], lit) for col, op, lit in conds)

        rel = rel.where(pred)

    aggs: list[AggSpec] = []
    plain: list[str] = []
    for item in q.select_items:
        m = _AGG_RE.match(item)
        if m:
            fn, col, alias = m.group(1), m.group(2), m.group(3)
            col = None if col == "*" else _strip_table(col)
            aggs.append(AggSpec(fn, col, alias))
        else:
            plain.append(_strip_table(item))

    if q.group_by:
        keys = [_strip_table(k) for k in q.group_by]
        if set(plain) - set(keys):
            raise SqlError("non-aggregated SELECT columns must appear in GROUP BY")
        rel = rel.group_by(*keys).agg(*aggs)
    elif aggs:
        rel = rel.group_by().agg(*aggs)  # global aggregate, no keys
        rel = rel.select(*[a.alias for a in aggs])
    elif plain and plain != ["*"]:
        rel = rel.select(*plain)

    if q.order_by:
        rel = rel.order_by(q.order_by[0], desc=q.order_by[1])
    if q.limit is not None:
        rel = rel.limit(q.limit)
    return rel


def _strip_table(col: str) -> str:
    return col.split(".", 1)[1] if "." in col else col


def parse_and_run(sql: str, catalog: Catalog) -> list[dict]:
    """Parse, compile onto the Relation layer, run as one job, return rows."""
    return _compile(_parse(sql), catalog).rows()


class SqlEngine:
    """Convenience wrapper: an engine bound to a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def sql(self, query: str) -> list[dict]:
        return parse_and_run(query, self.catalog)

    def explain(self, query: str) -> str:
        q = _parse(query)
        lines = [f"SELECT {', '.join(q.select_items)}", f"  FROM {q.table}"]
        for t, l, r in q.joins:
            lines.append(f"  JOIN {t} ON {l} = {r}")
        if q.where:
            lines.append("  WHERE " + " AND ".join(f"{c} {o} {v!r}" for c, o, v in q.where))
        if q.group_by:
            lines.append("  GROUP BY " + ", ".join(q.group_by))
        if q.order_by:
            lines.append(f"  ORDER BY {q.order_by[0]}{' DESC' if q.order_by[1] else ''}")
        if q.limit is not None:
            lines.append(f"  LIMIT {q.limit}")
        return "\n".join(lines)
