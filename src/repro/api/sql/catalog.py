"""Table catalog: named in-memory tables materialized into Relations.

The catalog is the glue between the SQL front end and the Dataset layer:
``register`` stores rows + schema; ``relation`` partitions them onto the
simulated cluster as a job input (one fresh OpGraph per query, since a
query is a job).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..context import UrsaContext
from .relation import Relation

__all__ = ["Catalog"]


class Catalog:
    def __init__(self, ctx: UrsaContext, default_partitions: int = 4):
        self.ctx = ctx
        self.default_partitions = default_partitions
        self._tables: dict[str, tuple[list[dict], list[str], int]] = {}

    def register(
        self,
        name: str,
        rows: Sequence[dict],
        columns: Optional[Sequence[str]] = None,
        partitions: Optional[int] = None,
    ) -> None:
        rows = list(rows)
        if columns is None:
            if not rows:
                raise ValueError(f"cannot infer schema of empty table {name!r}")
            columns = list(rows[0].keys())
        self._tables[name.lower()] = (
            rows,
            list(columns),
            partitions or self.default_partitions,
        )

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def columns(self, name: str) -> list[str]:
        return list(self._tables[name.lower()][1])

    def relation(self, name: str, graph=None) -> Relation:
        """Materialize a table as a Relation.  Pass the same ``graph`` for
        every table used by one query so joins stay within one job."""
        try:
            rows, columns, partitions = self._tables[name.lower()]
        except KeyError:
            raise KeyError(f"unknown table {name!r}; known: {self.tables()}") from None
        ds = self.ctx.parallelize(rows, partitions=partitions, name=name.lower(), graph=graph)
        return Relation(ds, columns, name.lower())
