"""Mini SQL engine: catalog, relational algebra, parser, TPC-H tables."""

from .catalog import Catalog
from .parser import SqlEngine, SqlError, parse_and_run
from .queries import (
    q1_pricing_summary,
    q1_reference,
    q3_reference,
    q3_shipping_priority,
    q6_forecast_revenue,
    q6_reference,
    q14_promo_effect,
    q14_reference,
)
from .relation import AVG, COUNT, MAX, MIN, SUM, AggSpec, Relation
from .tpch_schema import TPCH_TABLE_NAMES, generate_tpch_tables

__all__ = [
    "Catalog",
    "SqlEngine",
    "SqlError",
    "parse_and_run",
    "q1_pricing_summary",
    "q1_reference",
    "q3_reference",
    "q3_shipping_priority",
    "q6_forecast_revenue",
    "q6_reference",
    "q14_promo_effect",
    "q14_reference",
    "AVG",
    "COUNT",
    "MAX",
    "MIN",
    "SUM",
    "AggSpec",
    "Relation",
    "TPCH_TABLE_NAMES",
    "generate_tpch_tables",
]
