"""Synthetic TPC-H-style tables (the 200 GB–1 TB datasets, shrunk).

Generates the classic schema (region, nation, customer, supplier, part,
orders, lineitem) with seeded randomness at a row-count scale small enough
to execute as real data on the simulated cluster.  Columns keep TPC-H
semantics (dates as integer yyyymmdd, prices as floats, discounts in
[0, 0.1]) so the mini queries in ``queries.py`` compute meaningful answers.
"""

from __future__ import annotations

import numpy as np

from ...simcore.rng import derive_rng

__all__ = ["generate_tpch_tables", "TPCH_TABLE_NAMES"]

TPCH_TABLE_NAMES = [
    "region", "nation", "customer", "supplier", "part", "orders", "lineitem",
]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_PART_TYPES = ["PROMO BRUSHED", "STANDARD POLISHED", "SMALL PLATED", "ECONOMY BURNISHED"]
_STATUSES = ["F", "O", "P"]


def _date(rng: np.random.Generator, year_lo=1992, year_hi=1998) -> int:
    y = int(rng.integers(year_lo, year_hi + 1))
    m = int(rng.integers(1, 13))
    d = int(rng.integers(1, 29))
    return y * 10000 + m * 100 + d


def generate_tpch_tables(scale_rows: int = 200, seed: int = 7) -> dict[str, list[dict]]:
    """Generate all seven tables; ``scale_rows`` ≈ number of orders."""
    rng = derive_rng(seed, "tpch_tables")
    n_orders = scale_rows
    n_customers = max(10, scale_rows // 4)
    n_parts = max(10, scale_rows // 4)
    n_suppliers = max(5, scale_rows // 20)

    tables: dict[str, list[dict]] = {}
    tables["region"] = [
        {"r_regionkey": i, "r_name": name} for i, name in enumerate(_REGIONS)
    ]
    tables["nation"] = [
        {"n_nationkey": i, "n_name": name, "n_regionkey": region}
        for i, (name, region) in enumerate(_NATIONS)
    ]
    tables["customer"] = [
        {
            "c_custkey": i,
            "c_name": f"Customer#{i:06d}",
            "c_nationkey": int(rng.integers(0, len(_NATIONS))),
            "c_mktsegment": _SEGMENTS[int(rng.integers(0, len(_SEGMENTS)))],
            "c_acctbal": round(float(rng.uniform(-999, 9999)), 2),
        }
        for i in range(n_customers)
    ]
    tables["supplier"] = [
        {
            "s_suppkey": i,
            "s_name": f"Supplier#{i:06d}",
            "s_nationkey": int(rng.integers(0, len(_NATIONS))),
            "s_acctbal": round(float(rng.uniform(-999, 9999)), 2),
        }
        for i in range(n_suppliers)
    ]
    tables["part"] = [
        {
            "p_partkey": i,
            "p_name": f"part {i}",
            "p_type": _PART_TYPES[int(rng.integers(0, len(_PART_TYPES)))],
            "p_retailprice": round(900.0 + float(rng.uniform(0, 200)), 2),
        }
        for i in range(n_parts)
    ]
    orders = []
    lineitems = []
    for okey in range(n_orders):
        odate = _date(rng)
        orders.append(
            {
                "o_orderkey": okey,
                "o_custkey": int(rng.integers(0, n_customers)),
                "o_orderstatus": _STATUSES[int(rng.integers(0, 3))],
                "o_totalprice": 0.0,  # filled below
                "o_orderdate": odate,
                "o_orderpriority": f"{int(rng.integers(1, 6))}-PRIORITY",
            }
        )
        total = 0.0
        for line in range(int(rng.integers(1, 8))):
            qty = int(rng.integers(1, 51))
            price = round(float(rng.uniform(900, 1100)) * qty / 10.0, 2)
            disc = round(float(rng.uniform(0.0, 0.1)), 2)
            tax = round(float(rng.uniform(0.0, 0.08)), 2)
            total += price * (1 - disc)
            lineitems.append(
                {
                    "l_orderkey": okey,
                    "l_linenumber": line,
                    "l_partkey": int(rng.integers(0, n_parts)),
                    "l_suppkey": int(rng.integers(0, n_suppliers)),
                    "l_quantity": qty,
                    "l_extendedprice": price,
                    "l_discount": disc,
                    "l_tax": tax,
                    "l_returnflag": ["A", "N", "R"][int(rng.integers(0, 3))],
                    "l_linestatus": ["F", "O"][int(rng.integers(0, 2))],
                    "l_shipdate": odate + int(rng.integers(0, 90)),
                }
            )
        orders[-1]["o_totalprice"] = round(total, 2)
    tables["orders"] = orders
    tables["lineitem"] = lineitems
    return tables
