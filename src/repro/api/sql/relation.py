"""A mini relational-algebra layer over the Dataset API.

Tables are datasets of dict rows.  Operators compose lazily (each adds ops
to the job's OpGraph, so a whole query runs as one Ursa job):

* ``select`` / ``project`` — narrow CPU op;
* ``where`` — narrow CPU op with filter m2i (§4.2.1's default m2i table);
* ``join`` — hash join via ser/shuffle/join ops, m2i = 1 + selectivity;
* ``group_by(...).agg(...)`` — local pre-aggregation, shuffle, final merge
  (the reduceByKey pattern of §4.1.2);
* ``order_by`` / ``limit`` — gather to one partition and sort.

This is the substrate behind the Hive-plug-in-style SQL front end in
``parser.py``; both exist so the TPC-H-shaped experiments run real queries.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..dataset import Dataset

__all__ = ["Relation", "AggSpec", "COUNT", "SUM", "AVG", "MIN", "MAX"]


class AggSpec:
    """An aggregate over a column: AggSpec('sum', 'price', alias='revenue')."""

    __slots__ = ("fn", "column", "alias")

    def __init__(self, fn: str, column: Optional[str], alias: Optional[str] = None):
        fn = fn.lower()
        if fn not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unsupported aggregate {fn!r}")
        self.fn = fn
        self.column = column
        self.alias = alias or (f"{fn}_{column}" if column else fn)


def COUNT(column: Optional[str] = None, alias: Optional[str] = None) -> AggSpec:
    return AggSpec("count", column, alias)


def SUM(column: str, alias: Optional[str] = None) -> AggSpec:
    return AggSpec("sum", column, alias)


def AVG(column: str, alias: Optional[str] = None) -> AggSpec:
    return AggSpec("avg", column, alias)


def MIN(column: str, alias: Optional[str] = None) -> AggSpec:
    return AggSpec("min", column, alias)


def MAX(column: str, alias: Optional[str] = None) -> AggSpec:
    return AggSpec("max", column, alias)


class Relation:
    """A lazily-composed relational query plan over dict rows."""

    def __init__(self, dataset: Dataset, columns: Sequence[str], name: str = "rel"):
        self.dataset = dataset
        self.columns = list(columns)
        self.name = name

    # ------------------------------------------------------------------
    def select(self, *columns: str, **computed: Callable[[dict], Any]) -> "Relation":
        cols = list(columns)

        def project(row: dict) -> dict:
            out = {c: row[c] for c in cols}
            for alias, fn in computed.items():
                out[alias] = fn(row)
            return out

        ds = self.dataset.map(project)
        return Relation(ds, cols + list(computed), self.name)

    def where(self, pred: Callable[[dict], bool]) -> "Relation":
        return Relation(self.dataset.filter(pred), self.columns, self.name)

    def join(self, other: "Relation", on: str | tuple[str, str], partitions: Optional[int] = None) -> "Relation":
        left_key, right_key = (on, on) if isinstance(on, str) else on
        left = self.dataset.map(lambda r, k=left_key: (r[k], r))
        right = other.dataset.map(lambda r, k=right_key: (r[k], r))
        joined = left.join(right, partitions=partitions)

        def merge(pair):
            _key, (lrow, rrow) = pair
            out = dict(lrow)
            for k, v in rrow.items():
                out[k if k not in out else f"{other.name}.{k}"] = v
            return out

        ds = joined.map(merge)
        merged_cols = self.columns + [
            c if c not in self.columns else f"{other.name}.{c}" for c in other.columns
        ]
        return Relation(ds, merged_cols, f"{self.name}_join_{other.name}")

    def group_by(self, *keys: str) -> "GroupedRelation":
        return GroupedRelation(self, list(keys))

    def order_by(self, column: str, desc: bool = False, partitions: int = 1) -> "Relation":
        # gather via a single-shard shuffle, then sort
        keyed = self.dataset.map(lambda r: (0, r))
        gathered = keyed.group_by_key(partitions=partitions)

        def sort_rows(ins_pair):
            _k, rows = ins_pair
            return sorted(rows, key=lambda r: r[column], reverse=desc)

        ds = gathered.flat_map(sort_rows)
        return Relation(ds, self.columns, self.name)

    def limit(self, n: int) -> "Relation":
        return Relation(
            self.dataset.map_partitions(lambda rows: rows[:n]), self.columns, self.name
        )

    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """Action: run the job and return the result rows."""
        return self.dataset.collect()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Relation({self.name}, cols={self.columns})"


class GroupedRelation:
    """Result of ``group_by``; terminate with ``agg``."""

    def __init__(self, rel: Relation, keys: list[str]):
        self.rel = rel
        self.keys = keys

    def agg(self, *aggs: AggSpec, partitions: Optional[int] = None) -> Relation:
        keys = self.keys
        specs = list(aggs)

        def to_state(row: dict):
            key = tuple(row[k] for k in keys)
            state = []
            for a in specs:
                val = row[a.column] if a.column else None
                if a.fn == "count":
                    state.append(1)
                elif a.fn == "avg":
                    state.append((val, 1))
                else:
                    state.append(val)
            return (key, state)

        def merge_state(s1, s2):
            out = []
            for a, x, y in zip(specs, s1, s2):
                if a.fn == "count":
                    out.append(x + y)
                elif a.fn == "sum":
                    out.append(x + y)
                elif a.fn == "avg":
                    out.append((x[0] + y[0], x[1] + y[1]))
                elif a.fn == "min":
                    out.append(min(x, y))
                else:
                    out.append(max(x, y))
            return out

        keyed = self.rel.dataset.map(to_state)
        reduced = keyed.reduce_by_key(merge_state, partitions=partitions)

        def finalize(pair):
            key, state = pair
            row = {k: key[i] for i, k in enumerate(keys)}
            for a, s in zip(specs, state):
                row[a.alias] = (s[0] / s[1]) if a.fn == "avg" else s
            return row

        ds = reduced.map(finalize)
        return Relation(ds, keys + [a.alias for a in specs], f"{self.rel.name}_agg")
