"""User-facing APIs: UrsaContext, Spark-like datasets, Pregel, mini SQL."""

from .context import Broadcast, UrsaContext
from .dataset import Dataset
from .pregel import (
    VertexProgram,
    connected_components_program,
    pagerank_program,
    run_pregel,
    sssp_program,
)

__all__ = [
    "Broadcast",
    "UrsaContext",
    "Dataset",
    "VertexProgram",
    "connected_components_program",
    "pagerank_program",
    "run_pregel",
    "sssp_program",
]
