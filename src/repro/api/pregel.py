"""A Pregel-like vertex-centric API (§4.1.2) plus PageRank/CC/SSSP programs.

Each superstep becomes a (CPU message-generation) → (network shuffle) →
(CPU apply) triple in the job's OpGraph; vertex state stays partitioned and
resident, so apply-tasks inherit hard locality to the machines that hold
their partition — the in-memory iterative pattern of §2's graph workloads.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..dataflow.graph import DepType, OpGraph, ResourceType
from ..execution.metadata import estimate_payload_mb

__all__ = ["VertexProgram", "run_pregel", "pagerank_program", "connected_components_program", "sssp_program"]

# messages: compute(vertex, value, out_neighbors, incoming) -> (new_value, [(dst, msg)])
ComputeFn = Callable[[Any, Any, list, list], tuple[Any, list]]


class VertexProgram:
    """A vertex-centric program: per-superstep compute + message combiner."""

    def __init__(
        self,
        compute: ComputeFn,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        name: str = "pregel",
    ):
        self.compute = compute
        self.combine = combine
        self.name = name


def _partition_of(vertex: Any, partitions: int) -> int:
    if isinstance(vertex, int):
        return vertex % partitions
    return sum(bytearray(str(vertex), "utf-8")) % partitions


def build_pregel_graph(
    vertices: dict[Any, Any],
    adjacency: dict[Any, list],
    program: VertexProgram,
    supersteps: int,
    partitions: int,
) -> tuple[OpGraph, Any]:
    """Unroll ``supersteps`` iterations into an OpGraph.

    Returns (graph, final state handle); partitions hold lists of
    (vertex, value, out_neighbors) and are carried across supersteps.
    """
    if supersteps <= 0:
        raise ValueError("need at least one superstep")
    graph = OpGraph(program.name)
    chunks: list[list] = [[] for _ in range(partitions)]
    for v, value in vertices.items():
        chunks[_partition_of(v, partitions)].append((v, value, list(adjacency.get(v, []))))
    state = graph.create_data(partitions, "state0")
    graph.set_input(
        state,
        [max(estimate_payload_mb(c), 1e-6) for c in chunks],
        payloads=chunks,
    )
    prev_apply = None

    for step in range(supersteps):
        msg = graph.create_data(partitions, f"msg{step}")
        shuffled = graph.create_data(partitions, f"inbox{step}")
        new_state = graph.create_data(partitions, f"state{step + 1}")

        def gen_udf(ins, pidx, _state_read=0):
            shards: dict[int, list] = {}
            for v, value, neigh in ins[0]:
                _new, outgoing = program.compute(v, value, neigh, [])
                for dst, m in outgoing:
                    shards.setdefault(_partition_of(dst, partitions), []).append((dst, m))
            if program.combine is not None:
                for shard, msgs in shards.items():
                    acc: dict = {}
                    for dst, m in msgs:
                        acc[dst] = program.combine(acc[dst], m) if dst in acc else m
                    shards[shard] = list(acc.items())
            return shards

        def apply_udf(ins, pidx):
            inbox, st = ins[0], ins[1]
            incoming: dict = {}
            for dst, m in inbox or []:
                if program.combine is not None and dst in incoming:
                    incoming[dst] = program.combine(incoming[dst], m)
                else:
                    incoming[dst] = m
            out = []
            for v, value, neigh in st:
                msgs = [incoming[v]] if v in incoming else []
                new_value, _outgoing = program.compute(v, value, neigh, msgs)
                out.append((v, new_value, neigh))
            return out

        gen = (
            graph.create_op(ResourceType.CPU, f"gen{step}")
            .read(state).create(msg).set_udf(gen_udf).set_cpu_work_factor(1.5)
        )
        shuffle = (
            graph.create_op(ResourceType.NETWORK, f"shuffle{step}")
            .read(msg).create(shuffled)
        )
        apply_op = (
            graph.create_op(ResourceType.CPU, f"apply{step}")
            .read(shuffled, state).create(new_state).set_udf(apply_udf).set_m2i(2.0)
        )
        if prev_apply is not None:
            prev_apply.to(gen, DepType.ASYNC)
        gen.to(shuffle, DepType.SYNC)
        shuffle.to(apply_op, DepType.ASYNC)
        state = new_state
        prev_apply = apply_op

    return graph, state


def run_pregel(
    ctx,
    vertices: dict[Any, Any],
    adjacency: dict[Any, list],
    program: VertexProgram,
    supersteps: int,
    partitions: int = 4,
) -> dict[Any, Any]:
    """Run the unrolled program on the context's cluster; return final values."""
    graph, final = build_pregel_graph(vertices, adjacency, program, supersteps, partitions)
    jm = ctx.run_graph(graph)
    out: dict[Any, Any] = {}
    for part in ctx.fetch_partitions(jm, final):
        for v, value, _neigh in part:
            out[v] = value
    return out


# ----------------------------------------------------------------------
# canonical vertex programs
# ----------------------------------------------------------------------
def pagerank_program(damping: float = 0.85) -> VertexProgram:
    """PageRank with combiner; values are (rank, out_degree is from adjacency)."""

    def compute(v, rank, neigh, incoming):
        if incoming:
            rank = (1.0 - damping) + damping * incoming[0]
        share = rank / len(neigh) if neigh else 0.0
        return rank, [(dst, share) for dst in neigh]

    return VertexProgram(compute, combine=lambda a, b: a + b, name="pagerank")


def connected_components_program() -> VertexProgram:
    """Label propagation: every vertex adopts the minimum label seen."""

    def compute(v, label, neigh, incoming):
        if incoming:
            label = min(label, incoming[0])
        return label, [(dst, label) for dst in neigh]

    return VertexProgram(compute, combine=min, name="cc")


def sssp_program() -> VertexProgram:
    """Single-source shortest paths over unit-weight edges; inf = unreached."""

    def compute(v, dist, neigh, incoming):
        if incoming:
            dist = min(dist, incoming[0])
        return dist, [(dst, dist + 1.0) for dst in neigh if dist != float("inf")]

    return VertexProgram(compute, combine=min, name="sssp")
