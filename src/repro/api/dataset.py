"""Spark-like dataset transformations over Ursa's primitives (§4.1.2).

Transformations are lazy: each one appends CPU/network ops to the lineage's
OpGraph (narrow ops connect with async edges, so the planner fuses them into
single CPU monotasks; wide ops insert the ser → shuffle → deser triple from
the paper's reduceByKey listing).  Actions submit the job and return real
data computed on the simulated cluster.
"""

from __future__ import annotations

import functools
import operator
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..dataflow.graph import DataHandle, DepType, Op, OpGraph, ResourceType

if TYPE_CHECKING:  # pragma: no cover
    from .context import UrsaContext

__all__ = ["Dataset"]


def _hash_shard(key: Any, partitions: int) -> int:
    # stable across processes (no PYTHONHASHSEED dependence for ints/strs)
    if isinstance(key, int):
        return key % partitions
    return sum(bytearray(str(key), "utf-8")) % partitions


class Dataset:
    """A (lazy) distributed dataset; one lineage maps to one OpGraph."""

    def __init__(
        self,
        ctx: "UrsaContext",
        graph: OpGraph,
        handle: DataHandle,
        creator: Optional[Op],
    ):
        self.ctx = ctx
        self.graph = graph
        self.handle = handle
        self.creator = creator  # op producing `handle`, None for inputs

    @property
    def num_partitions(self) -> int:
        return self.handle.num_partitions

    # ------------------------------------------------------------------
    # narrow transformations (fused into one CPU monotask chain)
    # ------------------------------------------------------------------
    def _narrow(self, name: str, udf, m2i: float = 1.5, size_factor: float = 1.0) -> "Dataset":
        out = self.graph.create_data(self.num_partitions, f"{name}_out")
        op = (
            self.graph.create_op(ResourceType.CPU, name)
            .read(self.handle)
            .create(out)
            .set_udf(udf)
            .set_m2i(m2i)
        )
        if size_factor != 1.0:
            op.set_output_size(lambda i, s: s * size_factor)
        if self.creator is not None:
            self.creator.to(op, DepType.ASYNC)
        return Dataset(self.ctx, self.graph, out, op)

    def map(self, fn: Callable[[Any], Any]) -> "Dataset":
        return self._narrow("map", lambda ins, i: [fn(x) for x in ins[0]])

    def flat_map(self, fn: Callable[[Any], Any]) -> "Dataset":
        def udf(ins, i):
            out = []
            for x in ins[0]:
                out.extend(fn(x))
            return out

        return self._narrow("flatMap", udf)

    def filter(self, pred: Callable[[Any], bool]) -> "Dataset":
        return self._narrow(
            "filter", lambda ins, i: [x for x in ins[0] if pred(x)], m2i=2.0, size_factor=0.5
        )

    def map_partitions(self, fn: Callable[[list], list]) -> "Dataset":
        return self._narrow("mapPartitions", lambda ins, i: list(fn(ins[0])))

    def key_by(self, fn: Callable[[Any], Any]) -> "Dataset":
        return self.map(lambda x: (fn(x), x))

    # ------------------------------------------------------------------
    # wide transformations (ser -> shuffle -> deser, as in §4.1.2)
    # ------------------------------------------------------------------
    def _shuffle(
        self,
        name: str,
        partitions: int,
        ser_udf,
        deser_udf,
        m2i: float = 1.5,
    ) -> "Dataset":
        msg = self.graph.create_data(self.num_partitions, f"{name}_msg")
        shuffled = self.graph.create_data(partitions, f"{name}_shuffled")
        result = self.graph.create_data(partitions, f"{name}_out")
        ser = (
            self.graph.create_op(ResourceType.CPU, f"{name}_ser")
            .read(self.handle)
            .create(msg)
            .set_udf(ser_udf)
        )
        shuffle = (
            self.graph.create_op(ResourceType.NETWORK, f"{name}_shuffle")
            .read(msg)
            .create(shuffled)
        )
        deser = (
            self.graph.create_op(ResourceType.CPU, f"{name}_deser")
            .read(shuffled)
            .create(result)
            .set_udf(deser_udf)
            .set_m2i(m2i)
        )
        if self.creator is not None:
            self.creator.to(ser, DepType.ASYNC)
        ser.to(shuffle, DepType.SYNC)
        shuffle.to(deser, DepType.ASYNC)
        return Dataset(self.ctx, self.graph, result, deser)

    def reduce_by_key(
        self, combiner: Callable[[Any, Any], Any], partitions: Optional[int] = None
    ) -> "Dataset":
        """The paper's example API: local combine, shuffle, final combine."""
        p = partitions or self.num_partitions

        def ser(ins, i):
            local: dict = {}
            for k, v in ins[0]:
                local[k] = combiner(local[k], v) if k in local else v
            shards: dict[int, list] = {}
            for k, v in local.items():
                shards.setdefault(_hash_shard(k, p), []).append((k, v))
            return shards

        def deser(ins, i):
            acc: dict = {}
            for k, v in ins[0]:
                acc[k] = combiner(acc[k], v) if k in acc else v
            return sorted(acc.items(), key=lambda kv: str(kv[0]))

        return self._shuffle("reduceByKey", p, ser, deser)

    def group_by_key(self, partitions: Optional[int] = None) -> "Dataset":
        p = partitions or self.num_partitions

        def ser(ins, i):
            shards: dict[int, list] = {}
            for k, v in ins[0]:
                shards.setdefault(_hash_shard(k, p), []).append((k, v))
            return shards

        def deser(ins, i):
            acc: dict = {}
            for k, v in ins[0]:
                acc.setdefault(k, []).append(v)
            return sorted(acc.items(), key=lambda kv: str(kv[0]))

        return self._shuffle("groupByKey", p, ser, deser, m2i=2.0)

    def join(self, other: "Dataset", partitions: Optional[int] = None) -> "Dataset":
        """Inner join of two keyed datasets (same lineage graph required)."""
        if other.graph is not self.graph:
            raise ValueError(
                "join requires datasets from the same context lineage; build "
                "both sides from the same inputs (one job = one OpGraph)"
            )
        p = partitions or self.num_partitions

        def ser_side(tag):
            def ser(ins, i):
                shards: dict[int, list] = {}
                for k, v in ins[0]:
                    shards.setdefault(_hash_shard(k, p), []).append((k, tag, v))
                return shards

            return ser

        left_msg = self.graph.create_data(self.num_partitions, "join_lmsg")
        right_msg = self.graph.create_data(other.num_partitions, "join_rmsg")
        l_shuf = self.graph.create_data(p, "join_lshuf")
        r_shuf = self.graph.create_data(p, "join_rshuf")
        result = self.graph.create_data(p, "join_out")

        ser_l = (
            self.graph.create_op(ResourceType.CPU, "join_ser_l")
            .read(self.handle).create(left_msg).set_udf(ser_side(0))
        )
        ser_r = (
            self.graph.create_op(ResourceType.CPU, "join_ser_r")
            .read(other.handle).create(right_msg).set_udf(ser_side(1))
        )
        sh_l = self.graph.create_op(ResourceType.NETWORK, "join_shuf_l").read(left_msg).create(l_shuf)
        sh_r = self.graph.create_op(ResourceType.NETWORK, "join_shuf_r").read(right_msg).create(r_shuf)

        def joiner(ins, i):
            left: dict = {}
            right: dict = {}
            for part in ins:
                if part is None:
                    continue
                for k, tag, v in part:
                    (left if tag == 0 else right).setdefault(k, []).append(v)
            out = []
            for k, lvs in left.items():
                for lv in lvs:
                    for rv in right.get(k, []):
                        out.append((k, (lv, rv)))
            return sorted(out, key=lambda kv: str(kv[0]))

        join_op = (
            self.graph.create_op(ResourceType.CPU, "join")
            .read(l_shuf, r_shuf).create(result).set_udf(joiner).set_m2i(2.0)
        )
        if self.creator is not None:
            self.creator.to(ser_l, DepType.ASYNC)
        if other.creator is not None:
            other.creator.to(ser_r, DepType.ASYNC)
        ser_l.to(sh_l, DepType.SYNC)
        ser_r.to(sh_r, DepType.SYNC)
        sh_l.to(join_op, DepType.ASYNC)
        sh_r.to(join_op, DepType.ASYNC)
        return Dataset(self.ctx, self.graph, result, join_op)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self) -> list:
        jm = self.ctx.run_graph(self.graph)
        out: list = []
        for part in self.ctx.fetch_partitions(jm, self.handle):
            out.extend(part)
        return out

    def collect_partitions(self) -> list[list]:
        jm = self.ctx.run_graph(self.graph)
        return self.ctx.fetch_partitions(jm, self.handle)

    def count(self) -> int:
        return len(self.collect())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        vals = self.collect()
        if not vals:
            raise ValueError("reduce of empty dataset")
        return functools.reduce(fn, vals)

    def sum(self) -> Any:
        return functools.reduce(operator.add, self.collect(), 0)
