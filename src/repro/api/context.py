"""UrsaContext — the user-facing entry point (like a SparkContext).

Couples a simulated cluster with an UrsaSystem and exposes dataset
construction::

    ctx = UrsaContext()
    counts = (
        ctx.parallelize(words, partitions=8)
           .map(lambda w: (w, 1))
           .reduce_by_key(lambda a, b: a + b, partitions=4)
           .collect()
    )

Each action (collect/count/...) submits one job built from the accumulated
lineage, drives the simulation until that job finishes, and returns real
results computed by the UDFs on the simulated cluster.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from ..cluster.cluster import Cluster
from ..cluster.spec import ClusterSpec
from ..dataflow.graph import OpGraph, ResourceType
from ..execution.jobmanager import JobManager
from ..scheduler.ursa import UrsaConfig, UrsaSystem
from .dataset import Dataset

__all__ = ["UrsaContext", "Broadcast"]


class Broadcast:
    """A read-only value shipped to every task (captured in UDF closures).

    In the simulation the value is process-local, so broadcasting is free;
    the wrapper exists so application code reads like the real API.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class UrsaContext:
    """Session object: cluster + scheduler + job submission for datasets."""

    def __init__(
        self,
        cluster_spec: Optional[ClusterSpec] = None,
        config: Optional[UrsaConfig] = None,
        default_memory_mb: float = 4 * 1024.0,
    ):
        self.cluster = Cluster(cluster_spec or ClusterSpec.small())
        self.system = UrsaSystem(self.cluster, config)
        self.default_memory_mb = default_memory_mb
        self._job_counter = 0

    # ------------------------------------------------------------------
    # dataset construction
    # ------------------------------------------------------------------
    def parallelize(
        self,
        items: Iterable[Any],
        partitions: int = 4,
        name: str = "input",
        graph: Optional[OpGraph] = None,
    ) -> Dataset:
        """Distribute ``items`` over ``partitions`` partitions.

        Pass an existing ``graph`` to build several inputs into one job
        (required for joins: one job = one OpGraph).
        """
        data = list(items)
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        chunks: list[list[Any]] = [[] for _ in range(partitions)]
        for i, item in enumerate(data):
            chunks[i % partitions].append(item)
        if graph is None:
            graph = OpGraph(name)
        handle = graph.create_data(partitions, name)
        from ..execution.metadata import estimate_payload_mb

        sizes = [max(estimate_payload_mb(c), 1e-6) for c in chunks]
        graph.set_input(handle, sizes, payloads=chunks)
        return Dataset(self, graph, handle, creator=None)

    def broadcast(self, value: Any) -> Broadcast:
        return Broadcast(value)

    # ------------------------------------------------------------------
    # job execution (called by Dataset actions)
    # ------------------------------------------------------------------
    def run_graph(self, graph: OpGraph, memory_mb: Optional[float] = None):
        """Submit the graph as a job, run it to completion, return its JM."""
        job = self.system.submit(
            graph, requested_memory_mb=memory_mb or self.default_memory_mb
        )
        self.system.run(max_events=20_000_000)
        if not job.done:  # pragma: no cover - defensive
            raise RuntimeError(f"job {graph.name!r} did not finish")
        return self.system.jms[job.job_id]

    def fetch_partitions(self, jm: JobManager, handle) -> list[Any]:
        """Read the materialized payloads of a dataset after its job ran."""
        out = []
        for i in range(handle.num_partitions):
            rec = jm.metadata.get(handle, i)
            out.append(rec.payload if rec.payload is not None else [])
        return out
