"""Simulated cluster: machines, specs, fabric wiring, utilization views."""

from .cluster import Cluster
from .machine import Machine
from .spec import GBPS_TO_MBPS, ClusterSpec, MachineSpec

__all__ = ["Cluster", "Machine", "ClusterSpec", "MachineSpec", "GBPS_TO_MBPS"]
