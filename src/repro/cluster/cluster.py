"""The simulated cluster: machines + network fabric + shared clock."""

from __future__ import annotations

from typing import Sequence

from ..simcore.engine import Simulation
from ..simcore.network import MaxMinFabric, NetworkFabric, ReceiverSideFabric
from ..simcore.tracing import TraceSet
from .machine import Machine
from .spec import ClusterSpec

__all__ = ["Cluster"]


class Cluster:
    """All simulated hardware for one experiment run.

    Everything that runs "on" the cluster (Ursa, baselines, workload drivers)
    shares ``cluster.sim`` as its clock and records into ``cluster.traces``.
    """

    def __init__(self, spec: ClusterSpec, sim: Simulation | None = None):
        self.spec = spec
        self.sim = sim if sim is not None else Simulation()
        self.traces = TraceSet()
        self.machines: list[Machine] = [
            Machine(self.sim, i, spec.machine, self.traces)
            for i in range(spec.num_machines)
        ]
        net_traces = [m.net_used for m in self.machines]
        if spec.fabric == "receiver":
            self.network: NetworkFabric = ReceiverSideFabric(
                self.sim, spec.num_machines, spec.machine.net_mbps, used_traces=net_traces
            )
        else:
            self.network = MaxMinFabric(
                self.sim, spec.num_machines, spec.machine.net_mbps, used_traces=net_traces
            )

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.spec.num_machines

    @property
    def total_cores(self) -> int:
        return self.spec.total_cores

    @property
    def total_memory_mb(self) -> float:
        return self.spec.total_memory_mb

    def machine(self, index: int) -> Machine:
        return self.machines[index]

    # ------------------------------------------------------------------
    # aggregate views used by metrics and figures
    # ------------------------------------------------------------------
    def series_names(self, kind: str) -> list[str]:
        """Trace names for ``kind`` across machines (e.g. 'cpu_used')."""
        return [f"m{i}.{kind}" for i in range(self.num_machines)]

    def mean_utilization(self, kind: str, t0: float, t1: float) -> float:
        """Cluster-average fraction of capacity used for a resource kind.

        ``kind`` is one of cpu_used/cpu_alloc/mem_used/mem_alloc/disk_used/
        net_used; the value is normalized by the per-machine capacity so the
        result is in [0, 1] (CPU alloc may exceed 1 under over-subscription).
        """
        caps = {
            "cpu_used": self.spec.machine.cores,
            "cpu_alloc": self.spec.machine.cores,
            "mem_used": self.spec.machine.memory_mb,
            "mem_alloc": self.spec.machine.memory_mb,
            "disk_used": self.spec.machine.disks,
            "net_used": 1.0,  # fabric traces record downlink-fraction units
        }
        cap = caps[kind]
        vals = [
            self.traces[name].mean(t0, t1) / cap for name in self.series_names(kind)
        ]
        return sum(vals) / len(vals)

    def per_machine_utilization(self, kind: str, t0: float, t1: float) -> list[float]:
        caps = {
            "cpu_used": self.spec.machine.cores,
            "cpu_alloc": self.spec.machine.cores,
            "mem_used": self.spec.machine.memory_mb,
            "mem_alloc": self.spec.machine.memory_mb,
            "disk_used": self.spec.machine.disks,
            "net_used": 1.0,
        }
        cap = caps[kind]
        return [self.traces[name].mean(t0, t1) / cap for name in self.series_names(kind)]

    def utilization_timeseries(
        self, kind: str, t0: float, t1: float, dt: float = 1.0
    ) -> tuple[list[float], list[float]]:
        """Cluster-average utilization in [0,100] % resampled to ``dt`` bins —
        the series the paper's utilization figures plot."""
        caps = {
            "cpu_used": self.spec.machine.cores,
            "mem_used": self.spec.machine.memory_mb,
            "disk_used": self.spec.machine.disks,
            "net_used": 1.0,
        }
        cap = caps[kind]
        grid: list[float] = []
        acc: list[float] = []
        for i, name in enumerate(self.series_names(kind)):
            g, vals = self.traces[name].resample(t0, t1, dt)
            if i == 0:
                grid = g
                acc = [0.0] * len(vals)
            for j, v in enumerate(vals):
                acc[j] += v
        n = self.num_machines
        return grid, [100.0 * v / (cap * n) for v in acc]

    def integrate(self, kind: str, t0: float, t1: float) -> float:
        """Sum of the trace integrals across machines (e.g. core-seconds)."""
        return sum(self.traces[name].integral(t0, t1) for name in self.series_names(kind))
