"""Cluster and machine specifications.

The defaults mirror the paper's testbed (§5): 20 machines, 32 virtual cores,
128 GB RAM, 10 Gbps Ethernet, one SAS disk.  The CPU "work rate" calibrates
how many MB of input a core processes per second; the paper estimates CPU
usage *as* input size (§4.2.1), so this single rate converts work to time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["MachineSpec", "ClusterSpec", "GBPS_TO_MBPS"]

# 1 Gbps = 125 MB/s
GBPS_TO_MBPS = 125.0


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one worker machine."""

    cores: int = 32
    core_rate_mbps: float = 25.0        # MB of work one core processes per second
    memory_mb: float = 128.0 * 1024.0   # 128 GB
    net_gbps: float = 10.0              # downlink (and uplink) bandwidth
    disk_mbps: float = 150.0            # sequential disk bandwidth
    disks: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.core_rate_mbps <= 0:
            raise ValueError("core_rate_mbps must be positive")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.net_gbps <= 0:
            raise ValueError("net_gbps must be positive")
        if self.disk_mbps <= 0 or self.disks <= 0:
            raise ValueError("disk parameters must be positive")

    @property
    def net_mbps(self) -> float:
        return self.net_gbps * GBPS_TO_MBPS


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated cluster."""

    num_machines: int = 20
    machine: MachineSpec = field(default_factory=MachineSpec)
    fabric: str = "receiver"  # "receiver" (paper's model) or "maxmin"

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if self.fabric not in ("receiver", "maxmin"):
            raise ValueError(f"unknown fabric {self.fabric!r}")

    @property
    def total_cores(self) -> int:
        return self.num_machines * self.machine.cores

    @property
    def total_memory_mb(self) -> float:
        return self.num_machines * self.machine.memory_mb

    def with_network(self, net_gbps: float) -> "ClusterSpec":
        """The same cluster with a different link speed (Figure 6 sweeps)."""
        return replace(self, machine=replace(self.machine, net_gbps=net_gbps))

    @classmethod
    def paper_cluster(cls, **overrides) -> "ClusterSpec":
        """The 20×32-core, 128 GB, 10 GbE testbed of §5."""
        return cls(**overrides)

    @classmethod
    def small(cls, num_machines: int = 4, cores: int = 8, **machine_overrides) -> "ClusterSpec":
        """A small cluster for unit tests and quick examples."""
        mspec = MachineSpec(cores=cores, memory_mb=16 * 1024.0, **machine_overrides)
        return cls(num_machines=num_machines, machine=mspec)
