"""A simulated worker machine.

A machine bundles the fluid resources of one server plus the two accounting
ledgers the paper's metrics need (§5 "Performance metrics"):

* *allocation* ledgers — core-seconds / memory-seconds **reserved** (by a
  container in the baselines, or held by a running monotask in Ursa).  Their
  integral is the ``X`` in ``SE = X / Y``.
* *usage* ledgers — core-seconds / memory actually **driven**.  Their
  integral is the ``Z`` in ``UE = Z / X``.

The CPU pool is deliberately *not* capped at the allocated core count: a
baseline that oversubscribes (allocates more advertised cores than physical
ones, §5.1.2) simply ends up with more concurrent compute phases than cores,
and the SharedProcessor slows everyone down — contention emerges rather than
being modelled explicitly.
"""

from __future__ import annotations

from typing import Optional

from ..simcore.engine import Simulation
from ..simcore.resources import MemoryLedger, SharedProcessor
from ..simcore.tracing import StepSeries, TraceSet
from .spec import MachineSpec

__all__ = ["Machine"]


class Machine:
    """One simulated server: CPU pool, disk, memory, and ledgers."""

    def __init__(
        self,
        sim: Simulation,
        index: int,
        spec: MachineSpec,
        traces: Optional[TraceSet] = None,
    ):
        self.sim = sim
        self.index = index
        self.spec = spec
        self.traces = traces if traces is not None else TraceSet()

        prefix = f"m{index}"
        self.cpu_used: StepSeries = self.traces.series(f"{prefix}.cpu_used")
        self.cpu_alloc: StepSeries = self.traces.series(f"{prefix}.cpu_alloc")
        self.mem_used: StepSeries = self.traces.series(f"{prefix}.mem_used")
        self.mem_alloc: StepSeries = self.traces.series(f"{prefix}.mem_alloc")
        self.disk_used: StepSeries = self.traces.series(f"{prefix}.disk_used")
        self.net_used: StepSeries = self.traces.series(f"{prefix}.net_used")

        self.cpu = SharedProcessor(
            sim,
            capacity=spec.cores,
            unit_rate=spec.core_rate_mbps,
            per_task_cap=1.0,
            used_trace=self.cpu_used,
            name=f"{prefix}.cpu",
        )
        self.disk = SharedProcessor(
            sim,
            capacity=spec.disks,
            unit_rate=spec.disk_mbps,
            per_task_cap=1.0,
            used_trace=self.disk_used,
            name=f"{prefix}.disk",
        )
        # The physical ledger tracks *reservations* (containers or Ursa task
        # memory) and feeds the allocation trace; actual usage is recorded
        # separately via use_memory()/unuse_memory().
        self.memory = MemoryLedger(
            sim, spec.memory_mb, used_trace=self.mem_alloc, name=f"{prefix}.mem"
        )

        self._alloc_cores = 0.0
        self._mem_in_use = 0.0

    # ------------------------------------------------------------------
    # allocation ledgers (SE accounting + scheduler availability view)
    # ------------------------------------------------------------------
    @property
    def allocated_cores(self) -> float:
        return self._alloc_cores

    @property
    def allocated_memory(self) -> float:
        return self.memory.used

    @property
    def memory_in_use(self) -> float:
        return self._mem_in_use

    def reserve_cores(self, n: float) -> None:
        """Reserve ``n`` advertised cores (may exceed physical under
        over-subscription policies; the CPU pool will then contend)."""
        if n < 0:
            raise ValueError("cannot reserve a negative number of cores")
        self._alloc_cores += n
        self.cpu_alloc.record(self.sim.now, self._alloc_cores)

    def release_cores(self, n: float) -> None:
        if n < 0 or n > self._alloc_cores + 1e-9:
            raise ValueError(
                f"m{self.index}: releasing {n} cores but only "
                f"{self._alloc_cores} reserved"
            )
        self._alloc_cores = max(0.0, self._alloc_cores - n)
        self.cpu_alloc.record(self.sim.now, self._alloc_cores)

    def reserve_memory(self, mb: float) -> None:
        """Reserve (allocate) memory: capacity-checked, drives mem_alloc."""
        self.memory.allocate(mb)

    def try_reserve_memory(self, mb: float) -> bool:
        return self.memory.try_allocate(mb)

    def release_memory(self, mb: float) -> None:
        self.memory.release(mb)

    def use_memory(self, mb: float) -> None:
        """Record actual memory usage (the Z of UE_mem), no capacity check:
        usage always fits inside some reservation."""
        if mb < 0:
            raise ValueError("cannot use negative memory")
        self._mem_in_use += mb
        self.mem_used.record(self.sim.now, self._mem_in_use)

    def unuse_memory(self, mb: float) -> None:
        if mb < 0 or mb > self._mem_in_use + 1e-6:
            raise ValueError(
                f"m{self.index}: un-using {mb:.1f} MB but only "
                f"{self._mem_in_use:.1f} MB in use"
            )
        self._mem_in_use = max(0.0, self._mem_in_use - mb)
        self.mem_used.record(self.sim.now, self._mem_in_use)

    # ------------------------------------------------------------------
    @property
    def idle_cores(self) -> float:
        """Advertised cores not currently reserved."""
        return max(0.0, self.spec.cores - self._alloc_cores)

    @property
    def running_cpu_tasks(self) -> int:
        return self.cpu.active_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(m{self.index}, cores={self.spec.cores}, "
            f"alloc={self._alloc_cores:.0f}, running={self.cpu.active_count})"
        )
