"""Size-only workload specifications and their OpGraph compiler.

Experiments need jobs that are statistically shaped like the paper's
workloads (TPC-H/TPC-DS queries, iterative ML, graph analytics) without
materializing terabytes.  A :class:`JobSpec` is a DAG of
:class:`StageSpec`s; ``build_graph`` compiles it into Ursa primitives with
per-partition sizes drawn from seeded skew distributions.  The same graphs
run unmodified on Ursa and on every baseline system (they all host the same
execution layer).

Stage knobs map to the §2 utilization patterns:

* ``expand`` shapes intermediate-data growth/shrinkage (join fan-outs vs
  filters) — the irregular fluctuations of Figs. 1e–1h;
* ``cpu_factor`` decouples actual compute time from the input-size estimate
  (the scheduler's processing-rate monitor absorbs the difference, §4.2.1);
* ``skew_sigma`` skews both partition sizes and shuffle shard sizes;
* ``reads_cache_of`` re-reads a resident dataset (iterative ML/graph jobs),
  which pins tasks by locality and produces the regular CPU/network
  alternation of Figs. 1a–1d.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..dataflow.graph import DepType, GraphError, OpGraph, ResourceType
from ..simcore.rng import lognormal_multipliers

__all__ = ["StageSpec", "JobSpec"]


@dataclass
class StageSpec:
    """One stage of a size-only job."""

    parallelism: int
    shuffle_parents: tuple[int, ...] = ()
    narrow_parent: Optional[int] = None
    reads_cache_of: Optional[int] = None
    source_mb: float = 0.0           # > 0: stage reads this much job input
    from_disk: bool = True           # source input arrives via disk monotasks
    expand: float = 1.0              # stage output size = expand × input size
    cpu_factor: float = 1.0          # actual CPU work vs input-size estimate
    skew_sigma: float = 0.0
    m2i: float = 1.5
    write_output_mb: float = 0.0     # > 0: stage also writes final output

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.expand <= 0 or self.cpu_factor <= 0:
            raise ValueError("expand and cpu_factor must be positive")
        if self.source_mb < 0 or self.write_output_mb < 0:
            raise ValueError("sizes must be non-negative")


@dataclass
class JobSpec:
    """A complete size-only job: stages + resource-request behaviour."""

    name: str
    stages: list[StageSpec]
    requested_memory_mb: float
    memory_accuracy: float = 0.8
    category: str = "generic"
    seed: int = 0

    def validate(self) -> None:
        for i, st in enumerate(self.stages):
            for p in st.shuffle_parents:
                if not 0 <= p < i:
                    raise ValueError(f"stage {i}: bad shuffle parent {p}")
            for ref in (st.narrow_parent, st.reads_cache_of):
                if ref is not None:
                    if not 0 <= ref < i:
                        raise ValueError(f"stage {i}: bad stage reference {ref}")
                    if self.stages[ref].parallelism != st.parallelism:
                        raise ValueError(
                            f"stage {i}: narrow/cache link to stage {ref} "
                            f"requires equal parallelism"
                        )
            if st.source_mb == 0 and not st.shuffle_parents and st.narrow_parent is None \
                    and st.reads_cache_of is None:
                raise ValueError(f"stage {i} has no inputs")

    # ------------------------------------------------------------------
    def build_graph(self, rng: np.random.Generator) -> OpGraph:
        """Compile to an OpGraph with per-partition skew drawn from ``rng``."""
        self.validate()
        g = OpGraph(self.name)
        cpu_ops = []
        out_handles = []

        for i, st in enumerate(self.stages):
            cpu_reads = []
            cpu_parents = []  # (op, deptype)

            if st.source_mb > 0:
                weights = lognormal_multipliers(rng, st.parallelism, st.skew_sigma)
                sizes = [st.source_mb / st.parallelism * w for w in weights]
                src = g.create_data(st.parallelism, f"s{i}_input")
                g.set_input(src, sizes)
                if st.from_disk:
                    loaded = g.create_data(st.parallelism, f"s{i}_loaded")
                    disk = g.create_op(ResourceType.DISK, f"s{i}_read").read(src).create(loaded)
                    cpu_reads.append(loaded)
                    cpu_parents.append((disk, DepType.ASYNC))
                else:
                    cpu_reads.append(src)

            for p in st.shuffle_parents:
                shuffled = g.create_data(st.parallelism, f"s{i}_from{p}")
                net = (
                    g.create_op(ResourceType.NETWORK, f"s{i}_shuffle{p}")
                    .read(out_handles[p])
                    .create(shuffled)
                )
                if st.skew_sigma > 0:
                    net.set_shard_weights(
                        list(lognormal_multipliers(rng, st.parallelism, st.skew_sigma))
                    )
                cpu_ops[p].to(net, DepType.SYNC)
                cpu_reads.append(shuffled)
                cpu_parents.append((net, DepType.ASYNC))

            if st.narrow_parent is not None:
                cpu_reads.append(out_handles[st.narrow_parent])
                cpu_parents.append((cpu_ops[st.narrow_parent], DepType.ASYNC))

            if st.reads_cache_of is not None:
                cpu_reads.append(out_handles[st.reads_cache_of])
                # no edge: the cache producer is an ancestor via other paths;
                # if it is not, fall back to a narrow dependency for safety
                if not self._has_path(st.reads_cache_of, i):
                    cpu_parents.append((cpu_ops[st.reads_cache_of], DepType.ASYNC))

            out = g.create_data(st.parallelism, f"s{i}_out")
            expand_w = lognormal_multipliers(rng, st.parallelism, st.skew_sigma)
            cpu = (
                g.create_op(ResourceType.CPU, f"s{i}_cpu")
                .read(*cpu_reads)
                .create(out)
                .set_cpu_work_factor(st.cpu_factor)
                .set_m2i(st.m2i)
                .set_output_size(
                    lambda idx, size, e=st.expand, w=expand_w: size * e * w[idx]
                )
            )
            for op, dep in cpu_parents:
                op.to(cpu, dep)
            cpu_ops.append(cpu)
            out_handles.append(out)

            if st.write_output_mb > 0:
                written = g.create_data(st.parallelism, f"s{i}_written")
                wr = g.create_op(ResourceType.DISK, f"s{i}_write").read(out).create(written)
                cpu.to(wr, DepType.ASYNC)

        return g

    def _has_path(self, src: int, dst: int) -> bool:
        """Is stage ``src`` an ancestor of ``dst`` through declared deps?"""
        frontier = [dst]
        seen = set()
        while frontier:
            s = frontier.pop()
            if s == src:
                return True
            if s in seen:
                continue
            seen.add(s)
            st = self.stages[s]
            frontier.extend(st.shuffle_parents)
            if st.narrow_parent is not None:
                frontier.append(st.narrow_parent)
        return False

    # ------------------------------------------------------------------
    def total_source_mb(self) -> float:
        return sum(st.source_mb for st in self.stages)

    @property
    def depth(self) -> int:
        memo: dict[int, int] = {}

        def d(i: int) -> int:
            if i in memo:
                return memo[i]
            st = self.stages[i]
            parents = list(st.shuffle_parents)
            if st.narrow_parent is not None:
                parents.append(st.narrow_parent)
            memo[i] = 1 + max((d(p) for p in parents), default=0)
            return memo[i]

        return max(d(i) for i in range(len(self.stages)))
