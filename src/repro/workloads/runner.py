"""Submitting JobSpec workloads to any system (Ursa or baseline)."""

from __future__ import annotations

from typing import Sequence

from ..execution.job import Job
from ..simcore.rng import derive_rng
from .spec import JobSpec

__all__ = ["submit_workload"]


def submit_workload(system, workload: Sequence[tuple[JobSpec, float]], seed: int = 0) -> list[Job]:
    """Build each JobSpec's graph (seeded) and submit at its arrival time.

    Works with both :class:`~repro.scheduler.ursa.UrsaSystem` and
    :class:`~repro.baselines.system.YarnSystem` — they expose the same
    ``submit`` signature and host the same execution layer.
    """
    jobs: list[Job] = []
    for i, (spec, at) in enumerate(workload):
        rng = derive_rng(seed, "workload_build", i, spec.seed)
        graph = spec.build_graph(rng)
        job = system.submit(
            graph,
            requested_memory_mb=spec.requested_memory_mb,
            at=at,
            category=spec.category,
        )
        job.memory_accuracy = spec.memory_accuracy
        jobs.append(job)
    return jobs
