"""The expectable synthetic workload (§5.3, Figures 8–10).

Jobs have 5 homogeneous stages; each stage's parallelism equals the cluster
core count, so a stage's CPU monotasks fill the whole cluster.  Stage wall
time splits into a CPU phase and a network (shuffle) phase of roughly equal
length, which is what lets two jobs interleave perfectly: while job A
computes, job B shuffles.  Type 1 jobs carry twice the data of Type 2.

``expected_jcts`` reproduces the paper's ideal-case arithmetic: under EJF,
jobs run in overlapped pairs — j1 finishes at T, j2 at T + S (one stage
behind), j3 at 2T, j4 at 2T + S, ... where T is the single-job JCT and S
one stage's wall time.
"""

from __future__ import annotations

from .spec import JobSpec, StageSpec

__all__ = [
    "make_synthetic_job",
    "synthetic_setting1",
    "synthetic_setting2",
    "expected_jcts",
    "SyntheticParams",
]


class SyntheticParams:
    """Sizing for one cluster: phases balanced so CPU and network phases of
    consecutive jobs overlap."""

    def __init__(
        self,
        total_cores: int,
        core_rate_mbps: float,
        net_mbps_per_machine: float,
        machines: int,
        stage_seconds: float = 8.0,
        stages: int = 5,
    ):
        self.total_cores = total_cores
        self.stages = stages
        self.stage_seconds = stage_seconds
        # CPU phase ≈ network phase ≈ stage_seconds / 2
        half = stage_seconds / 2.0
        self.cpu_mb_per_task = core_rate_mbps * half
        # a stage's shuffle moves (tasks/machine × task size) through each
        # downlink; choose the per-task size so that takes ~half a stage
        tasks_per_machine = total_cores / machines
        self.net_mb_per_task = net_mbps_per_machine * half / tasks_per_machine

    def job_seconds(self, size_factor: float = 1.0) -> float:
        return self.stages * self.stage_seconds * size_factor


def make_synthetic_job(
    params: SyntheticParams,
    job_type: int,
    seed: int,
    name: str,
) -> JobSpec:
    """Type 1 handles twice the data of Type 2 (§5.3)."""
    if job_type not in (1, 2):
        raise ValueError("job_type must be 1 or 2")
    factor = 1.0 if job_type == 1 else 0.55  # Type 2 ≈ 4.4 s vs 8 s stages
    p = params.total_cores
    per_task_net = params.net_mb_per_task * factor
    per_task_cpu = params.cpu_mb_per_task * factor
    # stage input per task is the shuffled volume; cpu_factor converts that
    # into the desired compute time independent of the shuffle size
    cpu_factor = per_task_cpu / per_task_net

    stages: list[StageSpec] = [
        StageSpec(
            parallelism=p,
            source_mb=per_task_net * p,
            from_disk=False,            # generates random numbers in memory
            expand=1.0,
            cpu_factor=cpu_factor,
            skew_sigma=0.0,
            m2i=1.1,
        )
    ]
    for _ in range(params.stages - 1):
        stages.append(
            StageSpec(
                parallelism=p,
                shuffle_parents=(len(stages) - 1,),
                expand=1.0,
                cpu_factor=cpu_factor,
                skew_sigma=0.0,
                m2i=1.1,
            )
        )
    return JobSpec(
        name=name,
        stages=stages,
        requested_memory_mb=per_task_net * p * 1.2,
        memory_accuracy=0.9,
        category="synthetic",
        seed=seed,
    )


def synthetic_setting1(params: SyntheticParams, n_jobs: int = 40, seed: int = 23):
    """Setting 1: n Type-1 jobs submitted back-to-back (EJF orders them)."""
    return [
        (make_synthetic_job(params, 1, seed + i, f"type1_{i}"), 0.25 * i)
        for i in range(n_jobs)
    ]


def synthetic_setting2(params: SyntheticParams, n_pairs: int = 20, seed: int = 29):
    """Setting 2: Type-1 and Type-2 jobs submitted alternately.

    Half-second spacing keeps "earliest" unambiguous for EJF while staying
    negligible against the tens-of-seconds JCTs the expectation predicts.
    """
    out = []
    for i in range(n_pairs):
        out.append((make_synthetic_job(params, 1, seed + 2 * i, f"type1_{i}"), 1.0 * i))
        out.append((make_synthetic_job(params, 2, seed + 2 * i + 1, f"type2_{i}"), 1.0 * i + 0.5))
    return out


def expected_jcts(
    params: SyntheticParams, job_types: list[int], policy: str = "ejf"
) -> list[float]:
    """Ideal-case JCTs with pairwise CPU/network interleaving.

    Under **EJF**, jobs are processed in submission order, two at a time:
    the pair's first job finishes a full job time after the pair starts and
    the second one stage later.  Under **SRJF**, the smaller (Type-2) jobs
    are processed first (that is what Fig. 10b's expectation curve shows),
    then the Type-1 jobs, again pairwise.  Returned in submission order.
    """
    order = list(range(len(job_types)))
    if policy == "srjf":
        order.sort(key=lambda i: (0 if job_types[i] == 2 else 1, i))
    elif policy != "ejf":
        raise ValueError(f"unknown policy {policy!r}")

    jcts = [0.0] * len(job_types)
    t_pair_start = 0.0
    for k in range(0, len(order), 2):
        i = order[k]
        first = params.job_seconds(1.0 if job_types[i] == 1 else 0.55)
        jcts[i] = t_pair_start + first
        if k + 1 < len(order):
            j = order[k + 1]
            second_stage = params.stage_seconds * (1.0 if job_types[j] == 1 else 0.55)
            second = params.job_seconds(1.0 if job_types[j] == 1 else 0.55)
            jcts[j] = t_pair_start + max(first + second_stage, second)
        t_pair_start += first
    return jcts
