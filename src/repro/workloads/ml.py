"""Iterative machine-learning job shapes (LR, k-means) — Figs. 1a/1b.

Each iteration is compute on cached data (CPU burst, pinned by locality to
the machines holding the partitions) followed by a parameter shuffle
(network burst): the "regular and frequent alternation of very high and low
CPU utilization" of §2.  The parameter-exchange volume is a real knob —
LR on webspam ships large dense gradients, so the network phase is visible.
"""

from __future__ import annotations

from ..simcore.rng import derive_rng
from .spec import JobSpec, StageSpec

__all__ = ["make_lr_job", "make_kmeans_job"]


def _iterative_job(
    name: str,
    category: str,
    data_mb: float,
    iterations: int,
    parallelism: int,
    cpu_factor: float,
    param_fraction: float,
    seed: int,
    agg_parallelism: int | None = None,
) -> JobSpec:
    """Common shape: load+cache, then per iteration compute → all-reduce.

    ``agg_parallelism=1`` models a driver-side reduce (Spark LR's serialized
    aggregation — the reason its UE collapses to ~14% in Table 1: the
    executors' cores idle while one thread merges gradients)."""
    rng = derive_rng(seed, "iterative", name)
    stages: list[StageSpec] = [
        StageSpec(  # load training data into memory (cached thereafter)
            parallelism=parallelism,
            source_mb=data_mb,
            expand=1.0,
            cpu_factor=0.3,
            skew_sigma=0.1,
            m2i=1.2,
        )
    ]
    if agg_parallelism is None:
        agg_parallelism = max(1, parallelism // 8)
    prev_agg: int | None = None
    for it in range(iterations):
        compute = StageSpec(
            parallelism=parallelism,
            # parameters from the previous all-reduce + the cached data
            shuffle_parents=(prev_agg,) if prev_agg is not None else (),
            narrow_parent=0 if prev_agg is None else None,
            reads_cache_of=0 if prev_agg is not None else None,
            expand=param_fraction,      # emits gradients/centroid updates
            cpu_factor=cpu_factor,      # compute-heavy per input byte
            skew_sigma=0.15,
            m2i=1.1,
        )
        stages.append(compute)
        agg = StageSpec(
            parallelism=agg_parallelism,
            shuffle_parents=(len(stages) - 1,),
            expand=float(rng.uniform(0.8, 1.2)),  # merged params ≈ gradients
            cpu_factor=0.8,
            skew_sigma=0.1,
            m2i=1.2,
        )
        stages.append(agg)
        prev_agg = len(stages) - 1
    return JobSpec(
        name=name,
        stages=stages,
        requested_memory_mb=max(1024.0, data_mb * 1.4),
        memory_accuracy=0.85,
        category=category,
        seed=seed,
    )


def make_lr_job(
    data_mb: float = 24_000.0,
    iterations: int = 10,
    parallelism: int = 600,
    seed: int = 3,
    name: str = "lr_webspam",
) -> JobSpec:
    """Logistic regression on a webspam-sized dense dataset (Fig. 1b):
    heavy per-byte compute, large dense gradients (≈15% of the data per
    iteration) merged by a serial driver-side reduce."""
    return _iterative_job(
        name, "ml", data_mb, iterations, parallelism,
        cpu_factor=2.5, param_fraction=0.15, seed=seed, agg_parallelism=1,
    )


def make_kmeans_job(
    data_mb: float = 20_000.0,
    iterations: int = 8,
    parallelism: int = 600,
    seed: int = 4,
    name: str = "kmeans_mnist8m",
) -> JobSpec:
    """k-means on an mnist8m-sized dataset: lighter compute, tiny centroid
    exchange."""
    return _iterative_job(
        name, "ml", data_mb, iterations, parallelism,
        cpu_factor=1.6, param_fraction=0.03, seed=seed,
    )
