"""TPC-DS-shaped workload (§5.1.1, Table 3 / Figure 5).

Same construction style as the TPC-H generator but with the properties the
paper attributes to TPC-DS: much deeper DAGs (depth 5–43, mean ≈ 9),
partitioned tables that produce *many small tasks* on small datasets, and
stages whose parallelism alternates between high and low (the "3,367 →
1,090 → 2,791 tasks" pattern that defeats Spark's dynamic allocation).
"""

from __future__ import annotations

import numpy as np

from ..simcore.rng import derive_rng
from .spec import JobSpec, StageSpec
from .tpch import DATASET_MIX, DEFAULT_PARTITION_MB, _parallelism

__all__ = ["make_tpcds_job", "tpcds_workload"]


def make_tpcds_job(
    dataset_gb: float,
    scale: float,
    seed: int,
    name: str,
    max_parallelism: int = 2000,
    partition_mb: float = DEFAULT_PARTITION_MB,
) -> JobSpec:
    rng = derive_rng(seed, "tpcds_job")
    # depth 5..43, geometric-ish mass around 9 (the paper's mean)
    depth = int(np.clip(5 + rng.geometric(0.22), 5, 43))
    sel = float(rng.uniform(0.05, 0.35))
    skew = float(rng.uniform(0.3, 0.9))
    input_mb = dataset_gb * 1024.0 * sel * scale

    stages: list[StageSpec] = [
        StageSpec(
            parallelism=_parallelism(input_mb, max_parallelism, partition_mb),
            source_mb=input_mb,
            expand=float(rng.uniform(0.3, 0.7)),
            cpu_factor=float(rng.uniform(0.8, 1.4)),
            skew_sigma=skew * 0.5,
            m2i=2.0,
        )
    ]
    size = input_mb * stages[0].expand
    for level in range(depth - 1):
        last = level == depth - 2
        # alternating high/low parallelism: even levels re-partition wide,
        # odd levels aggregate narrow — Spark's dynamic-allocation bane
        wide = level % 2 == 0
        par_mb = size * (1.6 if wide else 0.35)
        expand = 0.05 if last else float(rng.uniform(0.5, 1.25) if wide else rng.uniform(0.2, 0.7))
        stages.append(
            StageSpec(
                parallelism=_parallelism(par_mb, max_parallelism, partition_mb),
                shuffle_parents=(len(stages) - 1,),
                expand=expand,
                cpu_factor=float(rng.uniform(0.9, 1.7)),
                skew_sigma=skew,
                m2i=1.5,
                write_output_mb=size * 0.02 if last else 0.0,
            )
        )
        size *= expand
    return JobSpec(
        name=name,
        stages=stages,
        requested_memory_mb=max(1024.0, input_mb * float(rng.uniform(0.8, 1.6))),
        memory_accuracy=float(rng.uniform(0.7, 0.9)),
        category="tpcds",
        seed=seed,
    )


def tpcds_workload(
    n_jobs: int = 200,
    seed: int = 11,
    scale: float = 1.0,
    arrival_interval: float = 5.0,
    max_parallelism: int = 2000,
    partition_mb: float = DEFAULT_PARTITION_MB,
) -> list[tuple[JobSpec, float]]:
    rng = derive_rng(seed, "tpcds_workload")
    sizes = np.array([s for s, _p in DATASET_MIX])
    probs = np.array([p for _s, p in DATASET_MIX])
    out: list[tuple[JobSpec, float]] = []
    for i in range(n_jobs):
        dataset_gb = float(rng.choice(sizes, p=probs))
        job = make_tpcds_job(
            dataset_gb,
            scale,
            seed=int(rng.integers(0, 2**31 - 1)),
            name=f"tpcds{i}",
            max_parallelism=max_parallelism,
            partition_mb=partition_mb,
        )
        out.append((job, i * arrival_interval))
    return out
