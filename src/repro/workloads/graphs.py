"""Graph-analytics job shapes (PageRank, connected components) — Figs 1c/1d.

Iterative supersteps over a cached, partitioned graph: a CPU burst
generating messages, a large shuffle (message volume ≈ edge data), and an
apply step.  CC's message volume decays as labels converge; PR's stays flat
— both patterns show the §2 CPU/network alternation at graph scale.
"""

from __future__ import annotations

from ..simcore.rng import derive_rng
from .spec import JobSpec, StageSpec

__all__ = ["make_pagerank_job", "make_cc_job"]


def _graph_job(
    name: str,
    graph_mb: float,
    iterations: int,
    parallelism: int,
    msg_fraction_fn,
    cpu_factor: float,
    seed: int,
) -> JobSpec:
    rng = derive_rng(seed, "graphjob", name)
    del rng  # shape is deterministic; kept for interface symmetry
    stages: list[StageSpec] = [
        StageSpec(  # load and partition the graph (cached)
            parallelism=parallelism,
            source_mb=graph_mb,
            expand=1.0,
            cpu_factor=0.4,
            skew_sigma=0.4,   # power-law degree skew
            m2i=1.3,
        )
    ]
    prev_apply: int | None = None
    for it in range(iterations):
        gen = StageSpec(
            parallelism=parallelism,
            shuffle_parents=(),
            narrow_parent=prev_apply if prev_apply is not None else 0,
            reads_cache_of=0 if prev_apply is not None else None,
            expand=msg_fraction_fn(it),   # messages per byte of state+graph
            cpu_factor=cpu_factor,
            skew_sigma=0.5,
            m2i=1.4,
        )
        stages.append(gen)
        apply = StageSpec(
            parallelism=parallelism,
            shuffle_parents=(len(stages) - 1,),
            expand=0.08,                  # new vertex state is small
            cpu_factor=1.0,
            skew_sigma=0.4,
            m2i=1.4,
        )
        stages.append(apply)
        prev_apply = len(stages) - 1
    return JobSpec(
        name=name,
        stages=stages,
        requested_memory_mb=max(1024.0, graph_mb * 1.6),
        memory_accuracy=0.85,
        category="graph",
        seed=seed,
    )


def make_pagerank_job(
    graph_mb: float = 80_000.0,
    iterations: int = 10,
    parallelism: int = 600,
    seed: int = 5,
    name: str = "pr_webuk",
) -> JobSpec:
    """PageRank on a WebUK-sized graph: flat message volume per iteration."""
    return _graph_job(
        name, graph_mb, iterations, parallelism,
        msg_fraction_fn=lambda it: 0.6,
        cpu_factor=1.2,
        seed=seed,
    )


def make_cc_job(
    graph_mb: float = 60_000.0,
    iterations: int = 8,
    parallelism: int = 600,
    seed: int = 6,
    name: str = "cc_friendster",
) -> JobSpec:
    """Connected components on a Friendster-sized graph: message volume
    decays geometrically as labels converge (Fig. 1c/1d tail-off)."""
    return _graph_job(
        name, graph_mb, iterations, parallelism,
        msg_fraction_fn=lambda it: 0.7 * (0.65 ** it),
        cpu_factor=0.9,
        seed=seed,
    )
