"""TPC-H-shaped workload generator (§5 "Workloads").

200 jobs, each a query template drawn uniformly from the 22 TPC-H queries,
run against a 200 GB / 500 GB / 1 TB dataset with probability 60/30/10.
Template DAG depths span 2–10; when executed individually job JCTs land in
the paper's reported few-seconds-to-minutes range (scaled by ``scale``).

Templates are parametric, not literal query plans: per query we fix the DAG
depth, the input selectivity (how much of the dataset the query touches),
per-stage expansion (join fan-out vs filter shrinkage) and skew — the knobs
§2 identifies as the source of irregular utilization.
"""

from __future__ import annotations

import numpy as np

from ..simcore.rng import derive_rng
from .spec import JobSpec, StageSpec

__all__ = ["QUERY_TEMPLATES", "make_tpch_job", "tpch_workload", "DATASET_MIX"]

# (depth, selectivity, join_heaviness, skew_sigma) per TPC-H query 1..22;
# depths follow the paper's 2..10 range, join-heavy queries (5, 7, 8, 9, 21)
# get deep DAGs and high skew (Q8 "has many joins and group-by", §2).
QUERY_TEMPLATES: dict[int, tuple[int, float, float, float]] = {
    1: (2, 0.45, 0.0, 0.2),
    2: (5, 0.04, 0.6, 0.5),
    3: (4, 0.25, 0.4, 0.4),
    4: (3, 0.15, 0.3, 0.3),
    5: (6, 0.20, 0.8, 0.5),
    6: (2, 0.30, 0.0, 0.2),
    7: (6, 0.18, 0.7, 0.6),
    8: (8, 0.22, 0.9, 0.9),
    9: (9, 0.30, 0.9, 0.8),
    10: (4, 0.25, 0.5, 0.4),
    11: (4, 0.05, 0.4, 0.4),
    12: (3, 0.20, 0.3, 0.3),
    13: (3, 0.18, 0.4, 0.5),
    14: (3, 0.12, 0.3, 0.3),
    15: (4, 0.10, 0.3, 0.3),
    16: (4, 0.06, 0.4, 0.5),
    17: (5, 0.08, 0.6, 0.6),
    18: (5, 0.35, 0.6, 0.6),
    19: (3, 0.10, 0.4, 0.4),
    20: (5, 0.08, 0.5, 0.5),
    21: (10, 0.25, 0.8, 0.7),
    22: (3, 0.05, 0.3, 0.4),
}

# (dataset size in GB, probability) — §5.1: 60% 200 GB, 30% 500 GB, 10% 1 TB
DATASET_MIX: list[tuple[float, float]] = [(200.0, 0.6), (500.0, 0.3), (1000.0, 0.1)]

DEFAULT_PARTITION_MB = 128.0  # ≈5 s CPU tasks at the paper's core rate


def _parallelism(input_mb: float, max_parallelism: int, partition_mb: float = DEFAULT_PARTITION_MB) -> int:
    return int(np.clip(np.ceil(input_mb / partition_mb), 1, max_parallelism))


def make_tpch_job(
    query: int,
    dataset_gb: float,
    scale: float,
    seed: int,
    name: str | None = None,
    max_parallelism: int = 2000,
    partition_mb: float = DEFAULT_PARTITION_MB,
) -> JobSpec:
    """Build one query-shaped JobSpec.

    ``partition_mb`` sets task granularity (the paper's ≈128 MB / ≈5 s
    tasks); scaled-down runs shrink it too, so stage *widths* — and hence
    cluster contention — match the full-size workload."""
    if query not in QUERY_TEMPLATES:
        raise ValueError(f"unknown TPC-H query {query}")
    depth, sel, join_heavy, skew = QUERY_TEMPLATES[query]
    rng = derive_rng(seed, "tpch_job", query)
    input_mb = dataset_gb * 1024.0 * sel * scale

    stages: list[StageSpec] = []
    # scan stage(s): join-heavy queries scan two inputs
    two_sources = join_heavy >= 0.5 and depth >= 4
    scan_mb = input_mb * (0.6 if two_sources else 1.0)
    stages.append(
        StageSpec(
            parallelism=_parallelism(scan_mb, max_parallelism, partition_mb),
            source_mb=scan_mb,
            expand=float(rng.uniform(0.3, 0.7)),  # scans filter/project
            cpu_factor=float(rng.uniform(0.8, 1.3)),
            skew_sigma=skew * 0.5,
            m2i=2.0,
        )
    )
    current = [0]  # frontier stages feeding the next level
    size = scan_mb * stages[0].expand
    if two_sources:
        side_mb = input_mb * 0.4
        stages.append(
            StageSpec(
                parallelism=_parallelism(side_mb, max_parallelism, partition_mb),
                source_mb=side_mb,
                expand=float(rng.uniform(0.3, 0.7)),
                cpu_factor=float(rng.uniform(0.8, 1.3)),
                skew_sigma=skew * 0.5,
                m2i=2.0,
            )
        )
        current.append(1)
        size += side_mb * stages[1].expand

    remaining_depth = depth - 1
    for level in range(remaining_depth):
        last = level == remaining_depth - 1
        if len(current) == 2:
            # join the two frontiers
            expand = float(rng.uniform(0.8, 1.0 + join_heavy))
            sel_join = float(rng.uniform(0.1, 0.6))
            stage = StageSpec(
                parallelism=_parallelism(size, max_parallelism, partition_mb),
                shuffle_parents=tuple(current),
                expand=expand,
                cpu_factor=float(rng.uniform(1.0, 1.8)),
                skew_sigma=skew,
                m2i=1.0 + sel_join,
            )
        else:
            # aggregation / re-partition step; final stages shrink hard
            expand = 0.05 if last else float(rng.uniform(0.2, 0.9))
            stage = StageSpec(
                parallelism=max(
                    1, _parallelism(size * (0.3 if last else 1.0), max_parallelism, partition_mb)
                ),
                shuffle_parents=tuple(current),
                expand=expand,
                cpu_factor=float(rng.uniform(0.9, 1.6)),
                skew_sigma=skew * (0.6 if last else 1.0),
                m2i=1.5,
                write_output_mb=size * 0.02 if last else 0.0,
            )
        stages.append(stage)
        size *= stage.expand
        current = [len(stages) - 1]

    total_in = sum(s.source_mb for s in stages)
    return JobSpec(
        name=name or f"tpch_q{query}",
        stages=stages,
        # users over-request memory (§2: "conservative when estimating peak")
        requested_memory_mb=max(1024.0, total_in * float(rng.uniform(0.8, 1.6))),
        memory_accuracy=float(rng.uniform(0.7, 0.9)),
        category="tpch",
        seed=seed,
    )


def tpch_workload(
    n_jobs: int = 200,
    seed: int = 7,
    scale: float = 1.0,
    arrival_interval: float = 5.0,
    max_parallelism: int = 2000,
    partition_mb: float = DEFAULT_PARTITION_MB,
) -> list[tuple[JobSpec, float]]:
    """The §5.1.1 TPC-H workload: (job, submit time) pairs, one every
    ``arrival_interval`` seconds."""
    rng = derive_rng(seed, "tpch_workload")
    sizes = np.array([s for s, _p in DATASET_MIX])
    probs = np.array([p for _s, p in DATASET_MIX])
    out: list[tuple[JobSpec, float]] = []
    for i in range(n_jobs):
        query = int(rng.integers(1, 23))
        dataset_gb = float(rng.choice(sizes, p=probs))
        job = make_tpch_job(
            query,
            dataset_gb,
            scale,
            seed=int(rng.integers(0, 2**31 - 1)),
            name=f"tpch{i}_q{query}",
            max_parallelism=max_parallelism,
            partition_mb=partition_mb,
        )
        out.append((job, i * arrival_interval))
    return out
