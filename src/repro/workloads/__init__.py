"""Workload generators matching the paper's evaluation sets (§5)."""

from .graphs import make_cc_job, make_pagerank_job
from .ml import make_kmeans_job, make_lr_job
from .mixed import mixed_workload, tpch2_workload
from .runner import submit_workload
from .spec import JobSpec, StageSpec
from .synthetic import (
    SyntheticParams,
    expected_jcts,
    make_synthetic_job,
    synthetic_setting1,
    synthetic_setting2,
)
from .tpch import DATASET_MIX, QUERY_TEMPLATES, make_tpch_job, tpch_workload
from .tpcds import make_tpcds_job, tpcds_workload

__all__ = [
    "make_cc_job",
    "make_pagerank_job",
    "make_kmeans_job",
    "make_lr_job",
    "mixed_workload",
    "tpch2_workload",
    "submit_workload",
    "JobSpec",
    "StageSpec",
    "SyntheticParams",
    "expected_jcts",
    "make_synthetic_job",
    "synthetic_setting1",
    "synthetic_setting2",
    "DATASET_MIX",
    "QUERY_TEMPLATES",
    "make_tpch_job",
    "tpch_workload",
    "make_tpcds_job",
    "tpcds_workload",
]
