"""The Mixed workload (§5.1.2, Table 4) and TPC-H2 (§5.2).

Mixed: 2 graph-analytics jobs (PR on WebUK, CC on Friendster), 4 ML jobs
(k-means on mnist8m, LR on webspam ×2 each) and 32 random TPC-H queries,
sized so TPC-H : ML : graph account for ≈ 70/20/10 % of total CPU usage.

TPC-H2: 25 jobs with deeper DAGs (average depth ≈ 7.2) and heterogeneous,
skewed tasks — the stress set used for the §5.2 ablations.
"""

from __future__ import annotations

import numpy as np

from ..simcore.rng import derive_rng
from .graphs import make_cc_job, make_pagerank_job
from .ml import make_kmeans_job, make_lr_job
from .spec import JobSpec
from .tpch import DEFAULT_PARTITION_MB, QUERY_TEMPLATES, make_tpch_job

__all__ = ["mixed_workload", "tpch2_workload"]


def mixed_workload(
    seed: int = 13,
    scale: float = 1.0,
    parallelism: int = 600,
    arrival_interval: float = 3.0,
    max_parallelism: int = 2000,
    partition_mb: float = DEFAULT_PARTITION_MB,
) -> list[tuple[JobSpec, float]]:
    """2 graph + 4 ML + 32 TPC-H jobs with a 70/20/10 CPU mix."""
    rng = derive_rng(seed, "mixed")
    par = max(4, int(parallelism * scale))
    jobs: list[JobSpec] = []

    # graph: ~10% of CPU
    jobs.append(make_pagerank_job(graph_mb=80_000.0 * scale, parallelism=par, seed=seed + 1))
    jobs.append(make_cc_job(graph_mb=60_000.0 * scale, parallelism=par, seed=seed + 2))
    # ML: ~20% of CPU
    jobs.append(make_lr_job(data_mb=24_000.0 * scale, parallelism=par, seed=seed + 3, name="lr_webspam_a"))
    jobs.append(make_lr_job(data_mb=24_000.0 * scale, parallelism=par, seed=seed + 4, name="lr_webspam_b"))
    jobs.append(make_kmeans_job(data_mb=20_000.0 * scale, parallelism=par, seed=seed + 5, name="kmeans_a"))
    jobs.append(make_kmeans_job(data_mb=20_000.0 * scale, parallelism=par, seed=seed + 6, name="kmeans_b"))
    # TPC-H: ~70% of CPU over 32 queries
    for i in range(32):
        query = int(rng.integers(1, 23))
        jobs.append(
            make_tpch_job(
                query,
                dataset_gb=float(rng.choice([200.0, 500.0])),
                scale=scale,
                seed=int(rng.integers(0, 2**31 - 1)),
                name=f"mixed_tpch{i}_q{query}",
                max_parallelism=max_parallelism,
                partition_mb=partition_mb,
            )
        )

    order = rng.permutation(len(jobs))
    return [(jobs[int(k)], float(i) * arrival_interval) for i, k in enumerate(order)]


def tpch2_workload(
    n_jobs: int = 25,
    seed: int = 17,
    scale: float = 1.0,
    arrival_interval: float = 4.0,
    max_parallelism: int = 2000,
    partition_mb: float = DEFAULT_PARTITION_MB,
) -> list[tuple[JobSpec, float]]:
    """25 deep, skew-heavy TPC-H-style jobs (average depth ≈ 7.2)."""
    rng = derive_rng(seed, "tpch2")
    deep_queries = [q for q, (d, _s, _j, _k) in QUERY_TEMPLATES.items() if d >= 5]
    out: list[tuple[JobSpec, float]] = []
    for i in range(n_jobs):
        query = int(rng.choice(np.array(deep_queries)))
        job = make_tpch_job(
            query,
            dataset_gb=float(rng.choice(np.array([200.0, 500.0]))),
            scale=scale,
            seed=int(rng.integers(0, 2**31 - 1)),
            name=f"tpch2_{i}_q{query}",
            max_parallelism=max_parallelism,
            partition_mb=partition_mb,
        )
        out.append((job, i * arrival_interval))
    return out
