"""Deterministic randomness helpers.

All stochastic choices in this reproduction (workload generation, skew
multipliers, machine heterogeneity) flow through seeded
``numpy.random.Generator`` instances derived here.  Nothing in the package
touches the global ``numpy.random`` state or ``random`` module, so any run is
reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_rng", "spawn_rng", "lognormal_multipliers"]


def derive_rng(seed: int, *names: object) -> np.random.Generator:
    """Create a Generator deterministically derived from ``seed`` and a path.

    ``derive_rng(7, "tpch", 3)`` always yields the same stream, and streams
    with different paths are statistically independent (SeedSequence spawning
    keys on the hashed path).
    """
    key = [seed] + [_name_to_int(n) for n in names]
    return np.random.default_rng(np.random.SeedSequence(key))


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split one generator into ``n`` independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def lognormal_multipliers(
    rng: np.random.Generator, n: int, sigma: float, clip: float = 8.0
) -> np.ndarray:
    """Mean-one lognormal multipliers used for task-size skew.

    The paper's workloads have skewed intermediate data (§2, §5); we model a
    task's deviation from the stage-average size with a lognormal whose mean
    is exactly 1 so stage totals are preserved in expectation.
    """
    if n <= 0:
        return np.empty(0)
    if sigma <= 0:
        return np.ones(n)
    mu = -0.5 * sigma * sigma  # E[lognormal(mu, sigma)] == 1
    vals = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.clip(vals, 1.0 / clip, clip)


def _name_to_int(name: object) -> int:
    if isinstance(name, (int, np.integer)):
        return int(name) & 0x7FFFFFFF
    # Stable, platform-independent string hash (FNV-1a 32-bit).
    h = 2166136261
    for byte in str(name).encode("utf-8"):
        h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
    return h
