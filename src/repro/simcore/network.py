"""Network fabric models.

Two fabrics are provided:

* :class:`ReceiverSideFabric` — the model Ursa itself uses (§4.2.3: "We use a
  simple method that considers only the network bandwidth at the receiver
  side").  A transfer (one network monotask's pull, streaming from all its
  senders at once) shares the destination machine's downlink equally with the
  other transfers arriving there.  Each receiver is an independent
  :class:`~repro.simcore.resources.SharedProcessor`, so the model is both
  faithful to the paper and O(local transfers) per state change.

* :class:`MaxMinFabric` — an optional higher-fidelity model that performs
  max-min fair (water-filling) allocation across *both* sender uplinks and
  receiver downlinks.  Used by the ablation bench to show the receiver-side
  simplification does not change who wins.

Both expose the same ``start_transfer`` interface so the execution layers are
fabric-agnostic.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Sequence

from .engine import EventHandle, Simulation
from .resources import SharedProcessor
from .tracing import StepSeries

__all__ = ["Transfer", "ReceiverSideFabric", "MaxMinFabric", "NetworkFabric"]

_EPS = 1e-9


class Transfer:
    """An in-flight pull of data to ``dst`` from one or more senders."""

    __slots__ = (
        "dst", "sources", "total_mb", "callback", "args",
        "started_at", "finished_at", "cancelled",
        "_service_req", "_flows",
    )

    def __init__(
        self,
        dst: int,
        sources: Sequence[tuple[int, float]],
        callback: Callable[..., Any],
        args: tuple,
        started_at: float,
    ):
        self.dst = dst
        self.sources = list(sources)
        self.total_mb = float(sum(size for _src, size in sources))
        self.callback = callback
        self.args = args
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.cancelled = False
        self._service_req = None   # ReceiverSideFabric bookkeeping
        self._flows: list["_Flow"] = []  # MaxMinFabric bookkeeping

    @property
    def done(self) -> bool:
        return self.finished_at is not None


class NetworkFabric:
    """Interface shared by both fabric implementations."""

    def start_transfer(
        self,
        dst: int,
        sources: Sequence[tuple[int, float]],
        callback: Callable[..., Any],
        *args: Any,
    ) -> Transfer:
        raise NotImplementedError

    def cancel(self, transfer: Transfer) -> None:
        raise NotImplementedError

    def active_transfers(self, dst: int) -> int:
        raise NotImplementedError


class ReceiverSideFabric(NetworkFabric):
    """Downlink-shared fabric (the paper's §4.2.3 model)."""

    def __init__(
        self,
        sim: Simulation,
        num_machines: int,
        downlink_mbps: float,
        used_traces: Optional[list[StepSeries]] = None,
    ):
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        if downlink_mbps <= 0:
            raise ValueError("downlink bandwidth must be positive")
        self.sim = sim
        self.downlink_mbps = float(downlink_mbps)
        self._rx: list[SharedProcessor] = []
        for m in range(num_machines):
            trace = used_traces[m] if used_traces is not None else None
            self._rx.append(
                SharedProcessor(
                    sim,
                    capacity=1.0,
                    unit_rate=downlink_mbps,
                    per_task_cap=1.0,
                    used_trace=trace,
                    name=f"net.rx[{m}]",
                )
            )

    def start_transfer(self, dst, sources, callback, *args) -> Transfer:
        tr = Transfer(dst, sources, callback, args, self.sim.now)
        local = [s for s in tr.sources if s[0] == dst]
        remote_mb = tr.total_mb - sum(size for _src, size in local)
        # Local partitions cost no network time; only remote bytes traverse
        # the downlink.
        if remote_mb <= _EPS:
            tr.finished_at = self.sim.now
            self.sim.call_soon(callback, *args)
            return tr
        tr._service_req = self._rx[dst].submit(remote_mb, self._finish, tr)
        return tr

    def _finish(self, tr: Transfer) -> None:
        if tr.cancelled:
            return
        tr.finished_at = self.sim.now
        tr.callback(*tr.args)

    def cancel(self, tr: Transfer) -> None:
        if tr.done or tr.cancelled:
            return
        tr.cancelled = True
        if tr._service_req is not None:
            self._rx[tr.dst].cancel(tr._service_req)

    def active_transfers(self, dst: int) -> int:
        return self._rx[dst].active_count

    def receive_rate(self, dst: int) -> float:
        """Aggregate MB/s currently flowing into machine ``dst``."""
        rx = self._rx[dst]
        return rx.per_request_speed() * rx.active_count


class _Flow:
    __slots__ = ("src", "dst", "remaining", "rate", "transfer")

    def __init__(self, src: int, dst: int, size: float, transfer: Transfer):
        self.src = src
        self.dst = dst
        self.remaining = float(size)
        self.rate = 0.0
        self.transfer = transfer


class MaxMinFabric(NetworkFabric):
    """Water-filling max-min fair fabric over uplinks and downlinks.

    State changes trigger a full re-allocation, which is O(flows × machines)
    in the worst case; acceptable for the ablation-scale runs it serves.
    """

    def __init__(
        self,
        sim: Simulation,
        num_machines: int,
        downlink_mbps: float,
        uplink_mbps: Optional[float] = None,
        used_traces: Optional[list[StepSeries]] = None,
    ):
        self.sim = sim
        self.n = num_machines
        self.down = float(downlink_mbps)
        self.up = float(uplink_mbps if uplink_mbps is not None else downlink_mbps)
        self._flows: list[_Flow] = []
        self._last_advance = 0.0
        self._completion_ev: Optional[EventHandle] = None
        self._used_traces = used_traces

    # ------------------------------------------------------------------
    def start_transfer(self, dst, sources, callback, *args) -> Transfer:
        tr = Transfer(dst, sources, callback, args, self.sim.now)
        self._advance()
        for src, size in tr.sources:
            if src == dst or size <= _EPS:
                continue
            flow = _Flow(src, dst, size, tr)
            tr._flows.append(flow)
            self._flows.append(flow)
        if not tr._flows:
            tr.finished_at = self.sim.now
            self.sim.call_soon(callback, *args)
            return tr
        self._reallocate()
        return tr

    def cancel(self, tr: Transfer) -> None:
        if tr.done or tr.cancelled:
            return
        tr.cancelled = True
        self._advance()
        self._flows = [f for f in self._flows if f.transfer is not tr]
        self._reallocate()

    def active_transfers(self, dst: int) -> int:
        return len({id(f.transfer) for f in self._flows if f.dst == dst})

    def receive_rate(self, dst: int) -> float:
        return sum(f.rate for f in self._flows if f.dst == dst)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_advance
        if dt > 0:
            for f in self._flows:
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_advance = now

    def _reallocate(self) -> None:
        # Progressive filling: repeatedly find the most-constrained port,
        # freeze its flows at the fair share, remove the port, repeat.
        unfixed = list(self._flows)
        up_cap = [self.up] * self.n
        down_cap = [self.down] * self.n
        for f in unfixed:
            f.rate = 0.0
        while unfixed:
            up_load: dict[int, int] = {}
            down_load: dict[int, int] = {}
            for f in unfixed:
                up_load[f.src] = up_load.get(f.src, 0) + 1
                down_load[f.dst] = down_load.get(f.dst, 0) + 1
            best_share = math.inf
            best_port: tuple[str, int] | None = None
            for src, cnt in up_load.items():
                share = up_cap[src] / cnt
                if share < best_share:
                    best_share, best_port = share, ("up", src)
            for dst, cnt in down_load.items():
                share = down_cap[dst] / cnt
                if share < best_share:
                    best_share, best_port = share, ("down", dst)
            assert best_port is not None
            kind, port = best_port
            frozen = [
                f for f in unfixed
                if (kind == "up" and f.src == port) or (kind == "down" and f.dst == port)
            ]
            for f in frozen:
                f.rate = best_share
                up_cap[f.src] -= best_share
                down_cap[f.dst] -= best_share
            unfixed = [f for f in unfixed if f not in frozen]
        if self._used_traces is not None:
            for m in range(self.n):
                self._used_traces[m].record(self.sim.now, self.receive_rate(m))
        self._schedule_completion()

    def _schedule_completion(self) -> None:
        if self._completion_ev is not None:
            self._completion_ev.cancel()
            self._completion_ev = None
        next_dt = math.inf
        for f in self._flows:
            if f.rate > _EPS:
                next_dt = min(next_dt, f.remaining / f.rate)
        if math.isfinite(next_dt):
            self._completion_ev = self.sim.schedule(max(0.0, next_dt), self._on_completion)

    def _on_completion(self) -> None:
        self._completion_ev = None
        self._advance()
        still: list[_Flow] = []
        finished_transfers: list[Transfer] = []
        for f in self._flows:
            if f.remaining <= _EPS:
                f.transfer._flows.remove(f)
                if not f.transfer._flows and not f.transfer.done:
                    f.transfer.finished_at = self.sim.now
                    finished_transfers.append(f.transfer)
            else:
                still.append(f)
        self._flows = still
        self._reallocate()
        for tr in finished_transfers:
            tr.callback(*tr.args)
