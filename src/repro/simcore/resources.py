"""Fluid resource models: processor-sharing service and memory ledgers.

``SharedProcessor`` is the workhorse of the substrate.  It models a resource
with ``capacity`` service units (e.g. 32 CPU cores, or 1 disk spindle) and a
``unit_rate`` in MB/s per unit.  Active requests each occupy up to
``per_task_cap`` units; when demand exceeds capacity every request slows down
proportionally.  This is exactly the fluid-flow model under which:

* a CPU monotask alone on an idle core runs at the core rate,
* over-subscribed CPUs (baseline §5.1.2) degrade everyone fairly,
* a single disk monotask gets the full disk bandwidth (paper §4.2.3), and
* concurrent disk/network requests share bandwidth equally.

Because every active request receives the *same* instantaneous speed, we can
track completion with a cumulative-service counter instead of per-request
bookkeeping: a request that arrives when the counter is ``C0`` finishes when
the counter reaches ``C0 + work``.  Each state change costs O(log n).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from .engine import EventHandle, Simulation
from .tracing import StepSeries

__all__ = ["ServiceRequest", "SharedProcessor", "MemoryLedger", "InsufficientMemoryError"]

_EPS = 1e-9


class ServiceRequest:
    """A unit of work in service at a :class:`SharedProcessor`."""

    __slots__ = ("work", "callback", "args", "target_service", "cancelled", "done", "start_time")

    def __init__(self, work: float, callback: Callable[..., Any], args: tuple, start_time: float):
        self.work = work
        self.callback = callback
        self.args = args
        self.target_service = 0.0  # set by the processor on admission
        self.cancelled = False
        self.done = False
        self.start_time = start_time

    @property
    def active(self) -> bool:
        return not (self.cancelled or self.done)


class SharedProcessor:
    """Equal-share fluid resource (CPU pool, disk, downlink)."""

    def __init__(
        self,
        sim: Simulation,
        capacity: float,
        unit_rate: float,
        per_task_cap: float = 1.0,
        used_trace: Optional[StepSeries] = None,
        name: str = "",
    ):
        if capacity <= 0 or unit_rate <= 0 or per_task_cap <= 0:
            raise ValueError("capacity, unit_rate and per_task_cap must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.unit_rate = float(unit_rate)
        self.per_task_cap = float(per_task_cap)
        self.name = name
        self.used_trace = used_trace

        self._active: list[ServiceRequest] = []
        self._heap: list[tuple[float, int, ServiceRequest]] = []
        self._seq = 0
        self._service = 0.0          # cumulative per-request service (MB)
        self._service_time = 0.0     # sim time when _service was last updated
        self._speed = 0.0            # current per-request speed (MB/s)
        self._completion_ev: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def units_in_use(self) -> float:
        """Service units currently driven (for utilization traces)."""
        demand = len(self._active) * self.per_task_cap
        return min(demand, self.capacity)

    def per_request_speed(self) -> float:
        """Current MB/s each active request receives."""
        n = len(self._active)
        if n == 0:
            return 0.0
        units = min(self.per_task_cap, self.capacity / n)
        return units * self.unit_rate

    # ------------------------------------------------------------------
    def submit(self, work: float, callback: Callable[..., Any], *args: Any) -> ServiceRequest:
        """Begin servicing ``work`` MB; run ``callback(*args)`` on completion.

        Zero-size work completes via the event loop at the current instant so
        callers always observe asynchronous completion.
        """
        if work < 0 or not math.isfinite(work):
            raise ValueError(f"work must be a finite non-negative size, got {work!r}")
        req = ServiceRequest(work, callback, args, self.sim.now)
        if work <= _EPS:
            req.done = True
            self.sim.call_soon(callback, *args)
            return req
        self._advance()
        req.target_service = self._service + work
        self._active.append(req)
        self._seq += 1
        heapq.heappush(self._heap, (req.target_service, self._seq, req))
        self._reallocate()
        return req

    def set_unit_rate(self, unit_rate: float) -> None:
        """Change the per-unit service rate mid-run (fault layer: straggler /
        slowdown injection).  Service already delivered is banked at the old
        rate first, then in-flight requests are rescheduled at the new one —
        a request sees exactly the integral of the rate over its lifetime."""
        if unit_rate <= 0 or not math.isfinite(unit_rate):
            raise ValueError(f"unit_rate must be positive and finite, got {unit_rate!r}")
        self._advance()
        self.unit_rate = float(unit_rate)
        self._reallocate()

    def cancel(self, req: ServiceRequest) -> float:
        """Abort a request; returns the amount of work left undone (MB)."""
        if not req.active:
            return 0.0
        self._advance()
        remaining = max(0.0, req.target_service - self._service)
        req.cancelled = True
        self._active.remove(req)
        self._reallocate()
        return remaining

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        if now > self._service_time:
            self._service += self._speed * (now - self._service_time)
        self._service_time = now

    def _reallocate(self) -> None:
        self._speed = self.per_request_speed()
        if self.used_trace is not None:
            self.used_trace.record(self.sim.now, self.units_in_use)
        if self._completion_ev is not None:
            self._completion_ev.cancel()
            self._completion_ev = None
        # drop finished/cancelled heap entries
        while self._heap and not self._heap[0][2].active:
            heapq.heappop(self._heap)
        if not self._heap:
            return
        target = self._heap[0][0]
        delay = max(0.0, (target - self._service) / self._speed)
        self._completion_ev = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion_ev = None
        self._advance()
        finished: list[ServiceRequest] = []
        while self._heap:
            target, _seq, req = self._heap[0]
            if not req.active:
                heapq.heappop(self._heap)
                continue
            if target <= self._service + _EPS:
                heapq.heappop(self._heap)
                req.done = True
                self._active.remove(req)
                finished.append(req)
            else:
                break
        self._reallocate()
        for req in finished:
            req.callback(*req.args)


class InsufficientMemoryError(RuntimeError):
    """Raised when a strict memory allocation cannot be satisfied."""


class MemoryLedger:
    """Simple reserve/release accounting for a machine's (or cluster's) RAM.

    Memory has no service time in the paper's model — it is reserved for a
    task/container's lifetime (§4.2.1: "memory usage is relatively stable
    during the lifespan of a task") — so a counter with traces suffices.
    """

    def __init__(
        self,
        sim: Simulation,
        capacity_mb: float,
        used_trace: Optional[StepSeries] = None,
        name: str = "",
    ):
        if capacity_mb <= 0:
            raise ValueError("memory capacity must be positive")
        self.sim = sim
        self.capacity = float(capacity_mb)
        self.used = 0.0
        self.name = name
        self.used_trace = used_trace

    @property
    def available(self) -> float:
        return self.capacity - self.used

    def can_allocate(self, amount: float) -> bool:
        return amount <= self.available + _EPS

    def allocate(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot allocate negative memory")
        if not self.can_allocate(amount):
            raise InsufficientMemoryError(
                f"{self.name or 'memory'}: need {amount:.1f} MB, "
                f"only {self.available:.1f} of {self.capacity:.1f} MB free"
            )
        self.used += amount
        if self.used_trace is not None:
            self.used_trace.record(self.sim.now, self.used)

    def try_allocate(self, amount: float) -> bool:
        if not self.can_allocate(amount):
            return False
        self.allocate(amount)
        return True

    def release(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot release negative memory")
        if amount > self.used + _EPS:
            raise ValueError(
                f"{self.name or 'memory'}: releasing {amount:.1f} MB but only "
                f"{self.used:.1f} MB is allocated"
            )
        self.used = max(0.0, self.used - amount)
        if self.used_trace is not None:
            self.used_trace.record(self.sim.now, self.used)
