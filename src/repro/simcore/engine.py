"""Discrete-event simulation engine.

The engine is the clock that every other subsystem in this reproduction runs
on: the cluster substrate, the Ursa scheduler, the executor-model baselines,
and the workload drivers all schedule callbacks here.

Design points (see DESIGN.md §5):

* Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
  increasing insertion counter.  Two events scheduled for the same instant
  therefore fire in the order they were scheduled, which makes every
  simulation run bit-for-bit deterministic.
* Events are cancellable.  Cancellation is O(1): the handle is flagged and
  skipped when popped (lazy deletion), which is the standard heapq idiom.
* The engine never consults wall-clock time or global random state.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from ..obs import recorder as _obs
from ..obs import telemetry as _tel

__all__ = ["EventHandle", "Simulation", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulation engine."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulation.schedule` and
    :meth:`Simulation.at`.  Holding a handle does not keep the event alive in
    any special way; it only allows cancellation and inspection.
    """

    __slots__ = ("time", "seq", "callback", "args", "_cancelled", "_fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulation"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it was still pending."""
        if self.pending:
            self._cancelled = True
            # Drop references so cancelled events pinned in the heap do not
            # keep large closures (and the object graphs they capture) alive.
            self.callback = _noop
            self.args = ()
            if self._sim is not None:
                self._sim._event_cancelled()
            return True
        return False

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulation:
    """A deterministic discrete-event simulation loop.

    Typical use::

        sim = Simulation()
        sim.schedule(1.5, print, "hello at t=1.5")
        sim.run()

    The loop is re-entrant with respect to scheduling: callbacks may schedule
    further events (including at the current instant, which fire later in the
    same instant but after already-queued same-instant events).
    """

    #: never compact heaps smaller than this — rebuilding tiny heaps costs
    #: more than lazily skipping their cancelled entries
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[EventHandle] = []
        self._running = False
        self._fired_count = 0
        # live counters so events_pending is O(1) and the heap can be
        # compacted once lazily-cancelled entries dominate it
        self._pending_count = 0
        self._cancelled_in_heap = 0
        # observability hook, bound once at construction so the step loop
        # pays a single None check when tracing is off (enable the recorder
        # before building the Simulation)
        rec = _obs.RECORDER
        self._observer = rec.engine_observer if rec is not None else None
        # telemetry registers the engine for lazy end-of-unit harvesting
        # (events fired, final clock) — deliberately not a per-event hook
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.attach_engine(self)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._fired_count

    @property
    def events_pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._pending_count

    # ------------------------------------------------------------------
    # internal bookkeeping (live counters + heap compaction)
    # ------------------------------------------------------------------
    def _event_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` while the event is in the heap."""
        self._pending_count -= 1
        self._cancelled_in_heap += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries exceed half of it.

        Lazy deletion keeps :meth:`EventHandle.cancel` O(1), but a long
        oversubscription run that cancels most of what it schedules (e.g. the
        table5 sweep) would otherwise let dead entries dominate the heap —
        bloating memory and slowing every push/pop by the log of the junk.
        """
        heap = self._heap
        if len(heap) < self.COMPACT_MIN_SIZE or 2 * self._cancelled_in_heap <= len(heap):
            return
        self._heap = [ev for ev in heap if not ev._cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite (delay={delay!r})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time!r} < now={self._now!r})"
            )
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite (t={time!r})")
        ev = EventHandle(time, self._seq, callback, args, sim=self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._pending_count += 1
        return ev

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant (after queued
        same-instant events)."""
        return self.at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if none left."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = ev.time
            ev._fired = True
            self._pending_count -= 1
            self._fired_count += 1
            if self._observer is not None:
                self._observer(ev)
            ev.callback(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time.  The clock is
                advanced to ``until`` even if the queue drains earlier.
            max_events: safety valve; raise if more events than this fire.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("Simulation.run() is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and nxt.time > until:
                    break
                self.step()
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def drain(self, max_events: int = 50_000_000) -> float:
        """Run until the event queue is empty and return the final time."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulation(now={self._now:.6f}, pending={self.events_pending})"
