"""Step-function time-series recording.

Resource monitors record piecewise-constant signals: "3 cores busy from
t=2.0", "1 core busy from t=7.5", ...  This module stores those signals
compactly and supports the two queries the metrics layer needs:

* the exact time integral (for SE/UE accounting), and
* resampling onto a regular grid (for the utilization figures).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

__all__ = ["StepSeries", "TraceSet"]


class StepSeries:
    """A piecewise-constant series ``value(t)``; right-continuous steps."""

    __slots__ = ("times", "values", "_last")

    def __init__(self, initial: float = 0.0):
        self.times: list[float] = [0.0]
        self.values: list[float] = [float(initial)]
        self._last = float(initial)

    def record(self, time: float, value: float) -> None:
        """Set the series value from ``time`` onward."""
        value = float(value)
        if value == self._last:
            return
        last_t = self.times[-1]
        if time < last_t:
            raise ValueError(f"trace time going backwards: {time} < {last_t}")
        if time == last_t:
            # overwrite a same-instant change; keep the latest value
            self.values[-1] = value
        else:
            self.times.append(float(time))
            self.values.append(value)
        self._last = value

    def add(self, time: float, delta: float) -> None:
        """Record ``current + delta`` at ``time`` (counter-style usage)."""
        self.record(time, self._last + delta)

    @property
    def current(self) -> float:
        return self._last

    def value_at(self, t: float) -> float:
        """Series value at time ``t`` (right-continuous)."""
        if t < self.times[0]:
            return self.values[0]
        idx = bisect_right(self.times, t) - 1
        return self.values[idx]

    def integral(self, t0: float = 0.0, t1: float | None = None) -> float:
        """Exact integral of the series over ``[t0, t1]``."""
        if t1 is None:
            t1 = self.times[-1]
        if t1 <= t0:
            return 0.0
        total = 0.0
        times, values = self.times, self.values
        n = len(times)
        i = max(0, bisect_right(times, t0) - 1)
        while i < n:
            seg_start = max(times[i], t0)
            seg_end = times[i + 1] if i + 1 < n else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                total += values[i] * (seg_end - seg_start)
            if seg_end >= t1:
                break
            i += 1
        return total

    def mean(self, t0: float = 0.0, t1: float | None = None) -> float:
        """Time-average over ``[t0, t1]``; 0 for an empty window."""
        if t1 is None:
            t1 = self.times[-1]
        span = t1 - t0
        if span <= 0:
            return 0.0
        return self.integral(t0, t1) / span

    def resample(self, t0: float, t1: float, dt: float) -> tuple[list[float], list[float]]:
        """Average the series over consecutive windows of width ``dt``.

        Returns (window start times, window averages) covering [t0, t1).
        This is how the utilization figures are produced (1 s windows, like
        the sar-style sampling the paper plots).
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        grid: list[float] = []
        avgs: list[float] = []
        t = t0
        while t < t1 - 1e-12:
            end = min(t + dt, t1)
            grid.append(t)
            avgs.append(self.integral(t, end) / (end - t))
            t += dt
        return grid, avgs

    def __len__(self) -> int:
        return len(self.times)


class TraceSet:
    """A named collection of :class:`StepSeries` (one per machine/resource)."""

    def __init__(self) -> None:
        self._series: dict[str, StepSeries] = {}

    def series(self, name: str, initial: float = 0.0) -> StepSeries:
        s = self._series.get(name)
        if s is None:
            s = StepSeries(initial)
            self._series[name] = s
        return s

    def names(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> StepSeries:
        return self._series[name]

    def aggregate(self, names: Iterable[str]) -> StepSeries:
        """Sum several step series into a new one (e.g. cluster-wide cores)."""
        selected = [self._series[n] for n in names]
        out = StepSeries(sum(s.values[0] for s in selected))
        events = sorted({t for s in selected for t in s.times})
        for t in events:
            if t == 0.0:
                continue
            out.record(t, sum(s.value_at(t) for s in selected))
        return out

    @staticmethod
    def mean_of(series: Sequence[StepSeries], t0: float, t1: float) -> float:
        if not series:
            return 0.0
        return sum(s.mean(t0, t1) for s in series) / len(series)
