"""Discrete-event simulation substrate (engine, fluid resources, fabrics)."""

from .engine import EventHandle, Simulation, SimulationError
from .network import MaxMinFabric, NetworkFabric, ReceiverSideFabric, Transfer
from .resources import (
    InsufficientMemoryError,
    MemoryLedger,
    ServiceRequest,
    SharedProcessor,
)
from .rng import derive_rng, lognormal_multipliers, spawn_rng
from .tracing import StepSeries, TraceSet

__all__ = [
    "EventHandle",
    "Simulation",
    "SimulationError",
    "MaxMinFabric",
    "NetworkFabric",
    "ReceiverSideFabric",
    "Transfer",
    "InsufficientMemoryError",
    "MemoryLedger",
    "ServiceRequest",
    "SharedProcessor",
    "derive_rng",
    "lognormal_multipliers",
    "spawn_rng",
    "StepSeries",
    "TraceSet",
]
