"""Parallel, cached execution of experiment simulation units.

``run_all("bench")`` used to replay every table/figure serially even though
each experiment is itself a sweep of *independent* simulations (policies ×
workloads × ratios × bandwidths).  The :class:`ParallelRunner` fans those
units across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* Units are enumerated up front (see :mod:`repro.perf.units`) and submitted
  all at once — across experiments too, so a wide sweep keeps every core
  busy instead of draining one experiment at a time.
* Every unit seeds its own simulation from ``(scale, key, seed)``; payload
  dicts are assembled in ``unit_keys()`` order, so results are bit-identical
  to the serial path no matter how the pool interleaves them.
* With a :class:`~repro.perf.cache.ResultCache` attached, finished units are
  stored content-addressed and later runs skip every unit whose key (config
  + scale + seed + source fingerprint) is unchanged.  The cache is read and
  written only by the parent process — workers stay stateless and there are
  no write races.

``workers=0`` (the default) executes in-process with no pool: that is the
reference serial path, and what the determinism tests compare against.
``workers=1`` routes through the same in-process path — a single-worker
pool is strictly slower (spawn + pickling, no overlap) and produces the
same bytes.

Per-unit overhead is kept off the hot path two ways:

* **Warm pool reuse.**  The pool persists across ``run`` / ``run_many``
  calls (interpreters spawn once, not once per pass); it is torn down by
  :meth:`ParallelRunner.close` (or the context manager), or transparently
  rebuilt when the scale / placement mode changes.
* **Initializer-shared spec.**  The resolved scale (cluster spec included)
  and the effective placement mode ship to each worker *once*, through the
  pool initializer, instead of being pickled into every submitted unit.

Each executed unit also reports its pure simulation time
(``compute_s``), so harness overhead — spawn, pickling, cache stores —
is measurable as ``wall − compute`` (see ``scripts/bench_harness.py``).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Optional, Sequence

from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from .cache import ResultCache

__all__ = ["ParallelRunner", "default_workers"]


def default_workers() -> int:
    """Worker count used for ``--parallel 0``-style "auto" requests.

    On a single-core machine a process pool is pure overhead (the measured
    0.94× "speedup" in ``BENCH_harness.json``), so auto-detection returns
    ``0`` there: the serial in-process path.
    """
    n = os.cpu_count() or 1
    return n if n > 1 else 0


def _split_registry():
    # lazy: repro.experiments.registry imports the experiment modules, which
    # import repro.perf.units — importing it at module scope would cycle.
    from ..experiments.registry import SPLIT_EXPERIMENTS

    return SPLIT_EXPERIMENTS


def _resolve_scale(scale):
    from ..experiments.common import SCALES

    return SCALES[scale] if isinstance(scale, str) else scale


def _execute_unit(experiment: str, scale, key, seed: int, kwargs: dict) -> Any:
    """Run one simulation unit (top-level so it pickles into workers)."""
    split = _split_registry()[experiment]
    return split.run_unit(scale, key, seed=seed, **kwargs)


#: worker-side scale installed once by :func:`_pool_init` — submitted units
#: reference it instead of shipping the cluster spec with every task
_POOL_SCALE = None
#: worker-side tracing flag: when set, each unit records its lifecycle
#: events locally and ships them back with the payload
_POOL_TRACING = False


def _pool_init(scale, placement_mode: str, tracing: bool = False) -> None:
    """Pool-worker initializer: install shared read-only state.

    Runs once per worker process.  The resolved scale (with its cluster
    spec), the parent's effective placement engine and the parent's
    tracing state are installed here so each submitted unit carries only
    ``(experiment, key, seed, kwargs)``.
    """
    global _POOL_SCALE, _POOL_TRACING
    _POOL_SCALE = scale
    _POOL_TRACING = tracing
    from ..scheduler import vector

    vector.set_default_mode(placement_mode)


def _execute_unit_pooled(experiment: str, key, seed: int, kwargs: dict):
    """Worker-side unit entry: initializer-shared scale + compute timing.

    Returns ``(payload, compute_s, trace)`` where ``trace`` is ``None``
    untraced, else ``(events, engine_stats)`` recorded by a per-unit local
    recorder.  The parent splices traces back in submission order, so the
    merged stream is byte-identical to a serial traced run.
    """
    t0 = time.perf_counter()
    if _POOL_TRACING:
        rec = _obs.enable()
        rec.begin_unit(f"{experiment}:{key}")
        try:
            payload = _execute_unit(experiment, _POOL_SCALE, key, seed, kwargs)
        finally:
            _obs.disable()
        return payload, time.perf_counter() - t0, (rec.events, rec.engine_stats)
    payload = _execute_unit(experiment, _POOL_SCALE, key, seed, kwargs)
    return payload, time.perf_counter() - t0, None


class _UnitSpec:
    """One schedulable simulation unit plus its cache addressing."""

    __slots__ = ("experiment", "key", "seed", "kwargs", "cache_key")

    def __init__(self, experiment: str, key, seed: int, kwargs: dict, cache_key: Optional[str]):
        self.experiment = experiment
        self.key = key
        self.seed = seed
        self.kwargs = kwargs
        self.cache_key = cache_key


class ParallelRunner:
    """Fan independent simulation units across processes, with caching.

    The pool is **persistent**: it spawns on first use and is reused by
    every subsequent ``run`` / ``run_many`` call (warm interpreters, warm
    imports), then torn down by :meth:`close` / the context manager.  A
    call with a different scale or placement mode rebuilds it, since both
    are installed worker-side through the pool initializer.

    Args:
        workers: process count.  ``0`` → run in-process (serial reference
            path); ``1`` also runs in-process — a one-worker pool pays
            process spawn plus pickling for zero concurrency and is
            strictly slower than serial; ``N ≥ 2`` fans out.
        cache: optional :class:`ResultCache`; hits skip execution entirely.
        placement_mode: placement engine for the simulations ("scalar" /
            "vector"); ``None`` inherits the process-wide default (which
            the pool initializer mirrors into every worker either way).
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Optional[ResultCache] = None,
        placement_mode: Optional[str] = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0 (got {workers})")
        from ..scheduler import vector

        self.workers = workers
        self.cache = cache
        self.placement_mode = vector.resolve_mode(placement_mode) if placement_mode else None
        #: units actually executed (cache misses) during the last run
        self.executed_units = 0
        #: units served from the cache during the last run
        self.cached_units = 0
        #: pure simulation seconds summed over last run's executed units
        #: (measured where the unit ran); harness overhead = wall − this
        self.compute_s = 0.0
        #: wall seconds spent inside the last run's execute phase
        self.exec_wall_s = 0.0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_key = None  # (scale, placement_mode) the pool was built for

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _effective_mode(self) -> str:
        from ..scheduler import vector

        return self.placement_mode or vector.get_default_mode()

    def _get_pool(self, sc) -> ProcessPoolExecutor:
        """Return the warm pool, (re)building it if scale/mode/tracing
        changed (tracing ships to workers through the initializer)."""
        key = (sc, self._effective_mode(), _obs.RECORDER is not None)
        if self._pool is not None and key != self._pool_key:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_init,
                initargs=key,
            )
            self._pool_key = key
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_key = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, experiment: str, scale="bench", seed: int = 0, **kwargs) -> Any:
        """Run one experiment's units (parallel, cached) and reduce them."""
        return self.run_many([experiment], scale, seed=seed, **kwargs)[experiment]

    def run_many(
        self, experiments: Sequence[str], scale="bench", seed: int = 0, **kwargs
    ) -> dict[str, Any]:
        """Run several experiments' units through one shared pool.

        Units from *all* experiments are submitted together so the pool
        stays saturated; each experiment is then reduced (and its tables
        printed) in the order given.
        """
        registry = _split_registry()
        sc = _resolve_scale(scale)
        unknown = [name for name in experiments if name not in registry]
        if unknown:
            raise KeyError(f"unknown experiments {unknown}; known: {sorted(registry)}")

        specs: list[_UnitSpec] = []
        for name in experiments:
            sim_kwargs, _ = registry[name].split_kwargs(kwargs)
            for key in registry[name].unit_keys(sc, **sim_kwargs):
                cache_key = (
                    self.cache.key_for(name, sc, key, seed, sim_kwargs)
                    if self.cache is not None
                    else None
                )
                specs.append(_UnitSpec(name, key, seed, sim_kwargs, cache_key))

        payloads = self._execute(sc, specs)

        results: dict[str, Any] = {}
        for name in experiments:
            unit_payloads = {
                spec.key: payloads[id(spec)] for spec in specs if spec.experiment == name
            }
            if len(experiments) > 1:
                print(f"\n=== {name} ===")
            results[name] = registry[name].reduce(sc, unit_payloads, **kwargs)
        return results

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, sc, specs: list[_UnitSpec]) -> dict[int, Any]:
        """Produce ``{id(spec): payload}`` for every unit, via cache, pool
        or in-process execution."""
        self.executed_units = 0
        self.cached_units = 0
        self.compute_s = 0.0
        exec_start = time.perf_counter()
        try:
            return self._execute_inner(sc, specs)
        finally:
            self.exec_wall_s = time.perf_counter() - exec_start

    def _execute_inner(self, sc, specs: list[_UnitSpec]) -> dict[int, Any]:
        payloads: dict[int, Any] = {}
        to_run: list[_UnitSpec] = []
        for spec in specs:
            if spec.cache_key is not None and self.cache is not None:
                try:
                    payloads[id(spec)] = self.cache.get(spec.cache_key)
                    self.cached_units += 1
                    continue
                except KeyError:
                    pass
            to_run.append(spec)

        if not to_run:
            return payloads

        if self.workers <= 1:
            # workers == 1 is deliberately routed through the serial path:
            # the in-process pickle round-trip in _run_and_store keeps the
            # payloads byte-identical to what a pool worker would return,
            # without paying for a pool that cannot overlap anything.
            from ..scheduler import vector

            prev_mode = vector.get_default_mode()
            if self.placement_mode is not None:
                vector.set_default_mode(self.placement_mode)
            try:
                for spec in to_run:
                    payloads[id(spec)] = self._run_and_store(sc, spec)
            finally:
                vector.set_default_mode(prev_mode)
            return payloads

        pool = self._get_pool(sc)
        # only (experiment, key, seed, kwargs) travels per unit — the scale
        # (cluster spec) and placement mode shipped once via the initializer
        futures = {
            pool.submit(
                _execute_unit_pooled, spec.experiment, spec.key, spec.seed, spec.kwargs
            ): spec
            for spec in to_run
        }
        pending = set(futures)
        traces: dict[int, tuple] = {}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                spec = futures[future]
                payload, compute_s, trace = future.result()  # re-raises worker exceptions
                payloads[id(spec)] = payload
                if trace is not None:
                    traces[id(spec)] = trace
                self.compute_s += compute_s
                self._store(sc, spec, payload)
                self.executed_units += 1
        rec = _obs.RECORDER
        if rec is not None and traces:
            # splice worker-recorded events in *submission* order, not
            # completion order, so the merged stream (and everything derived
            # from it: attribution.json, trace files, digests) is
            # byte-identical to the serial traced run
            for spec in to_run:
                trace = traces.get(id(spec))
                if trace is not None:
                    rec.events.extend(trace[0])
                    rec.engine_stats.update(trace[1])
        return payloads

    def _run_and_store(self, sc, spec: _UnitSpec) -> Any:
        rec = _obs.RECORDER
        if rec is not None:
            # label the unit's events so multi-unit traces stay separable
            # (each unit restarts its sim clock at t=0)
            rec.begin_unit(f"{spec.experiment}:{spec.key}")
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.begin_unit(f"{spec.experiment}:{spec.key}")
        t0 = time.perf_counter()
        payload = _execute_unit(spec.experiment, sc, spec.key, spec.seed, spec.kwargs)
        self.compute_s += time.perf_counter() - t0
        # Round-trip through pickle so the in-process path yields the same
        # object graph a pool worker would: without this, payloads from
        # different units share interned/constant objects (dict key strings
        # etc.), pickle memoizes the shared references, and serialized
        # serial results would not be byte-identical to parallel ones even
        # though every value matches.
        payload = pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self._store(sc, spec, payload)
        self.executed_units += 1
        return payload

    def _store(self, sc, spec: _UnitSpec, payload: Any) -> None:
        if self.cache is not None and spec.cache_key is not None:
            meta = self.cache.key_material(spec.experiment, sc, spec.key, spec.seed, spec.kwargs)
            self.cache.put(spec.cache_key, payload, meta=meta)
