"""Parallel, cached execution of experiment simulation units.

``run_all("bench")`` used to replay every table/figure serially even though
each experiment is itself a sweep of *independent* simulations (policies ×
workloads × ratios × bandwidths).  The :class:`ParallelRunner` fans those
units across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* Units are enumerated up front (see :mod:`repro.perf.units`) and submitted
  all at once — across experiments too, so a wide sweep keeps every core
  busy instead of draining one experiment at a time.
* Every unit seeds its own simulation from ``(scale, key, seed)``; payload
  dicts are assembled in ``unit_keys()`` order, so results are bit-identical
  to the serial path no matter how the pool interleaves them.
* With a :class:`~repro.perf.cache.ResultCache` attached, finished units are
  stored content-addressed and later runs skip every unit whose key (config
  + scale + seed + source fingerprint) is unchanged.  The cache is read and
  written only by the parent process — workers stay stateless and there are
  no write races.

``workers=0`` (the default) executes in-process with no pool: that is the
reference serial path, and what the determinism tests compare against.
``workers=1`` routes through the same in-process path — a single-worker
pool is strictly slower (spawn + pickling, no overlap) and produces the
same bytes.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Optional, Sequence

from ..obs import recorder as _obs
from ..obs import telemetry as _tel
from .cache import ResultCache

__all__ = ["ParallelRunner", "default_workers"]


def default_workers() -> int:
    """Worker count used for ``--parallel 0``-style "auto" requests.

    On a single-core machine a process pool is pure overhead (the measured
    0.94× "speedup" in ``BENCH_harness.json``), so auto-detection returns
    ``0`` there: the serial in-process path.
    """
    n = os.cpu_count() or 1
    return n if n > 1 else 0


def _split_registry():
    # lazy: repro.experiments.registry imports the experiment modules, which
    # import repro.perf.units — importing it at module scope would cycle.
    from ..experiments.registry import SPLIT_EXPERIMENTS

    return SPLIT_EXPERIMENTS


def _resolve_scale(scale):
    from ..experiments.common import SCALES

    return SCALES[scale] if isinstance(scale, str) else scale


def _execute_unit(experiment: str, scale, key, seed: int, kwargs: dict) -> Any:
    """Run one simulation unit (top-level so it pickles into workers)."""
    split = _split_registry()[experiment]
    return split.run_unit(scale, key, seed=seed, **kwargs)


class _UnitSpec:
    """One schedulable simulation unit plus its cache addressing."""

    __slots__ = ("experiment", "key", "seed", "kwargs", "cache_key")

    def __init__(self, experiment: str, key, seed: int, kwargs: dict, cache_key: Optional[str]):
        self.experiment = experiment
        self.key = key
        self.seed = seed
        self.kwargs = kwargs
        self.cache_key = cache_key


class ParallelRunner:
    """Fan independent simulation units across processes, with caching.

    Args:
        workers: process count.  ``0`` → run in-process (serial reference
            path); ``1`` also runs in-process — a one-worker pool pays
            process spawn plus pickling for zero concurrency and is
            strictly slower than serial; ``N ≥ 2`` fans out.
        cache: optional :class:`ResultCache`; hits skip execution entirely.
    """

    def __init__(self, workers: int = 0, cache: Optional[ResultCache] = None):
        if workers < 0:
            raise ValueError(f"workers must be >= 0 (got {workers})")
        self.workers = workers
        self.cache = cache
        #: units actually executed (cache misses) during the last run
        self.executed_units = 0
        #: units served from the cache during the last run
        self.cached_units = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, experiment: str, scale="bench", seed: int = 0, **kwargs) -> Any:
        """Run one experiment's units (parallel, cached) and reduce them."""
        return self.run_many([experiment], scale, seed=seed, **kwargs)[experiment]

    def run_many(
        self, experiments: Sequence[str], scale="bench", seed: int = 0, **kwargs
    ) -> dict[str, Any]:
        """Run several experiments' units through one shared pool.

        Units from *all* experiments are submitted together so the pool
        stays saturated; each experiment is then reduced (and its tables
        printed) in the order given.
        """
        registry = _split_registry()
        sc = _resolve_scale(scale)
        unknown = [name for name in experiments if name not in registry]
        if unknown:
            raise KeyError(f"unknown experiments {unknown}; known: {sorted(registry)}")

        specs: list[_UnitSpec] = []
        for name in experiments:
            sim_kwargs, _ = registry[name].split_kwargs(kwargs)
            for key in registry[name].unit_keys(sc, **sim_kwargs):
                cache_key = (
                    self.cache.key_for(name, sc, key, seed, sim_kwargs)
                    if self.cache is not None
                    else None
                )
                specs.append(_UnitSpec(name, key, seed, sim_kwargs, cache_key))

        payloads = self._execute(sc, specs)

        results: dict[str, Any] = {}
        for name in experiments:
            unit_payloads = {
                spec.key: payloads[id(spec)] for spec in specs if spec.experiment == name
            }
            if len(experiments) > 1:
                print(f"\n=== {name} ===")
            results[name] = registry[name].reduce(sc, unit_payloads, **kwargs)
        return results

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, sc, specs: list[_UnitSpec]) -> dict[int, Any]:
        """Produce ``{id(spec): payload}`` for every unit, via cache, pool
        or in-process execution."""
        self.executed_units = 0
        self.cached_units = 0
        payloads: dict[int, Any] = {}
        to_run: list[_UnitSpec] = []
        for spec in specs:
            if spec.cache_key is not None and self.cache is not None:
                try:
                    payloads[id(spec)] = self.cache.get(spec.cache_key)
                    self.cached_units += 1
                    continue
                except KeyError:
                    pass
            to_run.append(spec)

        if not to_run:
            return payloads

        if self.workers <= 1:
            # workers == 1 is deliberately routed through the serial path:
            # the in-process pickle round-trip in _run_and_store keeps the
            # payloads byte-identical to what a pool worker would return,
            # without paying for a pool that cannot overlap anything.
            for spec in to_run:
                payloads[id(spec)] = self._run_and_store(sc, spec)
            return payloads

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(
                    _execute_unit, spec.experiment, sc, spec.key, spec.seed, spec.kwargs
                ): spec
                for spec in to_run
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    payload = future.result()  # re-raises worker exceptions
                    payloads[id(spec)] = payload
                    self._store(sc, spec, payload)
                    self.executed_units += 1
        return payloads

    def _run_and_store(self, sc, spec: _UnitSpec) -> Any:
        rec = _obs.RECORDER
        if rec is not None:
            # label the unit's events so multi-unit traces stay separable
            # (each unit restarts its sim clock at t=0)
            rec.begin_unit(f"{spec.experiment}:{spec.key}")
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.begin_unit(f"{spec.experiment}:{spec.key}")
        payload = _execute_unit(spec.experiment, sc, spec.key, spec.seed, spec.kwargs)
        # Round-trip through pickle so the in-process path yields the same
        # object graph a pool worker would: without this, payloads from
        # different units share interned/constant objects (dict key strings
        # etc.), pickle memoizes the shared references, and serialized
        # serial results would not be byte-identical to parallel ones even
        # though every value matches.
        payload = pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self._store(sc, spec, payload)
        self.executed_units += 1
        return payload

    def _store(self, sc, spec: _UnitSpec, payload: Any) -> None:
        if self.cache is not None and spec.cache_key is not None:
            meta = self.cache.key_material(spec.experiment, sc, spec.key, spec.seed, spec.kwargs)
            self.cache.put(spec.cache_key, payload, meta=meta)
