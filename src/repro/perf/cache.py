"""Content-addressed on-disk cache for simulation-unit results.

Layout (under the cache root)::

    objects/<first two hex chars>/<sha256>.pkl

Each object is a pickle of ``{"meta": <key material dict>, "payload": ...}``
— the ``meta`` dict is redundant with the address but makes cache debugging
(``repro.experiments --cache-dir ... --list``-style inspection) possible
without reverse-engineering hashes.

A cache key covers everything that determines a unit's result:

* the experiment name and the unit key within it,
* the :class:`~repro.experiments.common.Scale` (its repr covers the cluster
  spec, workload knobs and event budget),
* the seed and any extra experiment kwargs,
* a content fingerprint of the whole ``src/repro`` source tree (see
  :mod:`repro.perf.fingerprint`) so *any* simulator edit invalidates
  everything.

Writes are atomic (tmp file + rename) so a crashed or parallel writer can
never leave a torn object behind.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Optional

from .fingerprint import source_fingerprint

__all__ = ["ResultCache", "CacheStats"]

_MISS = object()


class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.hits}, misses={self.misses}, stores={self.stores})"


class ResultCache:
    """Pickle-backed content-addressed store for unit payloads."""

    def __init__(self, root: str | Path, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else source_fingerprint()
        self.stats = CacheStats()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def key_material(self, experiment: str, scale, unit_key, seed: int, kwargs: dict) -> dict:
        return {
            "experiment": experiment,
            "unit": repr(unit_key),
            "scale": repr(scale),
            "seed": seed,
            "kwargs": repr(sorted(kwargs.items())),
            "source": self.fingerprint,
        }

    def key_for(self, experiment: str, scale, unit_key, seed: int = 0, kwargs: dict | None = None) -> str:
        material = self.key_material(experiment, scale, unit_key, seed, kwargs or {})
        blob = "\0".join(f"{k}={material[k]}" for k in sorted(material))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """Return the cached payload or raise :class:`KeyError`."""
        payload = self._load(key)
        if payload is _MISS:
            self.stats.misses += 1
            raise KeyError(key)
        self.stats.hits += 1
        return payload

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def _load(self, key: str) -> Any:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                obj = pickle.load(fh)
            return obj["payload"]
        except Exception:
            # Unpickling arbitrary corrupt bytes can raise nearly anything
            # (ValueError, AttributeError, struct.error, ...) — any object
            # we cannot read back cleanly is a miss, never an error.
            return _MISS

    def put(self, key: str, payload: Any, meta: dict | None = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump({"meta": meta or {}, "payload": payload}, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "objects").rglob("*.pkl"))

    def clear(self) -> int:
        """Delete every cached object; returns how many were removed."""
        removed = 0
        for path in (self.root / "objects").rglob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
