"""Parallel, cached execution layer for the experiment suite.

See DESIGN.md §"Perf harness": :class:`ParallelRunner` fans the independent
simulation units that every experiment enumerates (via
:class:`SplitExperiment`) across a process pool, and :class:`ResultCache`
content-addresses finished units so unchanged experiments are skipped on
re-run.
"""

from . import profile
from .cache import CacheStats, ResultCache
from .fingerprint import clear_fingerprint_cache, source_fingerprint
from .profile import TickProfiler
from .runner import ParallelRunner, default_workers
from .units import SplitExperiment

__all__ = [
    "CacheStats",
    "ParallelRunner",
    "ResultCache",
    "SplitExperiment",
    "TickProfiler",
    "clear_fingerprint_cache",
    "default_workers",
    "profile",
    "source_fingerprint",
]
