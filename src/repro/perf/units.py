"""The enumerate / run-one / reduce contract every experiment implements.

An experiment that wants to run under the :class:`~repro.perf.runner.\
ParallelRunner` splits itself into three module-level functions:

``unit_keys(scale, **kwargs) -> list``
    Enumerate the independent simulation configurations (one per system,
    per subscription ratio, per bandwidth, ...).  Keys must be hashable,
    picklable and ``repr``-stable — they address both worker processes and
    cache entries.

``run_unit(scale, key, seed=0, **kwargs) -> payload``
    Run exactly one configuration to completion and return a **picklable**
    payload (metrics, series, scalars — never a live ``System``/``Cluster``
    handle).  Must be deterministic given ``(scale, key, seed, kwargs)``:
    each unit builds its own simulation and derives randomness only from
    the explicit seed, so results are bit-identical no matter which process
    runs the unit or in which order.

``reduce(scale, payloads, **kwargs) -> result``
    Assemble the per-unit payloads (a dict keyed by unit key, in
    ``unit_keys`` order) into the experiment's result dict and print its
    table/figure.  Pure post-processing — no simulation here.

The module wraps the three in a :class:`SplitExperiment` so the registry
and runner can drive any experiment uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["SplitExperiment"]


@dataclass(frozen=True)
class SplitExperiment:
    """One experiment's enumerate / run-one / reduce triple.

    ``display_kwargs`` names kwargs that only affect the reduce-side
    presentation (chart printing etc.): they are withheld from ``unit_keys``
    and ``run_unit`` — and therefore from cache keys — so toggling them
    never invalidates or re-runs a simulation.
    """

    name: str
    unit_keys: Callable[..., list]
    run_unit: Callable[..., Any]
    reduce: Callable[..., Any]
    display_kwargs: tuple = ("show_charts",)

    def split_kwargs(self, kwargs: dict) -> tuple[dict, dict]:
        """Partition kwargs into (simulation, display-only)."""
        sim = {k: v for k, v in kwargs.items() if k not in self.display_kwargs}
        display = {k: v for k, v in kwargs.items() if k in self.display_kwargs}
        return sim, display

    def run_serial(self, scale, seed: int = 0, **kwargs) -> Any:
        """Execute every unit in-process, in order, then reduce.

        This is the reference serial path the parallel runner is checked
        against for bit-identical output.
        """
        sim_kwargs, _ = self.split_kwargs(kwargs)
        payloads = {
            key: self.run_unit(scale, key, seed=seed, **sim_kwargs)
            for key in self.unit_keys(scale, **sim_kwargs)
        }
        return self.reduce(scale, payloads, **kwargs)
