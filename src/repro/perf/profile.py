"""Opt-in hot-path profiler for the scheduling tick.

The per-tick scheduling loop (policy refresh → queue resort → ready-stage
gathering → Algorithm-1 placement → dispatch) dominates single-simulation
wall time, so this module gives it counters and phase timers that cost
*nothing* when disabled: the scheduler reads one module global
(:data:`PROFILER`) per tick / placement round and skips every
instrumentation branch while it is ``None``.

Usage::

    from repro.perf import profile

    prof = profile.enable()
    ...run simulations...
    print(profile.disable().report())

or via the CLI: ``python -m repro.experiments --profile --only fig7
--scale tiny`` (profiling forces serial in-process execution — worker
processes would not share the parent's profiler).

Counters (cumulative over every tick while enabled):

* ``ticks`` / ``assignments`` — scheduling rounds run, tasks placed.
* ``resort_ticks`` — rounds that actually re-sorted worker queues
  (statically-ranked policies elide the resort entirely).
* ``stages_scored`` — StageScore evaluations, including lazy-heap
  re-evaluations.
* ``tasks_scored`` — best-worker searches (one per task per StageScore).
* ``workers_scanned`` — candidate workers considered across all searches.
* ``heap_repushes`` — stale lazy-heap tops that were re-pushed.
* ``vector_stages`` / ``vector_rows`` / ``vector_fallbacks`` /
  ``vector_rebuilds`` — vector-engine activity (stage scores handled by the
  vectorized path, distinct profile rows computed, scalar fallbacks taken
  for locality-pinned tasks, numpy column rebuilds).  All zero under the
  scalar engine; a workload that defeats the profile dedup shows up as
  ``vector_rows`` approaching ``tasks_scored``.

Phase timers are wall-clock nanoseconds per tick phase, measured with
:func:`time.perf_counter_ns`.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TickProfiler", "PROFILER", "enable", "disable"]

_PHASES = ("refresh", "resort", "ready", "place", "dispatch")


class TickProfiler:
    """Counters + per-phase timers for the scheduling-tick hot path."""

    __slots__ = (
        "ticks", "assignments", "resort_ticks", "stages_scored",
        "tasks_scored", "workers_scanned", "heap_repushes",
        "vector_stages", "vector_rows", "vector_fallbacks",
        "vector_rebuilds", "phase_ns",
    )

    def __init__(self):
        self.ticks = 0
        self.assignments = 0
        self.resort_ticks = 0
        self.stages_scored = 0
        self.tasks_scored = 0
        self.workers_scanned = 0
        self.heap_repushes = 0
        self.vector_stages = 0
        self.vector_rows = 0
        self.vector_fallbacks = 0
        self.vector_rebuilds = 0
        self.phase_ns = {name: 0 for name in _PHASES}

    # ------------------------------------------------------------------
    def record_tick(
        self,
        refresh_ns: int,
        resort_ns: int,
        ready_ns: int,
        place_ns: int,
        dispatch_ns: int,
        assignments: int,
    ) -> None:
        self.ticks += 1
        self.assignments += assignments
        ns = self.phase_ns
        ns["refresh"] += refresh_ns
        ns["resort"] += resort_ns
        ns["ready"] += ready_ns
        ns["place"] += place_ns
        ns["dispatch"] += dispatch_ns

    @property
    def total_ns(self) -> int:
        return sum(self.phase_ns.values())

    def merge(self, other: "TickProfiler") -> None:
        """Fold another profiler's numbers into this one."""
        for name in self.__slots__:
            if name == "phase_ns":
                for phase, ns in other.phase_ns.items():
                    self.phase_ns[phase] = self.phase_ns.get(phase, 0) + ns
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable per-phase tick counter report."""
        lines = [
            f"scheduling-tick profile: {self.ticks} ticks, "
            f"{self.assignments} assignments"
        ]
        total = self.total_ns or 1
        ticks = self.ticks or 1
        lines.append(f"  {'phase':<10} {'total ms':>10} {'per-tick us':>12} {'share':>7}")
        for name in _PHASES:
            ns = self.phase_ns[name]
            lines.append(
                f"  {name:<10} {ns / 1e6:>10.2f} {ns / ticks / 1e3:>12.1f} "
                f"{100.0 * ns / total:>6.1f}%"
            )
        lines.append(
            f"  counters: resort_ticks={self.resort_ticks} "
            f"(elided={self.ticks - self.resort_ticks}), "
            f"stages_scored={self.stages_scored} "
            f"({self.stages_scored / ticks:.1f}/tick), "
            f"tasks_scored={self.tasks_scored}, "
            f"workers_scanned={self.workers_scanned} "
            f"({self.workers_scanned / max(self.tasks_scored, 1):.1f}/task), "
            f"heap_repushes={self.heap_repushes}"
        )
        if self.vector_stages:
            lines.append(
                f"  vector engine: stages_vectorized={self.vector_stages}, "
                f"profile_rows={self.vector_rows} "
                f"({self.tasks_scored / max(self.vector_rows, 1):.1f} "
                f"tasks/row), "
                f"scalar_fallbacks={self.vector_fallbacks}, "
                f"array_rebuilds={self.vector_rebuilds}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Counters as plain data (for JSON baselines / assertions)."""
        out = {
            "ticks": self.ticks,
            "assignments": self.assignments,
            "resort_ticks": self.resort_ticks,
            "stages_scored": self.stages_scored,
            "tasks_scored": self.tasks_scored,
            "workers_scanned": self.workers_scanned,
            "heap_repushes": self.heap_repushes,
            "vector_stages": self.vector_stages,
            "vector_rows": self.vector_rows,
            "vector_fallbacks": self.vector_fallbacks,
            "vector_rebuilds": self.vector_rebuilds,
        }
        out.update({f"{name}_ns": ns for name, ns in self.phase_ns.items()})
        return out


#: The active profiler, or ``None`` when profiling is off.  Hot paths read
#: this exactly once per tick / placement round.
PROFILER: Optional[TickProfiler] = None


def enable() -> TickProfiler:
    """Install (and return) a fresh global profiler."""
    global PROFILER
    PROFILER = TickProfiler()
    return PROFILER


def disable() -> Optional[TickProfiler]:
    """Uninstall the global profiler and return it (None if not enabled)."""
    global PROFILER
    prof, PROFILER = PROFILER, None
    return prof
