"""Source-tree fingerprinting for cache invalidation.

The result cache must never serve a payload produced by *different
simulator code*: any edit under ``src/repro/`` changes what a simulation
would compute, so the fingerprint of the whole package is folded into every
cache key.  The fingerprint is content-based (file bytes, not mtimes) so it
is stable across checkouts and rebuilds of identical code.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

__all__ = ["source_fingerprint", "clear_fingerprint_cache"]

_cache: dict[Path, str] = {}


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def source_fingerprint(root: Optional[Path] = None) -> str:
    """Hex digest over every ``*.py`` file under ``root`` (default: the
    installed ``repro`` package).  Cached per-process: the source tree does
    not change underneath a running harness."""
    root = Path(root).resolve() if root is not None else _package_root()
    cached = _cache.get(root)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _cache[root] = digest
    return digest


def clear_fingerprint_cache() -> None:
    """Forget memoized fingerprints (for tests that rewrite source trees)."""
    _cache.clear()
