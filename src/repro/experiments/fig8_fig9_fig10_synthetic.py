"""Figures 8–10 — the expectable synthetic workload (§5.3).

* Fig. 8: a single Type-1 / Type-2 job shows alternating CPU and network
  phases.
* Fig. 9 (Setting 1): 40 Type-1 jobs under EJF; actual JCTs must track the
  ideal-case arithmetic (jobs run in overlapped pairs: 40, 48, 80, 88 … s at
  paper scale), and cluster CPU stays pinned high.
* Fig. 10 (Setting 2): 20 Type-1 + 20 Type-2 alternating, EJF and SRJF;
  actual JCTs again track the per-policy expectations.
"""

from __future__ import annotations

import numpy as np

from ..cluster import Cluster
from ..metrics import format_table, multi_series_chart
from ..perf.units import SplitExperiment
from ..scheduler import UrsaConfig, UrsaSystem
from ..workloads import (
    SyntheticParams,
    expected_jcts,
    make_synthetic_job,
    submit_workload,
    synthetic_setting1,
    synthetic_setting2,
)
from .common import SCALES, Scale

__all__ = [
    "run_fig8", "run_fig9", "run_fig10", "params_for",
    "SPLIT_FIG8", "SPLIT_FIG9", "SPLIT_FIG10",
]


def params_for(sc: Scale, stage_seconds: float = 8.0) -> SyntheticParams:
    m = sc.cluster.machine
    return SyntheticParams(
        total_cores=sc.cluster.total_cores,
        core_rate_mbps=m.core_rate_mbps,
        net_mbps_per_machine=m.net_mbps,
        machines=sc.cluster.num_machines,
        stage_seconds=stage_seconds,
    )


def _run(sc: Scale, workload, policy="ejf", weight=5.0):
    # a high ordering weight enforces the policy strictly, as the ideal-case
    # arithmetic of §5.3 assumes ("W indicates how much EJF should be
    # enforced")
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(cluster, UrsaConfig(policy=policy, policy_weight=weight))
    jobs = submit_workload(system, workload, seed=1)
    system.run(max_events=sc.max_events)
    if not system.all_done:
        raise RuntimeError("synthetic workload did not finish")
    return system, jobs


# ----------------------------------------------------------------------
# Figure 8 — single Type-1 / Type-2 jobs
# ----------------------------------------------------------------------
def fig8_unit_keys(sc: Scale) -> list[int]:
    return [1, 2]


def fig8_run_unit(sc: Scale, jtype: int, seed: int = 0) -> dict:
    params = params_for(sc)
    spec = make_synthetic_job(params, jtype, seed=0, name=f"type{jtype}")
    system, jobs = _run(sc, [(spec, 0.0)])
    end = jobs[0].jct
    dt = max(end / 50, 0.25)
    _g, cpu = system.cluster.utilization_timeseries("cpu_used", 0, end, dt=dt)
    _g, net = system.cluster.utilization_timeseries("net_used", 0, end, dt=dt)
    return {"jct": jobs[0].jct, "cpu": cpu, "net": net}


def fig8_reduce(sc: Scale, payloads: dict, show_charts: bool = True) -> dict:
    if show_charts:
        for jtype in (1, 2):
            unit = payloads[jtype]
            print(f"\nFigure 8: single Type-{jtype} job (JCT {unit['jct']:.1f} s)")
            print(multi_series_chart({"[CPU]Totl%": unit["cpu"], "[NET]Recv%": unit["net"]}))
    return dict(payloads)


SPLIT_FIG8 = SplitExperiment("fig8", fig8_unit_keys, fig8_run_unit, fig8_reduce)


def run_fig8(scale: str | Scale = "bench", show_charts: bool = True) -> dict:
    """Single Type-1 and Type-2 jobs: alternating CPU/network phases."""
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT_FIG8.run_serial(sc, show_charts=show_charts)


# ----------------------------------------------------------------------
# Figure 9 — Setting 1 (Type-1 jobs only, EJF)
# ----------------------------------------------------------------------
def fig9_unit_keys(sc: Scale, n_jobs: int = 12) -> list[str]:
    return ["setting1"]


def fig9_run_unit(sc: Scale, key: str, seed: int = 0, n_jobs: int = 12) -> dict:
    params = params_for(sc)
    system, jobs = _run(sc, synthetic_setting1(params, n_jobs=n_jobs))
    actual = [j.jct for j in jobs]
    expect = expected_jcts(params, [1] * n_jobs)
    end = system.makespan()
    _g, cpu = system.cluster.utilization_timeseries("cpu_used", 0, end, dt=1.0)
    mean_cpu = float(np.mean(cpu[: max(1, int(len(cpu) * 0.8))]))
    return {"actual": actual, "expected": expect, "cpu_series": cpu, "mean_cpu": mean_cpu}


def fig9_reduce(sc: Scale, payloads: dict, n_jobs: int = 12, show_charts: bool = True) -> dict:
    out = payloads["setting1"]
    rows = [
        [i, e, a, 100.0 * (a / e - 1.0)]
        for i, (e, a) in enumerate(zip(out["expected"], out["actual"]))
    ]
    print(format_table(
        ["job", "JCT_Expect", "JCT_Actual", "err %"], rows,
        title=f"Figure 9a (Setting 1, {n_jobs} Type-1 jobs, scale={sc.name})",
    ))
    if show_charts:
        print("\nFigure 9b: cluster CPU utilization")
        print(multi_series_chart({"[CPU]Totl%": out["cpu_series"]}))
    return out


SPLIT_FIG9 = SplitExperiment("fig9", fig9_unit_keys, fig9_run_unit, fig9_reduce)


def run_fig9(scale: str | Scale = "bench", n_jobs: int = 12, show_charts: bool = True) -> dict:
    """Setting 1: Type-1 jobs only, EJF; compare actual vs expected JCT."""
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT_FIG9.run_serial(sc, n_jobs=n_jobs, show_charts=show_charts)


# ----------------------------------------------------------------------
# Figure 10 — Setting 2 (alternating Type-1 / Type-2, EJF vs SRJF)
# ----------------------------------------------------------------------
def fig10_unit_keys(sc: Scale, n_pairs: int = 6) -> list[str]:
    return ["ejf", "srjf"]


def fig10_run_unit(sc: Scale, policy: str, seed: int = 0, n_pairs: int = 6) -> dict:
    params = params_for(sc)
    types = [1, 2] * n_pairs
    system, jobs = _run(sc, synthetic_setting2(params, n_pairs=n_pairs), policy=policy)
    actual = [j.jct for j in jobs]
    expect = expected_jcts(params, types, policy=policy)
    return {"actual": actual, "expected": expect, "types": types}


def fig10_reduce(sc: Scale, payloads: dict, n_pairs: int = 6, show_charts: bool = True) -> dict:
    for policy in ("ejf", "srjf"):
        unit = payloads[policy]
        rows = [[i, e, a] for i, (e, a) in enumerate(zip(unit["expected"], unit["actual"]))]
        print(format_table(
            ["job", "JCT_Expect", "JCT_Actual"], rows,
            title=f"Figure 10 ({policy.upper()}, Setting 2, scale={sc.name})",
        ))
    return dict(payloads)


SPLIT_FIG10 = SplitExperiment("fig10", fig10_unit_keys, fig10_run_unit, fig10_reduce)


def run_fig10(scale: str | Scale = "bench", n_pairs: int = 6) -> dict:
    """Setting 2: alternating Type-1/Type-2, under EJF and SRJF."""
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT_FIG10.run_serial(sc, n_pairs=n_pairs)


if __name__ == "__main__":  # pragma: no cover
    run_fig8()
    run_fig9()
    run_fig10()
