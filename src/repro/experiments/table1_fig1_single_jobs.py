"""Table 1 + Figure 1 — single-job UE and utilization patterns.

Table 1 (paper): highest achievable CPU UE on Spark / Tez with ideally
tuned containers —

            LR       CC       TPC-H Q14  TPC-H Q8
    Spark   13.97%   45.81%   62.16%     48.34%
    Tez     N/A      N/A      30.93%     41.70%

Figure 1: per-workload utilization traces showing (a–d) regular CPU/network
alternation for iterative ML/graph jobs and (e–h) irregular fluctuation for
OLAP queries.  We run each job alone on each engine (Ursa stands in for the
domain-specific engines Petuum/Gemini — like them it overlaps phases) and
report CPU UE plus 1 s-resampled CPU/NET/MEM series.
"""

from __future__ import annotations

from ..cluster import Cluster
from ..metrics import compute_metrics, format_table, multi_series_chart
from ..perf.units import SplitExperiment
from ..workloads import (
    make_cc_job,
    make_lr_job,
    make_tpch_job,
    submit_workload,
)
from .common import SCALES, Scale, build_system

__all__ = ["run", "SPLIT", "JOBS", "ENGINES", "PAPER_UE"]

ENGINES = ("y+s", "y+t", "ursa-ejf")

PAPER_UE = {
    ("spark", "lr"): 13.97,
    ("spark", "cc"): 45.81,
    ("spark", "q14"): 62.16,
    ("spark", "q8"): 48.34,
    ("tez", "q14"): 30.93,
    ("tez", "q8"): 41.70,
}


def JOBS(sc: Scale):
    par = max(8, int(sc.cluster.total_cores))
    return {
        "lr": make_lr_job(
            data_mb=24_000.0 * sc.workload_scale, iterations=8, parallelism=par
        ),
        "cc": make_cc_job(
            graph_mb=30_000.0 * sc.workload_scale, iterations=6, parallelism=par
        ),
        "q14": make_tpch_job(
            14, 200.0, sc.workload_scale, seed=91,
            max_parallelism=sc.max_parallelism, partition_mb=sc.partition_mb,
        ),
        "q8": make_tpch_job(
            8, 200.0, sc.workload_scale, seed=92,
            max_parallelism=sc.max_parallelism, partition_mb=sc.partition_mb,
        ),
    }


def unit_keys(sc: Scale) -> list[tuple[str, str]]:
    return [(engine, job_name) for engine in ENGINES for job_name in JOBS(sc)]


def run_unit(sc: Scale, key: tuple[str, str], seed: int = 0) -> dict:
    engine, job_name = key
    spec = JOBS(sc)[job_name]
    cluster = Cluster(sc.cluster)
    system = build_system(engine, cluster)
    submit_workload(system, [(spec, 0.0)], seed=seed)
    system.run(max_events=sc.max_events)
    if not system.all_done:
        raise RuntimeError(f"{engine}/{job_name}: did not finish")
    metrics = compute_metrics(system)
    end = system.makespan()
    _g, cpu = cluster.utilization_timeseries("cpu_used", 0, end, dt=max(end / 60, 0.5))
    _g, net = cluster.utilization_timeseries("net_used", 0, end, dt=max(end / 60, 0.5))
    _g, mem = cluster.utilization_timeseries("mem_used", 0, end, dt=max(end / 60, 0.5))
    return {
        "metrics": metrics,
        "series": {"cpu": cpu, "net": net, "mem": mem},
    }


def reduce(sc: Scale, payloads: dict, show_charts: bool = True) -> dict:
    results = dict(payloads)
    job_names = list(JOBS(sc))
    rows = []
    for engine in ENGINES:
        row = [engine]
        for job_name in job_names:
            unit = results[(engine, job_name)]
            row.append(100.0 * unit["metrics"].ue_cpu)
            if show_charts and engine in ("y+s", "ursa-ejf"):
                s = unit["series"]
                print(f"\nFigure 1: {job_name} on {engine} (CPU/NET/MEM %, {sc.name} scale)")
                print(multi_series_chart(
                    {"[CPU]Totl%": s["cpu"], "[NET]Recv%": s["net"], "[MEM]Used%": s["mem"]}
                ))
        rows.append(row)
    print()
    print(format_table(
        ["engine", "UE_cpu(LR)", "UE_cpu(CC)", "UE_cpu(Q14)", "UE_cpu(Q8)"],
        rows,
        title=f"Table 1 (single-job CPU UE, scale={sc.name})",
    ))
    return results


SPLIT = SplitExperiment("table1+fig1", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0, show_charts: bool = True) -> dict:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed, show_charts=show_charts)


if __name__ == "__main__":  # pragma: no cover
    run()
