"""Table 5 — CPU over-subscription (§5.1.2) + the straggler analysis.

Paper values (Mixed workload):

    ratio   makespan(Y+U)  avgJCT(Y+U)  makespan(Y+S)  avgJCT(Y+S)
    1             842.92        443.80        1072.66       435.00
    2             637.96        345.99         872.67       341.77
    4             596.66        325.32         892.83       365.30

Shapes: ratio 2 improves both systems markedly; ratio 4 shows diminishing
returns (and can regress for Y+S).  The §5.1.2 straggler text — the mean
straggler-time : JCT ratio grows with the subscription ratio (2.91% → 6.78%
→ 10.69% for Y+U) — is also reported.
"""

from __future__ import annotations

from ..cluster import Cluster
from ..metrics import compute_metrics, format_table, mean_straggler_ratio
from ..perf.units import SplitExperiment
from ..workloads import mixed_workload, submit_workload
from .common import SCALES, Scale, build_system

__all__ = ["run", "SPLIT", "RATIOS", "PAPER_ROWS"]

RATIOS = (1.0, 2.0, 4.0)

PAPER_ROWS = {
    (1.0, "y+u"): dict(makespan=842.92, avg_jct=443.80),
    (2.0, "y+u"): dict(makespan=637.96, avg_jct=345.99),
    (4.0, "y+u"): dict(makespan=596.66, avg_jct=325.32),
    (1.0, "y+s"): dict(makespan=1072.66, avg_jct=435.00),
    (2.0, "y+s"): dict(makespan=872.67, avg_jct=341.77),
    (4.0, "y+s"): dict(makespan=892.83, avg_jct=365.30),
}


def unit_keys(sc: Scale) -> list[tuple[float, str]]:
    return [(ratio, name) for ratio in RATIOS for name in ("y+u", "y+s")]


def run_unit(sc: Scale, key: tuple[float, str], seed: int = 0) -> dict:
    ratio, name = key
    cluster = Cluster(sc.cluster)
    system = build_system(name, cluster, subscription_ratio=ratio)
    submit_workload(
        system,
        mixed_workload(
            scale=sc.workload_scale,
            arrival_interval=sc.arrival_interval,
            max_parallelism=sc.max_parallelism,
            partition_mb=sc.partition_mb,
        ),
        seed=seed,
    )
    system.run(max_events=sc.max_events)
    if not system.all_done:
        raise RuntimeError(f"{name} ratio={ratio}: did not finish")
    return {
        "metrics": compute_metrics(system),
        "straggler_ratio": mean_straggler_ratio(system.jobs),
    }


def reduce(sc: Scale, payloads: dict) -> dict:
    rows = []
    for ratio in RATIOS:
        row = [f"{ratio:.0f}"]
        for name in ("y+u", "y+s"):
            unit = payloads[(ratio, name)]
            row += [
                unit["metrics"].makespan,
                unit["metrics"].mean_jct,
                100.0 * unit["straggler_ratio"],
            ]
        rows.append(row)
    print(
        format_table(
            ["ratio", "mk(Y+U)", "jct(Y+U)", "strag%(Y+U)", "mk(Y+S)", "jct(Y+S)", "strag%(Y+S)"],
            rows,
            title=f"Table 5 (CPU over-subscription, scale={sc.name})",
        )
    )
    return dict(payloads)


SPLIT = SplitExperiment("table5", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
