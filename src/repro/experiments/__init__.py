"""One module per table/figure of the paper's evaluation (§5)."""

from .common import SCALES, ExperimentResult, Scale, build_system, run_experiment

__all__ = ["SCALES", "ExperimentResult", "Scale", "build_system", "run_experiment"]
