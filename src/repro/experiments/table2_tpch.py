"""Table 2 — performance on the TPC-H workload.

Paper values (20×32 cores, 200 jobs @ 5 s):

    system      makespan  avgJCT   UE_cpu  SE_cpu  UE_mem  SE_mem
    Ursa-EJF        2803   600.0    99.64   92.47   78.83   39.80
    Ursa-SRJF       2859   490.0    99.65   89.73   78.02   48.85
    Y+S             3849  1407.4    69.35   93.32   34.69   44.13
    Y+T             9228  4287.0    58.97   98.19   28.81   70.71

Shape contract we assert: Ursa's UE_cpu ≫ Y+S's > Y+T's; makespan(Ursa) <
makespan(Y+S) < makespan(Y+T); SRJF trades a little makespan for a better
average JCT; Ursa's UE_mem ≫ the baselines'.
"""

from __future__ import annotations

from ..workloads import tpch_workload
from .common import SCALES, MetricsResult, Scale, metric_table_split

__all__ = ["run", "SPLIT", "SYSTEMS", "PAPER_ROWS"]

SYSTEMS = ("ursa-ejf", "ursa-srjf", "y+s", "y+t")

PAPER_ROWS = {
    "ursa-ejf": dict(makespan=2803, avg_jct=600.0, UE_cpu=99.64, SE_cpu=92.47, UE_mem=78.83, SE_mem=39.80),
    "ursa-srjf": dict(makespan=2859, avg_jct=489.96, UE_cpu=99.65, SE_cpu=89.73, UE_mem=78.02, SE_mem=48.85),
    "y+s": dict(makespan=3849, avg_jct=1407.40, UE_cpu=69.35, SE_cpu=93.32, UE_mem=34.69, SE_mem=44.13),
    "y+t": dict(makespan=9228, avg_jct=4287.00, UE_cpu=58.97, SE_cpu=98.19, UE_mem=28.81, SE_mem=70.71),
}


def workload(scale: Scale):
    return tpch_workload(
        n_jobs=scale.n_jobs,
        scale=scale.workload_scale,
        arrival_interval=scale.arrival_interval,
        max_parallelism=scale.max_parallelism,
        partition_mb=scale.partition_mb,
    )


SPLIT = metric_table_split(
    "table2", SYSTEMS, workload, "Table 2 (TPC-H, scale={scale})"
)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict[str, MetricsResult]:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
