"""Figures 4 & 5 — cluster utilization traces for TPC-H and TPC-DS.

The paper plots a 10-minute window of per-second CPU/MEM/NET utilization for
each system: Ursa's CPU line is a near-flat plateau at ~100 % while Y+S and
Y+T fluctuate heavily.  We regenerate the same series (resampled over the
contended middle of the run) and summarize flatness as the coefficient of
variation of the CPU series — Ursa's must be far lower.
"""

from __future__ import annotations

import numpy as np

from ..metrics import format_table, multi_series_chart
from ..perf.units import SplitExperiment
from .common import SCALES, ExperimentResult, Scale, run_one_system
from .table2_tpch import workload as tpch_wl
from .table3_tpcds import workload as tpcds_wl

__all__ = ["run", "SPLIT", "cpu_flatness", "FIGURES"]

FIGURES = {
    "Figure 4 (TPC-H)": (("ursa-ejf", "ursa-srjf", "y+s", "y+t"), tpch_wl),
    "Figure 5 (TPC-DS)": (("ursa-ejf", "ursa-srjf", "y+s"), tpcds_wl),
}


def cpu_flatness(result: ExperimentResult, lo_frac=0.1, hi_frac=0.7, dt=1.0):
    """(mean, coefficient of variation) of the CPU series over the busy
    middle window of the run."""
    end = result.system.makespan()
    t0, t1 = lo_frac * end, hi_frac * end
    _grid, cpu = result.cluster.utilization_timeseries("cpu_used", t0, t1, dt=dt)
    arr = np.asarray(cpu)
    mean = float(arr.mean())
    cv = float(arr.std() / mean) if mean > 0 else 0.0
    return mean, cv, cpu


def unit_keys(sc: Scale) -> list[tuple[str, str]]:
    return [(figure, name) for figure, (systems, _wl) in FIGURES.items() for name in systems]


def run_unit(sc: Scale, key: tuple[str, str], seed: int = 0) -> dict:
    figure, name = key
    _systems, wl = FIGURES[figure]
    res = run_one_system(name, wl, sc, seed=seed)
    mean, cv, cpu = cpu_flatness(res)
    end = res.system.makespan()
    _g, net = res.cluster.utilization_timeseries("net_used", 0.1 * end, 0.7 * end, dt=1.0)
    _g, mem = res.cluster.utilization_timeseries("mem_used", 0.1 * end, 0.7 * end, dt=1.0)
    return {
        "cpu_mean": mean, "cpu_cv": cv,
        "series": {"cpu": cpu, "net": net, "mem": mem},
    }


def reduce(sc: Scale, payloads: dict, show_charts: bool = True) -> dict:
    out = dict(payloads)
    for figure, (systems, _wl) in FIGURES.items():
        rows = []
        for name in systems:
            unit = out[(figure, name)]
            rows.append([name, unit["cpu_mean"], unit["cpu_cv"]])
            if show_charts:
                s = unit["series"]
                print(f"\n{figure}: {name} (busy window, {sc.name} scale)")
                print(multi_series_chart(
                    {"[CPU]Totl%": s["cpu"], "[NET]Recv%": s["net"], "[MEM]Used%": s["mem"]}
                ))
        print()
        print(format_table(["system", "mean CPU %", "CPU CoV"], rows, title=figure))
    return out


SPLIT = SplitExperiment("fig4+fig5", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0, show_charts: bool = True) -> dict:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed, show_charts=show_charts)


if __name__ == "__main__":  # pragma: no cover
    run()
