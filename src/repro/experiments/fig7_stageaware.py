"""Figure 7 + §5.2 text — the effects of stage-awareness and of considering
network demands in placement.

Paper numbers (TPC-H2):

* non-stage-aware placement: makespan +5.66 %, avg JCT +10.84 % (EJF);
  +10.28 % / +15.73 % (SRJF) — stragglers in partially-placed stages block
  dependent stages (Fig. 7b's utilization dip).
* ignoring network demands: makespan 650 vs 613 s, avg JCT 383 vs 339 s —
  collocated network monotasks contend and block their dependent CPU
  monotasks.
"""

from __future__ import annotations

from ..cluster import Cluster
from ..metrics import compute_metrics, format_table
from ..perf.units import SplitExperiment
from ..scheduler import UrsaConfig, UrsaSystem
from ..workloads import submit_workload, tpch2_workload
from .common import SCALES, Scale

__all__ = ["run", "SPLIT", "VARIANTS"]

VARIANTS = {
    "baseline": dict(),
    "non-stage-aware": dict(stage_aware=False),
    "ignore-network": dict(ignore_network=True),
}


def unit_keys(sc: Scale, policy: str = "ejf") -> list[str]:
    return list(VARIANTS)


def run_unit(sc: Scale, variant: str, seed: int = 0, policy: str = "ejf"):
    flags = VARIANTS[variant]
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(cluster, UrsaConfig(policy=policy, **flags))
    submit_workload(
        system,
        tpch2_workload(
            scale=sc.workload_scale,
            arrival_interval=sc.arrival_interval,
            max_parallelism=sc.max_parallelism,
            partition_mb=sc.partition_mb,
        ),
        seed=seed,
    )
    system.run(max_events=sc.max_events)
    if not system.all_done:
        raise RuntimeError(f"{variant}: did not finish")
    return compute_metrics(system)


def reduce(sc: Scale, payloads: dict, policy: str = "ejf") -> dict:
    out = dict(payloads)
    rows = [
        [name, m.makespan, m.mean_jct, 100.0 * m.ue_cpu] for name, m in out.items()
    ]
    base = out["baseline"]
    for name in ("non-stage-aware", "ignore-network"):
        m = out[name]
        rows.append([
            f"Δ {name}",
            100.0 * (m.makespan / base.makespan - 1.0),
            100.0 * (m.mean_jct / base.mean_jct - 1.0),
            0.0,
        ])
    print(format_table(
        ["variant", "makespan", "avg_jct", "UE_cpu"],
        rows,
        title=f"Figure 7 / §5.2 (stage-awareness & network demands, {policy}, scale={sc.name})",
    ))
    return out


SPLIT = SplitExperiment("fig7+sec5.2", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0, policy: str = "ejf") -> dict:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed, policy=policy)


if __name__ == "__main__":  # pragma: no cover
    run()
