"""fig_faults — fault tolerance of monotask-level scheduling (§4 follow-up).

The paper's testbed is failure-free; this experiment asks the question its
design implies: because Ursa schedules *monotasks* and tracks lineage at
task granularity, a worker loss should cost only the work that actually
lived on the dead machine, not whole executors or whole jobs.

The sweep runs the TPC-H workload (the Table-2 setup) under seed-derived
fault plans crossing **policy** (EJF / SRJF) with **crash count** (0, 1, 2
permanent worker crashes, each plan also carrying one transient blackout
when any crashes are injected).  The ``crashes=0`` unit runs with
``faults=None`` — it is the failure-free control and is bit-identical to
the plain Table-2 run.

Reported per unit: makespan / mean JCT next to the recovery accounting —
tasks restarted, monotasks lost, charged retries, wasted (re-executed)
work, mean/max recovery time (fault → last restarted task re-completed),
and jobs failed outright (retry budget or a shrunken cluster).

Deterministic end to end: the same ``(scale, key, seed)`` produces
bit-identical payloads serially, under ``--parallel``, and under
``legacy_tick`` (pinned by ``tests/faults``).
"""

from __future__ import annotations

from typing import Optional

from ..cluster import Cluster
from ..faults import FaultPlan, RetryPolicy
from ..metrics import compute_metrics
from ..metrics.report import format_fault_rows
from ..perf.units import SplitExperiment
from ..scheduler import UrsaConfig, UrsaSystem
from ..workloads import submit_workload
from .common import SCALES, Scale
from .table2_tpch import workload

__all__ = ["run", "SPLIT", "POLICIES", "CRASH_COUNTS", "build_plan"]

POLICIES = ("ejf", "srjf")
CRASH_COUNTS = (0, 1, 2)

#: per-task retry budget used by every faulted unit
RETRY = RetryPolicy(max_attempts=3, backoff_base=0.5, backoff_factor=2.0)

_ZERO_STATS = {
    "worker_crashes": 0, "blackouts": 0, "slowdowns": 0, "grant_timeouts": 0,
    "monotasks_lost": 0, "tasks_restarted": 0, "retries_charged": 0,
    "jobs_failed": 0, "wasted_work_mb": 0.0, "recovery_mean_s": 0.0,
    "recovery_max_s": 0.0,
}


def build_plan(sc: Scale, crashes: int, seed: int) -> Optional[FaultPlan]:
    """Seed-derived plan for one unit; ``None`` for the failure-free control
    (so that unit exercises the exact no-fault-layer code path)."""
    if crashes == 0:
        return None
    # faults land while the workload is in full swing: the submission phase
    # lasts n_jobs * arrival_interval seconds and execution trails it
    horizon = sc.n_jobs * sc.arrival_interval
    return FaultPlan.seeded(
        seed=seed,
        num_workers=sc.cluster.num_machines,
        window=(0.5 * horizon, 2.5 * horizon),
        crashes=crashes,
        blackouts=1,
    )


def unit_keys(sc: Scale) -> list[str]:
    return [f"{policy}-c{crashes}" for policy in POLICIES for crashes in CRASH_COUNTS]


def run_unit(sc: Scale, key: str, seed: int = 0) -> dict:
    policy, _, ctag = key.rpartition("-c")
    crashes = int(ctag)
    plan = build_plan(sc, crashes, seed)
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(
        cluster, UrsaConfig(policy=policy, faults=plan, retry=RETRY)
    )
    submit_workload(system, workload(sc), seed=seed)
    system.run(max_events=sc.max_events)
    # unlike run_one_system, FAILED is an acceptable terminal state here:
    # graceful degradation under faults is part of what is being measured
    if not system.all_terminal:
        raise RuntimeError(f"fig_faults[{key}]: workload wedged mid-recovery")
    controller = system.fault_controller
    return {
        "metrics": compute_metrics(system),
        "faults": controller.stats.as_dict() if controller else dict(_ZERO_STATS),
        "failed_jobs": sorted(j.job_id for j in system.failed_jobs),
    }


def reduce(sc: Scale, payloads: dict[str, dict]) -> dict[str, dict]:
    print(
        format_fault_rows(
            payloads,
            title=f"Fault tolerance (TPC-H, scale={sc.name}; "
            f"unit = policy-c<crashes>)",
        )
    )
    return payloads


SPLIT = SplitExperiment("fig_faults", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict[str, dict]:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
