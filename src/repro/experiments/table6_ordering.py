"""Table 6 — job-ordering (JO) vs monotask-ordering (MO) ablation (§5.2).

Paper values (TPC-H2):

    setting    makespan(EJF)  avgJCT(EJF)  makespan(SRJF)  avgJCT(SRJF)
    JO            630.33        376.67        623.00        373.08
    MO            615.33        346.49        629.33        351.73
    JO + MO       613.00        328.31        635.67        338.67

Shape: MO alone beats JO alone on average JCT ("MO is more effective than
JO because it directly determines both resource allocation and monotask
execution"), and enabling both is best.
"""

from __future__ import annotations

from ..cluster import Cluster
from ..metrics import compute_metrics, format_table
from ..perf.units import SplitExperiment
from ..scheduler import UrsaConfig, UrsaSystem
from ..workloads import submit_workload, tpch2_workload
from .common import SCALES, Scale

__all__ = ["run", "SPLIT", "SETTINGS", "PAPER_ROWS"]

SETTINGS = {
    "JO": dict(job_ordering=True, monotask_ordering=False),
    "MO": dict(job_ordering=False, monotask_ordering=True),
    "JO+MO": dict(job_ordering=True, monotask_ordering=True),
}

PAPER_ROWS = {
    ("JO", "ejf"): dict(makespan=630.33, avg_jct=376.67),
    ("MO", "ejf"): dict(makespan=615.33, avg_jct=346.49),
    ("JO+MO", "ejf"): dict(makespan=613.00, avg_jct=328.31),
    ("JO", "srjf"): dict(makespan=623.00, avg_jct=373.08),
    ("MO", "srjf"): dict(makespan=629.33, avg_jct=351.73),
    ("JO+MO", "srjf"): dict(makespan=635.67, avg_jct=338.67),
}


def unit_keys(sc: Scale) -> list[tuple[str, str]]:
    return [(setting, policy) for setting in SETTINGS for policy in ("ejf", "srjf")]


def run_unit(sc: Scale, key: tuple[str, str], seed: int = 0):
    setting, policy = key
    flags = SETTINGS[setting]
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(cluster, UrsaConfig(policy=policy, policy_weight=0.2, **flags))
    submit_workload(
        system,
        tpch2_workload(
            scale=sc.workload_scale,
            arrival_interval=sc.arrival_interval,
            max_parallelism=sc.max_parallelism,
            partition_mb=sc.partition_mb,
        ),
        seed=seed,
    )
    system.run(max_events=sc.max_events)
    if not system.all_done:
        raise RuntimeError(f"{setting}/{policy}: did not finish")
    return compute_metrics(system)


def reduce(sc: Scale, payloads: dict) -> dict:
    rows = []
    for setting in SETTINGS:
        row = [setting]
        for policy in ("ejf", "srjf"):
            metrics = payloads[(setting, policy)]
            row += [metrics.makespan, metrics.mean_jct]
        rows.append(row)
    print(
        format_table(
            ["setting", "mk(EJF)", "jct(EJF)", "mk(SRJF)", "jct(SRJF)"],
            rows,
            title=f"Table 6 (JO/MO ablation on TPC-H2, scale={sc.name})",
        )
    )
    return dict(payloads)


SPLIT = SplitExperiment("table6", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
