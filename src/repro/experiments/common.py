"""Shared harness for all paper experiments.

Every experiment builds systems by name, submits a generated workload, runs
to completion, and reports :class:`~repro.metrics.accounting.SystemMetrics`
(plus utilization traces for the figure experiments).

Scales: the authors ran a 20×32-core testbed for ~an hour per workload; the
default ``bench`` scale shrinks data sizes and job counts so every
experiment finishes in seconds-to-minutes of wall time while keeping the
cluster *contended* (that is what the comparisons are about).  ``paper``
scale reproduces the §5 configuration (200 jobs, 5 s arrivals) for offline
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..baselines import (
    CapacityPlacement,
    MonoSparkApp,
    TetrisPlacement,
    YarnConfig,
    YarnSystem,
    spark_config,
    tez_config,
)
from ..cluster import Cluster, ClusterSpec
from ..metrics import SystemMetrics, compute_metrics, format_metric_rows
from ..perf.units import SplitExperiment
from ..scheduler import UrsaConfig, UrsaSystem
from ..workloads import JobSpec, submit_workload

__all__ = [
    "Scale", "SCALES", "build_system", "run_experiment", "run_one_system",
    "SYSTEM_NAMES", "ExperimentResult", "MetricsResult", "metric_table_split",
]


@dataclass(frozen=True)
class Scale:
    """Knobs that shrink an experiment without changing its structure."""

    name: str
    workload_scale: float      # multiplies data sizes
    n_jobs: int                # job count for the big workloads
    arrival_interval: float    # seconds between submissions
    max_parallelism: int       # cap on stage width
    partition_mb: float = 128.0  # task granularity (shrinks with the data so
    cluster: ClusterSpec = field(default_factory=ClusterSpec.paper_cluster)
    max_events: int = 200_000_000

    def with_network(self, gbps: float) -> "Scale":
        return replace(self, cluster=self.cluster.with_network(gbps))


SCALES: dict[str, Scale] = {
    # fast CI-grade runs; task granularity shrunk so stages stay wide enough
    # to contend the (smaller) cluster, like the full-size workload does
    "tiny": Scale(
        "tiny", workload_scale=0.02, n_jobs=10, arrival_interval=0.6,
        max_parallelism=128, partition_mb=12.0,
        cluster=ClusterSpec(num_machines=4, machine=ClusterSpec.paper_cluster().machine),
    ),
    # benchmark default: 8 machines, moderate data, contended
    "bench": Scale(
        "bench", workload_scale=0.05, n_jobs=25, arrival_interval=1.0,
        max_parallelism=400, partition_mb=16.0,
        cluster=ClusterSpec(num_machines=8, machine=ClusterSpec.paper_cluster().machine),
    ),
    # the paper's configuration (slow: run offline)
    "paper": Scale(
        "paper", workload_scale=1.0, n_jobs=200, arrival_interval=5.0,
        max_parallelism=4000, partition_mb=128.0,
    ),
}

SYSTEM_NAMES = (
    "ursa-ejf", "ursa-srjf", "y+s", "y+t", "y+u",
    "tetris", "tetris2", "capacity",
)


def build_system(name: str, cluster: Cluster, **overrides):
    """Instantiate a named system over a (fresh) cluster.

    ``overrides`` are forwarded: ``subscription_ratio`` (baselines),
    ``ursa_config`` (full UrsaConfig replacement), ``policy_weight`` etc.
    """
    ratio = overrides.pop("subscription_ratio", 1.0)
    yarn = YarnConfig(cpu_subscription_ratio=ratio)
    if name == "ursa-ejf":
        cfg = overrides.pop("ursa_config", None) or UrsaConfig(policy="ejf", **overrides)
        return UrsaSystem(cluster, cfg)
    if name == "ursa-srjf":
        cfg = overrides.pop("ursa_config", None) or UrsaConfig(policy="srjf", **overrides)
        return UrsaSystem(cluster, cfg)
    if name == "y+s":
        return YarnSystem(cluster, spark_config(), yarn)
    if name == "y+t":
        return YarnSystem(cluster, tez_config(), yarn)
    if name == "y+u":
        return YarnSystem(cluster, spark_config(), yarn, app_class=MonoSparkApp)
    if name == "tetris":
        return UrsaSystem(cluster, UrsaConfig(placement=TetrisPlacement(), **overrides))
    if name == "tetris2":
        return UrsaSystem(
            cluster, UrsaConfig(placement=TetrisPlacement(include_network=False), **overrides)
        )
    if name == "capacity":
        return UrsaSystem(cluster, UrsaConfig(placement=CapacityPlacement(), **overrides))
    raise ValueError(f"unknown system {name!r}; known: {SYSTEM_NAMES}")


@dataclass
class ExperimentResult:
    """One system's run: metrics plus handles for trace post-processing."""

    name: str
    metrics: SystemMetrics
    system: object

    @property
    def cluster(self) -> Cluster:
        return self.system.cluster


@dataclass
class MetricsResult:
    """Picklable slice of an :class:`ExperimentResult` — what a worker
    process can ship back to the parent (no live system/cluster handles)."""

    name: str
    metrics: SystemMetrics


def run_one_system(
    name: str,
    workload_fn: Callable[[Scale], list[tuple[JobSpec, float]]],
    scale: Scale,
    seed: int = 0,
    overrides: Optional[dict] = None,
) -> ExperimentResult:
    """Run one named system over a fresh cluster + regenerated workload.

    This is the independent simulation unit the parallel runner fans out;
    :func:`run_experiment` is just a serial loop over it.
    """
    cluster = Cluster(scale.cluster)
    system = build_system(name, cluster, **(overrides or {}))
    workload = workload_fn(scale)
    submit_workload(system, workload, seed=seed)
    system.run(max_events=scale.max_events)
    if not system.all_done:
        raise RuntimeError(f"{name}: workload did not finish")
    return ExperimentResult(name, compute_metrics(system), system)


def metric_table_split(
    name: str,
    systems: Sequence[str],
    workload_fn: Callable[[Scale], list[tuple[JobSpec, float]]],
    title: str,
) -> SplitExperiment:
    """Enumerate/run/reduce triple for the "one row per system" tables
    (Tables 2–4): each unit is one system's full run, the payload is its
    :class:`SystemMetrics`, and the reduce prints the metric table.

    ``title`` may contain ``{scale}``, filled with the scale name.
    """

    def unit_keys(sc: Scale) -> list[str]:
        return list(systems)

    def run_unit(sc: Scale, system_name: str, seed: int = 0) -> SystemMetrics:
        return run_one_system(system_name, workload_fn, sc, seed=seed).metrics

    def reduce(sc: Scale, payloads: dict[str, SystemMetrics]) -> dict[str, MetricsResult]:
        print(format_metric_rows(payloads, title=title.format(scale=sc.name)))
        return {k: MetricsResult(k, m) for k, m in payloads.items()}

    return SplitExperiment(name, unit_keys, run_unit, reduce)


def run_experiment(
    system_names: Sequence[str],
    workload_fn: Callable[[Scale], list[tuple[JobSpec, float]]],
    scale: Scale,
    seed: int = 0,
    overrides_fn: Optional[Callable[[str], dict]] = None,
) -> dict[str, ExperimentResult]:
    """Run the same (regenerated) workload through each named system."""
    results: dict[str, ExperimentResult] = {}
    for name in system_names:
        overrides = overrides_fn(name) if overrides_fn else {}
        results[name] = run_one_system(name, workload_fn, scale, seed=seed, overrides=overrides)
    return results
