"""fig_service — open-loop service mode: SLOs vs offered load.

The paper's experiments submit a fixed batch and wait; a production
cluster is an open system — requests keep arriving whether or not it
keeps up.  This experiment drives the full Ursa admission/placement
stack with deterministic arrival processes and reports service-level
metrics over a warmup-excluded window: JCT p50/p99, admission-queue
wait, goodput, and the shed rate once backpressure engages.

The sweep crosses arrival **shape** with offered **load**:

* ``poisson-x{0.5,1.0,1.5,2.0}`` — a constant-rate ramp through and past
  the cluster's capacity (the SLO "hockey stick");
* ``diurnal-x1.0`` / ``bursty-x1.0`` — shaped load at nominal rate,
  where the autoscaler earns its keep;
* ``poisson-x2.0-noscale`` — the overload point with elasticity off:
  the fixed-fleet control the autoscaled row is compared against.

Offered load is ``multiplier × base_rate(sc)``, where the base rate is
the analytic CPU-saturation point of the service job mix (see
:func:`base_rate`) derated to target ~60 % occupancy at ``x1.0``.  Every
unit is an independent (cluster, system, driver) build, so the sweep
runs bit-identically serial or parallel (pinned by ``tests/service``).
"""

from __future__ import annotations

from ..cluster import Cluster
from ..scheduler import UrsaConfig, UrsaSystem
from ..service import (
    AutoscalerConfig,
    ServiceConfig,
    ServiceDriver,
    format_service_rows,
    make_process,
    mean_job_cpu_mb,
    validate_report,
)
from ..perf.units import SplitExperiment
from .common import SCALES, Scale

__all__ = [
    "run", "SPLIT", "UNITS", "base_rate", "service_config", "build_unit",
]

#: (arrival process, load multiplier, autoscaler on?) per sweep unit
UNITS: dict[str, tuple[str, float, bool]] = {
    "poisson-x0.5": ("poisson", 0.5, True),
    "poisson-x1.0": ("poisson", 1.0, True),
    "poisson-x1.5": ("poisson", 1.5, True),
    "poisson-x2.0": ("poisson", 2.0, True),
    "diurnal-x1.0": ("diurnal", 1.0, True),
    "bursty-x1.0": ("bursty", 1.0, True),
    "poisson-x2.0-noscale": ("poisson", 2.0, False),
}

#: fraction of the CPU-saturation rate offered at multiplier 1.0
_TARGET_OCCUPANCY = 0.6

#: tenants sampled by every arrival process
N_TENANTS = 1000


def base_rate(sc: Scale) -> float:
    """Nominal offered load (jobs/s): ~60 % of the CPU-saturation rate.

    The cluster processes ``total_cores × core_rate_mbps`` MB of CPU work
    per second; dividing by the mean CPU work of one service job gives
    the arrival rate at which CPU alone would saturate.  ``x1.0`` derates
    that to a loaded-but-stable point; ``x2.0`` is firmly past capacity.
    """
    machine = sc.cluster.machine
    cpu_mbps = sc.cluster.total_cores * machine.core_rate_mbps
    return _TARGET_OCCUPANCY * cpu_mbps / mean_job_cpu_mb(sc)


def service_config(sc: Scale, elastic: bool) -> ServiceConfig:
    """Window + backpressure + elasticity knobs, derived from the scale.

    The horizon covers several batch-equivalents of submissions so the
    window sees steady state; warmup drops the first sixth (cold cluster,
    empty pipelines) and the drain grace gives in-flight work half a
    horizon to finish before being counted as in flight.
    """
    horizon = 6.0 * sc.n_jobs * sc.arrival_interval
    auto = None
    if elastic:
        n = sc.cluster.num_machines
        auto = AutoscalerConfig(
            interval=1.0,
            min_workers=1,
            max_workers=n,
            initial_workers=max(1, n // 2),
            cooldown=3.0,
        )
    return ServiceConfig(
        horizon=horizon,
        warmup=horizon / 6.0,
        drain_grace=horizon / 2.0,
        queue_limit=8,
        autoscaler=auto,
    )


def build_unit(sc: Scale, key: str, seed: int = 0) -> ServiceDriver:
    """Fresh (cluster, system, driver) for one sweep unit."""
    process_name, mult, elastic = UNITS[key]
    process = make_process(
        process_name, rate_per_s=mult * base_rate(sc), n_tenants=N_TENANTS
    )
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(cluster, UrsaConfig(policy="srjf"))
    return ServiceDriver(
        system, process, service_config(sc, elastic), sc, seed=seed
    )


def unit_keys(sc: Scale) -> list[str]:
    return list(UNITS)


def run_unit(sc: Scale, key: str, seed: int = 0) -> dict:
    report = build_unit(sc, key, seed=seed).run()
    errs = validate_report(report)
    if errs:
        raise RuntimeError(f"fig_service[{key}]: invalid SLO report: {errs}")
    return report


def reduce(sc: Scale, payloads: dict[str, dict]) -> dict[str, dict]:
    print(
        format_service_rows(
            payloads,
            title=f"Service SLOs vs offered load (scale={sc.name}; "
            f"base rate {base_rate(sc):.2f} jobs/s)",
        )
    )
    return payloads


SPLIT = SplitExperiment("fig_service", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict[str, dict]:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
