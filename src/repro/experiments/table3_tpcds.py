"""Table 3 — performance on the TPC-DS workload (EJF, SRJF, Y+S).

Paper values:

    system      makespan  avgJCT   UE_cpu  SE_cpu  UE_mem  SE_mem
    Ursa-EJF        1613   453.2    99.57   88.31   81.64   25.01
    Ursa-SRJF       1630   242.3    99.75   86.99   85.83   32.93
    Y+S             2927   894.4    48.56   90.48   19.39   37.65

TPC-DS's deep DAGs with alternating wide/narrow stages hurt Y+S even more
than TPC-H does (idle containers during small stages + re-request latency
during big ones), so the Ursa : Y+S UE and makespan gaps widen — that
relative widening is the shape this experiment checks.
"""

from __future__ import annotations

from ..workloads import tpcds_workload
from .common import SCALES, MetricsResult, Scale, metric_table_split

__all__ = ["run", "SPLIT", "SYSTEMS", "PAPER_ROWS"]

SYSTEMS = ("ursa-ejf", "ursa-srjf", "y+s")

PAPER_ROWS = {
    "ursa-ejf": dict(makespan=1613, avg_jct=453.20, UE_cpu=99.57, SE_cpu=88.31, UE_mem=81.64, SE_mem=25.01),
    "ursa-srjf": dict(makespan=1630, avg_jct=242.27, UE_cpu=99.75, SE_cpu=86.99, UE_mem=85.83, SE_mem=32.93),
    "y+s": dict(makespan=2927, avg_jct=894.36, UE_cpu=48.56, SE_cpu=90.48, UE_mem=19.39, SE_mem=37.65),
}


def workload(scale: Scale):
    return tpcds_workload(
        n_jobs=scale.n_jobs,
        scale=scale.workload_scale,
        arrival_interval=scale.arrival_interval,
        max_parallelism=scale.max_parallelism,
        partition_mb=scale.partition_mb,
    )


SPLIT = metric_table_split(
    "table3", SYSTEMS, workload, "Table 3 (TPC-DS, scale={scale})"
)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict[str, MetricsResult]:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
