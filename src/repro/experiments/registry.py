"""Index of every reproduced table/figure → its experiment entry point."""

from __future__ import annotations

from . import (
    fig4_fig5_traces,
    fig6_network,
    fig7_stageaware,
    fig8_fig9_fig10_synthetic,
    table1_fig1_single_jobs,
    table2_tpch,
    table3_tpcds,
    table4_mixed,
    table5_oversub,
    table6_ordering,
)

__all__ = ["EXPERIMENTS", "run_all"]

EXPERIMENTS = {
    "table1+fig1": table1_fig1_single_jobs.run,
    "table2": table2_tpch.run,
    "table3": table3_tpcds.run,
    "table4": table4_mixed.run,
    "table5": table5_oversub.run,
    "table6": table6_ordering.run,
    "fig4+fig5": fig4_fig5_traces.run,
    "fig6": fig6_network.run,
    "fig7+sec5.2": fig7_stageaware.run,
    "fig8": fig8_fig9_fig10_synthetic.run_fig8,
    "fig9": fig8_fig9_fig10_synthetic.run_fig9,
    "fig10": fig8_fig9_fig10_synthetic.run_fig10,
}


def run_all(scale: str = "bench") -> dict:
    """Regenerate every table and figure at the given scale."""
    results = {}
    for name, fn in EXPERIMENTS.items():
        print(f"\n=== {name} ===")
        results[name] = fn(scale)
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys

    run_all(sys.argv[1] if len(sys.argv) > 1 else "bench")
