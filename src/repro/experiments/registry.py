"""Index of every reproduced table/figure → its experiment entry point.

Two views of the same experiments:

* ``EXPERIMENTS`` — the legacy callables (``run(scale)``), each running its
  own units serially in-process.
* ``SPLIT_EXPERIMENTS`` — the enumerate/run-one/reduce triples (see
  :mod:`repro.perf.units`) that :class:`~repro.perf.runner.ParallelRunner`
  fans across worker processes and caches per unit.

``run_all`` drives the split view so the whole suite can run parallel and
cached; with ``parallel=0`` and no cache it degenerates to the exact serial
behaviour the legacy loop had.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..perf.cache import ResultCache
from ..perf.runner import ParallelRunner
from ..perf.units import SplitExperiment
from . import (
    fig4_fig5_traces,
    fig6_network,
    fig7_stageaware,
    fig8_fig9_fig10_synthetic,
    fig_faults,
    fig_service,
    table1_fig1_single_jobs,
    table2_tpch,
    table3_tpcds,
    table4_mixed,
    table5_oversub,
    table6_ordering,
)

__all__ = ["EXPERIMENTS", "SPLIT_EXPERIMENTS", "run_all"]

EXPERIMENTS = {
    "table1+fig1": table1_fig1_single_jobs.run,
    "table2": table2_tpch.run,
    "table3": table3_tpcds.run,
    "table4": table4_mixed.run,
    "table5": table5_oversub.run,
    "table6": table6_ordering.run,
    "fig4+fig5": fig4_fig5_traces.run,
    "fig6": fig6_network.run,
    "fig7+sec5.2": fig7_stageaware.run,
    "fig8": fig8_fig9_fig10_synthetic.run_fig8,
    "fig9": fig8_fig9_fig10_synthetic.run_fig9,
    "fig10": fig8_fig9_fig10_synthetic.run_fig10,
    "fig_faults": fig_faults.run,
    "fig_service": fig_service.run,
}

SPLIT_EXPERIMENTS: dict[str, SplitExperiment] = {
    "table1+fig1": table1_fig1_single_jobs.SPLIT,
    "table2": table2_tpch.SPLIT,
    "table3": table3_tpcds.SPLIT,
    "table4": table4_mixed.SPLIT,
    "table5": table5_oversub.SPLIT,
    "table6": table6_ordering.SPLIT,
    "fig4+fig5": fig4_fig5_traces.SPLIT,
    "fig6": fig6_network.SPLIT,
    "fig7+sec5.2": fig7_stageaware.SPLIT,
    "fig8": fig8_fig9_fig10_synthetic.SPLIT_FIG8,
    "fig9": fig8_fig9_fig10_synthetic.SPLIT_FIG9,
    "fig10": fig8_fig9_fig10_synthetic.SPLIT_FIG10,
    "fig_faults": fig_faults.SPLIT,
    "fig_service": fig_service.SPLIT,
}


def run_all(
    scale: str = "bench",
    parallel: int = 0,
    cache_dir: Optional[str] = None,
    only: Optional[Sequence[str]] = None,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> dict:
    """Regenerate every table and figure at the given scale.

    Args:
        scale: one of ``tiny`` / ``bench`` / ``paper`` (or a Scale object).
        parallel: worker-process count; ``0`` runs serially in-process.
        cache_dir: if given, unit results are cached there and unchanged
            units are skipped on re-run.
        only: restrict to a subset of experiment names.
        seed: base seed forwarded to every experiment.
        runner: a prebuilt :class:`ParallelRunner` (overrides ``parallel`` /
            ``cache_dir``); callers can inspect its unit counters afterwards.
    """
    names = list(EXPERIMENTS) if only is None else list(only)
    unknown = [n for n in names if n not in SPLIT_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(SPLIT_EXPERIMENTS)}")
    if runner is None:
        cache = ResultCache(cache_dir) if cache_dir else None
        runner = ParallelRunner(workers=parallel, cache=cache)
    if len(names) == 1:
        print(f"\n=== {names[0]} ===")
    return runner.run_many(names, scale, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    import sys

    run_all(sys.argv[1] if len(sys.argv) > 1 else "bench")
