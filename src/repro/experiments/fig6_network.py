"""Figure 6 — Ursa under 1 Gbps / 4 Gbps networks (§5.2).

"With 1 Gbps bandwidth, network becomes the bottleneck resource and Ursa
achieves high network utilization, while CPU is not highly used ... when we
increase the bandwidth to 4 Gbps the bottleneck switches back to CPU."

We run TPC-H2 at 1, 4 and 10 Gbps and check the crossover: at 1 Gbps the
mean network utilization exceeds the mean CPU utilization; at 10 Gbps CPU
exceeds network — Ursa drives whichever resource is the bottleneck.
"""

from __future__ import annotations

from ..cluster import Cluster
from ..metrics import compute_metrics, format_table, multi_series_chart
from ..perf.units import SplitExperiment
from ..scheduler import UrsaSystem
from ..workloads import submit_workload, tpch2_workload
from .common import SCALES, Scale

__all__ = ["run", "SPLIT", "BANDWIDTHS_GBPS"]

BANDWIDTHS_GBPS = (1.0, 4.0, 10.0)


def unit_keys(sc: Scale) -> list[float]:
    return list(BANDWIDTHS_GBPS)


def run_unit(sc: Scale, gbps: float, seed: int = 0) -> dict:
    cluster = Cluster(sc.with_network(gbps).cluster)
    system = UrsaSystem(cluster)
    submit_workload(
        system,
        tpch2_workload(
            scale=sc.workload_scale,
            arrival_interval=sc.arrival_interval,
            max_parallelism=sc.max_parallelism,
            partition_mb=sc.partition_mb,
        ),
        seed=seed,
    )
    system.run(max_events=sc.max_events)
    if not system.all_done:
        raise RuntimeError(f"{gbps} Gbps: did not finish")
    metrics = compute_metrics(system)
    end = system.makespan()
    t0, t1 = 0.1 * end, 0.7 * end
    cpu_mean = 100.0 * cluster.mean_utilization("cpu_used", t0, t1)
    net_mean = 100.0 * cluster.mean_utilization("net_used", t0, t1)
    _g, cpu = cluster.utilization_timeseries("cpu_used", t0, t1, dt=1.0)
    _g, net = cluster.utilization_timeseries("net_used", t0, t1, dt=1.0)
    return {
        "metrics": metrics, "cpu_mean": cpu_mean, "net_mean": net_mean,
        "series": {"cpu": cpu, "net": net},
    }


def reduce(sc: Scale, payloads: dict, show_charts: bool = True) -> dict:
    rows = []
    for gbps in BANDWIDTHS_GBPS:
        unit = payloads[gbps]
        rows.append([f"{gbps:.0f} Gbps", unit["metrics"].makespan, unit["cpu_mean"], unit["net_mean"]])
        if show_charts:
            print(f"\nFigure 6: Ursa on a {gbps:.0f} Gbps network ({sc.name} scale)")
            print(multi_series_chart(
                {"[CPU]Totl%": unit["series"]["cpu"], "[NET]Recv%": unit["series"]["net"]}
            ))
    print()
    print(format_table(
        ["network", "makespan", "mean CPU %", "mean NET %"],
        rows,
        title="Figure 6 (bottleneck switches with bandwidth)",
    ))
    return dict(payloads)


SPLIT = SplitExperiment("fig6", unit_keys, run_unit, reduce)


def run(scale: str | Scale = "bench", seed: int = 0, show_charts: bool = True) -> dict:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed, show_charts=show_charts)


if __name__ == "__main__":  # pragma: no cover
    run()
