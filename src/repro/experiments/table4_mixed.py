"""Table 4 — the Mixed workload (§5.1.2).

Paper values:

    system      makespan  avgJCT   UE_cpu  SE_cpu
    Ursa-EJF       464.0   208.2    99.57   86.60
    Ursa-SRJF      473.5   170.6    98.89   86.08
    Y+U            842.9   443.8    44.15   89.97
    Y+S           1072.7   435.0    67.92   83.84
    Capacity       511.0   226.2    99.77   78.66
    Tetris         562.3   254.5    98.62   70.02
    Tetris2        506.0   240.8    99.71   79.75

Shapes checked: (1) Y+U has executor-grade UE despite running monotasks —
fine-grained sharing *within* a job is not enough; (2) the placement
comparators (Capacity, Tetris, Tetris2) keep Ursa-grade UE but lose SE_cpu,
with Tetris (peak network demands block placement) worst and Tetris2 ≥
Tetris; (3) Ursa's Algorithm 1 gives the best makespan of the group.
"""

from __future__ import annotations

from ..workloads import mixed_workload
from .common import SCALES, MetricsResult, Scale, metric_table_split

__all__ = ["run", "SPLIT", "SYSTEMS", "PAPER_ROWS"]

SYSTEMS = ("ursa-ejf", "ursa-srjf", "y+u", "y+s", "capacity", "tetris", "tetris2")

PAPER_ROWS = {
    "ursa-ejf": dict(makespan=464.00, avg_jct=208.21, UE_cpu=99.57, SE_cpu=86.60),
    "ursa-srjf": dict(makespan=473.50, avg_jct=170.64, UE_cpu=98.89, SE_cpu=86.08),
    "y+u": dict(makespan=842.92, avg_jct=443.80, UE_cpu=44.15, SE_cpu=89.97),
    "y+s": dict(makespan=1072.66, avg_jct=435.00, UE_cpu=67.92, SE_cpu=83.84),
    "capacity": dict(makespan=511.00, avg_jct=226.16, UE_cpu=99.77, SE_cpu=78.66),
    "tetris": dict(makespan=562.33, avg_jct=254.52, UE_cpu=98.62, SE_cpu=70.02),
    "tetris2": dict(makespan=506.00, avg_jct=240.83, UE_cpu=99.71, SE_cpu=79.75),
}


def workload(scale: Scale):
    # the Mixed set is 38 jobs by construction; scale shrinks sizes only
    return mixed_workload(
        scale=scale.workload_scale,
        parallelism=600,
        arrival_interval=scale.arrival_interval,
        max_parallelism=scale.max_parallelism,
        partition_mb=scale.partition_mb,
    )


SPLIT = metric_table_split(
    "table4", SYSTEMS, workload, "Table 4 (Mixed, scale={scale})"
)


def run(scale: str | Scale = "bench", seed: int = 0) -> dict[str, MetricsResult]:
    sc = SCALES[scale] if isinstance(scale, str) else scale
    return SPLIT.run_serial(sc, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    run()
