"""CLI for the experiment suite.

Examples::

    # the whole suite, serial (legacy behaviour)
    python -m repro.experiments --scale bench

    # fan units across 4 worker processes with an on-disk result cache
    python -m repro.experiments --parallel 4 --cache-dir .repro-cache

    # list what can run / run a subset
    python -m repro.experiments --list
    python -m repro.experiments --only table2 --only fig8 --scale tiny

    # place through the vectorized F(t, w) engine (bit-identical metrics)
    python -m repro.experiments --placement vector --only table2 --scale tiny

    # profile the scheduling-tick hot path (forces serial execution)
    python -m repro.experiments --profile --only fig7 --scale tiny

    # trace monotask lifecycles; writes traces/trace.jsonl + trace.json
    # (open the latter at https://ui.perfetto.dev)
    python -m repro.experiments --trace --only table2 --scale tiny

    # why-slow attribution: critical-path ledgers + idle blame; writes
    # traces/attribution.json and flow-enriched trace.json (implies --trace,
    # works with --parallel: workers record locally, the parent splices)
    python -m repro.experiments --analyze --only table2 --scale tiny

    # telemetry: live per-unit dashboard panels, or metric files
    # (telemetry.json / metrics.prom / scrapes/*.prom / dashboard.txt)
    python -m repro.experiments --dashboard --only table2 --scale tiny
    python -m repro.experiments --telemetry-out metrics --only fig8 --scale tiny

    # open-loop service mode: SLO curves + a validated slo_report.json
    # (see docs/OPERATIONS.md for the operator walkthrough)
    python -m repro.experiments --only fig_service --scale tiny --service-out service-out
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from ..metrics.report import format_latency_rows
from ..obs import attribution as obs_attribution
from ..obs import derive_latency, write_trace_files
from ..obs import dashboard as obs_dashboard
from ..obs import promexport
from ..obs import recorder as obs_recorder
from ..obs import telemetry as obs_telemetry
from ..perf import profile as tick_profile
from ..perf.cache import ResultCache
from ..perf.runner import ParallelRunner, default_workers
from ..scheduler.vector import PLACEMENT_MODES, set_default_mode
from .common import SCALES
from .registry import EXPERIMENTS, run_all


def resolve_experiment_name(name: str) -> str | None:
    """Resolve a (possibly abbreviated) experiment name.

    Exact names win; otherwise a *unique* prefix is accepted, so ``fig7``
    resolves to ``fig7+sec5.2`` while an ambiguous ``fig`` stays unknown.
    """
    if name in EXPERIMENTS:
        return name
    matches = [known for known in EXPERIMENTS if known.startswith(name)]
    return matches[0] if len(matches) == 1 else None


def build_parser() -> argparse.ArgumentParser:
    """The CLI surface, exposed as a function so tools can introspect it
    (``scripts/check_docs.py`` cross-checks every flag against the docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="experiment scale (default: bench)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan simulation units across N worker processes "
             "(0 = auto-detect core count; omit for serial in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache unit results under DIR; unchanged units are skipped on re-run",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only this experiment (repeatable; also accepts comma-separated "
             "lists and unique prefixes, e.g. fig7)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    parser.add_argument(
        "--placement", default=None, metavar="MODE",
        choices=sorted(PLACEMENT_MODES),
        help="placement engine: 'scalar' (reference loop, default) or "
             "'vector' (profile-dedup/broadcast fast path; bit-identical "
             "metrics — see docs/DESIGN.md)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the scheduling-tick hot path and print per-phase "
             "counters (forces serial in-process execution)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record monotask lifecycle events and export JSONL + Chrome "
             "Trace JSON (works with --parallel: pool workers record "
             "locally and the parent splices the streams in unit order)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="directory for trace.jsonl / trace.json (default: traces; "
             "implies --trace)",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="derive why-slow attribution from the trace: per-job "
             "critical-path JCT ledgers and the idle-time blame ledger; "
             "writes attribution.json next to the trace files and enriches "
             "trace.json with critical-path flow arrows (implies --trace)",
    )
    parser.add_argument(
        "--dashboard", action="store_true",
        help="collect cluster telemetry and print an ASCII dashboard panel "
             "as each simulation unit finishes (forces serial execution)",
    )
    parser.add_argument(
        "--telemetry-out", default=None, metavar="DIR",
        help="collect cluster telemetry and write telemetry.json, "
             "metrics.prom, scrapes/*.prom and dashboard.txt under DIR "
             "(forces serial execution)",
    )
    parser.add_argument(
        "--telemetry-interval", type=float, default=1.0, metavar="SEC",
        help="telemetry resampling interval in simulation seconds "
             "(default: 1.0)",
    )
    parser.add_argument(
        "--service-out", default=None, metavar="DIR",
        help="write the fig_service SLO report to DIR/slo_report.json and "
             "validate it against the report schema (requires fig_service "
             "among the experiments run; see docs/OPERATIONS.md)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list experiment names and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in EXPERIMENTS:
            print(name)
        return 0

    only = None
    if args.only:
        requested = [name for group in args.only for name in group.split(",") if name]
        if not requested:
            parser.error("--only given but no experiment names; see --list")
        only, unknown = [], []
        for name in requested:
            resolved = resolve_experiment_name(name)
            (only.append(resolved) if resolved else unknown.append(name))
        if unknown:
            parser.error(f"unknown experiments {unknown}; see --list")

    if args.parallel is None:
        workers = 0
    elif args.parallel == 0:
        workers = default_workers()
    elif args.parallel > 0:
        workers = args.parallel
    else:
        parser.error("--parallel must be >= 0")

    if args.profile and workers:
        # pool workers would profile into their own processes and the
        # parent's counters would stay empty — force the serial path
        parser.error("--profile requires serial execution; omit --parallel")

    tracing = args.trace or args.trace_out is not None or args.analyze

    telemetry_on = args.dashboard or args.telemetry_out is not None
    if telemetry_on and workers:
        parser.error(
            "--dashboard/--telemetry-out require serial execution; "
            "omit --parallel"
        )
    if args.telemetry_interval <= 0:
        parser.error("--telemetry-interval must be > 0")

    if args.placement is not None:
        # process-wide default: in-process units resolve it directly and
        # the runner's pool initializer mirrors it into every worker
        set_default_mode(args.placement)

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = ParallelRunner(workers=workers, cache=cache, placement_mode=args.placement)

    prof = tick_profile.enable() if args.profile else None
    rec = obs_recorder.enable() if tracing else None
    tel = obs_telemetry.enable(args.telemetry_interval) if telemetry_on else None
    if tel is not None and args.dashboard:
        obs_dashboard.attach_live(tel)
    if args.service_out is not None and only is not None and "fig_service" not in only:
        parser.error("--service-out requires fig_service among the experiments run")

    start = time.perf_counter()
    try:
        results = run_all(args.scale, only=only, seed=args.seed, runner=runner)
    finally:
        runner.close()
        if args.profile:
            tick_profile.disable()
        if tracing:
            obs_recorder.disable()
        if telemetry_on:
            obs_telemetry.disable()
    elapsed = time.perf_counter() - start
    mode = f"{workers} workers" if workers else "serial"
    summary = f"[{mode}] suite completed in {elapsed:.1f} s"
    if cache is not None:
        summary += f" ({runner.executed_units} units executed, {runner.cached_units} from cache)"
    print(f"\n{summary}", file=sys.stderr)
    if prof is not None:
        print(f"\n{prof.report()}")
    attr = None
    if rec is not None:
        stats = derive_latency(rec.events)
        print("\n" + format_latency_rows(
            stats, title="Trace-derived latency distributions"
        ))
        out_dir = args.trace_out or "traces"
        if args.analyze:
            attr = obs_attribution.attribute(rec.events)
        paths = write_trace_files(rec, out_dir, attribution=attr)
        print(
            f"[trace] {len(rec.events)} events across {len(stats['units'])} "
            f"unit(s) -> {paths['jsonl']} and {paths['chrome']} "
            "(open trace.json at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
        if attr is not None:
            attr_path = os.path.join(out_dir, "attribution.json")
            obs_attribution.write_attribution(attr, attr_path)
            prom_path = promexport.write_attr_prom(
                attr, os.path.join(out_dir, "attribution.prom")
            )
            n_jobs = sum(len(u["jobs"]) for u in attr["units"].values())
            print(
                f"[analyze] {n_jobs} job ledger(s) across "
                f"{len(attr['units'])} unit(s) -> {attr_path}, {prom_path}",
                file=sys.stderr,
            )
            errors = obs_attribution.validate(attr)
            if errors:
                for err in errors:
                    print(f"[analyze] IDENTITY VIOLATION: {err}", file=sys.stderr)
                return 1
    if tel is not None and args.telemetry_out is not None:
        out_dir = args.telemetry_out
        os.makedirs(out_dir, exist_ok=True)
        summary_path = os.path.join(out_dir, "telemetry.json")
        with open(summary_path, "w", encoding="utf-8") as fh:
            json.dump(tel.summary(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        prom_path = promexport.write_prom(tel, os.path.join(out_dir, "metrics.prom"))
        scrapes = promexport.write_prom_series(tel, os.path.join(out_dir, "scrapes"))
        dash_path = os.path.join(out_dir, "dashboard.txt")
        with open(dash_path, "w", encoding="utf-8") as fh:
            fh.write(obs_dashboard.render_dashboard(tel))
            fh.write("\n")
            if attr is not None:
                # --analyze + --telemetry-out: append the idle-blame panels
                for unit_label in sorted(attr["units"]):
                    fh.write(obs_dashboard.render_blame(
                        unit_label, attr["units"][unit_label]
                    ))
                    fh.write("\n")
        print(
            f"[telemetry] {len(tel.live_units())} unit(s) -> {summary_path}, "
            f"{prom_path}, {len(scrapes)} scrape file(s), {dash_path}",
            file=sys.stderr,
        )
    if args.service_out is not None:
        from ..service import validate_report

        reports = results.get("fig_service") or {}
        errors = {
            key: errs
            for key, rep in sorted(reports.items())
            if (errs := validate_report(rep))
        }
        out_dir = args.service_out
        os.makedirs(out_dir, exist_ok=True)
        report_path = os.path.join(out_dir, "slo_report.json")
        document = {
            "scale": args.scale if isinstance(args.scale, str) else args.scale.name,
            "seed": args.seed,
            "units": {key: reports[key] for key in sorted(reports)},
        }
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(
            f"[service] {len(reports)} unit report(s) -> {report_path}",
            file=sys.stderr,
        )
        if errors:
            for key, errs in errors.items():
                for err in errs:
                    print(f"[service] SCHEMA VIOLATION {key}: {err}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
