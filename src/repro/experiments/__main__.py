"""CLI for the experiment suite.

Examples::

    # the whole suite, serial (legacy behaviour)
    python -m repro.experiments --scale bench

    # fan units across 4 worker processes with an on-disk result cache
    python -m repro.experiments --parallel 4 --cache-dir .repro-cache

    # list what can run / run a subset
    python -m repro.experiments --list
    python -m repro.experiments --only table2 --only fig8 --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time

from ..perf.cache import ResultCache
from ..perf.runner import ParallelRunner, default_workers
from .common import SCALES
from .registry import EXPERIMENTS, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="experiment scale (default: bench)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan simulation units across N worker processes "
             "(0 = auto-detect core count; omit for serial in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache unit results under DIR; unchanged units are skipped on re-run",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only this experiment (repeatable; also accepts comma-separated lists)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list experiment names and exit",
    )
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in EXPERIMENTS:
            print(name)
        return 0

    only = None
    if args.only:
        only = [name for group in args.only for name in group.split(",") if name]
        if not only:
            parser.error("--only given but no experiment names; see --list")
        unknown = [n for n in only if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments {unknown}; see --list")

    if args.parallel is None:
        workers = 0
    elif args.parallel == 0:
        workers = default_workers()
    elif args.parallel > 0:
        workers = args.parallel
    else:
        parser.error("--parallel must be >= 0")

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = ParallelRunner(workers=workers, cache=cache)

    start = time.perf_counter()
    run_all(args.scale, only=only, seed=args.seed, runner=runner)
    elapsed = time.perf_counter() - start
    mode = f"{workers} workers" if workers else "serial"
    summary = f"[{mode}] suite completed in {elapsed:.1f} s"
    if cache is not None:
        summary += f" ({runner.executed_units} units executed, {runner.cached_units} from cache)"
    print(f"\n{summary}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
