"""Worker elasticity: a hysteresis autoscaler over the fault-layer hooks.

The fault subsystem already gave workers a clean offline/online seam —
``Worker.fault_crash()`` / ``Worker.fault_rejoin()`` plus
``AdmissionController.resize()`` — built so that placement, queueing and
admission all respect a worker's ``alive`` flag.  The autoscaler reuses
exactly those hooks, with one semantic difference from a crash: a
**scale-in is a graceful drain**.  Only a worker with no running, queued
or assigned work may be decommissioned, and its stored dataset shards
are *not* invalidated — the machine stops accepting new work but stays
reachable as a shuffle source, so nothing is ever re-executed because of
the autoscaler (pinned by ``tests/service``).

Decisions and actuation are split so hysteresis is unit-testable:

* :class:`HysteresisScaler` is a pure state machine — feed it
  :class:`LoadSample` values, get −1/0/+1 back.  It requires
  ``up_stable`` / ``down_stable`` consecutive one-sided samples and a
  post-action ``cooldown`` before acting, so a constant load can never
  make it flap (the dead band between ``down_util`` and ``up_util``
  yields no action at all).
* :class:`Autoscaler` samples the live system every ``interval``
  simulated seconds (admission queue depth, head-of-queue wait, cluster
  CPU occupancy), actuates the decision, and keeps an exact
  time-integral of the active worker count for the SLO report.

Scale-up brings back the **lowest**-index parked worker (rate monitors
re-seeded from nominal rates, like a blackout rejoin); scale-down parks
the **highest**-index idle worker — deterministic choices, so service
runs remain bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dataflow.graph import ResourceType
from ..obs import telemetry as _tel

__all__ = ["AutoscalerConfig", "LoadSample", "HysteresisScaler", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the elasticity policy (see docs/OPERATIONS.md)."""

    interval: float = 1.0        # sampling period (simulated seconds)
    min_workers: int = 1         # never drain below this many active workers
    max_workers: int = 0         # 0 = the whole cluster
    initial_workers: int = 0     # 0 = start with the whole cluster active
    up_queue: int = 2            # admission queue depth that signals pressure
    up_wait: float = 3.0         # head-of-queue wait (s) that signals pressure
    up_util: float = 0.85        # CPU occupancy that signals pressure
    down_util: float = 0.25      # CPU occupancy low enough to drain a worker
    up_stable: int = 2           # consecutive pressured samples before +1
    down_stable: int = 5         # consecutive idle samples before −1
    cooldown: float = 5.0        # seconds after any action before the next

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.up_stable < 1 or self.down_stable < 1:
            raise ValueError("stability counts must be >= 1")
        if not 0.0 <= self.down_util < self.up_util:
            raise ValueError("need 0 <= down_util < up_util")


@dataclass(frozen=True)
class LoadSample:
    """One observation of the load signals the policy reads."""

    t: float
    queue_depth: int      # jobs waiting at admission
    head_wait: float      # seconds the oldest waiting job has queued
    utilization: float    # CPU slot occupancy over *active* workers, [0, 1]


class HysteresisScaler:
    """Pure decision core: consecutive-sample stability + cooldown.

    ``decide`` returns +1 (add a worker), −1 (drain one) or 0.  A sample
    is *pressured* when any up-signal fires (queue depth, head wait or
    utilization above threshold) and *idle* when the queue is empty and
    utilization sits below ``down_util``; anything in between resets both
    streaks, which is what makes a constant mid-band load a no-op
    forever.
    """

    def __init__(self, cfg: AutoscalerConfig):
        self.cfg = cfg
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_t: Optional[float] = None

    def decide(self, sample: LoadSample) -> int:
        cfg = self.cfg
        pressured = (
            sample.queue_depth >= cfg.up_queue
            or sample.head_wait >= cfg.up_wait
            or sample.utilization >= cfg.up_util
        )
        idle = sample.queue_depth == 0 and sample.utilization <= cfg.down_util
        if pressured:
            self._up_streak += 1
            self._down_streak = 0
        elif idle:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
            return 0
        if (
            self._last_action_t is not None
            and sample.t - self._last_action_t < cfg.cooldown
        ):
            return 0
        if pressured and self._up_streak >= cfg.up_stable:
            self._up_streak = 0
            self._last_action_t = sample.t
            return 1
        if idle and self._down_streak >= cfg.down_stable:
            self._down_streak = 0
            self._last_action_t = sample.t
            return -1
        return 0


class Autoscaler:
    """Actuation over one :class:`~repro.scheduler.ursa.UrsaSystem`."""

    def __init__(self, system, cfg: AutoscalerConfig, stop_time: float):
        self.system = system
        self.cfg = cfg
        self.stop_time = stop_time
        self.scaler = HysteresisScaler(cfg)
        n = len(system.workers)
        self.max_workers = cfg.max_workers if cfg.max_workers > 0 else n
        self.initial_workers = cfg.initial_workers if cfg.initial_workers > 0 else n
        if not cfg.min_workers <= self.initial_workers <= self.max_workers <= n:
            raise ValueError(
                f"need min <= initial <= max <= {n} workers, got "
                f"{cfg.min_workers}/{self.initial_workers}/{self.max_workers}"
            )
        # stats for the SLO report
        self.samples = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.min_active = self.initial_workers
        self.max_active = self.initial_workers
        self._integral = 0.0
        self._last_t = 0.0

    # ------------------------------------------------------------------
    @property
    def active_workers(self) -> int:
        return sum(1 for w in self.system.workers if w.alive)

    def start(self) -> None:
        """Park the tail of the cluster and begin sampling."""
        for w in self.system.workers[self.initial_workers:]:
            w.fault_crash()  # queues are empty pre-run: a pure deactivation
        self._resize_admission()
        self.system.sim.schedule(self.cfg.interval, self._sample)

    # ------------------------------------------------------------------
    def _resize_admission(self) -> None:
        total = sum(
            w.memory_capacity_mb for w in self.system.workers if w.alive
        )
        self.system.admission.resize(total)

    def _observe(self) -> LoadSample:
        now = self.system.sim.now
        adm = self.system.admission
        head_wait = 0.0
        if adm.waiting:
            head_wait = now - min(adm._wait_since.values())
        cores = 0
        busy = 0
        for w in self.system.workers:
            if w.alive:
                cores += w.machine.spec.cores
                busy += w.running[ResourceType.CPU]
        util = busy / cores if cores else 0.0
        return LoadSample(
            t=now, queue_depth=adm.queue_length, head_wait=head_wait,
            utilization=util,
        )

    def _advance_integral(self, t: float) -> None:
        if t > self._last_t:
            self._integral += self.active_workers * (t - self._last_t)
            self._last_t = t

    def _sample(self) -> None:
        now = self.system.sim.now
        self.samples += 1
        decision = self.scaler.decide(self._observe())
        if decision > 0:
            self._scale_up(now)
        elif decision < 0:
            self._scale_down(now)
        if now + self.cfg.interval <= self.stop_time:
            self.system.sim.schedule(self.cfg.interval, self._sample)
        else:
            self._advance_integral(now)

    # ------------------------------------------------------------------
    def _scale_up(self, now: float) -> None:
        if self.active_workers >= self.max_workers:
            return
        parked = [w for w in self.system.workers if not w.alive]
        worker = min(parked, key=lambda w: w.index)
        self._advance_integral(now)
        worker.fault_rejoin()
        self._resize_admission()
        self.scale_ups += 1
        self.max_active = max(self.max_active, self.active_workers)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.autoscale(now, +1, self.active_workers)
        # newly admittable memory may unblock waiting jobs right away
        self.system._try_admit()
        self.system._ensure_tick()

    def _scale_down(self, now: float) -> None:
        if self.active_workers <= self.cfg.min_workers:
            return
        idle = [
            w for w in self.system.workers
            if w.alive
            and not any(w.running.values())
            and w.queued_monotasks == 0
            and sum(w.assigned_work.values()) < 1e-9
        ]
        if not idle:
            return  # graceful drain: never evict in-flight work
        worker = max(idle, key=lambda w: w.index)
        self._advance_integral(now)
        worker.fault_crash()  # nothing queued/running: deactivation only —
        # note: unlike a real crash, stored shards are NOT invalidated, so
        # the machine remains a valid shuffle source while it drains away
        self._resize_admission()
        self.scale_downs += 1
        self.min_active = min(self.min_active, self.active_workers)
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.autoscale(now, -1, self.active_workers)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Picklable summary for the SLO report."""
        self._advance_integral(self.system.sim.now)
        span = self._last_t
        return {
            "enabled": True,
            "samples": self.samples,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "min_active": self.min_active,
            "max_active": self.max_active,
            "final_active": self.active_workers,
            "mean_active": self._integral / span if span > 0 else float(self.active_workers),
        }
