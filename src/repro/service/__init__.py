"""Open-loop multi-tenant service mode (arrivals → backpressure → SLOs).

The batch experiments answer "how fast does a fixed set of jobs drain?";
this package answers the operator's question instead: "what latency and
goodput does the cluster sustain under a continuous request stream, and
what happens when it can't keep up?"  Four pieces:

* :mod:`~repro.service.arrivals` — deterministic Poisson / diurnal /
  bursty arrival schedules over thousands of tenants;
* :mod:`~repro.service.workload` — per-arrival job templates sized from
  the experiment :class:`~repro.experiments.common.Scale`;
* :mod:`~repro.service.autoscaler` — hysteresis worker elasticity built
  on the fault layer's crash/rejoin hooks (scale-in = graceful drain);
* :mod:`~repro.service.driver` / :mod:`~repro.service.slo` — the
  open-loop driver with admission backpressure, and the warmup-excluded
  SLO report it produces.

Entry points: the ``fig_service`` experiment (arrival-rate sweep → SLO
curves) and ``python -m repro.experiments --only fig_service
--service-out DIR``.  Operator guide: ``docs/OPERATIONS.md``.
"""

from .arrivals import (
    Arrival,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    PROCESS_NAMES,
    make_process,
)
from .autoscaler import Autoscaler, AutoscalerConfig, HysteresisScaler, LoadSample
from .driver import ServiceConfig, ServiceDriver
from .slo import SCHEMA, build_report, format_service_rows, validate_report
from .workload import mean_job_cpu_mb, mean_request_mb, service_job_spec

__all__ = [
    "Arrival", "ArrivalProcess", "PoissonArrivals", "DiurnalArrivals",
    "BurstyArrivals", "make_process", "PROCESS_NAMES",
    "Autoscaler", "AutoscalerConfig", "HysteresisScaler", "LoadSample",
    "ServiceConfig", "ServiceDriver",
    "SCHEMA", "build_report", "validate_report", "format_service_rows",
    "service_job_spec", "mean_job_cpu_mb", "mean_request_mb",
]
