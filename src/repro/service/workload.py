"""Service-mode job templates: small interactive jobs, sized per scale.

Batch experiments submit a handful of heavyweight jobs; a multi-tenant
service handles a stream of much smaller requests.  Each arrival maps to
a short dataflow job whose shape depends on its type:

* **type 2 (small)** — two stages (scan → shuffle/aggregate), the
  interactive-query profile; requests a quarter of a machine's memory.
* **type 1 (large)** — three stages (scan → shuffle → shuffle), twice the
  data; requests half of one machine's memory — so a dozen-odd concurrent
  jobs saturate the admission gate and overload queues, not just CPU.

Sizes derive from the :class:`~repro.experiments.common.Scale` — per-task
input follows ``scale.partition_mb`` and stage width follows the cluster
core count — so the same sweep stays proportionate from ``tiny`` to
``paper``.  Per-arrival size jitter (±25 %) comes from a seed-derived
generator keyed on the arrival index: the spec, like the arrival
schedule, is a pure function of ``(scale, arrival, seed)``.
"""

from __future__ import annotations

from ..simcore.rng import derive_rng
from ..workloads.spec import JobSpec, StageSpec
from .arrivals import Arrival

__all__ = ["service_job_spec", "mean_job_cpu_mb", "mean_request_mb"]

#: memory request as a fraction of one machine's memory, per job type
_MEM_FRACTION = {1: 0.5, 2: 0.25}
#: skew applied to partition and shuffle-shard sizes
_SKEW_SIGMA = 0.3


def _widths(total_cores: int) -> dict[int, int]:
    return {1: max(8, total_cores // 4), 2: max(4, total_cores // 8)}


def service_job_spec(sc, arrival: Arrival, seed: int) -> JobSpec:
    """Compile one arrival into a size-only :class:`JobSpec`."""
    machine = sc.cluster.machine
    width = _widths(sc.cluster.total_cores)[arrival.job_type]
    rng = derive_rng(seed, "service_job", arrival.index)
    jitter = 0.75 + 0.5 * float(rng.random())  # size factor in [0.75, 1.25)
    per_task_mb = sc.partition_mb * jitter
    source_mb = per_task_mb * width

    stages = [
        StageSpec(
            parallelism=width,
            source_mb=source_mb,
            from_disk=False,  # request payloads arrive in memory
            expand=1.0,
            cpu_factor=1.0,
            skew_sigma=_SKEW_SIGMA,
            m2i=1.1,
        ),
        StageSpec(
            parallelism=width,
            shuffle_parents=(0,),
            expand=0.5,
            cpu_factor=1.0,
            skew_sigma=_SKEW_SIGMA,
            m2i=1.1,
        ),
    ]
    if arrival.job_type == 1:
        stages.append(
            StageSpec(
                parallelism=width,
                shuffle_parents=(1,),
                expand=0.5,
                cpu_factor=1.0,
                skew_sigma=_SKEW_SIGMA,
                m2i=1.1,
            )
        )
    return JobSpec(
        name=f"svc_t{arrival.tenant}_{arrival.index}",
        stages=stages,
        requested_memory_mb=_MEM_FRACTION[arrival.job_type] * machine.memory_mb,
        memory_accuracy=0.9,
        category="service",
        seed=arrival.index,
    )


def mean_job_cpu_mb(sc, large_fraction: float = 0.3) -> float:
    """Expected CPU MB per job under the type mix (jitter averages to 1).

    Stage CPU work ≈ its input volume: the source stage processes
    ``source_mb``; each shuffle stage processes the previous stage's
    output (``expand`` halves it per hop).
    """
    w = _widths(sc.cluster.total_cores)
    per = {}
    for jt, width in w.items():
        src = sc.partition_mb * width
        stages = src + src * 1.0  # scan + first shuffle input (expand applies to output)
        if jt == 1:
            stages += src * 0.5  # third stage reads the halved intermediate
        per[jt] = stages
    return large_fraction * per[1] + (1.0 - large_fraction) * per[2]


def mean_request_mb(sc, large_fraction: float = 0.3) -> float:
    """Expected admission-memory request per job under the type mix."""
    m = sc.cluster.machine.memory_mb
    return large_fraction * _MEM_FRACTION[1] * m + (1.0 - large_fraction) * _MEM_FRACTION[2] * m
