"""Open-loop arrival processes for service mode.

A closed batch submits N jobs and drains; an open-loop service keeps
receiving work whether or not the cluster is keeping up.  Each process
here pre-generates a deterministic schedule of :class:`Arrival` records —
(time, tenant, job type) — inside a fixed horizon, derived entirely from
``derive_rng(seed, "service_arrivals", name)``: the same seed always
yields the same arrival schedule, byte for byte, which is what lets the
``fig_service`` sweep run bit-identically serial or parallel.

Three processes model the §2 load shapes a production cluster sees:

* **Poisson** — a memoryless baseline at a constant rate;
* **Diurnal** — a day/night sinusoid (non-homogeneous Poisson, thinned
  against the peak rate);
* **Bursty** — a square wave: short bursts at a multiple of the quiet
  rate, the shape that stresses backpressure and the autoscaler.

Tenants stand in for users (thousands of tenant ids sampled per arrival,
standing in for millions of users behind a gateway); the driver maps each
arrival onto a small service job (see :mod:`repro.service.workload`).

Determinism example (the schedule is a pure function of the seed)::

    >>> from repro.service.arrivals import PoissonArrivals
    >>> p = PoissonArrivals(rate_per_s=2.0, n_tenants=100)
    >>> a = p.schedule(horizon=50.0, seed=7)
    >>> a == p.schedule(horizon=50.0, seed=7)
    True
    >>> a[0].t > 0 and all(x.t < 50.0 for x in a)
    True
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..simcore.rng import derive_rng

__all__ = [
    "Arrival", "ArrivalProcess", "PoissonArrivals", "DiurnalArrivals",
    "BurstyArrivals", "make_process", "PROCESS_NAMES",
]

PROCESS_NAMES = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True)
class Arrival:
    """One job arrival: when, from whom, and which template."""

    index: int      # sequence number within the schedule
    t: float        # arrival time (simulation seconds)
    tenant: int     # tenant id in [0, n_tenants)
    job_type: int   # 1 = large (3-stage), 2 = small (2-stage)


class ArrivalProcess:
    """Base: thinned non-homogeneous Poisson against :meth:`peak_rate`.

    Subclasses override :meth:`rate_at` (instantaneous arrival rate) and
    :meth:`peak_rate` (its supremum over the horizon).  ``mean_rate`` is
    the long-run average the sweep multiplies to set offered load.
    """

    name = "base"

    def __init__(
        self,
        rate_per_s: float,
        n_tenants: int = 1000,
        large_fraction: float = 0.3,
    ):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        if not 0.0 <= large_fraction <= 1.0:
            raise ValueError("large_fraction must be in [0, 1]")
        self.mean_rate = rate_per_s
        self.n_tenants = n_tenants
        self.large_fraction = large_fraction

    # -- the load shape -------------------------------------------------
    def rate_at(self, t: float) -> float:
        return self.mean_rate

    def peak_rate(self) -> float:
        return self.mean_rate

    # -- schedule generation --------------------------------------------
    def schedule(self, horizon: float, seed: int) -> list[Arrival]:
        """Deterministic arrival schedule over ``[0, horizon)``.

        Candidate points come from a homogeneous Poisson process at the
        peak rate; each is kept with probability ``rate_at(t) / peak``
        (Lewis–Shedler thinning), so the accepted stream follows the
        shaped rate exactly.  All draws flow through one derived
        generator in a fixed order, making the schedule a pure function
        of ``(process, horizon, seed)``.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = derive_rng(seed, "service_arrivals", self.name)
        peak = self.peak_rate()
        out: list[Arrival] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= horizon:
                break
            if float(rng.random()) * peak > self.rate_at(t):
                continue  # thinned away (always kept when rate == peak)
            tenant = int(rng.integers(0, self.n_tenants))
            job_type = 1 if float(rng.random()) < self.large_fraction else 2
            out.append(Arrival(index=len(out), t=t, tenant=tenant, job_type=job_type))
        return out


class PoissonArrivals(ArrivalProcess):
    """Constant-rate memoryless arrivals."""

    name = "poisson"


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night cycle around the mean rate.

    ``rate(t) = mean · (1 + swing · sin(2πt / period))`` — the average
    over a whole period is exactly ``mean``, the peak ``mean·(1+swing)``.
    """

    name = "diurnal"

    def __init__(
        self,
        rate_per_s: float,
        period: float = 60.0,
        swing: float = 0.8,
        **kwargs,
    ):
        super().__init__(rate_per_s, **kwargs)
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= swing < 1.0:
            raise ValueError("swing must be in [0, 1)")
        self.period = period
        self.swing = swing

    def rate_at(self, t: float) -> float:
        return self.mean_rate * (1.0 + self.swing * math.sin(2.0 * math.pi * t / self.period))

    def peak_rate(self) -> float:
        return self.mean_rate * (1.0 + self.swing)


class BurstyArrivals(ArrivalProcess):
    """Square-wave bursts: the first ``burst_fraction`` of every period
    runs at ``burst_factor ×`` the quiet rate; the long-run average still
    equals ``rate_per_s`` (the quiet rate is solved accordingly)."""

    name = "bursty"

    def __init__(
        self,
        rate_per_s: float,
        period: float = 30.0,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        **kwargs,
    ):
        super().__init__(rate_per_s, **kwargs)
        if period <= 0:
            raise ValueError("period must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        self.period = period
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        # mean = f·(factor·q) + (1−f)·q  →  q = mean / (f·factor + 1 − f)
        self.quiet_rate = rate_per_s / (
            burst_fraction * burst_factor + (1.0 - burst_fraction)
        )

    def rate_at(self, t: float) -> float:
        phase = math.fmod(t, self.period)
        if phase < self.burst_fraction * self.period:
            return self.quiet_rate * self.burst_factor
        return self.quiet_rate

    def peak_rate(self) -> float:
        return self.quiet_rate * self.burst_factor


def make_process(name: str, rate_per_s: float, **kwargs) -> ArrivalProcess:
    """Factory keyed by process name (``PROCESS_NAMES``)."""
    if name == "poisson":
        return PoissonArrivals(rate_per_s, **kwargs)
    if name == "diurnal":
        return DiurnalArrivals(rate_per_s, **kwargs)
    if name == "bursty":
        return BurstyArrivals(rate_per_s, **kwargs)
    raise ValueError(f"unknown arrival process {name!r}; known: {PROCESS_NAMES}")
