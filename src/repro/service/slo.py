"""SLO report: warmup-excluded latency/goodput/shed metrics for one run.

The report a service operator reads (see docs/OPERATIONS.md for the
field-by-field guide):

* the **measurement window** is ``[warmup, horizon]`` by *arrival* time —
  everything arriving during warmup is excluded, so cold-start JCTs never
  pollute the percentiles, while window jobs that finish during the drain
  grace still count;
* **latency** (p50/p99 JCT) and **admission wait** are summarized with
  :class:`repro.obs.latency.Dist` — the same pure-python, numpy-matching
  percentile machinery the tracing layer uses;
* **goodput** is window completions per window second, and **shed rate**
  the fraction of window arrivals rejected by backpressure;
* the **counts** section carries the whole-run accounting identity
  ``generated = shed + completed + failed + in_flight`` (pinned by
  ``tests/service``).

Reports are plain dicts of floats/ints/strings, so they pickle and JSON
canonically: the serial and parallel harness paths produce byte-identical
``slo_report.json`` artifacts.  :func:`validate_report` is the schema
gate ``make service-smoke`` and the CLI's ``--service-out`` writer run.
"""

from __future__ import annotations

from ..obs.latency import dist

__all__ = [
    "SCHEMA", "build_report", "assemble_report", "validate_report",
    "format_service_rows", "DISABLED_AUTOSCALER",
]

SCHEMA = "repro.service/slo-report/v1"

#: autoscaler section of a run with elasticity off (fixed fleet)
DISABLED_AUTOSCALER = {
    "enabled": False,
    "samples": 0,
    "scale_ups": 0,
    "scale_downs": 0,
    "min_active": 0,
    "max_active": 0,
    "final_active": 0,
    "mean_active": 0.0,
}


def build_report(driver) -> dict:
    """Assemble the SLO report from a finished :class:`ServiceDriver`."""
    jobs = {j.job_id: j for j in driver.system.jobs}
    if driver.autoscaler is not None:
        auto = driver.autoscaler.stats()
    else:
        auto = dict(DISABLED_AUTOSCALER)
        auto["min_active"] = auto["max_active"] = auto["final_active"] = len(
            driver.system.workers
        )
        auto["mean_active"] = float(len(driver.system.workers))
    return assemble_report(
        records=driver.records,
        jobs=jobs,
        cfg=driver.cfg,
        process=driver.process,
        autoscaler=auto,
        peak_queue=driver.peak_queue,
        seed=driver.seed,
    )


def assemble_report(records, jobs, cfg, process, autoscaler, peak_queue, seed) -> dict:
    """Pure assembly over the driver's ledger (unit-testable in isolation).

    ``records`` are :class:`_ArrivalRecord`-shaped objects; ``jobs`` maps
    job id → a Job-shaped object exposing ``done`` / ``failed`` / ``jct``
    / ``submit_time`` / ``admit_time``.
    """
    completed = failed = in_flight = shed = 0
    for r in records:
        if r.shed:
            shed += 1
            continue
        job = jobs[r.job_id]
        if job.done:
            completed += 1
        elif job.failed:
            failed += 1
        else:
            in_flight += 1

    w0, w1 = cfg.warmup, cfg.horizon
    window = [r for r in records if w0 <= r.arrival.t <= w1]
    win_shed = sum(1 for r in window if r.shed)
    win_jcts = []
    win_waits = []
    win_completed = 0
    for r in window:
        if r.shed:
            continue
        job = jobs[r.job_id]
        if job.done and job.jct is not None:
            win_completed += 1
            win_jcts.append(job.jct)
        if job.admit_time is not None:
            win_waits.append(job.admit_time - job.submit_time)
    span = w1 - w0
    jct_dist = dist(win_jcts, empty_zero=True)
    wait_dist = dist(win_waits, empty_zero=True)

    return {
        "schema": SCHEMA,
        "arrival": {
            "process": process.name,
            "rate_per_s": process.mean_rate,
            "n_tenants": process.n_tenants,
            "horizon_s": cfg.horizon,
            "warmup_s": cfg.warmup,
            "drain_grace_s": cfg.drain_grace,
            "seed": seed,
        },
        "counts": {
            "generated": len(records),
            "submitted": len(records) - shed,
            "shed": shed,
            "completed": completed,
            "failed": failed,
            "in_flight": in_flight,
            "distinct_tenants": len({r.arrival.tenant for r in records}),
        },
        "backpressure": {
            "queue_limit": cfg.queue_limit,
            "peak_queue": peak_queue,
            "shed_queue_full": sum(
                1 for r in records if r.shed and r.reason == "queue_full"
            ),
            "shed_too_large": sum(
                1 for r in records if r.shed and r.reason == "too_large"
            ),
        },
        "window": {
            "start_s": w0,
            "end_s": w1,
            "generated": len(window),
            "shed": win_shed,
            "completed": win_completed,
            "latency_p50_s": jct_dist.p50,
            "latency_p99_s": jct_dist.p99,
            "admission_wait_p50_s": wait_dist.p50,
            "admission_wait_p99_s": wait_dist.p99,
            "goodput_jobs_per_s": win_completed / span,
            "shed_rate": win_shed / len(window) if window else 0.0,
            "jct": jct_dist.row(),
            "admission_wait": wait_dist.row(),
        },
        "autoscaler": dict(autoscaler),
    }


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
_SECTIONS = {
    "arrival": ("process", "rate_per_s", "n_tenants", "horizon_s",
                "warmup_s", "drain_grace_s", "seed"),
    "counts": ("generated", "submitted", "shed", "completed", "failed",
               "in_flight", "distinct_tenants"),
    "backpressure": ("queue_limit", "peak_queue", "shed_queue_full",
                     "shed_too_large"),
    "window": ("start_s", "end_s", "generated", "shed", "completed",
               "latency_p50_s", "latency_p99_s", "admission_wait_p50_s",
               "admission_wait_p99_s", "goodput_jobs_per_s", "shed_rate",
               "jct", "admission_wait"),
    "autoscaler": ("enabled", "samples", "scale_ups", "scale_downs",
                   "min_active", "max_active", "final_active",
                   "mean_active"),
}

_DIST_KEYS = ("count", "mean", "p25", "p50", "p75", "p95", "p99", "max")


def validate_report(report: dict) -> list[str]:
    """Schema + invariant check; returns a list of violations (empty = OK)."""
    errs: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a dict"]
    if report.get("schema") != SCHEMA:
        errs.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    for section, keys in _SECTIONS.items():
        node = report.get(section)
        if not isinstance(node, dict):
            errs.append(f"missing section {section!r}")
            continue
        for key in keys:
            if key not in node:
                errs.append(f"{section}.{key} missing")
    if errs:
        return errs
    for name in ("jct", "admission_wait"):
        row = report["window"][name]
        missing = [k for k in _DIST_KEYS if k not in row]
        if missing:
            errs.append(f"window.{name} missing {missing}")
    c = report["counts"]
    if c["generated"] != c["shed"] + c["completed"] + c["failed"] + c["in_flight"]:
        errs.append(
            "accounting identity violated: generated != "
            "shed + completed + failed + in_flight"
        )
    if c["submitted"] != c["generated"] - c["shed"]:
        errs.append("counts.submitted != generated - shed")
    w = report["window"]
    if not 0.0 <= w["shed_rate"] <= 1.0:
        errs.append(f"shed_rate {w['shed_rate']} outside [0, 1]")
    if w["latency_p50_s"] > w["latency_p99_s"] + 1e-12:
        errs.append("latency p50 > p99")
    if w["goodput_jobs_per_s"] < 0:
        errs.append("negative goodput")
    a = report["autoscaler"]
    if a["enabled"] and not a["min_active"] <= a["max_active"]:
        errs.append("autoscaler min_active > max_active")
    return errs


def format_service_rows(payloads: dict[str, dict], title: str) -> str:
    """One table row per sweep unit (the reduce-side SLO curve)."""
    header = (
        f"{'unit':<22} {'gen':>5} {'shed%':>6} {'p50 s':>7} {'p99 s':>7} "
        f"{'adm p99':>8} {'goodput/s':>10} {'workers':>8}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for key, rep in payloads.items():
        w = rep["window"]
        a = rep["autoscaler"]
        lines.append(
            f"{key:<22} {rep['counts']['generated']:>5} "
            f"{100.0 * w['shed_rate']:>5.1f}% "
            f"{w['latency_p50_s']:>7.2f} {w['latency_p99_s']:>7.2f} "
            f"{w['admission_wait_p99_s']:>8.2f} "
            f"{w['goodput_jobs_per_s']:>10.3f} "
            f"{a['mean_active']:>8.2f}"
        )
    return "\n".join(lines)
