"""The open-loop service driver: arrivals → backpressure → admission.

Batch experiments call ``submit_workload`` then ``drain()``; the service
driver instead schedules one engine event per pre-generated arrival and
runs the simulation to a fixed stop time (``horizon + drain_grace``) —
an **open loop**: load keeps coming whether or not the cluster keeps up,
and whatever is still in flight at the end is reported as in flight, not
waited for.

At each arrival the driver applies **admission backpressure** before the
job ever reaches the memory-gated admission queue:

* *queue_full* — the admission queue already holds ``queue_limit`` jobs:
  accepting more would only grow an unbounded backlog, so the request is
  shed (the open-loop analogue of HTTP 503);
* *too_large* — after a scale-in, a request can exceed the currently
  admittable memory pool; such a job could never be admitted at the
  present size, so it is shed rather than wedged.

Everything else is normal Ursa machinery: the job enters
``AdmissionController``, waits for memory, runs through Algorithm-1
placement.  The driver keeps one record per arrival (shed or submitted,
and the job id), from which :mod:`repro.service.slo` derives the
warmup-excluded SLO report, including the accounting identity

    generated = shed + completed + failed + in_flight

that ``tests/service`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import telemetry as _tel
from ..simcore.rng import derive_rng
from .arrivals import Arrival, ArrivalProcess
from .autoscaler import Autoscaler, AutoscalerConfig
from .slo import build_report
from .workload import service_job_spec

__all__ = ["ServiceConfig", "ServiceDriver"]


@dataclass(frozen=True)
class ServiceConfig:
    """One service run: measurement window + backpressure + elasticity."""

    horizon: float               # arrivals occur in [0, horizon)
    warmup: float                # SLO window starts here (excluded before)
    drain_grace: float           # extra simulated seconds after the horizon
    queue_limit: int = 8         # shed arrivals beyond this admission depth
    autoscaler: Optional[AutoscalerConfig] = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= self.warmup < self.horizon:
            raise ValueError("need 0 <= warmup < horizon")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be >= 0")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")


@dataclass
class _ArrivalRecord:
    """Outcome of one arrival (the driver's per-request ledger)."""

    arrival: Arrival
    shed: bool = False
    reason: str = ""             # "queue_full" / "too_large" when shed
    job_id: Optional[int] = None
    requested_mb: float = 0.0
    queue_at_arrival: int = 0

    def as_dict(self) -> dict:
        return {
            "index": self.arrival.index,
            "t": self.arrival.t,
            "tenant": self.arrival.tenant,
            "job_type": self.arrival.job_type,
            "shed": self.shed,
            "reason": self.reason,
            "job_id": self.job_id,
        }


class ServiceDriver:
    """Stream one arrival process through an :class:`UrsaSystem`."""

    def __init__(self, system, process: ArrivalProcess, cfg: ServiceConfig, scale, seed: int = 0):
        self.system = system
        self.process = process
        self.cfg = cfg
        self.scale = scale
        self.seed = seed
        self.records: list[_ArrivalRecord] = []
        self.peak_queue = 0
        self.autoscaler: Optional[Autoscaler] = None
        if cfg.autoscaler is not None:
            self.autoscaler = Autoscaler(
                system, cfg.autoscaler, stop_time=cfg.horizon + cfg.drain_grace
            )

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Generate, stream, simulate to the stop time; return the report."""
        arrivals = self.process.schedule(self.cfg.horizon, self.seed)
        for a in arrivals:
            self.system.sim.at(a.t, self._on_arrival, a)
        if self.autoscaler is not None:
            self.autoscaler.start()
        self.system.run(until=self.cfg.horizon + self.cfg.drain_grace)
        return build_report(self)

    # ------------------------------------------------------------------
    def _on_arrival(self, a: Arrival) -> None:
        now = self.system.sim.now
        adm = self.system.admission
        rec = _ArrivalRecord(a, queue_at_arrival=adm.queue_length)
        self.records.append(rec)
        self.peak_queue = max(self.peak_queue, adm.queue_length)
        spec = service_job_spec(self.scale, a, self.seed)
        rec.requested_mb = spec.requested_memory_mb
        if spec.requested_memory_mb > adm.total_memory_mb + 1e-9:
            self._shed(rec, "too_large", now)
            return
        if adm.queue_length >= self.cfg.queue_limit:
            self._shed(rec, "queue_full", now)
            return
        rng = derive_rng(self.seed, "service_build", a.index)
        graph = spec.build_graph(rng)
        job = self.system.submit(
            graph,
            requested_memory_mb=spec.requested_memory_mb,
            category=spec.category,
        )
        job.memory_accuracy = spec.memory_accuracy
        rec.job_id = job.job_id

    def _shed(self, rec: _ArrivalRecord, reason: str, now: float) -> None:
        rec.shed = True
        rec.reason = reason
        tel = _tel.TELEMETRY
        if tel is not None:
            tel.job_shed(now)
