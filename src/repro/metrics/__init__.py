"""Metrics: SE/UE accounting, stragglers, ASCII charts, report tables."""

from .accounting import SystemMetrics, compute_metrics
from .asciichart import ascii_chart, multi_series_chart, sparkline
from .report import format_latency_rows, format_metric_rows, format_table
from .stragglers import job_straggler_ratio, mean_straggler_ratio, stage_straggler_time

__all__ = [
    "SystemMetrics",
    "compute_metrics",
    "ascii_chart",
    "multi_series_chart",
    "sparkline",
    "format_latency_rows",
    "format_metric_rows",
    "format_table",
    "job_straggler_ratio",
    "mean_straggler_ratio",
    "stage_straggler_time",
]
