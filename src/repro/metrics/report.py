"""Table formatting for experiment output (the paper's Tables 1–6)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_metric_rows"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_metric_rows(results: dict[str, Any], title: str = "") -> str:
    """results: system name -> SystemMetrics; renders a Table-2-style table."""
    headers = ["system", "makespan", "avg_jct", "UE_cpu", "SE_cpu", "UE_mem", "SE_mem"]
    rows = []
    for name, metrics in results.items():
        r = metrics.row()
        rows.append([name] + [r[h] for h in headers[1:]])
    return format_table(headers, rows, title)
