"""Table formatting for experiment output (the paper's Tables 1–6)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "format_table", "format_metric_rows", "format_latency_rows",
    "format_fault_rows", "latency_rows",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_metric_rows(results: dict[str, Any], title: str = "") -> str:
    """results: system name -> SystemMetrics; renders a Table-2-style table."""
    headers = ["system", "makespan", "avg_jct", "UE_cpu", "SE_cpu", "UE_mem", "SE_mem"]
    rows = []
    for name, metrics in results.items():
        r = metrics.row()
        rows.append([name] + [r[h] for h in headers[1:]])
    return format_table(headers, rows, title)


def format_fault_rows(results: dict[str, Any], title: str = "") -> str:
    """Render the fault-tolerance sweep (``fig_faults``).

    ``results``: unit key -> ``{"metrics": SystemMetrics, "faults": dict}``
    where the faults dict is ``FaultStats.as_dict()``.  Columns mix the
    usual performance metrics with the recovery accounting: tasks restarted,
    monotasks lost, charged retries, wasted (re-executed) work, mean/max
    recovery time, and jobs that failed outright.
    """
    headers = [
        "unit", "makespan", "avg_jct", "restarts", "mt_lost", "retries",
        "wasted_mb", "rec_mean_s", "rec_max_s", "failed",
    ]
    rows = []
    for name, payload in results.items():
        m = payload["metrics"].row()
        f = payload["faults"]
        rows.append([
            name, m["makespan"], m["avg_jct"], f["tasks_restarted"],
            f["monotasks_lost"], f["retries_charged"], f["wasted_work_mb"],
            f["recovery_mean_s"], f["recovery_max_s"], f["jobs_failed"],
        ])
    return format_table(headers, rows, title)


_LAT_RESOURCE_ORDER = ("cpu", "network", "disk")


_LAT_FIELDS = ("mean", "p25", "p50", "p75", "p95", "p99", "max")
_LAT_HEADERS = ["metric", "count"] + [f"{k}_ms" for k in _LAT_FIELDS]


def latency_rows(stats: dict[str, Any]) -> tuple[list[str], list[list[Any]]]:
    """``(headers, rows)`` for :func:`repro.obs.latency.derive_latency` output.

    Latencies are reported in **milliseconds** (allocation latencies are
    fractions of the 250 ms scheduling interval; whole seconds would all
    print as 0.00).  Accepts any mapping with Dist-shaped values (objects
    exposing ``row()``), so it has no import dependency on ``repro.obs``.
    Shared by the plain-text table and ``trace_stats.py --format csv``.
    """
    rows: list[list[Any]] = []

    def add(label: str, d: Any) -> None:
        if d is None:
            return
        r = d.row()
        rows.append([label, r["count"]] + [float(r[k]) * 1e3 for k in _LAT_FIELDS])

    def ordered(per_resource: dict) -> list:
        known = [k for k in _LAT_RESOURCE_ORDER if k in per_resource]
        return known + sorted(set(per_resource) - set(known))

    for group, label in (("alloc_latency", "alloc"), ("queue_wait", "queue_wait")):
        per_resource = stats.get(group) or {}
        for r in ordered(per_resource):
            add(f"{label}[{r}]", per_resource[r])
    add("placement", stats.get("placement_latency"))
    add("admission", stats.get("admission_wait"))
    if not rows:
        rows.append(["(no samples)", 0] + [0.0] * len(_LAT_FIELDS))
    return list(_LAT_HEADERS), rows


def format_latency_rows(stats: dict[str, Any], title: str = "") -> str:
    """Render :func:`repro.obs.latency.derive_latency` output as a table."""
    headers, rows = latency_rows(stats)
    return format_table(headers, rows, title)
