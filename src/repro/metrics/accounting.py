"""SE / UE / makespan / JCT accounting (§5 "Performance metrics").

Definitions straight from the paper: with ``X`` the allocated core (or
memory) time, ``Y`` the total capacity time (capacity × makespan) and ``Z``
the actually-used time,

    SE = X / Y          (scheduling efficiency)
    UE = Z / X          (utilization efficiency)

and the average cluster utilization rate equals SE × UE.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemMetrics", "compute_metrics"]


@dataclass
class SystemMetrics:
    """All the columns of Tables 2–4, for one system run."""

    makespan: float
    mean_jct: float
    ue_cpu: float
    se_cpu: float
    ue_mem: float
    se_mem: float
    jcts: list[float]

    @property
    def cpu_utilization(self) -> float:
        return self.se_cpu * self.ue_cpu

    def row(self) -> dict[str, float]:
        return {
            "makespan": self.makespan,
            "avg_jct": self.mean_jct,
            "UE_cpu": 100.0 * self.ue_cpu,
            "SE_cpu": 100.0 * self.se_cpu,
            "UE_mem": 100.0 * self.ue_mem,
            "SE_mem": 100.0 * self.se_mem,
        }


def compute_metrics(system) -> SystemMetrics:
    """Compute the paper's metrics from a finished system run (Ursa or
    baseline — both expose .cluster and .jobs)."""
    cluster = system.cluster
    jobs = system.jobs
    if not jobs:
        raise ValueError("no jobs were submitted")
    unfinished = [j for j in jobs if j.finish_time is None]
    if unfinished:
        raise ValueError(f"{len(unfinished)} jobs have not finished")

    start = min(j.submit_time for j in jobs)
    end = max(j.finish_time for j in jobs)
    makespan = end - start
    if makespan <= 0:
        raise ValueError("zero-length run")

    cpu_alloc = cluster.integrate("cpu_alloc", start, end)
    cpu_used = cluster.integrate("cpu_used", start, end)
    mem_alloc = cluster.integrate("mem_alloc", start, end)
    mem_used = cluster.integrate("mem_used", start, end)
    cpu_capacity_time = cluster.total_cores * makespan
    mem_capacity_time = cluster.total_memory_mb * makespan

    jcts = [j.jct for j in jobs]
    return SystemMetrics(
        makespan=makespan,
        mean_jct=sum(jcts) / len(jcts),
        ue_cpu=cpu_used / cpu_alloc if cpu_alloc > 0 else 0.0,
        se_cpu=cpu_alloc / cpu_capacity_time,
        ue_mem=mem_used / mem_alloc if mem_alloc > 0 else 0.0,
        se_mem=mem_alloc / mem_capacity_time,
        jcts=jcts,
    )
