"""Text rendering of time series (the utilization figures, sans matplotlib).

The environment is offline and headless, so every figure in the paper is
regenerated as (a) the raw resampled series (CSV-ready) and (b) an ASCII
chart for eyeballing shapes — alternation, plateaus, crossovers.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_chart", "multi_series_chart", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _finite_max(vals: Sequence[float], floor: float) -> float:
    """Max over the finite values only; ``floor`` when there are none.

    Autoscaling from ``max(vals)`` directly would poison the span with a
    single ``inf``/NaN sample (NaN because any comparison against it is
    False, inf because every finite value then maps to the bottom band).
    """
    top = floor
    for v in vals:
        if math.isfinite(v) and v > top:
            top = v
    return top


def sparkline(values: Sequence[float], lo: float = 0.0, hi: float | None = None) -> str:
    """One-line block-character rendering of a series.

    Non-finite samples never crash the render: NaN prints as ``·`` (no
    data), ``+inf``/``-inf`` clamp to the top/bottom block.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    top = hi if hi is not None else _finite_max(vals, lo)
    span = max(top - lo, 1e-12)
    out = []
    for v in vals:
        if math.isnan(v):
            out.append("·")
            continue
        idx = int((min(max(v, lo), top) - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def ascii_chart(
    values: Sequence[float],
    height: int = 10,
    lo: float = 0.0,
    hi: float | None = None,
    label: str = "",
) -> str:
    """Multi-row ASCII chart; rows are value bands from hi down to lo.

    NaN samples render as blank columns; infinities clamp to the band
    edges (same contract as :func:`sparkline`).
    """
    vals = [float(v) for v in values]
    if not vals:
        return f"{label} (empty)"
    top = hi if hi is not None else max(_finite_max(vals, lo), lo + 1e-9)
    span = max(top - lo, 1e-12)
    rows = []
    for row in range(height, 0, -1):
        cutoff = lo + span * (row - 0.5) / height
        line = "".join(
            "█" if not math.isnan(v) and v >= cutoff else " " for v in vals
        )
        axis = f"{lo + span * row / height:7.1f} |"
        rows.append(axis + line)
    rows.append(" " * 8 + "+" + "-" * len(vals))
    if label:
        rows.insert(0, label)
    return "\n".join(rows)


def multi_series_chart(
    named_series: dict[str, Sequence[float]],
    height: int = 8,
    hi: float = 100.0,
) -> str:
    """Stack several labelled sparkline strips (one per resource)."""
    out = []
    for name, series in named_series.items():
        out.append(f"{name:>12s} |{sparkline(series, 0.0, hi)}|")
    return "\n".join(out)
