"""Straggler accounting (§5.1.2 "Over-subscription of CPU").

"We define the straggler threshold, following the general statistical
definition of outliers, as the task completion time that is more than 1.5
times the inter-quartile range above the third quartile in the same stage.
The straggler time for each stage is calculated as the completion time of
the last task minus the threshold.  We sum the straggler time of all stages
for each job" — and report the average ratio of that sum to each job's JCT.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stage_straggler_time", "job_straggler_ratio", "mean_straggler_ratio"]


def stage_straggler_time(completion_times: list[float]) -> float:
    """Straggler time of one stage from its tasks' completion durations."""
    if len(completion_times) < 4:
        return 0.0
    arr = np.asarray(completion_times, dtype=float)
    q1, q3 = np.percentile(arr, [25.0, 75.0])
    threshold = q3 + 1.5 * (q3 - q1)
    last = float(arr.max())
    return max(0.0, last - threshold)


def job_straggler_ratio(job) -> float:
    """Sum of per-stage straggler times over the job's JCT."""
    if job.jct is None or job.jct <= 0:
        return 0.0
    total = 0.0
    for stage in job.plan.stages:
        durations = [
            t.finished_at - t.placed_at
            for t in stage.tasks
            if t.finished_at is not None and t.placed_at is not None
        ]
        total += stage_straggler_time(durations)
    return total / job.jct


def mean_straggler_ratio(jobs) -> float:
    ratios = [job_straggler_ratio(j) for j in jobs if j.jct]
    return sum(ratios) / len(ratios) if ratios else 0.0
