"""Bench: Table 6 — job-ordering vs monotask-ordering ablation on TPC-H2."""

from repro.experiments import table6_ordering

from .conftest import run_once


def test_table6_ordering(benchmark, scale_name):
    results = run_once(benchmark, table6_ordering.run, scale_name)

    # Paper shape: enabling both JO and MO gives the best average JCT
    # (376.7 → 346.5 → 328.3 s for EJF).  Documented deviation: in our
    # implementation the EPT-throttled placement keeps worker queues short,
    # so JO (which orders *placement*) carries most of the leverage that MO
    # (which orders the queues) carries on the paper's testbed; we therefore
    # assert the robust part — JO+MO is never worse than either single
    # lever — rather than MO's superiority over JO.
    for policy in ("ejf", "srjf"):
        both = results[("JO+MO", policy)].mean_jct
        jo = results[("JO", policy)].mean_jct
        mo = results[("MO", policy)].mean_jct
        assert both <= jo * 1.03
        assert both <= mo * 1.03
    # and disabling ordering entirely (MO-only placement is FIFO) does not
    # improve on the full configuration's makespan either
    for policy in ("ejf", "srjf"):
        assert results[("JO+MO", policy)].makespan <= results[("MO", policy)].makespan * 1.10
