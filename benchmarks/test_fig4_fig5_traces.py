"""Bench: Figures 4 & 5 — utilization traces (flat Ursa vs fluctuating Y+S)."""

from repro.experiments import fig4_fig5_traces

from .conftest import run_once


def test_fig4_fig5_utilization_traces(benchmark, scale_name):
    out = run_once(benchmark, fig4_fig5_traces.run, scale_name)

    # Figure 4 (TPC-H): Ursa's busy-window CPU is clearly higher, and not
    # meaningfully less flat (at reduced scale Ursa drains so fast that its
    # window includes ramp-out, which inflates its CoV slightly)
    u = out[("Figure 4 (TPC-H)", "ursa-ejf")]
    s = out[("Figure 4 (TPC-H)", "y+s")]
    assert u["cpu_mean"] > s["cpu_mean"] * 1.15
    assert u["cpu_cv"] < s["cpu_cv"] * 1.25

    # Figure 5 (TPC-DS): same shape
    u5 = out[("Figure 5 (TPC-DS)", "ursa-ejf")]
    s5 = out[("Figure 5 (TPC-DS)", "y+s")]
    assert u5["cpu_mean"] > s5["cpu_mean"] * 1.15
    assert u5["cpu_cv"] < s5["cpu_cv"] * 1.25
