"""Bench: Table 5 — CPU over-subscription sweep (1/2/4) for Y+U and Y+S."""

from repro.experiments import table5_oversub

from .conftest import run_once


def test_table5_oversubscription(benchmark, scale_name):
    results = run_once(benchmark, table5_oversub.run, scale_name)

    for name in ("y+u", "y+s"):
        mk1 = results[(1.0, name)]["metrics"].makespan
        mk2 = results[(2.0, name)]["metrics"].makespan
        mk4 = results[(4.0, name)]["metrics"].makespan
        # ratio 2 helps (paper: 843→638 for Y+U, 1073→873 for Y+S)
        assert mk2 < mk1
        # ratio 4 shows diminishing returns: far less than another 2x win
        gain2 = mk1 - mk2
        gain4 = mk2 - mk4
        assert gain4 < gain2

    # §5.1.2: the straggler-time ratio grows with the subscription ratio
    s1 = results[(1.0, "y+u")]["straggler_ratio"]
    s4 = results[(4.0, "y+u")]["straggler_ratio"]
    assert s4 >= s1
