"""Bench: Table 3 — TPC-DS across Ursa-EJF / Ursa-SRJF / Y+S."""

from repro.experiments import table2_tpch, table3_tpcds

from .conftest import run_once


def test_table3_tpcds(benchmark, scale_name):
    results = run_once(benchmark, table3_tpcds.run, scale_name)
    m = {k: v.metrics for k, v in results.items()}

    assert m["ursa-ejf"].ue_cpu > 0.9
    # paper: Y+S UE_cpu drops to 48.6% on TPC-DS (vs 69.4% on TPC-H)
    assert m["y+s"].ue_cpu < 0.6
    assert m["ursa-ejf"].makespan < m["y+s"].makespan
    assert m["ursa-srjf"].mean_jct < m["ursa-ejf"].mean_jct
    assert m["ursa-ejf"].ue_mem > m["y+s"].ue_mem
