"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at the
``tiny`` scale (a contended 4-machine slice of the paper's cluster) so the
whole suite runs in minutes.  Set ``REPRO_BENCH_SCALE=bench`` (8 machines,
more jobs) or ``=paper`` (the full §5 configuration; slow) to rerun closer
to the original.

Every benchmark asserts the paper's *shape* (who wins, by roughly what
factor, where crossovers fall) — not the absolute numbers, which belong to
the authors' testbed.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import SCALES


@pytest.fixture(scope="session")
def scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return name


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
