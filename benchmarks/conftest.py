"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at the
``tiny`` scale (a contended 4-machine slice of the paper's cluster) so the
whole suite runs in minutes.  Set ``REPRO_BENCH_SCALE=bench`` (8 machines,
more jobs) or ``=paper`` (the full §5 configuration; slow) to rerun closer
to the original.

Every benchmark asserts the paper's *shape* (who wins, by roughly what
factor, where crossovers fall) — not the absolute numbers, which belong to
the authors' testbed.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import SCALES
from repro.perf import ParallelRunner, ResultCache


@pytest.fixture(scope="session")
def scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return name


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker-process count for harness benchmarks.

    ``REPRO_BENCH_PARALLEL`` overrides; defaults to the machine's cores,
    capped at 4 so the comparison stays meaningful on big boxes.
    """
    env = os.environ.get("REPRO_BENCH_PARALLEL")
    if env is not None:
        return int(env)
    return max(1, min(4, os.cpu_count() or 1))


@pytest.fixture()
def perf_runner(bench_workers, tmp_path) -> ParallelRunner:
    """A parallel runner with a throwaway cache (set ``REPRO_BENCH_CACHE``
    to a path to persist the cache across benchmark runs instead)."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or (tmp_path / "cache")
    return ParallelRunner(workers=bench_workers, cache=ResultCache(cache_dir))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
