"""Bench: §5.2 text — considering network demands in task placement.

Paper: ignoring network demands degrades TPC-H2 makespan from 613 to 650 s
and average JCT from 339 to 383 s, because collocated network monotasks
contend for the downlink and block their dependent CPU monotasks.  The same
run also checks the §5.2 load-balance claim: Ursa's per-worker CPU
utilization spread stays small (the paper reports ≈3%).
"""

import numpy as np

from repro.cluster import Cluster
from repro.experiments.common import SCALES
from repro.metrics import compute_metrics
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch2_workload

from .conftest import run_once


def _run(scale, ignore_network):
    sc = SCALES[scale]
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(cluster, UrsaConfig(ignore_network=ignore_network))
    submit_workload(
        system,
        tpch2_workload(
            scale=sc.workload_scale,
            arrival_interval=sc.arrival_interval,
            max_parallelism=sc.max_parallelism,
            partition_mb=sc.partition_mb,
        ),
    )
    system.run(max_events=sc.max_events)
    assert system.all_done
    return system


def test_sec52_network_demand_awareness(benchmark, scale_name):
    def both():
        return _run(scale_name, False), _run(scale_name, True)

    aware, unaware = run_once(benchmark, both)
    m_aware = compute_metrics(aware)
    m_unaware = compute_metrics(unaware)
    print(
        f"\n§5.2 network demands: aware mk={m_aware.makespan:.1f} "
        f"jct={m_aware.mean_jct:.1f}; ignored mk={m_unaware.makespan:.1f} "
        f"jct={m_unaware.mean_jct:.1f}"
    )
    # considering network demands does not hurt, and typically helps JCT
    assert m_aware.mean_jct <= m_unaware.mean_jct * 1.03

    # §5.2 load balance: per-worker CPU utilization spread is small
    end = aware.makespan()
    per = aware.cluster.per_machine_utilization("cpu_used", 0.1 * end, 0.7 * end)
    spread = float(np.max(per) - np.min(per))
    print(f"per-worker CPU utilization spread: {100 * spread:.2f}%")
    assert spread < 0.15
