"""Bench: the perf harness itself — parallel fan-out + cached re-run.

Keeps the harness under test at benchmark scale: the parallel suite must
reproduce the serial suite bit-for-bit, and a warm cache must serve a
re-run in a small fraction of the cold time (ISSUE 2 acceptance: <10 %).
"""

from __future__ import annotations

import contextlib
import io
import pickle
import time

from repro.perf import ParallelRunner

from .conftest import run_once

# one metric table + one figure: enough breadth to exercise fan-out and
# payload reduction without replaying the full 12-experiment suite
SUBSET = ["table2", "fig8"]


def _quiet_run(runner, scale_name):
    with contextlib.redirect_stdout(io.StringIO()):
        return runner.run_many(SUBSET, scale_name)


def test_parallel_suite_matches_serial(benchmark, scale_name, bench_workers):
    serial = _quiet_run(ParallelRunner(workers=0), scale_name)
    parallel = run_once(benchmark, _quiet_run, ParallelRunner(workers=bench_workers), scale_name)
    assert pickle.dumps(parallel) == pickle.dumps(serial)


def test_cached_rerun_is_fast(perf_runner, scale_name):
    t0 = time.perf_counter()
    cold = _quiet_run(perf_runner, scale_name)
    cold_s = time.perf_counter() - t0
    assert perf_runner.executed_units > 0

    t0 = time.perf_counter()
    warm = _quiet_run(perf_runner, scale_name)
    warm_s = time.perf_counter() - t0
    assert perf_runner.executed_units == 0, "second run must be served from cache"
    assert pickle.dumps(warm) == pickle.dumps(cold)
    assert warm_s < 0.5 * cold_s, f"cached re-run not fast: {warm_s:.2f}s vs {cold_s:.2f}s cold"
