"""Bench: Table 2 — TPC-H across Ursa-EJF / Ursa-SRJF / Y+S / Y+T."""

from repro.experiments import table2_tpch

from .conftest import run_once


def test_table2_tpch(benchmark, scale_name):
    results = run_once(benchmark, table2_tpch.run, scale_name)
    m = {k: v.metrics for k, v in results.items()}

    # UE_cpu: Ursa ≫ Y+S > Y+T (paper: 99.6 / 69.4 / 59.0)
    assert m["ursa-ejf"].ue_cpu > 0.9
    assert m["ursa-ejf"].ue_cpu > m["y+s"].ue_cpu + 0.2
    assert m["y+s"].ue_cpu >= m["y+t"].ue_cpu - 0.02

    # makespan: Ursa < Y+S < Y+T (paper: 2803 / 3849 / 9228)
    assert m["ursa-ejf"].makespan < m["y+s"].makespan
    assert m["y+s"].makespan < m["y+t"].makespan

    # SRJF buys avg JCT (paper: 490 vs 600)
    assert m["ursa-srjf"].mean_jct < m["ursa-ejf"].mean_jct

    # memory UE: Ursa far above container-based baselines (paper: 79 vs 35/29)
    assert m["ursa-ejf"].ue_mem > m["y+s"].ue_mem
