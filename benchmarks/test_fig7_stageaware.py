"""Bench: Figure 7 + §5.2 — stage-awareness and network-demand ablations."""

from repro.experiments import fig7_stageaware

from .conftest import run_once


def test_fig7_stageaware_and_network_demand(benchmark, scale_name):
    out = run_once(benchmark, fig7_stageaware.run, scale_name)

    base = out["baseline"]
    nsa = out["non-stage-aware"]
    ign = out["ignore-network"]

    # paper: non-stage-aware costs +5.7% makespan / +10.8% avg JCT (EJF)
    assert nsa.mean_jct >= base.mean_jct * 0.98
    # paper: ignoring network demands costs ~6% makespan, ~13% avg JCT
    assert ign.mean_jct >= base.mean_jct * 0.98
    # and the baseline is (weakly) the best of the three on makespan
    assert base.makespan <= min(nsa.makespan, ign.makespan) * 1.05
