"""Bench: Table 1 + Figure 1 — single-job UE and utilization patterns."""

import numpy as np

from repro.experiments import table1_fig1_single_jobs

from .conftest import run_once


def test_table1_fig1_single_jobs(benchmark, scale_name):
    results = run_once(
        benchmark, table1_fig1_single_jobs.run, scale_name
    )

    # Table 1 shape: executor engines waste CPU even with ideal containers
    # (paper row: Spark UE = 13.97 / 45.81 / 62.16 / 48.34 %); the per-query
    # ordering is noise at reduced scale, so assert the ceiling only
    for job in ("lr", "cc", "q14", "q8"):
        assert results[("y+s", job)]["metrics"].ue_cpu < 0.8
    # LR's serialized driver-side reduce keeps it far from full utilization
    assert results[("y+s", "lr")]["metrics"].ue_cpu < 0.65

    # Ursa's integrated runtime keeps single-job UE near 1 regardless
    for job in ("lr", "cc", "q14", "q8"):
        assert results[("ursa-ejf", job)]["metrics"].ue_cpu > 0.95

    # Figure 1 shape: the iterative jobs alternate CPU and network — both
    # series must rise and fall repeatedly rather than stay flat
    for job in ("lr", "cc"):
        cpu = np.asarray(results[("y+s", job)]["series"]["cpu"])
        assert cpu.max() > 2 * max(cpu.mean(), 1e-9) or cpu.std() > 0.3 * cpu.mean()
