"""Bench: Figures 8–10 — the expectable synthetic workload."""

import numpy as np

from repro.experiments import fig8_fig9_fig10_synthetic as synth

from .conftest import run_once


def test_fig8_single_job_alternation(benchmark, scale_name):
    out = run_once(benchmark, synth.run_fig8, scale_name)

    # Type 1 carries ~2x the data of Type 2 → ~2x the JCT (paper: 40 vs 22)
    assert 1.5 < out[1]["jct"] / out[2]["jct"] < 2.5

    for jtype in (1, 2):
        cpu = np.asarray(out[jtype]["cpu"])
        net = np.asarray(out[jtype]["net"])
        # both resources alternate: each has clear peaks and valleys
        assert cpu.max() > 2 * max(cpu.min(), 1e-9) + 1
        assert net.max() > 5.0
        # CPU and network peaks do not coincide (phases alternate)
        top_cpu = set(np.argsort(cpu)[-3:])
        top_net = set(np.argsort(net)[-3:])
        assert len(top_cpu & top_net) <= 1


def test_fig9_expectable_jcts(benchmark, scale_name):
    out = run_once(benchmark, synth.run_fig9, scale_name, n_jobs=10)
    actual = np.asarray(out["actual"])
    expect = np.asarray(out["expected"])
    # after pipeline warm-up the actual JCTs track the ideal-case arithmetic
    tail = slice(len(actual) // 2, None)
    rel_err = np.abs(actual[tail] - expect[tail]) / expect[tail]
    assert rel_err.mean() < 0.20
    # and the cluster CPU stays pinned high (paper Fig. 9b)
    assert out["mean_cpu"] > 80.0


def test_fig10_alternating_types(benchmark, scale_name):
    out = run_once(benchmark, synth.run_fig10, scale_name, n_pairs=5)
    types = np.asarray(out["ejf"]["types"])
    for policy in ("ejf", "srjf"):
        actual = np.asarray(out[policy]["actual"])
        expect = np.asarray(out[policy]["expected"])
        # the actual JCTs track the per-policy ideal-case curve: strong rank
        # correlation and a bounded total-error envelope
        rank_corr = np.corrcoef(np.argsort(np.argsort(actual)),
                                np.argsort(np.argsort(expect)))[0, 1]
        assert rank_corr > 0.7
        assert abs(actual.sum() - expect.sum()) / expect.sum() < 0.5
    # SRJF's defining shape: the small Type-2 jobs finish first on average
    srjf = np.asarray(out["srjf"]["actual"])
    assert srjf[types == 2].mean() < srjf[types == 1].mean()
    # while EJF mixes them (pairwise, by submission order)
    ejf = np.asarray(out["ejf"]["actual"])
    assert ejf[types == 2].mean() > srjf[types == 2].mean()
