"""Bench: Table 4 — Mixed workload across all seven systems."""

from repro.experiments import table4_mixed

from .conftest import run_once


def test_table4_mixed(benchmark, scale_name):
    results = run_once(benchmark, table4_mixed.run, scale_name)
    m = {k: v.metrics for k, v in results.items()}

    # monotasks alone are not enough: Y+U keeps executor-grade (low) UE
    assert m["ursa-ejf"].ue_cpu > 0.9
    assert m["y+u"].ue_cpu < m["ursa-ejf"].ue_cpu - 0.2

    # placement comparators keep Ursa's UE but lose ground on makespan
    for name in ("capacity", "tetris", "tetris2"):
        assert m[name].ue_cpu > 0.9
    assert m["ursa-ejf"].makespan <= min(
        m["capacity"].makespan, m["tetris"].makespan, m["tetris2"].makespan
    ) * 1.10

    # Tetris2 (ignoring network peaks) >= Tetris (paper: 506 vs 562)
    assert m["tetris2"].makespan <= m["tetris"].makespan * 1.05

    # Ursa beats the executor-based systems outright
    assert m["ursa-ejf"].makespan < m["y+s"].makespan
    assert m["ursa-ejf"].makespan < m["y+u"].makespan
