"""Bench: Figure 6 — the bottleneck resource switches with link speed."""

from repro.experiments import fig6_network

from .conftest import run_once


def test_fig6_network_bottleneck_switch(benchmark, scale_name):
    out = run_once(benchmark, fig6_network.run, scale_name)

    # 1 Gbps: network is the bottleneck — it is the highly-used resource
    assert out[1.0]["net_mean"] > out[1.0]["cpu_mean"]
    # 10 Gbps: CPU takes over and network utilization drops
    assert out[10.0]["cpu_mean"] > out[10.0]["net_mean"]
    # network utilization decreases monotonically with bandwidth
    assert out[1.0]["net_mean"] > out[4.0]["net_mean"] > out[10.0]["net_mean"]
    # a starved network stretches the makespan (paper Fig. 6a vs 4a)
    assert out[1.0]["metrics"].makespan > out[10.0]["metrics"].makespan
